"""Experiment [layout, extension]: column-BLOCK vs column-CYCLIC for
dgefa.

A well-known result of the Fortran D / LINPACK literature: LU
elimination shrinks the active matrix from the left, so a block column
layout starves low-numbered processors while cyclic columns keep the
trailing-matrix work spread evenly.  The language makes the experiment a
one-token change (``distribute a(:, block)`` vs ``(:, cyclic)``); the
simulator's per-processor work counters expose the imbalance directly.
"""

import numpy as np
import pytest

from repro.apps import dgefa_reference_lu, dgefa_source, make_dgefa_init
from repro.core import Mode, Options, compile_program
from repro.machine import IPSC860

from _harness import emit_bench


def run_layout(layout: str, n: int, P: int):
    init = make_dgefa_init(n)
    ref = np.empty((n, n))
    for i in range(n):
        for j in range(n):
            ref[i, j] = init("a", (i + 1, j + 1))
    ref = dgefa_reference_lu(ref)
    src = dgefa_source(n).replace(
        "distribute a(:, cyclic)", f"distribute a(:, {layout})"
    )
    cp = compile_program(src, Options(nprocs=P, mode=Mode.INTER))
    res = cp.run(cost=IPSC860, init_fn=init, timeout_s=180)
    assert np.allclose(res.gathered("a"), ref), layout
    return res.stats


@pytest.fixture(scope="module")
def layouts():
    return {
        (layout, P): run_layout(layout, 32, P)
        for layout in ("cyclic", "block")
        for P in (2, 4)
    }


def test_bench_dgefa_layouts(benchmark, layouts, paper_table):
    def rerun():
        return run_layout("cyclic", 32, 4)

    benchmark.pedantic(rerun, rounds=2, iterations=1)
    rows = []
    for (layout, P), s in sorted(layouts.items()):
        rows.append(
            f"(:, {layout:<6}) P={P}  time={s.time_ms:>8.3f}ms  "
            f"load imbalance={s.load_imbalance:>5.2f}  "
            f"colls={s.collectives}"
        )
    paper_table(
        "dgefa column layout: block vs cyclic (n=32)",
        "layout            measurements",
        rows,
    )
    benchmark.extra_info["imbalance_cyclic"] = layouts[("cyclic", 4)].load_imbalance
    benchmark.extra_info["imbalance_block"] = layouts[("block", 4)].load_imbalance
    emit_bench("layout", {
        f"{layout}_P{P}": {"time_ms": s.time_ms,
                           "load_imbalance": s.load_imbalance,
                           "collectives": s.collectives}
        for (layout, P), s in sorted(layouts.items())
    })


class TestShape:
    def test_cyclic_balances_work(self, layouts):
        for P in (2, 4):
            assert layouts[("cyclic", P)].load_imbalance < 1.15, P

    def test_block_imbalances_work(self, layouts):
        for P in (2, 4):
            assert layouts[("block", P)].load_imbalance > \
                layouts[("cyclic", P)].load_imbalance + 0.1, P

    def test_cyclic_no_slower(self, layouts):
        for P in (2, 4):
            assert layouts[("cyclic", P)].time_us <= \
                1.05 * layouts[("block", P)].time_us, P

    def test_same_collective_count(self, layouts):
        # the communication pattern (one pivot broadcast per step) is
        # layout independent
        counts = {s.collectives for s in layouts.values()}
        assert counts == {31}
