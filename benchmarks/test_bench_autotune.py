"""Benchmark [new]: the profile-guided distribution auto-tuner.

The paper fixes the data layout and derives communication; the tuner
closes the remaining loop and searches the layout space itself.  This
bench records, in ``BENCH_autotune.json``:

* tuned-vs-default simulated virtual time per paper app (cg, stencil,
  and a block-written dgefa whose column-cyclic layout the tuner must
  rediscover), with the winning plan's CLI flags;
* bit-identity: the winning plan, applied through the normal compile
  path, matches sequential execution and reproduces the tuner's own
  predicted virtual time exactly;
* parallel-vs-serial search wall time at equal budget over an
  identical plan list (the >= 2x assertion is gated on hosts with
  >= 4 CPUs — a single-core runner timeshares the workers — but the
  measured ratio is always recorded);
* evaluation-memo hit rate on an immediate re-tune (crash-safe store,
  so a second search is nearly free).

Shape assertions: the tuner finds a strictly better plan on >= 2 apps
and >= 1.2x on >= 1; parallel and serial sweeps score every plan
identically.
"""

import os
import time

import numpy as np

from repro.apps.cg import cg_source
from repro.apps.dgefa import dgefa_source
from repro.apps.stencil import stencil1d_source
from repro.core import Options, compile_program
from repro.interp import run_sequential
from repro.lang import parse
from repro.machine import IPSC860
from repro.tune import Plan, autotune, evaluate_plan, \
    make_eval_compiler

from _harness import emit_bench

BUDGET = 16

#: app -> (source, base nprocs)
APPS = {
    "cg": (cg_source(64, 8), 4),
    "stencil1d": (stencil1d_source(256, 8), 4),
    "dgefa_block": (
        dgefa_source(64).replace("distribute a(:, cyclic)",
                                 "distribute a(:, block)"),
        4,
    ),
}

payload: dict = {"budget": BUDGET, "apps": {}}


def test_tuned_vs_default(paper_table):
    rows = []
    for app, (src, P) in sorted(APPS.items()):
        out = autotune(src, Options(nprocs=P), budget=BUDGET,
                       workers=0, memo_dir="")
        payload["apps"][app] = {
            "default_time_us": out.base.time_us,
            "tuned_time_us": out.best_metrics["time_us"],
            "speedup": out.predicted_speedup,
            "plan": out.best.describe(),
            "flags": out.best.cli_flags(),
            "evaluated": out.evaluated,
            "wall_s": out.wall_s,
            "plans_per_s": out.plans_per_s,
        }
        rows.append(
            f"{app:<26} {out.base.time_us / 1000.0:>10.3f} "
            f"{out.best_metrics['time_us'] / 1000.0:>10.3f} "
            f"{out.predicted_speedup:>8.2f}x  {out.best.describe()}"
        )
    paper_table(
        "autotune: tuned vs default virtual time",
        f"{'app':<26} {'default(ms)':>10} {'tuned(ms)':>10} "
        f"{'speedup':>9}  plan",
        rows,
    )
    speedups = [a["speedup"] for a in payload["apps"].values()]
    assert sum(1 for s in speedups if s > 1.0) >= 2, \
        f"tuner should win on >= 2 apps, got speedups {speedups}"
    assert max(speedups) >= 1.2, \
        f"tuner should reach >= 1.2x somewhere, got {speedups}"


def test_tuned_plan_is_bit_identical(paper_table):
    """The winning cg plan, compiled through the normal driver: results
    match sequential execution and the virtual time reproduces the
    tuner's prediction exactly."""
    src, P = APPS["cg"]
    out = autotune(src, Options(nprocs=P), budget=BUDGET, workers=0,
                   memo_dir="")
    tuned_opts = out.best.apply(Options(nprocs=P))
    cp = compile_program(src, tuned_opts)
    res = cp.run(cost=IPSC860, scheduler="event", codegen=False,
                 timeout_s=120.0)
    assert res.stats.time_us == out.best_metrics["time_us"], \
        "applied plan must reproduce the tuner's measured virtual time"
    seq = run_sequential(parse(src))
    verified = []
    for name, arr in seq.arrays.items():
        if name in res.frames[0].arrays:
            assert np.allclose(res.gathered(name), arr.data), \
                f"tuned {name} diverged from sequential execution"
            verified.append(name)
    assert verified
    payload["bit_identity"] = {
        "app": "cg",
        "verified_arrays": sorted(verified),
        "predicted_time_us": out.best_metrics["time_us"],
        "applied_time_us": res.stats.time_us,
    }


def test_parallel_vs_serial_search(paper_table, tmp_path):
    """An identical 12-plan list over a heavy cg instance, scored
    serially and across a 4-worker pool."""
    from repro.service.pool import WorkerPool

    src = cg_source(384, 128)
    base = Options(nprocs=4)
    # a 12-point processor sweep: every plan simulates in comparable,
    # nontrivial wall time, so the ratio measures parallelism rather
    # than one pathological straggler
    plans = [Plan(P, ())
             for P in (2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96)]
    applied = [p.apply(base) for p in plans]

    t0 = time.perf_counter()
    sc = make_eval_compiler()
    serial = [evaluate_plan(sc, src, o) for o in applied]
    serial_wall = time.perf_counter() - t0

    pool = WorkerPool(size=4, job_timeout_s=300.0)
    try:
        t0 = time.perf_counter()
        parallel = pool.evaluate_plans(
            src, applied, store_dir=str(tmp_path / "store")
        )
        parallel_wall = time.perf_counter() - t0
    finally:
        pool.close()

    assert [m["time_us"] for m in serial] == \
        [m["time_us"] for m in parallel], \
        "parallel and serial sweeps must score plans identically"

    ratio = serial_wall / parallel_wall if parallel_wall > 0 else 0.0
    host_cpus = os.cpu_count() or 1
    payload["parallel_search"] = {
        "plans": len(plans),
        "serial_wall_s": serial_wall,
        "parallel_wall_s": parallel_wall,
        "parallel_speedup": ratio,
        "workers": 4,
        "serial_plans_per_s": len(plans) / serial_wall,
        "parallel_plans_per_s": len(plans) / parallel_wall,
    }
    paper_table(
        "autotune: parallel vs serial plan evaluation (12 plans)",
        f"{'path':<26} {'wall(s)':>10} {'plans/s':>10}",
        [
            f"{'serial':<26} {serial_wall:>10.2f} "
            f"{len(plans) / serial_wall:>10.1f}",
            f"{'4 workers':<26} {parallel_wall:>10.2f} "
            f"{len(plans) / parallel_wall:>10.1f}",
            f"{'speedup':<26} {ratio:>10.2f}x",
        ],
    )
    if host_cpus >= 4:
        assert ratio >= 2.0, (
            f"parallel search should be >= 2x serial on a {host_cpus}-"
            f"CPU host, got {ratio:.2f}x"
        )


def test_memo_hit_rate(tmp_path):
    """Re-tuning the same program hits the crash-safe memo for every
    candidate."""
    src, P = APPS["stencil1d"]
    memo_dir = str(tmp_path / "memo")
    first = autotune(src, Options(nprocs=P), budget=BUDGET, workers=0,
                     memo_dir=memo_dir)
    again = autotune(src, Options(nprocs=P), budget=BUDGET, workers=0,
                     memo_dir=memo_dir)
    candidates = len(again.records)
    rate = again.memo_hits / candidates if candidates else 0.0
    payload["memo"] = {
        "first_evaluated": first.evaluated,
        "rerun_memo_hits": again.memo_hits,
        "rerun_candidates": candidates,
        "rerun_hit_rate": rate,
        "first_wall_s": first.wall_s,
        "rerun_wall_s": again.wall_s,
    }
    assert first.memo_hits == 0
    assert rate == 1.0, f"every re-tuned candidate should hit, got {rate}"


def test_emit(record_property):
    out = emit_bench("autotune", payload)
    record_property("bench_json", str(out))
    assert out.exists()
