"""Experiment [Fig. 16 a-d]: the dynamic data decomposition optimization
ladder on the Figure 15 program (T = 10 iterations).

Expected counts for the four levels:

* 16a  no optimization          — 4 remaps per iteration  (40 executed)
* 16b  live decompositions      — 2 per iteration         (20 executed)
* 16c  + loop-invariant hoist   — 2 total                 ( 2 executed)
* 16d  + array kills            — 1 physical + 1 marking  ( 1 executed)

Simulated time decreases monotonically down the ladder.
"""

import pytest

from repro.apps import FIG15
from repro.core import DynOpt, Mode

from _harness import compile_and_measure, emit_bench

LEVELS = [
    (DynOpt.NONE, "16a no optimization", 40),
    (DynOpt.LIVE, "16b live decompositions", 20),
    (DynOpt.HOIST, "16c loop-invariant hoist", 2),
    (DynOpt.KILLS, "16d array kills", 1),
]


@pytest.fixture(scope="module")
def ladder():
    out = {}
    for dyn, label, expect in LEVELS:
        cp, res = compile_and_measure(FIG15, "x", dynopt=dyn)
        out[dyn] = (label, expect, cp, res.stats)
    return out


@pytest.mark.parametrize("dyn,label,expect", LEVELS,
                         ids=[l[1].split()[0] for l in LEVELS])
def test_bench_fig16_level(benchmark, ladder, paper_table, dyn, label,
                           expect):
    def run():
        return compile_and_measure(FIG15, "x", dynopt=dyn)[1]

    benchmark.pedantic(run, rounds=3, iterations=1)
    _label, _expect, cp, s = ladder[dyn]
    assert s.remaps == expect, f"{label}: {s.remaps} remaps"
    benchmark.extra_info.update(
        remaps=s.remaps, remap_bytes=s.remap_bytes, sim_time_ms=s.time_ms
    )
    header = (f"{'level':<28} {'remaps':>7} {'bytes moved':>12} "
              f"{'time(ms)':>10}")
    rows = [
        f"{lab:<28} {st.remaps:>7} {st.remap_bytes:>12} {st.time_ms:>10.3f}"
        for d, (lab, _e, _c, st) in ladder.items()
    ]
    paper_table(
        "Figure 16: dynamic data decomposition optimizations "
        "(Figure 15 program, T=10, P=4)",
        header, rows,
    )
    emit_bench("fig16_dynamic", {
        lab.split()[0]: {"remaps": st.remaps,
                         "remap_bytes": st.remap_bytes,
                         "time_ms": st.time_ms}
        for _d, (lab, _e, _c, st) in ladder.items()
    })


class TestShape:
    def test_monotone_times(self, ladder):
        times = [st.time_us for _d, (_l, _e, _c, st) in ladder.items()]
        assert times[0] > times[1] > times[2] >= times[3]

    def test_16d_marks_instead_of_moving(self, ladder):
        _l, _e, cp, s = ladder[DynOpt.KILLS]
        assert cp.report.remaps_marked == 1
        # the marking moves no bytes: 16d moves half of 16c's volume
        _l3, _e3, _c3, s3 = ladder[DynOpt.HOIST]
        assert s.remap_bytes == s3.remap_bytes // 2

    def test_remap_traffic_is_point_to_point(self, ladder):
        """Remap exchanges are physically bundles of sends, so their
        data motion shows up in the message/byte counts (and hence in
        ``total_bytes``).  The Figure 15 program's only communication is
        remapping, so the two byte counts coincide exactly."""
        for _d, (_l, _e, _c, s) in ladder.items():
            assert s.messages > 0
            assert s.bytes == s.remap_bytes
            assert s.total_bytes == s.bytes + s.collective_bytes

    def test_static_counts_reported(self, ladder):
        _l, _e, cp, _s = ladder[DynOpt.KILLS]
        assert cp.report.remaps_eliminated == 2
        assert cp.report.remaps_hoisted == 2
