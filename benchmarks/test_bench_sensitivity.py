"""Experiment [sensitivity, extension]: how the interprocedural
advantage depends on the machine's communication cost.

The paper's numbers come from one machine (iPSC/860, very high message
startup relative to compute).  A natural question for the reproduction:
does the conclusion survive on a faster network?  We re-run the key
comparisons under three cost models — the iPSC/860-flavoured default, a
10x-faster network, and a free network — and check:

* the interprocedural version's advantage *shrinks* as communication
  gets cheaper (it comes from eliminating messages), but
* the ordering never flips: fewer messages is never slower, and the
  run-time resolution guard overhead keeps RTR behind even on a free
  network (compute-side cost, not message-side).
"""

import pytest

from repro.apps import FIG4, dgefa_source, make_dgefa_init
from repro.core import Mode, Options, compile_program
from repro.interp import run_sequential
from repro.lang import parse
from repro.machine import FAST_NETWORK, FREE, IPSC860

import numpy as np

from _harness import emit_bench

MODELS = [("ipsc860", IPSC860), ("fast", FAST_NETWORK), ("free", FREE)]


def run(src, arr, mode, cost, init_fn=None, reference=None):
    cp = compile_program(src, Options(nprocs=4, mode=mode))
    res = cp.run(cost=cost, init_fn=init_fn, timeout_s=120)
    if reference is not None:
        assert np.allclose(res.gathered(arr), reference)
    return res.stats


@pytest.fixture(scope="module")
def sweep():
    out = {}
    seq = run_sequential(parse(FIG4)).arrays["x"].data
    n = 16
    init = make_dgefa_init(n)
    for label, cost in MODELS:
        for mode in (Mode.INTER, Mode.INTRA, Mode.RTR):
            out[("fig4", label, mode)] = run(
                FIG4, "x", mode, cost, reference=seq
            )
            out[("dgefa", label, mode)] = run(
                dgefa_source(n), "a", mode, cost, init_fn=init
            )
    return out


def test_bench_cost_sensitivity(benchmark, sweep, paper_table):
    def rerun():
        seq = run_sequential(parse(FIG4)).arrays["x"].data
        return run(FIG4, "x", Mode.INTER, FAST_NETWORK, reference=seq)

    benchmark.pedantic(rerun, rounds=2, iterations=1)
    rows = []
    for prog in ("fig4", "dgefa"):
        for label, _cost in MODELS:
            inter = sweep[(prog, label, Mode.INTER)]
            intra = sweep[(prog, label, Mode.INTRA)]
            rtr = sweep[(prog, label, Mode.RTR)]
            base = max(inter.time_us, 1e-9)
            rows.append(
                f"{prog:<7} {label:<9} "
                f"inter={inter.time_ms:>9.3f}ms "
                f"intra={intra.time_us / base:>6.2f}x "
                f"rtr={rtr.time_us / base:>7.2f}x"
            )
    paper_table(
        "Sensitivity: the interprocedural advantage vs network cost",
        "prog    model     times (relative to interprocedural)",
        rows,
    )
    benchmark.extra_info["models"] = len(MODELS)
    emit_bench("sensitivity", {
        f"{prog}_{label}": {
            "inter_time_ms": sweep[(prog, label, Mode.INTER)].time_ms,
            "intra_rel": sweep[(prog, label, Mode.INTRA)].time_us
            / max(sweep[(prog, label, Mode.INTER)].time_us, 1e-9),
            "rtr_rel": sweep[(prog, label, Mode.RTR)].time_us
            / max(sweep[(prog, label, Mode.INTER)].time_us, 1e-9),
        }
        for prog in ("fig4", "dgefa")
        for label, _cost in MODELS
    })


class TestShape:
    def test_advantage_shrinks_with_cheaper_network(self, sweep):
        for prog in ("fig4", "dgefa"):
            slow_gap = (
                sweep[(prog, "ipsc860", Mode.INTRA)].time_us
                / sweep[(prog, "ipsc860", Mode.INTER)].time_us
            )
            fast_gap = (
                sweep[(prog, "fast", Mode.INTRA)].time_us
                / sweep[(prog, "fast", Mode.INTER)].time_us
            )
            assert fast_gap <= slow_gap + 0.05, prog

    def test_ordering_never_flips(self, sweep):
        for prog in ("fig4", "dgefa"):
            for label, _ in MODELS[:2]:  # timed models
                inter = sweep[(prog, label, Mode.INTER)].time_us
                intra = sweep[(prog, label, Mode.INTRA)].time_us
                rtr = sweep[(prog, label, Mode.RTR)].time_us
                assert inter <= intra <= rtr, (prog, label)

    def test_rtr_guard_overhead_survives_free_network(self, sweep):
        """Even with zero communication cost, RTR pays compute for its
        per-reference ownership tests."""
        for prog in ("fig4", "dgefa"):
            rtr = sweep[(prog, "free", Mode.RTR)]
            inter = sweep[(prog, "free", Mode.INTER)]
            assert rtr.guards > 20 * max(inter.guards, 1), prog

    def test_message_counts_cost_independent(self, sweep):
        for prog in ("fig4", "dgefa"):
            for mode in (Mode.INTER, Mode.INTRA, Mode.RTR):
                counts = {
                    sweep[(prog, label, mode)].total_messages
                    for label, _ in MODELS
                }
                assert len(counts) == 1, (prog, mode)
