"""Experiment [Fig. 2 vs Fig. 3]: compile-time code vs run-time
resolution on the Figure 1 program.

The paper: "run-time resolution produces code that is much slower than
the equivalent compile-time generated code.  Not only does the program
have to explicitly check every variable reference, it generates a
message for each nonlocal access."

Regenerated quantities: simulated time, message count, bytes, guard
evaluations for both versions; expected shape: compile-time wins by
several x in time, ~5x fewer messages per shift point, and orders of
magnitude fewer ownership guards.
"""

import pytest

from repro.apps import FIG1
from repro.core import Mode

from _harness import STATS_HEADER, compile_and_measure, emit_bench, stats_row


@pytest.fixture(scope="module")
def measurements():
    out = {}
    for mode in (Mode.INTER, Mode.RTR):
        _cp, res = compile_and_measure(FIG1, "x", mode=mode)
        out[mode] = res.stats
    return out


def test_bench_fig2_compile_time(benchmark, measurements, paper_table):
    _cp, res = compile_and_measure(FIG1, "x", mode=Mode.INTER)

    def run():
        return compile_and_measure(FIG1, "x", mode=Mode.INTER)[1]

    benchmark.pedantic(run, rounds=3, iterations=1)
    s = measurements[Mode.INTER]
    benchmark.extra_info.update(
        sim_time_ms=s.time_ms, messages=s.messages, guards=s.guards
    )
    paper_table(
        "Figure 2 vs Figure 3: compile-time vs run-time resolution "
        "(Figure 1 program, P=4)",
        STATS_HEADER,
        [
            stats_row("compile-time (Fig. 2)", measurements[Mode.INTER]),
            stats_row("run-time res. (Fig. 3)", measurements[Mode.RTR]),
        ],
    )
    emit_bench("fig2_rtr", {
        mode.value: {"time_ms": st.time_ms, "messages": st.messages,
                     "bytes": st.bytes, "guards": st.guards}
        for mode, st in measurements.items()
    })


def test_bench_fig3_runtime_resolution(benchmark, measurements):
    def run():
        return compile_and_measure(FIG1, "x", mode=Mode.RTR)[1]

    benchmark.pedantic(run, rounds=3, iterations=1)
    s = measurements[Mode.RTR]
    benchmark.extra_info.update(
        sim_time_ms=s.time_ms, messages=s.messages, guards=s.guards
    )


class TestShape:
    def test_rtr_much_slower(self, measurements):
        assert measurements[Mode.RTR].time_us > \
            3 * measurements[Mode.INTER].time_us

    def test_rtr_message_per_nonlocal_access(self, measurements):
        # 5 boundary elements x 3 neighbour pairs x 2 loops = 30 element
        # messages vs 6 vectorized ones
        assert measurements[Mode.RTR].messages == 30
        assert measurements[Mode.INTER].messages == 6

    def test_rtr_checks_every_reference(self, measurements):
        # two guarded loops of 95 iterations on 4 processors
        assert measurements[Mode.RTR].guards >= 2 * 95 * 4
        assert measurements[Mode.INTER].guards <= 6 * 4

    def test_same_data_volume(self, measurements):
        assert measurements[Mode.RTR].bytes == measurements[Mode.INTER].bytes
