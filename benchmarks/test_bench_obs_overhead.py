"""Experiment [observability]: tracing overhead.

Not a paper figure — this measures the tracer itself.  The design
contract is asymmetric:

* **tracing off** must be free: every instrumentation point is one
  ``tracer is not None`` test, so a run without tracing is
  indistinguishable from the pre-instrumentation simulator.  Measured
  as a twin series (the same untraced run, best-of-N, twice) whose
  ratio bounds both timer noise and any guard cost — the target is
  ≤ 2 %.
* **tracing on** may pay for event collection, but no more than 2x:
  each event is one dict construction appended to a per-rank list, no
  locks, no I/O during the run.

The stencil relaxation at P = 16 is the workload (communication-dense,
so the traced run records an event at every message, dispatch, and
cache probe).  Results land in ``BENCH_obs_overhead.json``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.apps.stencil import stencil1d_source
from repro.core import Mode, Options, compile_program
from repro.machine import IPSC860

from _harness import emit_bench

N, STEPS, P = 256, 50, 16
REPS = 5

#: twin-series tolerance — the tracing-off target (2 %) plus the timer
#: noise floor best-of-REPS leaves behind on a shared CI host
OFF_TOLERANCE = 1.25
ON_LIMIT = 2.0


def _best_wall(run, reps: int = REPS) -> tuple[float, object]:
    best, res = float("inf"), None
    for _ in range(reps):
        t0 = time.perf_counter()
        res = run()
        best = min(best, time.perf_counter() - t0)
    return best, res


def test_bench_obs_overhead(benchmark, paper_table):
    src = stencil1d_source(N, STEPS)
    cp = compile_program(src, Options(nprocs=P, mode=Mode.INTER))

    def run(trace):
        return cp.run(cost=IPSC860, scheduler="coop", timeout_s=300.0,
                      trace=trace)

    off_a, res_off = _best_wall(lambda: run(False))
    off_b, _ = _best_wall(lambda: run(False))
    on_w, res_on = _best_wall(lambda: run(True))
    benchmark.pedantic(lambda: run(False), rounds=2, iterations=1)

    # tracing must also be *invisible*: same arrays, same clocks
    assert np.array_equal(res_off.gathered("x"), res_on.gathered("x"))
    assert res_off.stats.proc_times == res_on.stats.proc_times

    twin_ratio = max(off_a, off_b) / min(off_a, off_b)
    on_ratio = on_w / min(off_a, off_b)
    events = res_on.trace.event_count()
    payload = {
        "workload": {"app": "stencil1d", "n": N, "steps": STEPS, "P": P},
        "reps": REPS,
        "wall_off_s": min(off_a, off_b),
        "wall_off_twin_s": max(off_a, off_b),
        "wall_on_s": on_w,
        "off_twin_ratio": twin_ratio,
        "off_target_ratio": 1.02,
        "on_over_off": on_ratio,
        "events": events,
        "events_per_second": events / on_w if on_w else 0.0,
    }
    emit_bench("obs_overhead", payload)
    paper_table(
        f"Tracing overhead (stencil n={N} x {STEPS} steps, P={P}, "
        f"best of {REPS})",
        "config                 wall(ms)    ratio",
        [
            f"{'tracing off':<22} {min(off_a, off_b) * 1e3:>8.1f}"
            f"    1.00x",
            f"{'tracing off (twin)':<22} {max(off_a, off_b) * 1e3:>8.1f}"
            f"    {twin_ratio:.3f}x",
            f"{'tracing on':<22} {on_w * 1e3:>8.1f}"
            f"    {on_ratio:.3f}x  ({events} events)",
        ],
    )
    benchmark.extra_info.update(
        off_twin_ratio=round(twin_ratio, 4),
        on_over_off=round(on_ratio, 4),
        events=events,
    )

    # the off/off twin series bounds guard cost + noise; the 2 % design
    # target is recorded in the payload, the hard gate absorbs CI noise
    assert twin_ratio <= OFF_TOLERANCE, \
        f"tracing-off runs diverged {twin_ratio:.3f}x (noise or guards)"
    assert on_ratio <= ON_LIMIT, \
        f"tracing-on overhead {on_ratio:.2f}x exceeds {ON_LIMIT}x"
    assert events > 0
