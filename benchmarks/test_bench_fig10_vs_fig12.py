"""Experiment [Fig. 10 vs Fig. 12]: delayed vs immediate instantiation
on the Figure 4 program.

The paper: immediate instantiation "would result in a hundred messages
for X[26:30,i], one for each invocation of F1$row, rather than a single
message for X[26:30,1:100] in P1", plus explicit guards in F1$col
instead of reducing the j loop's bounds.

Regenerated: message counts (expect exactly 100:1 per neighbour pair),
identical byte volume, guard-evaluation counts, simulated time.
"""

import pytest

from repro.apps import FIG4
from repro.core import Mode
from repro.lang import ast as A

from _harness import STATS_HEADER, compile_and_measure, emit_bench, stats_row


@pytest.fixture(scope="module")
def measurements():
    out = {}
    for mode in (Mode.INTER, Mode.INTRA):
        cp, res = compile_and_measure(FIG4, "x", mode=mode)
        out[mode] = (cp, res.stats)
    return out


def test_bench_fig10_interprocedural(benchmark, measurements, paper_table):
    def run():
        return compile_and_measure(FIG4, "x", mode=Mode.INTER)[1]

    benchmark.pedantic(run, rounds=3, iterations=1)
    inter = measurements[Mode.INTER][1]
    intra = measurements[Mode.INTRA][1]
    benchmark.extra_info.update(
        sim_time_ms=inter.time_ms, messages=inter.messages
    )
    paper_table(
        "Figure 10 vs Figure 12: delayed vs immediate instantiation "
        "(Figure 4 program, P=4)",
        STATS_HEADER,
        [
            stats_row("delayed (Fig. 10)", inter),
            stats_row("immediate (Fig. 12)", intra),
        ],
    )
    # the paper's 100:1 claim, exactly:
    assert inter.messages == 3
    assert intra.messages == 300
    assert intra.bytes == inter.bytes
    emit_bench("fig10_vs_fig12", {
        "delayed": {"messages": inter.messages, "bytes": inter.bytes,
                    "guards": inter.guards, "time_ms": inter.time_ms},
        "immediate": {"messages": intra.messages, "bytes": intra.bytes,
                      "guards": intra.guards, "time_ms": intra.time_ms},
    })


def test_bench_fig12_immediate(benchmark, measurements):
    def run():
        return compile_and_measure(FIG4, "x", mode=Mode.INTRA)[1]

    benchmark.pedantic(run, rounds=3, iterations=1)
    s = measurements[Mode.INTRA][1]
    benchmark.extra_info.update(sim_time_ms=s.time_ms, messages=s.messages)
    assert s.messages == 100 * measurements[Mode.INTER][1].messages


class TestShape:
    def test_cloning_happened(self, measurements):
        cp = measurements[Mode.INTER][0]
        assert cp.report.cloned == {"f1": ["f1$1"], "f2": ["f2$1"]}

    def test_vectorized_message_shape(self, measurements):
        cp = measurements[Mode.INTER][0]
        main = cp.program.main
        sends = [s for s in A.walk_stmts(main.body) if isinstance(s, A.Send)]
        assert len(sends) == 1  # X[strip, 1:100] once, before the loops

    def test_immediate_sends_inside_callee(self, measurements):
        cp = measurements[Mode.INTRA][0]
        row_clone = next(
            u for u in cp.program.units
            if u.name.startswith("f2") and any(
                isinstance(s, (A.Send, A.Recv)) for s in A.walk_stmts(u.body)
            )
        )
        assert row_clone is not None

    def test_guard_cost_of_immediate(self, measurements):
        inter = measurements[Mode.INTER][1]
        intra = measurements[Mode.INTRA][1]
        assert intra.guards > 10 * max(inter.guards, 1)

    def test_time_advantage(self, measurements):
        inter = measurements[Mode.INTER][1]
        intra = measurements[Mode.INTRA][1]
        assert intra.time_us > 1.5 * inter.time_us
