"""Experiment [fast path]: interpreter throughput, scalar vs vectorized.

Not a paper figure — this measures the simulator itself.  The vectorized
execution engine compiles innermost affine loop nests to numpy slice
assignments; this bench reports end-to-end elements/second on the 1-D
relaxation app for both execution paths, sequentially (pure interpreter
throughput) and under the full SPMD simulation (threads + virtual
network), and writes the numbers to ``BENCH_interp.json`` at the repo
root.

The two paths produce bit-identical arrays and RunStats (enforced by
``tests/test_vectorize_differential.py``); the only difference allowed
here is wall-clock speed.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.apps.stencil import stencil1d_source
from repro.core import Mode, Options, compile_program
from repro.interp import run_sequential
from repro.lang import parse

from _harness import emit_bench

N = 2048
STEPS = 8
P = 4
#: elements updated per run: STEPS time steps, two sweeps (smooth +
#: copyback) over the interior
ELEMS = STEPS * 2 * (N - 2)


def _eps(seconds: float) -> float:
    return ELEMS / seconds


@pytest.fixture(scope="module")
def measured():
    src = stencil1d_source(N, STEPS)
    prog = parse(src)
    cp = compile_program(src, Options(nprocs=P, mode=Mode.INTER))
    out = {}
    ref = {}
    for vec in (False, True):
        t0 = time.perf_counter()
        frame = run_sequential(prog, vectorize=vec)
        out[("seq", vec)] = time.perf_counter() - t0
        ref[("seq", vec)] = frame.arrays["x"].data
        t0 = time.perf_counter()
        res = cp.run(vectorize=vec)
        out[("spmd", vec)] = time.perf_counter() - t0
        ref[("spmd", vec)] = res.gathered("x")
    # same answer everywhere, bit for bit
    base = ref[("seq", False)]
    for k, arr in ref.items():
        assert np.array_equal(arr, base), f"{k} diverged from reference"
    return out


def test_bench_throughput_sequential(benchmark, measured, paper_table):
    src = stencil1d_source(N, STEPS)
    prog = parse(src)
    benchmark.pedantic(
        lambda: run_sequential(prog, vectorize=True), rounds=3, iterations=1
    )
    _report(benchmark, measured, paper_table)
    slow, fast = measured[("seq", False)], measured[("seq", True)]
    assert fast < slow, "vectorized sequential run slower than scalar"
    assert slow / fast >= 5.0, (
        f"sequential fast path only {slow / fast:.1f}x"
    )


def test_bench_throughput_spmd(benchmark, measured, paper_table):
    src = stencil1d_source(N, STEPS)
    cp = compile_program(src, Options(nprocs=P, mode=Mode.INTER))
    benchmark.pedantic(
        lambda: cp.run(vectorize=True), rounds=3, iterations=1
    )
    _report(benchmark, measured, paper_table)
    slow, fast = measured[("spmd", False)], measured[("spmd", True)]
    assert fast < slow, "vectorized SPMD run slower than scalar"
    assert slow / fast >= 2.0, f"SPMD fast path only {slow / fast:.1f}x"


def _report(benchmark, measured, paper_table):
    rows = []
    payload = {"n": N, "steps": STEPS, "nprocs": P, "elements": ELEMS}
    for setting in ("seq", "spmd"):
        slow = measured[(setting, False)]
        fast = measured[(setting, True)]
        rows.append(
            f"{setting:<12} {_eps(slow):>14,.0f} {_eps(fast):>14,.0f} "
            f"{slow / fast:>9.1f}x"
        )
        payload[setting] = {
            "scalar_elems_per_s": _eps(slow),
            "vectorized_elems_per_s": _eps(fast),
            "speedup": slow / fast,
        }
    benchmark.extra_info.update(payload)
    emit_bench("interp", payload)
    paper_table(
        f"Interpreter throughput: relax({N}) x {STEPS} steps "
        f"(elements/second, scalar vs vectorized)",
        f"{'setting':<12} {'scalar':>14} {'vectorized':>14} {'speedup':>10}",
        rows,
    )
