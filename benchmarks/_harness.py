"""Measurement helpers shared by the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures: it runs
the relevant compiled programs on the simulated machine, records the
measured quantities (simulated time, messages, bytes, remaps, guards)
into ``benchmark.extra_info``, prints the paper-style table, and asserts
the *shape* — who wins and by roughly what factor.
"""

from __future__ import annotations

import datetime
import json
import os
import subprocess
from pathlib import Path

import numpy as np

from repro.core import DynOpt, Mode, Options, compile_program
from repro.interp import run_sequential
from repro.lang import parse
from repro.machine import IPSC860, resolve_scheduler, resolve_topology

#: repository root — every benchmark's JSON artifact lands here so CI
#: can glob ``BENCH_*.json`` uniformly
REPO_ROOT = Path(__file__).resolve().parents[1]


def bench_dir() -> Path:
    """Where ``BENCH_*.json`` artifacts land: ``REPRO_BENCH_DIR`` when
    set (created on demand — CI points it at a scratch directory so
    fresh payloads never clobber the committed baselines), else the
    repository root (unchanged default)."""
    d = os.environ.get("REPRO_BENCH_DIR", "").strip()
    if not d:
        return REPO_ROOT
    path = Path(d)
    path.mkdir(parents=True, exist_ok=True)
    return path


def git_sha() -> str:
    """The repository HEAD commit (short), or "unknown" outside a git
    checkout / without a git binary."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def bench_timestamp() -> str:
    """ISO-8601 UTC generation time; ``REPRO_BENCH_TIMESTAMP`` (e.g. a
    CI pipeline's start time) overrides the clock so reruns of one
    pipeline produce identical payloads."""
    injected = os.environ.get("REPRO_BENCH_TIMESTAMP")
    if injected:
        return injected
    return datetime.datetime.now(datetime.timezone.utc).isoformat(
        timespec="seconds"
    )


def emit_bench(name: str, payload: dict) -> Path:
    """Write *payload* to ``BENCH_<name>.json`` in :func:`bench_dir`
    (the repository root unless ``REPRO_BENCH_DIR`` redirects it).

    Each benchmark module calls this once with its measured quantities;
    the files are the machine-readable counterpart of the printed
    paper-style tables and are uploaded as CI artifacts.

    Every payload is made self-describing: the active scheduler
    backend, topology, host CPU count, execution path (vectorization
    and node-program codegen switches), the producing commit
    (``git_sha``), and the generation time (``generated_at``,
    injectable via ``REPRO_BENCH_TIMESTAMP``) are stamped in (explicit
    keys set by the benchmark win) so a downloaded artifact identifies
    the configuration that produced it without consulting CI logs.
    """
    from repro.codegen import enabled as codegen_enabled
    from repro.interp.vectorize import enabled as vectorize_enabled
    from repro.obs.metrics import default_registry, metrics_enabled

    payload.setdefault("git_sha", git_sha())
    payload.setdefault("generated_at", bench_timestamp())
    payload.setdefault("scheduler", resolve_scheduler(None))
    payload.setdefault("topology", resolve_topology(None, 1).describe())
    payload.setdefault("host_cpus", os.cpu_count() or 1)
    payload.setdefault("vectorize", vectorize_enabled(None))
    payload.setdefault("codegen", codegen_enabled(None))
    payload.setdefault(
        "metrics",
        default_registry().snapshot() if metrics_enabled() else None,
    )
    out = bench_dir() / f"BENCH_{name}.json"
    out.write_text(
        json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n"
    )
    return out


def compile_and_measure(
    src: str,
    arr: str,
    mode: Mode = Mode.INTER,
    P: int = 4,
    dynopt: DynOpt = DynOpt.KILLS,
    init_fn=None,
    reference=None,
    timeout_s: float = 180.0,
    **optkw,
):
    """Compile + run + verify; returns (CompiledProgram, RunStats)."""
    opts = Options(nprocs=P, mode=mode, dynopt=dynopt, **optkw)
    cp = compile_program(src, opts)
    res = cp.run(cost=IPSC860, init_fn=init_fn, timeout_s=timeout_s)
    if reference is None:
        ref_frame = (
            run_sequential(parse(src), init_fn=init_fn)
            if init_fn else run_sequential(parse(src))
        )
        reference = ref_frame.arrays[arr].data
    assert np.allclose(res.gathered(arr), reference), \
        f"{mode} produced wrong results"
    return cp, res


def stats_row(label: str, s, extra: str = "") -> str:
    """One printed table row from a RunStats (via its as_dict() snapshot,
    the same machine-readable form ``fdc --stats-json`` writes)."""
    d = s.as_dict()
    return (
        f"{label:<26} {d['time_ms']:>10.3f} {d['messages']:>7} "
        f"{d['collectives']:>6} {d['total_bytes']:>10} {d['guards']:>8} "
        f"{extra}"
    )


STATS_HEADER = (
    f"{'version':<26} {'time(ms)':>10} {'msgs':>7} {'colls':>6} "
    f"{'bytes':>10} {'guards':>8}"
)
