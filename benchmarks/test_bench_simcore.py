"""Experiment [simulation core]: cooperative scheduler vs thread oracle.

Not a paper figure — this measures the simulator itself.  The
cooperative run-to-block scheduler executes exactly one rank at a time
and hands the CPU over only at network blocking points, so it pays no
GIL hand-offs, no lock contention, and no condition-variable wakeups;
the communication-schedule cache additionally turns steady-state
message assembly into a dict lookup plus one slice copy.

The bench runs the stencil relaxation at P = 1, 4, 16, 64 and dgefa at
P = 16 under both backends and reports host wall-clock per simulated
rank, plus the "new core vs old core" comparison (coop + comm cache
against threads with the cache disabled — the pre-optimization
configuration).  Everything lands in ``BENCH_simcore.json``.

The headline ≥3x criterion targets the GIL-contention pathology of the
free-running thread backend, which physically requires multiple cores
to manifest (on a single-CPU host the OS serializes the threads anyway
and the oracle degenerates into an accidental round-robin scheduler).
The assertion is therefore gated on ``os.cpu_count()``: multi-core
hosts must show the ≥3x win; single-core hosts must show the coop
backend at least matching the oracle, and the measured ratios are
recorded either way.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.apps.dgefa import dgefa_source, make_dgefa_init
from repro.apps.stencil import stencil1d_source
from repro.core import Mode, Options, compile_program
from repro.machine import FREE, IPSC860

from _harness import emit_bench

PROCS = [1, 4, 16, 64]
STENCIL_N, STENCIL_STEPS = 256, 50
DGEFA_N = 48
REPS = 3

#: cores needed before the thread backend can exhibit real GIL
#: contention (the pathology the cooperative scheduler removes)
CONTENTION_CORES = 4


def _best_wall(run, reps: int = REPS) -> tuple[float, object]:
    """Best-of-*reps* wall-clock seconds (noise floor) and last result."""
    best, res = float("inf"), None
    for _ in range(reps):
        t0 = time.perf_counter()
        res = run()
        best = min(best, time.perf_counter() - t0)
    return best, res


def _measure(src, P, scheduler, *, cache=True, init_fn=None, arr="x"):
    os.environ["REPRO_COMM_CACHE"] = "1" if cache else "0"
    try:
        cp = compile_program(src, Options(nprocs=P, mode=Mode.INTER))
        extra = {"init_fn": init_fn} if init_fn is not None else {}
        wall, res = _best_wall(
            lambda: cp.run(cost=IPSC860, scheduler=scheduler,
                           timeout_s=300.0, **extra)
        )
    finally:
        os.environ.pop("REPRO_COMM_CACHE", None)
    return {
        "wall_s": wall,
        "wall_per_rank_ms": wall / P * 1e3,
        "array": res.gathered(arr),
        "stats": res.stats,
    }


@pytest.fixture(scope="module")
def sweep():
    """All (app, P, scheduler) measurements, plus the old-core config."""
    out = {}
    src = stencil1d_source(STENCIL_N, STENCIL_STEPS)
    for P in PROCS:
        for sched in ("coop", "threads", "event"):
            out[("stencil", P, sched)] = _measure(src, P, sched)
    dsrc = dgefa_source(DGEFA_N)
    init = make_dgefa_init(DGEFA_N)
    for sched in ("coop", "threads", "event"):
        out[("dgefa", 16, sched)] = _measure(
            dsrc, 16, sched, init_fn=init, arr="a"
        )
    # the pre-optimization core: free-running threads, no comm cache
    out[("stencil", 16, "oldcore")] = _measure(src, 16, "threads",
                                               cache=False)
    out[("dgefa", 16, "oldcore")] = _measure(dsrc, 16, "threads",
                                             cache=False, init_fn=init,
                                             arr="a")
    return out


def _ratio(sweep, app, P, baseline="threads"):
    return (sweep[(app, P, baseline)]["wall_s"]
            / sweep[(app, P, "coop")]["wall_s"])


def test_bench_simcore(benchmark, sweep, paper_table):
    src = stencil1d_source(STENCIL_N, STENCIL_STEPS)
    benchmark.pedantic(
        lambda: compile_program(
            src, Options(nprocs=16, mode=Mode.INTER)
        ).run(cost=IPSC860, scheduler="coop", timeout_s=300.0),
        rounds=2, iterations=1,
    )
    rows = []
    payload = {
        "cpu_count": os.cpu_count(),
        "stencil": {"n": STENCIL_N, "steps": STENCIL_STEPS},
        "dgefa": {"n": DGEFA_N},
        "configs": {},
    }
    for (app, P, sched), m in sorted(sweep.items()):
        s = m["stats"]
        rows.append(
            f"{app:<8} P={P:<3} {sched:<8} wall={m['wall_s'] * 1e3:>8.1f}ms "
            f"per-rank={m['wall_per_rank_ms']:>7.2f}ms "
            f"dispatches={s.dispatches:>6} switches={s.switches:>6} "
            f"comm-cache={s.comm_cache_hits}/{s.comm_cache_hits + s.comm_cache_misses}"
        )
        payload["configs"][f"{app}_P{P}_{sched}"] = {
            "wall_s": m["wall_s"],
            "wall_per_rank_ms": m["wall_per_rank_ms"],
            "stats": s.as_dict(),
        }
    ratios = {
        "stencil_P16_threads_over_coop": _ratio(sweep, "stencil", 16),
        "dgefa_P16_threads_over_coop": _ratio(sweep, "dgefa", 16),
        "stencil_P16_oldcore_over_coop": _ratio(sweep, "stencil", 16,
                                                "oldcore"),
        "dgefa_P16_oldcore_over_coop": _ratio(sweep, "dgefa", 16,
                                              "oldcore"),
    }
    payload["speedup"] = ratios
    payload["contention_capable_host"] = (
        os.cpu_count() or 1) >= CONTENTION_CORES
    emit_bench("simcore", payload)
    rows.append("speedup (threads/coop, P=16): "
                + "  ".join(f"{k.split('_')[0]}={v:.2f}x"
                            for k, v in list(ratios.items())[:2]))
    paper_table(
        f"Simulation core: cooperative scheduler vs thread oracle "
        f"(stencil n={STENCIL_N} x {STENCIL_STEPS} steps, "
        f"dgefa n={DGEFA_N}, best of {REPS})",
        "app      cfg      measurements",
        rows,
    )
    benchmark.extra_info.update(
        {k: round(v, 3) for k, v in ratios.items()}
    )


class TestShape:
    def test_backends_bit_identical(self, sweep):
        for app, P in {(a, p) for (a, p, _s) in sweep}:
            base = sweep[(app, P, "threads" if (app, P, "threads") in sweep
                          else "coop")]
            for sched in ("coop", "threads", "event", "oldcore"):
                m = sweep.get((app, P, sched))
                if m is None:
                    continue
                assert np.array_equal(m["array"], base["array"]), \
                    (app, P, sched)
                assert m["stats"].messages == base["stats"].messages
                assert m["stats"].bytes == base["stats"].bytes
                assert m["stats"].proc_times == base["stats"].proc_times

    def test_coop_never_loses_at_p16(self, sweep):
        """On any host the cooperative backend must at least match the
        thread oracle (tolerance absorbs timer noise)."""
        for app in ("stencil", "dgefa"):
            assert _ratio(sweep, app, 16) >= 0.75, app

    def test_contention_speedup(self, sweep):
        """The headline criterion: ≥3x over the free-running thread
        backend at P=16 on an application benchmark.  GIL contention —
        the pathology being eliminated — needs multiple cores to exist;
        a single-CPU host serializes the oracle's threads for free, so
        there the recorded ratio is informational and the no-regression
        shape above is the binding check."""
        cores = os.cpu_count() or 1
        if cores < CONTENTION_CORES:
            pytest.skip(
                f"host has {cores} CPU(s): thread backend cannot "
                f"exhibit GIL contention; ratios recorded in "
                f"BENCH_simcore.json"
            )
        best = max(_ratio(sweep, "stencil", 16),
                   _ratio(sweep, "dgefa", 16))
        assert best >= 3.0, f"coop only {best:.2f}x over threads at P=16"

    def test_scheduler_stats_recorded(self, sweep):
        m = sweep[("stencil", 16, "coop")]
        assert m["stats"].scheduler == "coop"
        assert m["stats"].wall_s > 0
        assert m["stats"].dispatches >= 16
        assert m["stats"].switches > 0
        assert m["stats"].comm_cache_hits > 0
        t = sweep[("stencil", 16, "threads")]
        assert t["stats"].scheduler == "threads"
        o = sweep[("stencil", 16, "oldcore")]
        assert o["stats"].comm_cache_hits == 0

    def test_coop_dispatch_work_bounded(self, sweep):
        """Run-to-block means context switches scale with blocking
        communication, not with statements executed."""
        m = sweep[("stencil", 16, "coop")]
        s = m["stats"]
        # every switch corresponds to a blocking point; there are at
        # most a few per rank per time step plus scheduling slack
        assert s.switches <= 6 * 16 * STENCIL_STEPS + 16 * 4
