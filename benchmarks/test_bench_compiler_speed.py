"""Compiler throughput: wall-clock time to compile each workload.

Unlike the simulation benches (which measure *simulated* execution),
these measure the compiler itself — the single-pass-per-procedure claim
should keep compilation fast and roughly linear in program size.
"""

import pytest

from repro.apps import (
    FIG4,
    adi_source,
    cg_source,
    dgefa_pivot_source,
    dgefa_source,
    stencil2d_source,
)
from repro.core import Mode, Options, compile_program

from _harness import emit_bench

CASES = [
    ("fig4", FIG4),
    ("stencil2d", stencil2d_source(64, 4)),
    ("adi", adi_source(64, 4)),
    ("dgefa", dgefa_source(64)),
    ("dgefa_pivot", dgefa_pivot_source(64)),
    ("cg", cg_source(256, 20)),
]


@pytest.mark.parametrize("name,src", CASES, ids=[c[0] for c in CASES])
def test_bench_compile_speed(benchmark, name, src):
    result = benchmark(lambda: compile_program(src, Options(nprocs=8)))
    assert result.program.units  # produced something
    # single pass per procedure: even the largest workload compiles fast
    assert benchmark.stats["mean"] < 2.0


def test_bench_compile_scales_with_procedures(benchmark, paper_table):
    """Compilation time grows roughly linearly with procedure count."""
    import time

    def chain(k):
        units = [
            "program p\nreal x(64)\ndistribute x(block)\ncall s0(x)\nend\n"
        ]
        for i in range(k):
            callee = f"call s{i + 1}(x)\n" if i + 1 < k else ""
            units.append(
                f"subroutine s{i}(x)\nreal x(64)\n"
                f"do i = 1, 63\nx(i) = f(x(i + 1))\nenddo\n{callee}end\n"
            )
        return "\n".join(units)

    timings = {}
    for k in (4, 8, 16, 32):
        src = chain(k)
        t0 = time.perf_counter()
        compile_program(src, Options(nprocs=4))
        timings[k] = time.perf_counter() - t0

    benchmark.pedantic(
        lambda: compile_program(chain(16), Options(nprocs=4)),
        rounds=3, iterations=1,
    )
    rows = [f"procedures={k:<4} compile={t * 1000:8.1f} ms"
            for k, t in timings.items()]
    paper_table("Compiler throughput vs call-chain length",
                "chain size / time", rows)
    emit_bench("compiler_speed", {
        "chain_compile_ms": {str(k): t * 1000 for k, t in timings.items()},
    })
    # superlinear blowup guard: 8x procedures < 40x time
    assert timings[32] < 40 * max(timings[4], 1e-3)
