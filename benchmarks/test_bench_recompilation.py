"""Experiment [§8, reconstructed]: recompilation analysis.

"Rather than recompiling the entire program after each change,
ParaScope performs recompilation analysis to pinpoint modules that may
have been affected by program changes, thus reducing recompilation
costs."

Regenerated: an editing session over a multi-procedure program; the
bench measures compile time with and without the recompilation manager
and reports how many procedures each edit rebuilt (whole-program
rebuilds would be |procs| x |edits|).
"""

import numpy as np
import pytest

from repro.core import Mode, Options, compile_program
from repro.core.recompile import RecompilationManager
from repro.interp import run_sequential
from repro.lang import parse
from repro.machine import FREE

from _harness import emit_bench

BASE = """
program p
real x(120), y(120)
align y(i) with x(i)
distribute x(block)
call init(x)
call smooth(x, y)
call rescale(y)
end

subroutine init(x)
real x(120)
do i = 1, 120
  x(i) = i * 1.0
enddo
end

subroutine smooth(x, y)
real x(120), y(120)
do i = 1, 115
  y(i) = f(x(i + 5))
enddo
end

subroutine rescale(y)
real y(120)
do i = 1, 120
  y(i) = y(i) * 0.5
enddo
end
"""

EDITS = [
    ("leaf init scale", BASE.replace("i * 1.0", "i * 2.0")),
    ("leaf rescale factor", BASE.replace("y(i) * 0.5", "y(i) * 0.25")),
    ("smooth shift 5->4",
     BASE.replace("f(x(i + 5))", "f(x(i + 4))")),
    ("back to base", BASE),
]


def test_bench_recompilation_session(benchmark, paper_table):
    def session():
        mgr = RecompilationManager(opts=Options(nprocs=4, mode=Mode.INTER))
        mgr.compile(BASE)
        history = []
        for label, src in EDITS:
            cp = mgr.compile(src)
            res = cp.run(cost=FREE)
            seq = run_sequential(parse(src)).arrays["y"].data
            assert np.allclose(res.gathered("y"), seq), label
            history.append((label, list(mgr.last_recompiled),
                            list(mgr.last_reused)))
        return history

    history = benchmark.pedantic(session, rounds=2, iterations=1)
    nprocs_in_program = 4  # p, init, smooth, rescale
    total = sum(len(rec) for _l, rec, _r in history)
    whole_program = nprocs_in_program * len(EDITS)
    rows = [
        f"{label:<24} rebuilt: {','.join(rec) or '-':<20} "
        f"reused: {','.join(reused) or '-'}"
        for label, rec, reused in history
    ]
    rows.append(f"{'TOTAL':<24} {total} procedures rebuilt vs "
                f"{whole_program} for whole-program recompilation")
    paper_table(
        "§8: recompilation analysis over an editing session",
        "edit                     effect",
        rows,
    )
    benchmark.extra_info.update(
        rebuilt=total, whole_program=whole_program
    )
    emit_bench("recompilation", {
        "rebuilt_total": total,
        "whole_program_rebuilds": whole_program,
        "edits": {label: {"rebuilt": rec, "reused": reused}
                  for label, rec, reused in history},
    })
    # the shape: separate compilation pays — far fewer rebuilds
    assert total < whole_program / 1.5


class TestShape:
    def test_leaf_edit_rebuilds_one(self):
        mgr = RecompilationManager(opts=Options(nprocs=4, mode=Mode.INTER))
        mgr.compile(BASE)
        mgr.compile(EDITS[0][1])
        assert mgr.last_recompiled == ["init"]

    def test_interface_edit_rebuilds_dependents_only(self):
        mgr = RecompilationManager(opts=Options(nprocs=4, mode=Mode.INTER))
        mgr.compile(BASE)
        mgr.compile(EDITS[2][1])  # smooth's exports change
        assert "smooth" in mgr.last_recompiled
        assert "p" in mgr.last_recompiled
        assert "init" in mgr.last_reused
        assert "rescale" in mgr.last_reused
