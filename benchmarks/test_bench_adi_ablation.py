"""Experiments [§6 ADI] and [ablation]: dynamic redistribution on a
phase computation, and switching off the individual interprocedural
mechanisms.

ADI regenerates the §6 motivation ("phases of a computation may require
different data decompositions"): the optimized placement issues exactly
the per-step transposes the phase structure demands.

The ablation bench toggles the design choices DESIGN.md calls out —
delayed communication, delayed computation partitioning, procedure
cloning, remap optimization — and measures the damage on the paper's
workloads, demonstrating that *delayed instantiation is the enabler*.
"""

import pytest

from repro.apps import FIG4, adi_source, dgefa_source, make_dgefa_init
from repro.core import DynOpt, Mode

from _harness import compile_and_measure, emit_bench


class TestBenchADI:
    def test_bench_adi_remaps(self, benchmark, paper_table):
        src = adi_source(24, 4)

        def run_both():
            out = {}
            for dyn in (DynOpt.NONE, DynOpt.KILLS):
                _cp, res = compile_and_measure(src, "a", dynopt=dyn)
                out[dyn] = res.stats
            return out

        stats = benchmark.pedantic(run_both, rounds=2, iterations=1)
        naive, opt = stats[DynOpt.NONE], stats[DynOpt.KILLS]
        # per step the phases need exactly 2 transposes; naive placement
        # issues the full before/after pattern
        assert opt.remaps == 2 * 4 - 1
        assert naive.remaps > opt.remaps
        benchmark.extra_info.update(
            naive_remaps=naive.remaps, optimized_remaps=opt.remaps
        )
        emit_bench("adi_ablation", {
            "naive": {"remaps": naive.remaps,
                      "remap_bytes": naive.remap_bytes,
                      "time_ms": naive.time_ms},
            "optimized": {"remaps": opt.remaps,
                          "remap_bytes": opt.remap_bytes,
                          "time_ms": opt.time_ms},
        })
        paper_table(
            "ADI phase computation (§6): remapping traffic, n=24, 4 steps, "
            "P=4",
            f"{'placement':<24} {'remaps':>7} {'bytes':>10} {'time(ms)':>10}",
            [
                f"{'naive before/after':<24} {naive.remaps:>7} "
                f"{naive.remap_bytes:>10} {naive.time_ms:>10.3f}",
                f"{'optimized (live+coal.)':<24} {opt.remaps:>7} "
                f"{opt.remap_bytes:>10} {opt.time_ms:>10.3f}",
            ],
        )


ABLATIONS = [
    ("full interprocedural", {}),
    ("no delayed communication", {"delay_communication": False}),
    ("no delayed partition", {"delay_partition": False}),
    ("no cloning", {"enable_cloning": False}),
]


class TestBenchAblation:
    @pytest.fixture(scope="class")
    def measurements(self):
        out = {}
        n = 16
        init = make_dgefa_init(n)
        for label, kw in ABLATIONS:
            _cp, res = compile_and_measure(FIG4, "x", **kw)
            out[("fig4", label)] = res.stats
            _cp, res = compile_and_measure(
                dgefa_source(n), "a", init_fn=init, **kw
            )
            out[("dgefa", label)] = res.stats
        return out

    def test_bench_ablation(self, benchmark, measurements, paper_table):
        def rerun():
            return compile_and_measure(
                FIG4, "x", delay_communication=False
            )[1]

        benchmark.pedantic(rerun, rounds=2, iterations=1)
        rows = []
        for (prog, label), s in measurements.items():
            rows.append(
                f"{prog:<7} {label:<28} {s.time_ms:>10.3f} "
                f"{s.total_messages:>7} {s.guards:>8}"
            )
        paper_table(
            "Ablation: disabling individual interprocedural mechanisms",
            f"{'prog':<7} {'configuration':<28} {'time(ms)':>10} "
            f"{'msgs':>7} {'guards':>8}",
            rows,
        )
        benchmark.extra_info["configs"] = len(ABLATIONS)

    def test_delayed_comm_is_the_enabler_fig4(self, measurements):
        full = measurements[("fig4", "full interprocedural")]
        nocomm = measurements[("fig4", "no delayed communication")]
        # without delaying, messages instantiate per call: 100x count
        assert nocomm.total_messages >= 50 * full.total_messages

    def test_delayed_partition_matters_fig4(self, measurements):
        full = measurements[("fig4", "full interprocedural")]
        nopart = measurements[("fig4", "no delayed partition")]
        # guards replace bounds reduction: strictly more guard work
        assert nopart.guards > full.guards

    def test_dgefa_suffers_without_delaying(self, measurements):
        full = measurements[("dgefa", "full interprocedural")]
        nocomm = measurements[("dgefa", "no delayed communication")]
        assert nocomm.time_us > 1.2 * full.time_us

    def test_all_configurations_still_correct(self, measurements):
        # compile_and_measure asserted results already; the table exists
        assert len(measurements) == 2 * len(ABLATIONS)
