"""Experiment [fast path]: generated node programs vs the interpreter.

Not a paper figure — this measures the simulator itself.  The codegen
backend (``repro.codegen``) emits one straight-line numpy Python module
per rank class and caches it on disk, replacing the closure-tree
interpreter walk at run time.  This bench reports end-to-end wall-clock
on the paper's applications for three execution paths — scalar
interpreter, vectorized interpreter, and generated modules — plus a
cold/warm generation-cache series, and writes the numbers to
``BENCH_codegen.json`` at the repo root.

All paths produce bit-identical arrays and virtual clocks (enforced by
``tests/test_codegen_differential.py`` and re-checked here); the only
difference allowed is wall-clock speed.  The acceptance bar is the
ISSUE's: generated runs at least 2x faster than the vectorized
interpreter on at least two paper apps, and warm-cache runs perform no
generation at all.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.apps.adi import adi_source
from repro.apps.cg import cg_source
from repro.apps.dgefa import dgefa_source, make_dgefa_init
from repro.apps.stencil import stencil1d_source
from repro.apps.wave import wave_source
from repro.codegen import GEN_COUNTS, get_generated, rank_classes, reset_memory
from repro.core import Mode, Options, compile_program

from _harness import emit_bench

P = 4

#: (name, params, source, init_fn, must_be_2x) — the last flag marks the
#: apps whose scalar inner loops the interpreter cannot vectorize
#: (loop-carried dependences, reductions), where generation pays most;
#: those carry the hard >=2x acceptance assertion.
APPS = [
    ("stencil1d", "n=512 steps=64", stencil1d_source(512, 64), None, False),
    ("dgefa", "n=128", dgefa_source(128), make_dgefa_init(128), False),
    ("wave", "n=256 steps=64", wave_source(256, 64), None, False),
    ("adi", "n=64 steps=32", adi_source(64, 32), None, True),
    ("cg", "n=256 iters=64", cg_source(256, 64), None, True),
]


def _timed_run(cp, init, rounds, **kw):
    """Best-of-*rounds* wall clock; returns (seconds, last RunResult)."""
    extra = {"init_fn": init} if init is not None else {}
    best, res = float("inf"), None
    for _ in range(rounds):
        t0 = time.perf_counter()
        res = cp.run(timeout_s=120.0, **extra, **kw)
        best = min(best, time.perf_counter() - t0)
    return best, res


def _assert_identical(ref, other, label):
    assert ref.stats.proc_times == other.stats.proc_times, label
    for name in ref.frames[0].arrays:
        for rk, (fa, fb) in enumerate(zip(ref.frames, other.frames)):
            assert np.array_equal(
                fa.arrays[name].data, fb.arrays[name].data, equal_nan=True
            ), f"{label}: array {name} differs on rank {rk}"


@pytest.fixture(scope="module")
def measured(tmp_path_factory):
    apps = {}
    cps = {}
    for name, params, src, init, must2x in APPS:
        cp = compile_program(src, Options(nprocs=P, mode=Mode.INTER))
        cps[name] = (cp, init)
        t_s, r_s = _timed_run(cp, init, 1, codegen=False, vectorize=False)
        t_v, r_v = _timed_run(cp, init, 2, codegen=False, vectorize=True)
        t_g, r_g = _timed_run(cp, init, 2, codegen=True, vectorize=True)
        # the three paths must agree bit for bit before timing means
        # anything
        _assert_identical(r_s, r_v, f"{name}: vectorized vs scalar")
        _assert_identical(r_s, r_g, f"{name}: generated vs scalar")
        apps[name] = {
            "params": params,
            "scalar_s": t_s,
            "vectorized_s": t_v,
            "generated_s": t_g,
            "speedup_vs_vectorized": t_v / t_g,
            "speedup_vs_scalar": t_s / t_g,
            "must_be_2x": must2x,
        }

    # cold / warm generation-cache series on the adi program (the
    # largest generated modules): cold = emit + compile + store, warm
    # disk = load + compile only, warm memo = dict lookup.  The
    # acceptance criterion is that warm runs *generate nothing*.
    cachedir = tmp_path_factory.mktemp("codegen-cache")
    prog = cps["adi"][0].program
    old = os.environ.get("REPRO_CODEGEN_CACHE")
    os.environ["REPRO_CODEGEN_CACHE"] = str(cachedir)
    try:
        nclasses = len(rank_classes(P))
        reset_memory()
        g0 = dict(GEN_COUNTS)
        t0 = time.perf_counter()
        _, hits_c, miss_c = get_generated(prog, P, True)
        t_cold = time.perf_counter() - t0
        gen_cold = GEN_COUNTS["generated"] - g0["generated"]

        reset_memory()
        g0 = dict(GEN_COUNTS)
        t0 = time.perf_counter()
        _, hits_d, miss_d = get_generated(prog, P, True)
        t_disk = time.perf_counter() - t0
        gen_disk = GEN_COUNTS["generated"] - g0["generated"]

        t0 = time.perf_counter()
        _, hits_m, miss_m = get_generated(prog, P, True)
        t_memo = time.perf_counter() - t0
    finally:
        if old is None:
            os.environ.pop("REPRO_CODEGEN_CACHE", None)
        else:
            os.environ["REPRO_CODEGEN_CACHE"] = old
        reset_memory()

    cache = {
        "rank_classes": nclasses,
        "cold_s": t_cold,
        "warm_disk_s": t_disk,
        "warm_memo_s": t_memo,
        "cold_generated": gen_cold,
        "cold_hits": hits_c,
        "cold_misses": miss_c,
        "warm_disk_generated": gen_disk,
        "warm_disk_hits": hits_d,
        "warm_disk_misses": miss_d,
        "warm_memo_hits": hits_m,
        "warm_memo_misses": miss_m,
    }
    return {"apps": apps, "cps": cps, "cache": cache}


def _report(benchmark, measured, paper_table):
    apps = measured["apps"]
    cache = measured["cache"]
    rows = [
        f"{name:<12} {a['params']:<16} {a['scalar_s']:>9.3f} "
        f"{a['vectorized_s']:>9.3f} {a['generated_s']:>9.3f} "
        f"{a['speedup_vs_vectorized']:>8.2f}x"
        for name, a in apps.items()
    ]
    rows.append(
        f"{'cache(adi)':<12} {'cold/disk/memo':<16} "
        f"{cache['cold_s']:>9.4f} {cache['warm_disk_s']:>9.4f} "
        f"{cache['warm_memo_s']:>9.4f} "
        f"{'gen=' + str(cache['warm_disk_generated']):>9}"
    )
    payload = {"nprocs": P, "apps": apps, "cache": cache}
    benchmark.extra_info.update(payload)
    emit_bench("codegen", payload)
    paper_table(
        f"Node-program codegen: wall-clock vs the interpreter (P={P})",
        f"{'app':<12} {'size':<16} {'scalar':>9} {'vec-int':>9} "
        f"{'genmod':>9} {'gen/vec':>9}",
        rows,
    )


def test_bench_codegen_speedup(benchmark, measured, paper_table):
    cp, init = measured["cps"]["adi"]
    extra = {"init_fn": init} if init is not None else {}
    benchmark.pedantic(
        lambda: cp.run(codegen=True, timeout_s=120.0, **extra),
        rounds=3, iterations=1,
    )
    _report(benchmark, measured, paper_table)
    at_least_2x = []
    for name, a in measured["apps"].items():
        su = a["speedup_vs_vectorized"]
        assert a["generated_s"] < a["vectorized_s"], (
            f"{name}: generated slower than vectorized interpreter"
        )
        if su >= 2.0:
            at_least_2x.append(name)
        if a["must_be_2x"]:
            assert su >= 2.0, f"{name}: generated only {su:.2f}x"
    assert len(at_least_2x) >= 2, (
        f"need >=2 apps at 2x, got {at_least_2x}"
    )


def test_bench_codegen_cache(benchmark, measured, paper_table):
    prog = measured["cps"]["adi"][0].program
    # memo-warm lookups are the steady state every cp.run() hits
    benchmark.pedantic(
        lambda: get_generated(prog, P, True), rounds=3, iterations=1
    )
    _report(benchmark, measured, paper_table)
    c = measured["cache"]
    n = c["rank_classes"]
    assert c["cold_generated"] == n and c["cold_misses"] == n
    # warm runs skip generation entirely: everything loads from disk
    assert c["warm_disk_generated"] == 0
    assert c["warm_disk_hits"] == n and c["warm_disk_misses"] == 0
    assert c["warm_memo_hits"] == n and c["warm_memo_misses"] == 0
