"""Benchmark fixtures (see _harness.py for measurement helpers)."""


from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def paper_table():
    """Collects printed rows so each bench emits a readable table."""
    printed: set[str] = set()

    def emit(title: str, header: str, rows: list[str]) -> None:
        if title in printed:
            return
        printed.add(title)
        print()
        print("=" * 74)
        print(title)
        print("=" * 74)
        print(header)
        print("-" * len(header))
        for r in rows:
            print(r)

    return emit
