"""Experiment [§9, reconstructed]: the dgefa case study.

"Empirical results show that interprocedural optimization is crucial in
achieving acceptable performance for a common application."

We compile LINPACK's dgefa (column-cyclic) under the three strategies
and compare against hand-written SPMD node code, sweeping matrix size
and processor count.  Expected shape (the paper's qualitative result):

* interprocedural ~ hand-coded (within a small factor);
* intraprocedural several-x slower (per-call messages, no cross-call
  vectorization);
* run-time resolution an order of magnitude (or more) slower.
"""

import numpy as np
import pytest

from repro.apps import (
    dgefa_reference_lu,
    dgefa_source,
    handcoded_dgefa_spmd,
    make_dgefa_init,
)
from repro.core import Mode
from repro.machine import IPSC860, Machine

from _harness import compile_and_measure, emit_bench

SIZES = [16, 32]
PROCS = [2, 4]


def reference(n):
    init = make_dgefa_init(n)
    a = np.empty((n, n))
    for i in range(n):
        for j in range(n):
            a[i, j] = init("a", (i + 1, j + 1))
    return init, dgefa_reference_lu(a)


@pytest.fixture(scope="module")
def sweep():
    """All (n, P, version) measurements."""
    table = {}
    for n in SIZES:
        init, ref = reference(n)
        for P in PROCS:
            for mode in (Mode.INTER, Mode.INTRA, Mode.RTR):
                _cp, res = compile_and_measure(
                    dgefa_source(n), "a", mode=mode, P=P,
                    init_fn=init, reference=ref,
                )
                table[(n, P, mode.value)] = res.stats
            m = Machine(P, IPSC860)
            m.run(lambda ctx: handcoded_dgefa_spmd(ctx, n, init))
            m.stats.record_proc_time(0, m.stats.proc_times.get(0, 0.0))
            table[(n, P, "hand")] = m.stats
    return table


@pytest.mark.parametrize("mode", ["inter", "intra", "rtr", "hand"])
def test_bench_dgefa_versions(benchmark, sweep, paper_table, mode):
    n, P = 16, 4
    init, ref = reference(n)

    if mode == "hand":
        def run():
            m = Machine(P, IPSC860)
            m.run(lambda ctx: handcoded_dgefa_spmd(ctx, n, init))
            return m.stats
    else:
        mode_enum = {m.value: m for m in Mode}[mode]

        def run():
            return compile_and_measure(
                dgefa_source(n), "a", mode=mode_enum, P=P,
                init_fn=init, reference=ref,
            )[1]

    benchmark.pedantic(run, rounds=2, iterations=1)
    s = sweep[(n, P, mode)]
    benchmark.extra_info.update(
        sim_time_ms=s.time_ms,
        messages=s.messages,
        collectives=s.collectives,
    )
    header = (f"{'n':>4} {'P':>3} {'version':<8} {'time(ms)':>10} "
              f"{'msgs':>7} {'colls':>6} {'bytes':>10} {'guards':>9}")
    rows = []
    for (nn, pp, ver), st in sorted(sweep.items()):
        rows.append(
            f"{nn:>4} {pp:>3} {ver:<8} {st.time_ms:>10.3f} "
            f"{st.messages:>7} {st.collectives:>6} {st.total_bytes:>10} "
            f"{st.guards:>9}"
        )
    paper_table("dgefa case study (§9): simulated iPSC/860", header, rows)
    emit_bench("dgefa", {
        f"n{nn}_P{pp}_{ver}": {
            "time_ms": st.time_ms, "messages": st.messages,
            "collectives": st.collectives, "bytes": st.total_bytes,
            "guards": st.guards,
        }
        for (nn, pp, ver), st in sorted(sweep.items())
    })


class TestShape:
    def test_ordering_everywhere(self, sweep):
        for n in SIZES:
            for P in PROCS:
                t = {v: sweep[(n, P, v)].time_us
                     for v in ("inter", "intra", "rtr", "hand")}
                assert t["inter"] < t["intra"] < t["rtr"], (n, P)

    def test_rtr_order_of_magnitude(self, sweep):
        for n in SIZES:
            for P in PROCS:
                assert sweep[(n, P, "rtr")].time_us > \
                    8 * sweep[(n, P, "inter")].time_us, (n, P)

    def test_inter_close_to_handcoded(self, sweep):
        for n in SIZES:
            for P in PROCS:
                inter = sweep[(n, P, "inter")]
                hand = sweep[(n, P, "hand")]
                assert inter.collectives == hand.collectives, (n, P)
                assert inter.time_us <= 3.0 * hand.time_us, (n, P)

    def test_one_broadcast_per_step(self, sweep):
        for n in SIZES:
            for P in PROCS:
                assert sweep[(n, P, "inter")].collectives == n - 1

    def test_message_growth_with_n(self, sweep):
        """RTR message counts grow ~n^2; INTER stays at n-1
        collectives."""
        for P in PROCS:
            r16 = sweep[(16, P, "rtr")].messages
            r32 = sweep[(32, P, "rtr")].messages
            assert r32 > 3 * r16
            assert sweep[(32, P, "inter")].messages == 0
