"""Experiment [pipelining, extension]: carried-dependence recurrences.

``x(i) = f(x(i-d))`` carries a true dependence, so the Figure 2 style
vectorized prefetch is illegal.  The compiler pipelines at block
granularity instead: each processor receives its left neighbour's
finished boundary strip, computes its whole block, and forwards its own
boundary — a wavefront.  The bench compares against run-time resolution
(the only safe alternative) and against the dependence-free forward
shift (the parallelism ceiling).
"""

import numpy as np
import pytest

from repro.core import Mode, Options, compile_program
from repro.interp import run_sequential
from repro.lang import parse
from repro.machine import IPSC860

from _harness import emit_bench

N, D, P = 128, 8, 4

BACKWARD = (
    f"program p\nreal x({N})\ndistribute x(block)\ncall g1(x)\nend\n"
    f"subroutine g1(x)\nreal x({N})\n"
    f"do i = {D + 1}, {N}\nx(i) = f(x(i - {D}))\nenddo\nend\n"
)
FORWARD = (
    f"program p\nreal x({N})\ndistribute x(block)\ncall g1(x)\nend\n"
    f"subroutine g1(x)\nreal x({N})\n"
    f"do i = 1, {N - D}\nx(i) = f(x(i + {D}))\nenddo\nend\n"
)


def run(src, mode):
    seq = run_sequential(parse(src)).arrays["x"].data
    cp = compile_program(src, Options(nprocs=P, mode=mode))
    res = cp.run(cost=IPSC860, timeout_s=180)
    assert np.allclose(res.gathered("x"), seq)
    return cp, res.stats


@pytest.fixture(scope="module")
def measurements():
    return {
        "pipeline": run(BACKWARD, Mode.INTER)[1],
        "rtr": run(BACKWARD, Mode.RTR)[1],
        "forward": run(FORWARD, Mode.INTER)[1],
    }


def test_bench_pipeline(benchmark, measurements, paper_table):
    def rerun():
        return run(BACKWARD, Mode.INTER)[1]

    benchmark.pedantic(rerun, rounds=2, iterations=1)
    rows = [
        f"{label:<22} time={s.time_ms:>8.3f}ms msgs={s.messages:>5} "
        f"guards={s.guards:>6}"
        for label, s in measurements.items()
    ]
    paper_table(
        f"Carried-dependence recurrence x(i)=f(x(i-{D})), n={N}, P={P}",
        "version                measurements",
        rows,
    )
    s = measurements["pipeline"]
    benchmark.extra_info.update(
        sim_time_ms=s.time_ms, messages=s.messages
    )
    assert s.messages == P - 1
    emit_bench("pipeline", {
        label: {"time_ms": st.time_ms, "messages": st.messages,
                "guards": st.guards, "bytes": st.bytes}
        for label, st in measurements.items()
    })


class TestShape:
    def test_pipeline_beats_rtr(self, measurements):
        assert measurements["pipeline"].time_us < \
            measurements["rtr"].time_us / 2

    def test_rtr_message_explosion(self, measurements):
        assert measurements["rtr"].messages > 5 * measurements[
            "pipeline"].messages

    def test_wavefront_pays_serialization(self, measurements):
        # the forward (dependence-free) shift is the parallel ceiling
        assert measurements["forward"].time_us < \
            measurements["pipeline"].time_us

    def test_same_bytes_as_forward(self, measurements):
        assert measurements["pipeline"].bytes == \
            measurements["forward"].bytes
