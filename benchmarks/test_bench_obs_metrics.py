"""Experiment [observability]: metrics overhead and postmortem at scale.

Two production-observability gates, neither a paper figure:

* **metrics overhead** — attaching a :class:`MetricsRegistry` to a run
  records blocked-time histograms per receive/collective plus one bulk
  fold at end of run.  The design target is ≤ 5 % over a metrics-off
  run on a paper app; measured best-of-N against a metrics-off twin
  series that bounds the timer noise floor, with the same asymmetric
  gating as ``BENCH_obs_overhead``: the 1.05 target is recorded in the
  payload, the hard assert absorbs shared-CI jitter.  Results land in
  ``BENCH_obs_metrics.json``.

* **postmortem at scale** — a forced deadlock at P = 1024 on the event
  backend must still produce a *complete* postmortem bundle: structured
  deadlock report, flight-recorder tails, run stats, and the metrics
  snapshot, in one JSON file.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.apps.stencil import stencil1d_source
from repro.core import Mode, Options, compile_program
from repro.machine import FREE, IPSC860, Machine
from repro.machine.network import SimulationError
from repro.obs.metrics import MetricsRegistry

from _harness import emit_bench

N, STEPS, P = 256, 50, 16
REPS = 5

#: metrics-on design target (recorded in the payload) and the hard CI
#: gate; the gate scales with the measured off/off twin ratio so a
#: noisy shared host (single-CPU CI runners show twin ratios up to
#: ~1.6x) cannot flake a run whose *relative* overhead is fine
ON_TARGET = 1.05
ON_LIMIT = 1.5
OFF_TOLERANCE = 2.0


def _best_wall(run, reps: int = REPS) -> tuple[float, object]:
    best, res = float("inf"), None
    for _ in range(reps):
        t0 = time.perf_counter()
        res = run()
        best = min(best, time.perf_counter() - t0)
    return best, res


def test_bench_metrics_overhead(benchmark, paper_table):
    src = stencil1d_source(N, STEPS)
    cp = compile_program(src, Options(nprocs=P, mode=Mode.INTER))

    def run(metrics):
        return cp.run(cost=IPSC860, scheduler="coop", timeout_s=300.0,
                      metrics=metrics)

    off_a, res_off = _best_wall(lambda: run(False))
    off_b, _ = _best_wall(lambda: run(False))
    reg = MetricsRegistry()
    on_w, res_on = _best_wall(lambda: run(reg))
    benchmark.pedantic(lambda: run(False), rounds=2, iterations=1)

    # metrics must be *invisible*: same arrays, same virtual clocks
    assert np.array_equal(res_off.gathered("x"), res_on.gathered("x"))
    assert res_off.stats.proc_times == res_on.stats.proc_times
    assert res_off.stats.messages == res_on.stats.messages

    snap = reg.snapshot()
    blocks = sum(v["value"]
                 for v in snap["repro_sim_blocks_total"]["values"])
    twin_ratio = max(off_a, off_b) / min(off_a, off_b)
    on_ratio = on_w / min(off_a, off_b)
    payload = {
        "workload": {"app": "stencil1d", "n": N, "steps": STEPS, "P": P},
        "reps": REPS,
        "wall_off_s": min(off_a, off_b),
        "wall_off_twin_s": max(off_a, off_b),
        "wall_on_s": on_w,
        "off_twin_ratio": twin_ratio,
        "on_over_off": on_ratio,
        "on_target_ratio": ON_TARGET,
        "block_events_recorded": blocks,
    }
    emit_bench("obs_metrics", payload)
    paper_table(
        f"Metrics overhead (stencil n={N} x {STEPS} steps, P={P}, "
        f"best of {REPS})",
        "config                 wall(ms)    ratio",
        [
            f"{'metrics off':<22} {min(off_a, off_b) * 1e3:>8.1f}"
            f"    1.00x",
            f"{'metrics off (twin)':<22} {max(off_a, off_b) * 1e3:>8.1f}"
            f"    {twin_ratio:.3f}x",
            f"{'metrics on':<22} {on_w * 1e3:>8.1f}"
            f"    {on_ratio:.3f}x  ({blocks:.0f} block events)",
        ],
    )
    benchmark.extra_info.update(
        off_twin_ratio=round(twin_ratio, 4),
        on_over_off=round(on_ratio, 4),
    )

    assert twin_ratio <= OFF_TOLERANCE, \
        f"metrics-off runs diverged {twin_ratio:.3f}x (noise or guards)"
    limit = ON_LIMIT * max(1.0, twin_ratio)
    assert on_ratio <= limit, \
        f"metrics-on overhead {on_ratio:.2f}x exceeds {limit:.2f}x " \
        f"(noise floor {twin_ratio:.2f}x)"
    assert blocks > 0


def test_bench_postmortem_at_scale(tmp_path, monkeypatch, paper_table):
    """Forced deadlock at P=1024 on the event backend: detection stays
    instant and the postmortem bundle is complete."""
    P_BIG = 1024
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    monkeypatch.setenv("REPRO_FLIGHTREC", "32")
    monkeypatch.setenv("REPRO_POSTMORTEM_DIR", str(tmp_path))
    reg = MetricsRegistry()

    def prog(ctx):
        if ctx.rank != 0:
            # rank 0 finishes without sending: every peer blocks
            yield from ctx.recv_y(0, 1)

    t0 = time.perf_counter()
    with pytest.raises(SimulationError, match="deadlock|aborted"):
        Machine(P_BIG, FREE, timeout_s=120.0, scheduler="event",
                metrics=reg).run(prog)
    detect_s = time.perf_counter() - t0

    files = sorted(tmp_path.glob("postmortem-simulation-error-*.json"))
    assert files, "deadlock produced no postmortem bundle"
    bundle = json.loads(files[-1].read_text())
    dl = bundle["deadlock"]
    assert dl is not None
    assert len(dl["waits"]) == P_BIG  # every rank accounted for
    blocked = sum(1 for w in dl["waits"]
                  if w["state"].startswith("blocked"))
    assert blocked == P_BIG - 1
    assert bundle["events"]["events_seen"] > 0
    assert bundle["stats"]["nprocs"] == P_BIG
    assert bundle["metrics"] is not None
    assert bundle["extra"]["scheduler"] == "event"

    paper_table(
        f"Postmortem at scale (P={P_BIG}, event backend)",
        "quantity                         value",
        [
            f"{'detection wall':<32} {detect_s * 1e3:.1f} ms",
            f"{'blocked ranks reported':<32} {blocked}",
            f"{'flight-recorder events seen':<32} "
            f"{bundle['events']['events_seen']}",
            f"{'bundle size':<32} {files[-1].stat().st_size} bytes",
        ],
    )
