"""Experiment [simulation core, event backend]: scaling to large P.

Not a paper figure — this measures the simulator itself.  The
event-driven backend replaces one OS thread (8 MB stack, two futex
hand-offs per blocking point) per simulated rank with a generator
coroutine resumed off a (virtual clock, rank) heap, so per-rank cost is
an event-loop iteration.  The cooperative backend's per-rank wall time
grows with P (thread creation, kernel run-queue pressure); the event
backend's stays flat, which is what makes P=1024-16384 experiments
practical.

Two series land in ``BENCH_simcore_event.json``:

* a machine-level ring microbenchmark (send/recv/compute per round, no
  interpreter) at P = 64/256/1024/4096 under both backends — this
  isolates scheduling cost and reports wall-seconds-per-rank and
  events/sec;
* two paper applications (1-D stencil relaxation and the wave
  equation) driven through the full compile-and-interpret pipeline at
  P = 1024 under the event backend — the "completes at P=1024"
  criterion — with a P = 64 coop/event comparison point.

The shape assertions are honest about where the win lives: the event
backend must stay within noise of coop at P=64, must win at P >= 1024,
and its per-rank cost must stay flat while coop's grows.  (On this
design the measured coop/event ratio keeps growing past the bench
ladder: ~9x at P=16384 on a 1-CPU host.)
"""

from __future__ import annotations

import os
import time

import pytest

from repro.apps.stencil import stencil1d_source
from repro.apps.wave import wave_source
from repro.core import Mode, Options, compile_program
from repro.machine import IPSC860, Machine

from _harness import emit_bench

MICRO_PROCS = [64, 256, 1024, 4096]
MICRO_ROUNDS = 50
APP_P_LARGE = 1024
APP_P_SMALL = 64
APP_STEPS = 8


def _ring_programs(P: int, rounds: int = MICRO_ROUNDS):
    """Nearest-neighbour ring: one send, one recv, a little compute per
    round.  The plain-callable and generator-coroutine forms below are
    the same program; the event backend drives the generator directly
    (zero threads), the other backends call the plain body."""

    def ring(ctx):
        right = (ctx.rank + 1) % P
        left = (ctx.rank - 1) % P
        for r in range(rounds):
            ctx.send(right, r, ctx.rank, 8)
            ctx.recv(left, r)
            ctx.compute(10)
        return ctx.rank

    def ring_y(ctx):
        right = (ctx.rank + 1) % P
        left = (ctx.rank - 1) % P
        for r in range(rounds):
            ctx.send(right, r, ctx.rank, 8)
            yield from ctx.recv_y(left, r)
            ctx.compute(10)
        return ctx.rank

    return ring, ring_y


def _run_micro(P: int, scheduler: str) -> dict:
    ring, ring_y = _ring_programs(P)
    prog = ring_y if scheduler == "event" else ring
    m = Machine(P, IPSC860, timeout_s=900.0, scheduler=scheduler)
    t0 = time.perf_counter()
    results = m.run(prog)
    wall = time.perf_counter() - t0
    assert results == list(range(P))
    s = m.stats
    return {
        "wall_s": wall,
        "wall_per_rank_us": wall / P * 1e6,
        "dispatches": s.dispatches,
        "events_per_s": s.dispatches / wall if wall > 0 else 0.0,
        "sim_time_us": s.time_us,
        "messages": s.messages,
    }


def _run_app(src: str, P: int, scheduler: str, arr: str) -> dict:
    cp = compile_program(src, Options(nprocs=P, mode=Mode.INTER))
    t0 = time.perf_counter()
    res = cp.run(cost=IPSC860, scheduler=scheduler, timeout_s=900.0)
    wall = time.perf_counter() - t0
    g = res.gathered(arr)
    return {
        "wall_s": wall,
        "wall_per_rank_ms": wall / P * 1e3,
        "sim_time_us": res.stats.time_us,
        "messages": res.stats.messages,
        "checksum": float(g.sum()),
        "stats": res.stats,
    }


@pytest.fixture(scope="module")
def micro():
    out = {}
    for P in MICRO_PROCS:
        for sched in ("coop", "event"):
            out[(P, sched)] = _run_micro(P, sched)
    return out


@pytest.fixture(scope="module")
def apps():
    out = {}
    for app, mksrc, arr in (
        ("stencil", lambda P: stencil1d_source(4 * P, APP_STEPS), "x"),
        ("wave", lambda P: wave_source(4 * P, APP_STEPS), "u"),
    ):
        src_small = mksrc(APP_P_SMALL)
        out[(app, APP_P_SMALL, "coop")] = _run_app(
            src_small, APP_P_SMALL, "coop", arr)
        out[(app, APP_P_SMALL, "event")] = _run_app(
            src_small, APP_P_SMALL, "event", arr)
        out[(app, APP_P_LARGE, "event")] = _run_app(
            mksrc(APP_P_LARGE), APP_P_LARGE, "event", arr)
    return out


def test_bench_simcore_event(benchmark, micro, apps, paper_table):
    benchmark.pedantic(lambda: _run_micro(256, "event"),
                       rounds=2, iterations=1)
    rows = []
    payload = {
        "scheduler": "event",
        "cpu_count": os.cpu_count(),
        "micro": {"rounds": MICRO_ROUNDS, "series": {}},
        "apps": {},
        "ratios": {},
    }
    for P in MICRO_PROCS:
        c, e = micro[(P, "coop")], micro[(P, "event")]
        ratio = c["wall_s"] / e["wall_s"]
        payload["micro"]["series"][str(P)] = {
            "coop": c, "event": e, "coop_over_event": ratio,
        }
        payload["ratios"][f"ring_P{P}_coop_over_event"] = ratio
        rows.append(
            f"ring     P={P:<5} coop={c['wall_per_rank_us']:>7.0f}us/rank "
            f"event={e['wall_per_rank_us']:>7.0f}us/rank "
            f"ratio={ratio:>5.2f}x "
            f"events/s={e['events_per_s']:>9.0f}"
        )
    for (app, P, sched), m in sorted(apps.items()):
        entry = dict(m)
        entry["stats"] = m["stats"].as_dict()
        payload["apps"][f"{app}_P{P}_{sched}"] = entry
        rows.append(
            f"{app:<8} P={P:<5} {sched:<6} wall={m['wall_s']:>7.2f}s "
            f"per-rank={m['wall_per_rank_ms']:>6.2f}ms "
            f"msgs={m['messages']}"
        )
    emit_bench("simcore_event", payload)
    paper_table(
        f"Event-driven core: ring microbenchmark ({MICRO_ROUNDS} rounds) "
        f"and paper apps at P={APP_P_LARGE}",
        "series   cfg     measurements",
        rows,
    )
    benchmark.extra_info.update({
        k: round(v, 3) for k, v in payload["ratios"].items()
    })


class TestShape:
    def test_apps_complete_at_p1024(self, apps):
        """The headline capability: the event backend finishes the full
        compile-and-interpret pipeline for two paper apps at P=1024."""
        for app in ("stencil", "wave"):
            m = apps[(app, APP_P_LARGE, "event")]
            assert m["stats"].nprocs == APP_P_LARGE
            assert m["stats"].scheduler == "event"
            assert m["messages"] > 0

    def test_apps_bit_identical_at_p64(self, apps):
        """Virtual time and results agree between backends where both
        run (the differential suite covers this exhaustively at small
        P; this pins it at P=64 in the bench configuration)."""
        for app in ("stencil", "wave"):
            c = apps[(app, APP_P_SMALL, "coop")]
            e = apps[(app, APP_P_SMALL, "event")]
            assert c["sim_time_us"] == e["sim_time_us"], app
            assert c["messages"] == e["messages"], app
            assert c["checksum"] == e["checksum"], app

    def test_event_flat_per_rank(self, micro):
        """Per-rank cost of the event backend must not grow with P —
        that flatness is the entire point of the design."""
        lo = micro[(MICRO_PROCS[0], "event")]["wall_per_rank_us"]
        hi = micro[(MICRO_PROCS[-1], "event")]["wall_per_rank_us"]
        assert hi <= 3.0 * lo, (lo, hi)

    def test_event_wins_at_scale(self, micro):
        """Coop pays per-thread costs that grow with P; by the top of
        the ladder the event backend must win decisively, and the
        advantage must grow along the ladder."""
        first = micro[(MICRO_PROCS[0], "coop")]["wall_s"] \
            / micro[(MICRO_PROCS[0], "event")]["wall_s"]
        last = micro[(MICRO_PROCS[-1], "coop")]["wall_s"] \
            / micro[(MICRO_PROCS[-1], "event")]["wall_s"]
        assert first >= 0.8, f"event loses at P={MICRO_PROCS[0]}: {first:.2f}x"
        assert last >= 2.0, f"event only {last:.2f}x at P={MICRO_PROCS[-1]}"
        assert last > first, (first, last)

    def test_event_dispatch_accounting(self, micro):
        """Every rank is dispatched at least once and events/sec is
        meaningful (dispatches scale with blocking points)."""
        for P in MICRO_PROCS:
            e = micro[(P, "event")]
            assert e["dispatches"] >= P
            assert e["events_per_s"] > 0
