"""Experiment [scaling, extension]: speedup curves on the simulated
machine.

The evaluation style of the era: fix the problem, sweep processors,
report speedup over the one-processor run.  The honest small-problem
finding matches period experience with high-latency machines:

* the 1-D stencil speeds up but saturates (per-step message startup
  does not shrink with P);
* dgefa at n=64 barely scales on the iPSC/860-like network — the
  per-step pivot broadcast (~2 log P message startups) swamps the
  O(n^2/P) update — while the same compiled program on a 10x-faster
  network reaches ~5x at P=8.  Scaling LU on such machines needs the
  large n of the LINPACK runs, which an interpreted simulation cannot
  afford; the *crossover with network speed* is the reproducible shape.
"""

import numpy as np
import pytest

from repro.apps import (
    dgefa_reference_lu,
    dgefa_source,
    make_dgefa_init,
    stencil1d_source,
)
from repro.core import Mode, Options, compile_program
from repro.interp import run_sequential
from repro.lang import parse
from repro.machine import FAST_NETWORK, IPSC860

from _harness import emit_bench

PROCS = [1, 2, 4, 8]


def time_of(src, arr, P, cost, init_fn=None, reference=None):
    cp = compile_program(src, Options(nprocs=P, mode=Mode.INTER))
    res = cp.run(cost=cost, init_fn=init_fn, timeout_s=180)
    if reference is not None:
        assert np.allclose(res.gathered(arr), reference)
    return res.stats.time_us


@pytest.fixture(scope="module")
def curves():
    out = {}
    sten = stencil1d_source(512, 4)
    ref = run_sequential(parse(sten)).arrays["x"].data
    out["stencil/ipsc"] = {
        P: time_of(sten, "x", P, IPSC860, reference=ref) for P in PROCS
    }
    n = 64
    init = make_dgefa_init(n)
    refa = np.empty((n, n))
    for i in range(n):
        for j in range(n):
            refa[i, j] = init("a", (i + 1, j + 1))
    refa = dgefa_reference_lu(refa)
    for label, cost in (("ipsc", IPSC860), ("fast", FAST_NETWORK)):
        out[f"dgefa/{label}"] = {
            P: time_of(dgefa_source(n), "a", P, cost,
                       init_fn=init, reference=refa)
            for P in PROCS
        }
    return out


def test_bench_scaling(benchmark, curves, paper_table):
    def rerun():
        return time_of(stencil1d_source(512, 4), "x", 4, IPSC860)

    benchmark.pedantic(rerun, rounds=2, iterations=1)
    rows = []
    for name, curve in curves.items():
        base = curve[1]
        speedups = " ".join(
            f"P={P}:{base / t:5.2f}x" for P, t in sorted(curve.items())
        )
        rows.append(f"{name:<14} {speedups}")
    paper_table(
        "Speedup curves (relative to P=1), n=64 dgefa / n=512 stencil",
        "workload       speedup",
        rows,
    )
    payload = {}
    for name, curve in curves.items():
        speedups = {
            str(P): round(curve[1] / t, 2) for P, t in curve.items()
        }
        benchmark.extra_info[name.replace("/", "_")] = speedups
        payload[name.replace("/", "_")] = speedups
    emit_bench("scaling", payload)


class TestShape:
    def test_stencil_speeds_up(self, curves):
        c = curves["stencil/ipsc"]
        assert c[2] < c[1] and c[4] < c[2]

    def test_stencil_saturates(self, curves):
        c = curves["stencil/ipsc"]
        assert c[1] / c[8] < 6.0  # clearly sub-linear

    def test_dgefa_latency_bound_on_ipsc(self, curves):
        """Small-matrix LU on the high-latency network: broadcast
        startup swallows the parallelism."""
        c = curves["dgefa/ipsc"]
        assert c[1] / c[8] < 2.5

    def test_dgefa_scales_on_fast_network(self, curves):
        c = curves["dgefa/fast"]
        assert c[1] / c[4] > 2.5
        assert c[1] / c[8] > 4.0

    def test_never_superlinear(self, curves):
        for name, c in curves.items():
            for P in PROCS[1:]:
                assert c[P] > c[1] / (P * 1.05), (name, P)
