"""Experiment [Table 1]: the interprocedural Fortran D data-flow
problems and their propagation directions.

Table 1 lists the problems the compiler must solve and whether each is
computed top-down (↓), bottom-up (↑), or bidirectionally (↕), split
between the interprocedural-propagation and code-generation phases.
This bench machine-checks the inventory: every row is implemented, is
exercised by compiling a probe program, and propagates in the table's
direction.
"""

import pytest

from repro.apps import FIG4, FIG15, dgefa_source, make_dgefa_init
from repro.callgraph.acg import ACG
from repro.core import Mode, Options, compile_program
from repro.core.cloning import clone_program
from repro.core.overlaps import estimate_overlaps
from repro.core.reaching import compute_reaching
from repro.lang import parse

from _harness import compile_and_measure, emit_bench


#: Table 1 rows: (problem, phase, direction, how this repo solves it)
TABLE1 = [
    ("call graph", "propagation", "down",
     "ACG construction + topological orders"),
    ("loop structure", "propagation", "down",
     "ACG loop nodes and nesting edges"),
    ("array aliasing & reshaping", "propagation", "down",
     "call-site binding maps; reshapes flagged for RTR"),
    ("scalar & array side effects", "propagation", "bidir",
     "GMOD/GREF bottom-up + Appear filtering at call sites"),
    ("symbolics & constants", "propagation", "bidir",
     "interprocedural constant propagation (top-down)"),
    ("reaching decompositions", "propagation", "down",
     "Figure 6 algorithm with TOP placeholders"),
    ("local iteration sets", "codegen", "up",
     "delayed computation-partition constraints exported to callers"),
    ("nonlocal index sets", "codegen", "up",
     "pending communication RSDs exported to callers"),
    ("overlaps", "codegen", "bidir",
     "offset estimation up the call graph, estimates broadcast down"),
    ("buffers", "codegen", "up",
     "buffer fallbacks recorded when estimates are insufficient"),
    ("live decompositions", "codegen", "up",
     "DecompUse/Kill/Before/After sets consumed by callers"),
    ("loop-invariant decomps", "codegen", "up",
     "remap hoisting at the caller level"),
]


def test_bench_table1_inventory(benchmark, paper_table):
    """Compile the probe programs once per round; assert every Table 1
    problem demonstrably fired."""

    def build_all():
        evidence = {}
        opts = Options(nprocs=4)
        prog = parse(FIG4)
        acg = ACG(prog)
        evidence["call graph"] = acg.topological_order() == \
            ["p1", "f1", "f2"]
        evidence["loop structure"] = (
            [l.var for l in acg.node("p1").loops] == ["i", "j"]
        )
        site = acg.calls_from("p1")[0]
        evidence["array aliasing & reshaping"] = (
            site.array_actuals == {"z": "x"} and not site.reshaped
        )
        from repro.analysis.sideeffects import compute_side_effects

        eff = compute_side_effects(acg)
        evidence["scalar & array side effects"] = "z" in eff["f2"].mod
        reaching = compute_reaching(acg, opts)
        evidence["symbolics & constants"] = bool(reaching.constants)
        evidence["reaching decompositions"] = (
            len(reaching.per_proc["f1"].reaching_dists("z")) == 2
        )
        outcome = clone_program(parse(FIG4), opts)
        cp = compile_program(FIG4, opts)
        main = cp.program.main
        from repro.lang import ast as A
        from repro.lang.printer import expr_str

        loops = [s for s in main.body if isinstance(s, A.Do)]
        evidence["local iteration sets"] = "my$p" in expr_str(loops[1].lo)
        evidence["nonlocal index sets"] = any(
            isinstance(s, (A.Send, A.Recv)) for s in A.walk_stmts(main.body)
        )
        est = estimate_overlaps(ACG(parse(FIG4)))
        evidence["overlaps"] = est.per_proc[("p1", "x")] == [(0, 5), (0, 0)]
        from repro.core.overlaps import validate_overlaps

        v = validate_overlaps(est, cp.report.overlaps)
        evidence["buffers"] = v.sufficient and v.buffer_fallbacks == []
        cp15 = compile_program(FIG15, opts)
        evidence["live decompositions"] = cp15.report.remaps_eliminated >= 2
        evidence["loop-invariant decomps"] = cp15.report.remaps_hoisted >= 2
        return evidence

    evidence = benchmark.pedantic(build_all, rounds=1, iterations=1)
    rows = []
    for problem, phase, direction, how in TABLE1:
        ok = evidence.get(problem, False)
        assert ok, f"Table 1 problem not demonstrated: {problem}"
        arrow = {"down": "v", "up": "^", "bidir": "<->"}[direction]
        rows.append(f"{problem:<28} {phase:<12} {arrow:<4} {how}")
    paper_table(
        "Table 1: interprocedural Fortran D data-flow problems",
        f"{'problem':<28} {'phase':<12} {'dir':<4} implementation",
        rows,
    )
    benchmark.extra_info["problems_verified"] = len(TABLE1)
    emit_bench("table1_inventory", {
        problem: {"phase": phase, "direction": direction,
                  "demonstrated": bool(evidence.get(problem, False))}
        for problem, phase, direction, _how in TABLE1
    })
