"""Benchmark [§8, reconstructed]: the resilient compile service.

"Rather than recompiling the entire program after each change,
ParaScope performs recompilation analysis to pinpoint modules that may
have been affected by program changes, thus reducing recompilation
costs."

Regenerated as a service-level experiment: an editing session against
the compile daemon.  Measured quantities land in ``BENCH_service.json``:

* warm-store incremental recompile time for one-procedure edits vs the
  cold whole-program compile (the §8 claim — asserted >= 2x),
* daemon request throughput and p50/p99 latency,
* warm summary-store hit rate,
* recovery time for a request whose worker is killed mid-compile.
"""

import os
import statistics
import tempfile
import time

import numpy as np
import pytest

from repro.core import Options, compile_program
from repro.core.driver import front_end
from repro.service import (
    CompileClient,
    CompileDaemon,
    ServiceCompiler,
    SummaryStore,
)

from _harness import emit_bench

P = 4
NPROCS_IN_APP = 16  # pipeline stages: per-procedure work dominates


def make_app(K=NPROCS_IN_APP, N=256):
    """A K-stage relaxation pipeline: one program + K subroutines, so
    a one-procedure edit leaves K procedures untouched."""
    parts = ["program p", f"real x({N}), y({N})",
             "align y(i) with x(i)", "distribute x(block)"]
    parts += [f"call stage{k}(x, y)" for k in range(K)]
    parts.append("end")
    for k in range(K):
        parts += [f"subroutine stage{k}(x, y)",
                  f"real x({N}), y({N})",
                  f"do i = 2, {N - 1}",
                  f"  y(i) = f(x(i - 1)) + f(x(i + 1)) + {k}.0",
                  "enddo",
                  f"do i = 1, {N}",
                  "  x(i) = y(i) * 0.5",
                  "enddo",
                  "end"]
    return "\n".join(parts) + "\n"


def median_time(fn, reps=7):
    xs = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        xs.append(time.perf_counter() - t0)
    return statistics.median(xs)


@pytest.fixture(autouse=True)
def no_memo(monkeypatch):
    """Measure real compiles, not the in-process memo."""
    monkeypatch.setenv("REPRO_COMPILE_CACHE", "0")


def sock_path(tmp_path):
    p = str(tmp_path / "fdc.sock")
    if len(p) > 90:  # AF_UNIX sun_path limit
        p = os.path.join(tempfile.mkdtemp(prefix="fdc-"), "fdc.sock")
    return p


def test_service_bench(tmp_path, paper_table):
    src = make_app()
    opts = Options(nprocs=P)
    edits = [src.replace(f"+ {k}.0", f"+ {k}.5") for k in (3, 7, 11)]
    for e in edits:
        assert e != src

    # -- §8 claim: warm incremental vs cold whole-program ------------------
    compile_program(src, opts)  # prewarm interpreter/codegen caches
    store = SummaryStore(str(tmp_path / "store"))
    svc = ServiceCompiler(store=store)
    svc.compile(src, opts)  # seed the summary store
    cold_s = median_time(lambda: compile_program(src, opts))
    warm_s = median_time(lambda: svc.compile(edits[0], opts))
    front_s = median_time(lambda: front_end(src, opts))
    _, stats = svc.compile(edits[1], opts)
    assert stats["reused"] == NPROCS_IN_APP  # only the edit recompiles
    assert stats["compiled"] == 1
    speedup = cold_s / warm_s

    # -- daemon: throughput / latency / hit rate ---------------------------
    daemon = CompileDaemon(sock_path(tmp_path),
                           store_dir=str(tmp_path / "dstore"),
                           pool_size=0, queue_limit=32, handlers=2)
    daemon.serve_in_thread()
    try:
        client = CompileClient(daemon.socket_path)
        client.compile(src, opts)  # cold request seeds the store
        lat = []
        reqs = 24
        t0 = time.perf_counter()
        for i in range(reqs):
            r0 = time.perf_counter()
            client.compile(edits[i % len(edits)], opts)
            lat.append(time.perf_counter() - r0)
        wall = time.perf_counter() - t0
        lat.sort()
        p50 = lat[len(lat) // 2]
        p99 = lat[min(len(lat) - 1, int(len(lat) * 0.99))]
        dstats = daemon.stats()
        sstore = dstats["store"]
        hit_rate = sstore["hits"] / max(1, sstore["hits"]
                                        + sstore["misses"])
    finally:
        daemon.stop()

    # -- recovery after a worker kill --------------------------------------
    crash_flag = str(tmp_path / "crash")
    (tmp_path / "d2").mkdir()
    daemon2 = CompileDaemon(sock_path(tmp_path / "d2"),
                            store_dir=str(tmp_path / "dstore2"),
                            pool_size=1, handlers=1,
                            crash_flag=crash_flag)
    daemon2.serve_in_thread()
    try:
        client2 = CompileClient(daemon2.socket_path)
        baseline_s = median_time(
            lambda: client2.compile(src, opts), reps=3)
        with open(crash_flag, "w") as fh:
            fh.write("1")
        r0 = time.perf_counter()
        client2.compile(edits[2], opts)  # worker SIGKILLs itself; retried
        recovery_s = time.perf_counter() - r0
        pstats = daemon2.stats()["pool"]
        assert pstats["crashes"] >= 1 and pstats["retries"] >= 1
    finally:
        daemon2.stop()

    paper_table(
        "Resilient compile service (editing session, "
        f"{NPROCS_IN_APP}-procedure app)",
        f"{'metric':<38}{'value':>14}",
        [
            f"{'cold whole-program compile (ms)':<38}"
            f"{cold_s * 1e3:>14.2f}",
            f"{'warm 1-procedure edit (ms)':<38}"
            f"{warm_s * 1e3:>14.2f}",
            f"{'front end alone (ms)':<38}{front_s * 1e3:>14.2f}",
            f"{'incremental speedup':<38}{speedup:>13.2f}x",
            f"{'daemon throughput (req/s)':<38}"
            f"{reqs / wall:>14.1f}",
            f"{'daemon p50 latency (ms)':<38}{p50 * 1e3:>14.2f}",
            f"{'daemon p99 latency (ms)':<38}{p99 * 1e3:>14.2f}",
            f"{'warm store hit rate':<38}{hit_rate:>14.2f}",
            f"{'recovery after worker kill (ms)':<38}"
            f"{recovery_s * 1e3:>14.2f}",
        ],
    )

    emit_bench("service", {
        "app_procedures": NPROCS_IN_APP + 1,
        "nprocs": P,
        "cold_compile_s": cold_s,
        "warm_incremental_s": warm_s,
        "front_end_s": front_s,
        "incremental_speedup": speedup,
        "throughput_rps": reqs / wall,
        "latency_p50_s": p50,
        "latency_p99_s": p99,
        "warm_store_hit_rate": hit_rate,
        "recovery_after_kill_s": recovery_s,
        "recovery_baseline_s": baseline_s,
        "worker_crashes": pstats["crashes"],
    })

    # the §8 shape: pinpointed recompilation beats whole-program rebuilds
    assert speedup >= 2.0, \
        f"warm incremental only {speedup:.2f}x faster than cold"
    assert hit_rate >= 0.8, f"warm store hit rate {hit_rate:.2f}"
    assert recovery_s < 30.0, "recovery after worker kill unbounded"
