#!/usr/bin/env python
"""Compare fresh ``BENCH_*.json`` payloads against committed baselines.

CI runs the benchmark suite with ``REPRO_BENCH_DIR`` pointed at a
scratch directory, then invokes this script to diff every freshly
generated payload against the baseline of the same name committed at
the repository root.  Wall-clock leaves (keys ending in ``_s`` /
``_seconds`` or containing ``wall``) are compared pairwise; a fresh
value more than ``--threshold`` (default 25%) above its baseline on a
matching host shape is a regression and the script exits 1.

Host-shape matching: a payload pair is only compared when the stamped
``host_cpus`` / ``scheduler`` / ``topology`` / ``vectorize`` /
``codegen`` keys agree (keys absent from either side are ignored) —
a 2-core CI runner is not expected to reproduce an 8-core baseline.
Sub-second noise is filtered with ``--min-seconds`` (leaves whose
baseline is below it are skipped).  The CI step is non-blocking
(``continue-on-error``): the signal is the log and the step outcome,
not a hard gate, because shared runners jitter.

Usage::

    python benchmarks/check_regression.py \
        --baseline-dir . --fresh-dir bench-out [--threshold 0.25]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: top-level stamps that must agree before wall-clock comparison makes
#: sense (absent keys are ignored)
SHAPE_KEYS = ("host_cpus", "scheduler", "topology", "vectorize",
              "codegen")

#: subtrees never compared (snapshots, provenance stamps)
SKIP_KEYS = {"metrics", "git_sha", "generated_at"}


def wall_leaves(payload: dict, prefix: str = "") -> dict[str, float]:
    """Flatten *payload* to ``{dotted.path: seconds}`` for every
    numeric leaf that looks like a host wall-clock measurement."""
    out: dict[str, float] = {}
    for key, value in payload.items():
        if key in SKIP_KEYS:
            continue
        path = f"{prefix}.{key}" if prefix else key
        if isinstance(value, dict):
            out.update(wall_leaves(value, path))
        elif isinstance(value, (int, float)) and not isinstance(
                value, bool):
            if key.endswith(("_s", "_seconds")) or "wall" in key:
                out[path] = float(value)
    return out


def shapes_match(base: dict, fresh: dict) -> tuple[bool, str]:
    for key in SHAPE_KEYS:
        if key in base and key in fresh and base[key] != fresh[key]:
            return False, (f"{key}: baseline={base[key]!r} "
                           f"fresh={fresh[key]!r}")
    return True, ""


def compare_file(name: str, base: dict, fresh: dict,
                 threshold: float, min_seconds: float) -> list[str]:
    """Regression lines for one payload pair (empty = clean)."""
    regressions: list[str] = []
    base_leaves = wall_leaves(base)
    fresh_leaves = wall_leaves(fresh)
    for path, baseline in sorted(base_leaves.items()):
        current = fresh_leaves.get(path)
        if current is None or baseline < min_seconds:
            continue
        ratio = current / baseline
        if ratio > 1.0 + threshold:
            regressions.append(
                f"  REGRESSION {name}:{path}: "
                f"{baseline:.4f}s -> {current:.4f}s "
                f"({(ratio - 1.0) * 100:+.1f}%)"
            )
    return regressions


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--baseline-dir", default=".",
                   help="directory holding committed BENCH_*.json "
                        "baselines (default: current directory)")
    p.add_argument("--fresh-dir", required=True,
                   help="directory holding freshly generated "
                        "BENCH_*.json payloads (REPRO_BENCH_DIR)")
    p.add_argument("--threshold", type=float, default=0.25,
                   help="allowed fractional wall-clock growth "
                        "(default 0.25 = +25%%)")
    p.add_argument("--min-seconds", type=float, default=0.05,
                   help="skip leaves whose baseline is below this "
                        "(noise floor, default 0.05s)")
    args = p.parse_args(argv)

    baseline_dir = Path(args.baseline_dir)
    fresh_dir = Path(args.fresh_dir)
    fresh_files = sorted(fresh_dir.glob("BENCH_*.json"))
    if not fresh_files:
        print(f"check_regression: no BENCH_*.json under {fresh_dir}; "
              f"nothing to compare")
        return 0

    compared = skipped = 0
    all_regressions: list[str] = []
    for fresh_path in fresh_files:
        base_path = baseline_dir / fresh_path.name
        if not base_path.exists():
            print(f"  new payload (no baseline): {fresh_path.name}")
            continue
        try:
            base = json.loads(base_path.read_text())
            fresh = json.loads(fresh_path.read_text())
        except (OSError, json.JSONDecodeError) as e:
            print(f"  unreadable pair {fresh_path.name}: {e}")
            continue
        ok, why = shapes_match(base, fresh)
        if not ok:
            skipped += 1
            print(f"  skipped {fresh_path.name}: host shape differs "
                  f"({why})")
            continue
        compared += 1
        regs = compare_file(fresh_path.name, base, fresh,
                            args.threshold, args.min_seconds)
        if regs:
            all_regressions.extend(regs)
        else:
            print(f"  ok {fresh_path.name}")

    print(f"check_regression: {compared} compared, {skipped} skipped "
          f"(shape mismatch), {len(all_regressions)} regression(s) at "
          f">{args.threshold * 100:.0f}%")
    for line in all_regressions:
        print(line)
    return 1 if all_regressions else 0


if __name__ == "__main__":
    sys.exit(main())
