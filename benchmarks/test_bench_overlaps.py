"""Experiment [Fig. 13/14]: interprocedural overlap calculation.

Figure 13's estimation algorithm records constant subscript offsets
locally, propagates them through call sites, and broadcasts the maximal
estimates down the call graph; code generation then validates the
estimate against the overlaps the emitted communication actually needs.
Figure 14 shows the parameterized-overlap alternative (array bounds
passed as run-time arguments).

Regenerated: the Z(k+5, i) offset propagating to X and Y in the Figure 4
program, estimate-vs-actual validation across all example programs, and
the Figure 2 / Figure 14 local declarations.
"""

import pytest

from repro.apps import FIG1, FIG4, stencil1d_source, stencil2d_source
from repro.callgraph.acg import ACG
from repro.core import Mode, Options, compile_program
from repro.core.localize import localized_procedure_text
from repro.core.overlaps import estimate_overlaps, validate_overlaps
from repro.dist import Distribution
from repro.lang import parse
from repro.lang.ast import DistSpec

from _harness import compile_and_measure, emit_bench

PROGRAMS = [
    ("fig1", FIG1, "x"),
    ("fig4", FIG4, "x"),
    ("stencil1d", stencil1d_source(64, 2), "x"),
    ("stencil2d", stencil2d_source(24, 2), "a"),
]


def test_bench_overlap_estimation(benchmark, paper_table):
    def estimate_all():
        out = {}
        for name, src, _arr in PROGRAMS:
            acg = ACG(parse(src))
            est = estimate_overlaps(acg)
            cp = compile_program(src, Options(nprocs=4))
            v = validate_overlaps(est, cp.report.overlaps)
            out[name] = (est, cp.report.overlaps, v)
        return out

    results = benchmark.pedantic(estimate_all, rounds=2, iterations=1)
    rows = []
    for name, (est, actual, v) in results.items():
        assert v.sufficient, f"{name}: estimate under-sized"
        for (proc, arr), offs in sorted(actual.items()):
            e = est.per_proc.get((proc, arr))
            rows.append(
                f"{name:<10} {proc:<10} {arr:<4} "
                f"estimate={e!s:<22} actual={offs!s:<18} ok"
            )
    paper_table(
        "Figure 13: overlap estimates vs overlaps required by generated "
        "communication",
        f"{'program':<10} {'proc':<10} {'arr':<4} details",
        rows,
    )
    benchmark.extra_info["programs"] = len(results)
    emit_bench("overlaps", {
        name: {
            f"{proc}.{arr}": {"estimate": str(est.per_proc.get((proc, arr))),
                              "actual": str(offs)}
            for (proc, arr), offs in sorted(actual.items())
        }
        for name, (est, actual, _v) in results.items()
    })


def test_bench_fig14_parameterized_overlaps(benchmark, paper_table):
    """Figure 14: REAL X(Xlo:Xhi) with bounds as extra formals."""

    def build():
        cp = compile_program(FIG1, Options(nprocs=4))
        f1 = cp.program.unit("f1")
        dist = Distribution.from_specs([DistSpec("block")], [(1, 100)], 4)
        plain = localized_procedure_text(
            f1, {"x": dist}, {"x": [(0, 5)]}, parameterized=False
        )
        param = localized_procedure_text(
            f1, {"x": dist}, {"x": [(0, 5)]}, parameterized=True
        )
        return plain, param

    plain, param = benchmark.pedantic(build, rounds=2, iterations=1)
    assert "real x(30)" in plain              # Figure 2 layout
    assert "real x(xlo:xhi)" in param         # Figure 14 layout
    assert "subroutine f1(x, xlo, xhi)" in param
    paper_table(
        "Figure 14: parameterized overlaps (localized node code)",
        "two presentations of the same node procedure",
        ["--- static overlap (Figure 2) ---"]
        + plain.splitlines()[:3]
        + ["--- parameterized (Figure 14) ---"]
        + param.splitlines()[:3],
    )


class TestShape:
    def test_fig4_offsets_propagate(self):
        est = estimate_overlaps(ACG(parse(FIG4)))
        assert est.per_proc[("p1", "x")] == [(0, 5), (0, 0)]
        assert est.per_proc[("p1", "y")] == [(0, 5), (0, 0)]
        assert est.per_proc[("f2", "z")] == [(0, 5), (0, 0)]

    def test_stencil_overlaps_symmetric(self):
        est = estimate_overlaps(ACG(parse(stencil1d_source(64, 2))))
        assert est.per_proc[("smooth", "x")] == [(-1, 1)]
