"""Run-time data remapping library (§6).

Fortran D "assumes the existence of a collection of library routines that
can be invoked to remap arrays for different data decompositions".  This
module is that library for the simulated machine:

* :func:`remap_array` — physical redistribution: every node sends the
  elements it owns under the old distribution to their owners under the
  new one (all-to-all personalized exchange), then records the new
  distribution on the array.
* :func:`mark_array` — the §6.3 array-kill optimization: when the
  array's values are dead, remap *in place* by only changing the
  recorded distribution (zero data motion).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..analysis.rsd import RSD, Range
from ..dist import Distribution

if TYPE_CHECKING:  # pragma: no cover
    from ..interp.arrays import FArray
    from ..machine.machine import ProcContext


def _rsd_to_subs(section: RSD) -> list:
    out = []
    for d in section.dims:
        assert isinstance(d, Range)
        out.append((d.lo, d.hi, d.step))
    return out


def transfer_sections(
    old: Distribution, new: Distribution, src: int, dst: int
) -> list[RSD]:
    """Sections owned by *src* under *old* that *dst* owns under *new*."""
    out: list[RSD] = []
    for a in old.local_index_sets(src):
        for b in new.local_index_sets(dst):
            piece = a.intersect(b)
            if not piece.empty:
                out.append(piece)
    return out


def _build_outgoing(
    ctx: "ProcContext", arr: "FArray", old: Distribution, new: Distribution
) -> tuple[dict[int, list], int]:
    """Read out the sections this rank must ship: ``{dst: [(subs,
    payload), ...]}`` plus the total outgoing byte count."""
    me = ctx.rank
    outgoing: dict[int, list] = {}
    out_bytes = 0
    for dst in range(ctx.nprocs):
        if dst == me:
            continue
        pieces = transfer_sections(old, new, me, dst)
        if not pieces:
            continue
        bundle = []
        for piece in pieces:
            subs = _rsd_to_subs(piece)
            payload = arr.read_section(subs)
            bundle.append((subs, payload))
            out_bytes += payload.size * arr.element_bytes
        outgoing[dst] = bundle
    return outgoing, out_bytes


def _apply_incoming(
    ctx: "ProcContext", arr: "FArray", incoming: dict[int, list],
    new: Distribution, out_bytes: int,
) -> None:
    """Write received sections and record the new distribution.

    Each rank records its own outgoing volume; summed over ranks that
    equals the total data moved (what :func:`_total_moved` computes),
    without the O(P^2) all-pairs section scan that dominated large-P
    runs.  Rank 0 counts the remap operation itself."""
    for _src, bundle in incoming.items():
        for subs, payload in bundle:
            arr.write_section(subs, payload)
    arr.dist = new
    ctx.stats.record_remap(out_bytes, count=1 if ctx.rank == 0 else 0)


def _remap_prologue(
    ctx: "ProcContext", arr: "FArray", new: Distribution
) -> Distribution | None:
    """Common entry: returns the effective old distribution, or None
    when the remap is mapping-identical (recorded in place, no data
    motion)."""
    old = arr.dist
    if old is None:
        old = Distribution.replicated(arr.bounds, ctx.nprocs)
    if old.same_mapping(new):
        arr.dist = new
        return None
    return old


def remap_array(ctx: "ProcContext", arr: "FArray", new: Distribution,
                origin: str = None) -> None:
    """Physically redistribute *arr* to *new* (collective)."""
    old = _remap_prologue(ctx, arr, new)
    if old is None:
        return
    outgoing, out_bytes = _build_outgoing(ctx, arr, old, new)
    incoming = ctx.exchange(outgoing, out_bytes, origin=origin)
    _apply_incoming(ctx, arr, incoming, new, out_bytes)


def remap_array_y(ctx: "ProcContext", arr: "FArray", new: Distribution,
                  origin: str = None):
    """Generator twin of :func:`remap_array` for the event-driven
    backend: identical section math and stats, but the all-to-all
    exchange suspends the rank coroutine instead of parking a fiber."""
    old = _remap_prologue(ctx, arr, new)
    if old is None:
        return
    outgoing, out_bytes = _build_outgoing(ctx, arr, old, new)
    incoming = yield from ctx.exchange_y(outgoing, out_bytes, origin=origin)
    _apply_incoming(ctx, arr, incoming, new, out_bytes)


def mark_array(arr: "FArray", new: Distribution) -> None:
    """Remap in place (array values dead): no data motion, no cost."""
    arr.dist = new


def _total_moved(
    old: Distribution, new: Distribution, nprocs: int, elem_bytes: int
) -> int:
    total = 0
    for src in range(nprocs):
        for dst in range(nprocs):
            if src == dst:
                continue
            for piece in transfer_sections(old, new, src, dst):
                total += piece.count * elem_bytes
    return total
