"""Intrinsic functions available to Fortran D programs and node code.

``f``/``g`` are the generic element functions the paper's examples apply
(``X(i) = F(X(i+5))``); they are fixed affine maps so sequential and
parallel executions are bit-comparable.

``myproc`` and ``owner`` are the node-program intrinsics of §3.1:
``myproc()`` is the local processor number; ``owner(X(i))`` — used by
run-time resolution code — returns the rank owning element ``i`` under
``X``'s *current* distribution.
"""

from __future__ import annotations

import math
from typing import Callable


def f_func(x: float) -> float:
    """The paper's generic F."""
    return 0.5 * x + 2.0


def g_func(x: float) -> float:
    """A second generic element function."""
    return 0.25 * x + 1.0


def _sign(a, b):
    return abs(a) if b >= 0 else -abs(a)


def _intdiv(a, b):
    """Fortran integer division truncates toward zero."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


#: Pure intrinsics: name -> python callable.  ``myproc`` and ``owner``
#: are handled specially by the interpreter (they need node context).
PURE_INTRINSICS: dict[str, Callable] = {
    "f": f_func,
    "g": g_func,
    "min": min,
    "max": max,
    "abs": abs,
    "sqrt": math.sqrt,
    "exp": math.exp,
    "mod": lambda a, b: a - _intdiv(a, b) * b if isinstance(a, int) and isinstance(b, int) else math.fmod(a, b),
    "int": lambda x: int(x),
    "nint": lambda x: int(round(x)),
    "float": lambda x: float(x),
    "dble": lambda x: float(x),
    "sign": _sign,
    # positive modulus, used by compiler-generated cyclic partitioning
    "pmod": lambda a, p: ((int(a) % int(p)) + int(p)) % int(p),
}

CONTEXT_INTRINSICS = frozenset({"myproc", "owner"})
