"""Fortran D run-time library: intrinsics and remapping."""

from .intrinsics import CONTEXT_INTRINSICS, PURE_INTRINSICS, f_func, g_func
from .remap import mark_array, remap_array, transfer_sections

__all__ = [
    "PURE_INTRINSICS",
    "CONTEXT_INTRINSICS",
    "f_func",
    "g_func",
    "remap_array",
    "mark_array",
    "transfer_sections",
]
