"""Command-line driver: the ``fdc`` Fortran D compiler.

Usage::

    fdc program.fd                       # compile, print node program
    fdc program.fd --nprocs 8 --mode rtr
    fdc program.fd --run                 # execute on the simulated machine
    fdc program.fd --run --gather x      # print the gathered array
    fdc program.fd --report              # compilation decisions
    fdc program.fd --localize f1         # Figure-2-style local view
    fdc program.fd --sequential          # reference run of the source
    fdc program.fd --trace out.json      # Chrome/Perfetto event trace
    fdc program.fd --profile             # comm hot spots + critical path
    fdc program.fd --run --stats-json s.json
    fdc program.fd --run --scheduler event --topology hypercube

Compile-service subcommands and client mode::

    fdc serve --socket /tmp/fdc.sock   # run the compile daemon
    fdc ping --server /tmp/fdc.sock    # liveness + stats probe
    fdc metrics --server auto          # Prometheus text exposition
    fdc metrics --json --watch         # live JSON metrics snapshots
    fdc shutdown --server auto         # stop the daemon
    fdc program.fd --server auto       # compile via the daemon,
                                       # in-process fallback if down

(also available as ``python -m repro.cli``)
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from .core import (
    DynOpt,
    Mode,
    Options,
    compile_program,
    parse_distribute_args,
)
from .core.driver import compile_cache_stats
from .core.localize import localized_procedure_text
from .dist import Distribution
from .interp import run_sequential
from .lang import parse
from .machine import FAST_NETWORK, FREE, IPSC860, FaultPlan, SimulationError
from .obs import Tracer, profile_report, write_chrome_trace


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="fdc",
        description="Fortran D compiler for simulated MIMD "
                    "distributed-memory machines (SC'92 reproduction)",
    )
    p.add_argument("source", help="Fortran D source file ('-' for stdin)")
    p.add_argument("--nprocs", "-p", type=int, default=4,
                   help="number of node processors (default 4)")
    p.add_argument("--mode", choices=[m.value for m in Mode],
                   default="inter",
                   help="compilation strategy: inter(procedural), "
                        "intra (immediate instantiation), rtr "
                        "(run-time resolution)")
    p.add_argument("--dynopt", type=int, choices=[0, 1, 2, 3], default=3,
                   help="dynamic-decomposition optimization level "
                        "(0=none .. 3=array kills; Figure 16 a-d)")
    p.add_argument("--cost", choices=["ipsc860", "fast", "free"],
                   default="ipsc860", help="communication cost model")
    p.add_argument("--run", action="store_true",
                   help="execute the node program on the simulated "
                        "machine and print statistics")
    p.add_argument("--faults", metavar="SPEC",
                   help="with --run: inject deterministic faults, e.g. "
                        "'delay=0.5:80,drop=0.1,slow=1:2.0,crash=2@5000' "
                        "(also via REPRO_FAULTS)")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed for the fault plan (default 0; also via "
                        "REPRO_FAULT_SEED)")
    p.add_argument("--scheduler", choices=["coop", "threads", "event"],
                   default=None,
                   help="with --run: simulation backend — 'coop' is the "
                        "single-threaded run-to-block scheduler (default), "
                        "'threads' the thread-per-rank oracle, 'event' the "
                        "event-driven core for large P (also via "
                        "REPRO_SCHEDULER)")
    p.add_argument("--topology", metavar="NAME", default=None,
                   help="with --run: interconnect topology — uniform "
                        "(default), hypercube, mesh2d, torus2d, fattree; "
                        "append ':contention' for per-link contention, "
                        "e.g. 'mesh2d:contention' (also via "
                        "REPRO_TOPOLOGY)")
    p.add_argument("--timeout", type=float, default=None, metavar="S",
                   help="wall-clock safety-net timeout in seconds "
                        "(default REPRO_SIM_TIMEOUT or 60; deadlocks "
                        "are detected instantly regardless)")
    p.add_argument("--distribute", metavar="ARRAY=KIND[:k]",
                   action="append", default=None,
                   help="override an array's distribution without "
                        "editing source (repeatable): KIND is block, "
                        "cyclic, or block_cyclic:k; a comma list gives "
                        "per-dimension specs, e.g. a=:,cyclic — this is "
                        "the override the auto-tuner emits")
    p.add_argument("--autotune", action="store_true",
                   help="search per-array distributions and processor "
                        "counts on the simulator (event backend), report "
                        "the best plan + predicted speedup, and apply it "
                        "to this compilation")
    p.add_argument("--budget", type=int, default=32, metavar="N",
                   help="with --autotune: maximum candidate-plan "
                        "evaluations (default 32)")
    p.add_argument("--tune-workers", type=int, default=None, metavar="N",
                   help="with --autotune: evaluate candidates across N "
                        "worker processes (default: min(4, cpu count); "
                        "0 = in-process serial sweep)")
    p.add_argument("--tune-json", metavar="FILE",
                   help="with --autotune: write the machine-readable "
                        "search result (plans, objectives, best) as JSON")
    p.add_argument("--strict", action="store_true",
                   help="fail compilation on unanalyzable procedures "
                        "instead of demoting them to run-time "
                        "resolution")
    p.add_argument("--gather", metavar="ARRAY",
                   help="with --run: print the gathered global array")
    p.add_argument("--verify", action="store_true",
                   help="with --run: compare against sequential "
                        "execution of the source")
    p.add_argument("--sequential", action="store_true",
                   help="run the source sequentially and exit")
    p.add_argument("--report", action="store_true",
                   help="print compilation decisions (distributions, "
                        "clones, communication placements, fallbacks)")
    p.add_argument("--localize", metavar="PROC",
                   help="print PROC with Figure-2-style local "
                        "declarations (block distributions)")
    p.add_argument("--no-text", action="store_true",
                   help="suppress printing the node program")
    p.add_argument("--trace", metavar="FILE",
                   help="record compiler phases and simulation events, "
                        "write a Chrome trace-event JSON loadable in "
                        "Perfetto (implies --run)")
    p.add_argument("--profile", action="store_true",
                   help="print communication hot spots, the rank x rank "
                        "message matrix, and the virtual-time critical "
                        "path (implies --run)")
    p.add_argument("--stats-json", metavar="FILE",
                   help="with --run: write RunStats.as_dict() as JSON")
    p.add_argument("--metrics", action="store_true", default=None,
                   help="with --run: record simulator metrics; the "
                        "registry snapshot lands in --stats-json under "
                        "'metrics' (also via REPRO_METRICS)")
    p.add_argument("--codegen", dest="codegen", action="store_true",
                   default=None,
                   help="run generated node-program modules "
                        "(REPRO_CODEGEN, default on)")
    p.add_argument("--no-codegen", dest="codegen", action="store_false",
                   help="force the closure-tree interpreter")
    p.add_argument("--codegen-dump", metavar="FILE",
                   help="write the generated node-program source for "
                        "every rank class to FILE ('-' for stdout)")
    p.add_argument("--server", metavar="WHERE", default=None,
                   help="compile via a running 'fdc serve' daemon: "
                        "'off', 'auto' (per-user default socket), or "
                        "a socket path (also via REPRO_SERVER; falls "
                        "back to in-process compilation when the "
                        "daemon is unreachable)")
    return p


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as f:
        return f.read()


COSTS = {"ipsc860": IPSC860, "fast": FAST_NETWORK, "free": FREE}


SERVICE_COMMANDS = ("serve", "ping", "metrics", "shutdown")


def _service_main(cmd: str, argv: list[str]) -> int:
    """``fdc serve`` / ``fdc ping`` / ``fdc shutdown``."""
    from .service import CompileClient, CompileDaemon, ServiceError
    from .service.client import default_socket_path, resolve_server

    p = argparse.ArgumentParser(prog=f"fdc {cmd}")
    p.add_argument("--socket", "--server", dest="socket", default=None,
                   metavar="PATH",
                   help="daemon socket path ('auto' or unset: the "
                        "per-user default, also via REPRO_SERVER)")
    if cmd == "serve":
        p.add_argument("--store", metavar="DIR", default=None,
                       help="persistent summary-store directory "
                            "(default: in-memory only)")
        p.add_argument("--pool", type=int, default=2,
                       help="worker processes (0 = compile in-daemon)")
        p.add_argument("--queue-limit", type=int, default=8,
                       help="bounded compile-queue length")
        p.add_argument("--handlers", type=int, default=2,
                       help="concurrent request handlers")
        p.add_argument("--max-deadline", type=float, default=300.0,
                       metavar="S", help="per-request deadline ceiling")
        p.add_argument("--seed", type=int, default=0,
                       help="supervisor backoff-jitter seed")
    if cmd == "metrics":
        p.add_argument("--json", action="store_true",
                       help="print the JSON metrics snapshot instead "
                            "of the Prometheus text exposition")
        p.add_argument("--watch", action="store_true",
                       help="refresh continuously until interrupted")
        p.add_argument("--interval", type=float, default=2.0,
                       metavar="S",
                       help="refresh period for --watch (default 2)")
    args = p.parse_args(argv)
    path = resolve_server(args.socket) or default_socket_path()

    if cmd == "serve":
        daemon = CompileDaemon(
            path, store_dir=args.store, pool_size=args.pool,
            queue_limit=args.queue_limit, handlers=args.handlers,
            max_deadline_s=args.max_deadline, seed=args.seed,
        )
        print(f"fdc serve: listening on {path} "
              f"(pool={args.pool} queue={args.queue_limit})")
        try:
            daemon.serve_forever()
        except KeyboardInterrupt:
            daemon.stop()
        return 0

    client = CompileClient(path)
    try:
        if cmd == "ping":
            rep = client.ping()
            print(f"pong from pid {rep['pid']} at {path}")
        elif cmd == "metrics":
            import time as _time

            while True:
                rep = client.metrics()
                if args.json:
                    print(json.dumps(rep["metrics"], indent=2,
                                     sort_keys=True))
                else:
                    sys.stdout.write(rep["prometheus"])
                if not args.watch:
                    break
                sys.stdout.flush()
                _time.sleep(max(0.1, args.interval))
        else:
            client.shutdown()
            print(f"shutdown sent to {path}")
        return 0
    except KeyboardInterrupt:
        return 0
    except (OSError, TimeoutError, ServiceError) as e:
        print(f"fdc {cmd}: {e}", file=sys.stderr)
        return 1


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in SERVICE_COMMANDS:
        return _service_main(argv[0], argv[1:])
    args = build_parser().parse_args(argv)
    try:
        source = _read_source(args.source)
    except OSError as e:
        print(f"fdc: {e}", file=sys.stderr)
        return 2

    if args.sequential:
        frame = run_sequential(parse(source))
        for name, arr in frame.arrays.items():
            print(f"{name}: shape={arr.data.shape} "
                  f"sum={float(arr.data.sum()):.6g}")
        return 0

    if args.trace or args.profile:
        args.run = True
    tracer = Tracer() if (args.trace or args.profile) else None

    try:
        overrides = parse_distribute_args(args.distribute or [])
    except ValueError as e:
        print(f"fdc: {e}", file=sys.stderr)
        return 2

    opts = Options(
        nprocs=args.nprocs,
        mode=Mode(args.mode),
        dynopt=DynOpt(args.dynopt),
        strict=args.strict,
        distribute=overrides,
    )

    if args.autotune:
        from .tune import autotune, render_tune_report

        try:
            outcome = autotune(
                source, opts, budget=args.budget,
                workers=args.tune_workers,
            )
        except Exception as e:
            print(f"fdc: autotune failed: {e}", file=sys.stderr)
            return 1
        print(render_tune_report(outcome))
        if args.tune_json:
            with open(args.tune_json, "w") as f:
                json.dump(outcome.as_dict(), f, indent=2, sort_keys=True)
                f.write("\n")
        # apply the winning plan to this compilation: the rest of the
        # run (--run/--verify/--report/...) sees the tuned layout
        opts = outcome.best.apply(opts)
        args.nprocs = opts.nprocs

    try:
        from .service import resolve_server

        if resolve_server(args.server) is not None:
            from .service import compile_with_fallback

            cp, sinfo = compile_with_fallback(
                source, opts, server=args.server, trace=tracer)
            if sinfo["used"] != "server":
                print(f"! server fallback: {sinfo.get('cause')}",
                      file=sys.stderr)
        else:
            cp = compile_program(source, opts, trace=tracer)
    except Exception as e:  # surface compile errors with a clean message
        print(f"fdc: compilation failed: {e}", file=sys.stderr)
        return 1

    if not args.no_text:
        print(cp.text())

    if args.report:
        # iteration orders are sorted so the report is byte-identical
        # across runs regardless of dict insertion order
        r = cp.report
        print(f"! mode={r.mode.value} nprocs={r.nprocs}")
        for proc, dists in sorted(r.distributions.items()):
            for arr, d in sorted(dists.items()):
                print(f"! dist {proc}.{arr}: {d}")
        for base, clones in sorted(r.cloned.items()):
            print(f"! cloned {base} -> {', '.join(clones)}")
        for line in r.comm_placements:
            print(f"! comm {line}")
        for line in r.rtr_fallbacks:
            print(f"! rtr-fallback {line}")
        for line in r.rtr_demotions:
            print(f"! rtr-demotion {line}")
        if r.remaps_emitted or r.remaps_eliminated or r.remaps_marked:
            print(f"! remaps emitted={r.remaps_emitted} "
                  f"eliminated={r.remaps_eliminated} "
                  f"hoisted={r.remaps_hoisted} marked={r.remaps_marked}")
        for (proc, arr), offs in sorted(r.overlaps.items()):
            print(f"! overlap {proc}.{arr}: {offs}")

    if args.codegen_dump:
        from .codegen import get_generated
        from .interp.vectorize import enabled as vec_enabled

        try:
            gen, _, _ = get_generated(cp.program, opts.nprocs,
                                      vec_enabled(None),
                                      strict=args.strict)
        except Exception as e:
            print(f"fdc: codegen failed: {e}", file=sys.stderr)
            return 1
        dump = gen.dump()
        if args.codegen_dump == "-":
            print(dump)
        else:
            with open(args.codegen_dump, "w") as f:
                f.write(dump)
            print(f"! codegen: {len(gen.modules)} rank-class modules -> "
                  f"{args.codegen_dump}")

    if args.localize:
        try:
            proc = cp.program.unit(args.localize)
        except KeyError:
            print(f"fdc: no procedure named {args.localize!r}",
                  file=sys.stderr)
            return 2
        dists: dict[str, Distribution] = {}
        for d in proc.decls:
            key = (args.localize, d.name)
            dist = cp.initial_dists.get(key)
            if dist is None and d.is_array:
                # formals: use any caller's distribution of that array
                for (_p, a), dd in cp.initial_dists.items():
                    if a == d.name:
                        dist = dd
                        break
            if dist is not None:
                dists[d.name] = dist
        overlaps = {
            arr: offs
            for (p, arr), offs in cp.report.overlaps.items()
        }
        print(localized_procedure_text(proc, dists, overlaps))

    if args.run:
        faults = None
        if args.faults:
            try:
                faults = FaultPlan.parse(args.faults, args.fault_seed)
            except ValueError as e:
                print(f"fdc: {e}", file=sys.stderr)
                return 2
        try:
            res = cp.run(cost=COSTS[args.cost], faults=faults,
                         timeout_s=args.timeout,
                         scheduler=args.scheduler,
                         trace=tracer,
                         topology=args.topology,
                         codegen=args.codegen,
                         metrics=args.metrics)
        except (SimulationError, ValueError) as e:
            print(f"fdc: simulation failed: {e}", file=sys.stderr)
            return 1
        print(f"! {res.stats.summary()}")
        if args.report:
            print(f"! {res.stats.sched_summary()}")
            cc = compile_cache_stats()
            print(f"! compile-cache={cc['hits']}/"
                  f"{cc['hits'] + cc['misses']} hits")
        if args.stats_json:
            with open(args.stats_json, "w") as f:
                json.dump(res.stats.as_dict(), f, indent=2, sort_keys=True)
                f.write("\n")
        if args.trace:
            write_chrome_trace(tracer, args.trace)
            print(f"! trace: {tracer.event_count()} events -> "
                  f"{args.trace} (chrome://tracing or ui.perfetto.dev)")
        if args.profile:
            from .machine import resolve_topology

            topo = resolve_topology(args.topology, args.nprocs)
            print(profile_report(tracer, res.stats, topology=topo))
        for line in res.prints:
            print(line)
        if args.gather:
            try:
                data = res.gathered(args.gather)
            except KeyError:
                print(f"fdc: no array named {args.gather!r}",
                      file=sys.stderr)
                return 2
            np.set_printoptions(precision=4, threshold=64)
            print(f"{args.gather} = {data}")
        if args.verify:
            seq = run_sequential(parse(source))
            ok = True
            for name, arr in seq.arrays.items():
                if name not in res.frames[0].arrays:
                    continue
                got = res.gathered(name)
                same = np.allclose(got, arr.data)
                ok &= same
                print(f"! verify {name}: "
                      f"{'OK' if same else 'MISMATCH'}")
            if not ok:
                return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
