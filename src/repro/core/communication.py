"""Communication analysis and optimization (§3 steps 4-5, §5.4, Fig. 11).

For every right-hand-side reference to a distributed array, the planner

1. classifies the nonlocal access pattern against the statement's
   owner-computes constraint — ``shift`` (constant offset along the
   distributed axis), ``bcast`` (a loop-invariant slice owned by one
   processor), local, or run-time-resolution fallback;
2. uses true-dependence analysis (local references *and* interprocedural
   RSD summaries at call sites) to find the outermost loop level the
   message can be vectorized to — the deepest loop carrying a true
   dependence whose sink is the reference;
3. either instantiates the communication at that level or, when no local
   dependence pins it down and the procedure is not the main program,
   **exports** it to the callers (delayed instantiation), where the same
   analysis repeats with more context.

Pending communication imported from a call site is *not* re-tested for
loop-independent dependences against that same site's own writes — the
callee already proved those harmless (the Figure 10 hoist out of the
``i`` loop depends on this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..analysis.dependence import (
    DimAccess,
    classify_rsd_dim,
    classify_subscript,
    true_dependence,
)
from ..analysis.rsd import RSD, Range, SymDim
from ..analysis.symbolics import affine_of, eval_int, substitute
from ..callgraph.acg import ACG, CallSite, LoopInfo
from ..lang import ast as A
from .model import Constraint, PendingComm, ProcExports
from .options import Mode, Options
from .partition import ArrayInfo, PartitionPlan


@dataclass
class Ref:
    """One array reference (or RSD summary) in its loop context."""

    array: str
    dims: list[DimAccess]
    section: RSD              # symbolic section (for summaries/messages)
    loops: list[LoopInfo]     # enclosing loops, outermost first
    anchors: list[A.Stmt]     # ancestor statement at each depth 0..len(loops)
    stmt: A.Stmt
    order: int                # execution/textual order index
    is_write: bool
    site: Optional[CallSite] = None  # non-None for call-site summaries


@dataclass
class CommAction:
    """One communication operation to instantiate in this procedure."""

    pending: PendingComm
    anchor: Optional[A.Stmt]   # insert immediately before this statement
    level: int                 # loop depth of the placement


@dataclass
class CommPlan:
    actions: list[CommAction] = field(default_factory=list)
    exported: list[PendingComm] = field(default_factory=list)
    rtr_stmts: dict[int, str] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)


def loop_var_set(loops: list[LoopInfo]) -> set[str]:
    return {l.var for l in loops}


def expand_section(
    section: RSD, loops: list[LoopInfo], level: int, env: dict
) -> RSD:
    """Vectorize a section to loop *level*: dimensions indexed by loops
    deeper than *level* widen to the loop's full range."""
    deep = {l.var: l for l in loops[level:]}
    dims: list = []
    for d in section.dims:
        if isinstance(d, SymDim) and d.is_point:
            aff = affine_of(d.lo, env)
            if aff is not None and aff.var in deep:
                l = deep[aff.var]
                lo = _fold_off(l.lo, aff.offset, env)
                hi = _fold_off(l.hi, aff.offset, env)
                lo_i, hi_i = eval_int(lo, env), eval_int(hi, env)
                if lo_i is not None and hi_i is not None:
                    dims.append(Range(lo_i, hi_i))
                else:
                    dims.append(SymDim(lo, hi))
                continue
        dims.append(d)
    return RSD(tuple(dims))


def _fold_off(e: A.Expr, off: int, env: dict) -> A.Expr:
    from ..analysis.symbolics import fold

    return fold(A.add(e, A.Num(off)), env)


def subs_to_section(
    subs: tuple[A.Expr, ...], loops: list[LoopInfo], env: dict
) -> RSD:
    """Symbolic section of a statement reference: loop-indexed subscripts
    stay as symbolic points (expanded later at the placement level)."""
    dims: list = []
    for s in subs:
        v = eval_int(s, env)
        if v is not None:
            dims.append(Range(v, v))
        else:
            dims.append(SymDim(s))
    return RSD(tuple(dims))


def array_binding(site: CallSite, acg: ACG) -> dict[str, str]:
    """Callee array name -> caller array name across *site*: formals map
    through the actual arguments; COMMON (global) arrays map to
    themselves ("global variables are simply copied", §5.2)."""
    out = dict(site.array_actuals)
    for g in acg.node(site.callee).proc.commons:
        out.setdefault(g, g)
    return out


class CommPlanner:
    """Per-procedure communication planning."""

    def __init__(
        self,
        proc: A.Procedure,
        acg: ACG,
        arrays: dict[str, ArrayInfo],
        plan: PartitionPlan,
        opts: Options,
        callee_exports: dict[str, ProcExports],
        env: dict,
        is_main: bool,
    ) -> None:
        self.proc = proc
        self.acg = acg
        self.arrays = arrays
        self.plan = plan
        self.opts = opts
        self.callee_exports = callee_exports
        self.env = env
        self.is_main = is_main
        self.writes: list[Ref] = []
        self.reads: list[Ref] = []
        self.result = CommPlan()
        self.exports_writes: dict[str, list[RSD]] = {}
        self.exports_reads: dict[str, list[RSD]] = {}
        self._order = 0
        self._site_of_call: dict[int, CallSite] = {
            id(s.stmt): s for s in acg.calls_from(proc.name)
        }

    # -- reference collection ------------------------------------------------

    def collect(self) -> None:
        self._walk(self.proc.body, [], [None])

    def _walk(
        self,
        body: list[A.Stmt],
        loops: list[LoopInfo],
        anchor_stack: list[Optional[A.Stmt]],
    ) -> None:
        for s in body:
            if isinstance(s, A.Do):
                info = self._loop_info(s, loops)
                self._walk(s.body, loops + [info],
                           self._push_anchor(anchor_stack, s) + [None])
            elif isinstance(s, A.DoWhile):
                self._walk(s.body, loops,
                           self._push_anchor(anchor_stack, s))
            elif isinstance(s, A.If):
                self._collect_cond(s, loops, self._anchors(anchor_stack, s))
                st = self._push_anchor(anchor_stack, s)
                self._walk(s.then_body, loops, st)
                self._walk(s.else_body, loops, st)
            elif isinstance(s, A.Assign):
                self._collect_assign(s, loops, self._anchors(anchor_stack, s))
            elif isinstance(s, A.Call):
                self._collect_call(s, loops, self._anchors(anchor_stack, s))

    @staticmethod
    def _push_anchor(
        stack: list[Optional[A.Stmt]], s: A.Stmt
    ) -> list[Optional[A.Stmt]]:
        return [a if a is not None else s for a in stack]

    @staticmethod
    def _anchors(stack: list[Optional[A.Stmt]], s: A.Stmt) -> list[A.Stmt]:
        return [a if a is not None else s for a in stack]

    def _loop_info(self, s: A.Do, outer: list[LoopInfo]) -> LoopInfo:
        for l in self.acg.node(self.proc.name).loops:
            if l.stmt is s:
                return l
        return LoopInfo(s.var, s.lo, s.hi, s.step, s, len(outer) + 1)

    def _next_order(self) -> int:
        self._order += 1
        return self._order

    def _collect_assign(
        self, s: A.Assign, loops: list[LoopInfo], anchors: list[A.Stmt]
    ) -> None:
        lv = loop_var_set(loops)
        if isinstance(s.target, A.ArrayRef):
            dims = [classify_subscript(x, lv, self.env) for x in s.target.subs]
            self.writes.append(Ref(
                s.target.name, dims,
                subs_to_section(s.target.subs, loops, self.env),
                loops, anchors, s, self._next_order(), True,
            ))
        else:
            self._next_order()
        for ref in self._expr_refs(s.expr):
            dims = [classify_subscript(x, lv, self.env) for x in ref.subs]
            self.reads.append(Ref(
                ref.name, dims,
                subs_to_section(ref.subs, loops, self.env),
                loops, anchors, s, self._order, False,
            ))
        # reads inside the target's subscripts
        if isinstance(s.target, A.ArrayRef):
            for sub in s.target.subs:
                for ref in self._expr_refs(sub):
                    dims = [classify_subscript(x, lv, self.env)
                            for x in ref.subs]
                    self.reads.append(Ref(
                        ref.name, dims,
                        subs_to_section(ref.subs, loops, self.env),
                        loops, anchors, s, self._order, False,
                    ))

    def _expr_refs(self, e: A.Expr) -> list[A.ArrayRef]:
        return [x for x in A.walk_exprs(e) if isinstance(x, A.ArrayRef)]

    def _collect_cond(
        self, s: A.If, loops: list[LoopInfo], anchors: list[A.Stmt]
    ) -> None:
        """Branch conditions read distributed data too: their references
        join the normal planning (a loop-invariant slice becomes one
        hoisted broadcast — the pivot-search pattern); anything the
        classifier rejects is marked for the element-broadcast rewrite."""
        lv = loop_var_set(loops)
        order = self._next_order()
        for ref in self._expr_refs(s.cond):
            info = self.arrays.get(ref.name)
            if info is None or not info.distributed:
                continue
            dims = [classify_subscript(x, lv, self.env) for x in ref.subs]
            self.reads.append(Ref(
                ref.name, dims,
                subs_to_section(ref.subs, loops, self.env),
                loops, anchors, s, order, False,
            ))

    def _collect_call(
        self, s: A.Call, loops: list[LoopInfo], anchors: list[A.Stmt]
    ) -> None:
        order = self._next_order()
        site = self._site_of_call.get(id(s))
        lv = loop_var_set(loops)
        # scalar-expression argument reads
        for a in s.args:
            for ref in self._expr_refs(a):
                dims = [classify_subscript(x, lv, self.env) for x in ref.subs]
                self.reads.append(Ref(
                    ref.name, dims,
                    subs_to_section(ref.subs, loops, self.env),
                    loops, anchors, s, order, False,
                ))
        if site is None:
            return
        exports = self.callee_exports.get(site.callee)
        if exports is None:
            return
        bindings = site.actual_of
        arrays_map = array_binding(site, self.acg)
        # translated write/read RSD summaries become refs at this site
        for formal, sections in exports.writes.items():
            actual = arrays_map.get(formal)
            if actual is None:
                continue
            for sec in sections:
                tsec = translate_section(sec, bindings, self.env)
                dims = [classify_rsd_dim(d, lv, self.env) for d in tsec.dims]
                self.writes.append(Ref(
                    actual, dims, tsec, loops, anchors, s, order, True,
                    site=site,
                ))
        for formal, sections in exports.reads.items():
            actual = arrays_map.get(formal)
            if actual is None:
                continue
            for sec in sections:
                tsec = translate_section(sec, bindings, self.env)
                dims = [classify_rsd_dim(d, lv, self.env) for d in tsec.dims]
                self.reads.append(Ref(
                    actual, dims, tsec, loops, anchors, s, order, False,
                    site=site,
                ))

    # -- classification -------------------------------------------------------

    def classify_read(
        self, ref: Ref, constraint: Optional[Constraint]
    ) -> Optional[PendingComm]:
        """Decide what communication (if any) a read reference needs.

        Returns None for local accesses; raises :class:`_NeedsRTR` for
        patterns outside the compiled subset.
        """
        info = self.arrays.get(ref.array)
        if info is None or not info.distributed:
            return None
        if ref.array in self.plan.rtr_arrays:
            raise _NeedsRTR(self.plan.rtr_arrays[ref.array])
        axis = info.axis
        d = ref.dims[axis]
        dimdist = info.dist.dims[axis]
        lv = loop_var_set(ref.loops)
        if constraint is not None and constraint.dimdist != dimdist:
            raise _NeedsRTR(
                f"{ref.array}: distribution differs from the statement's "
                f"partition ({dimdist.describe()} vs "
                f"{constraint.dimdist.describe()})"
            )
        if constraint is not None and d.kind in ("var", "symrange") \
                and d.var == constraint.var:
            delta = d.off - constraint.off
            if d.kind == "symrange":
                raise _NeedsRTR(
                    f"{ref.array}: range subscript on the partitioned axis"
                )
            if delta == 0:
                return None
            if dimdist.kind == "block" and abs(delta) >= dimdist.block:
                raise _NeedsRTR(
                    f"{ref.array}: shift {delta} exceeds block size"
                )
            if delta < 0 and dimdist.kind == "block" and \
                    self._is_self_recurrence(ref, constraint):
                # x(i) = f(x(i-d)): a true dependence carried at the
                # partitioned loop.  Vectorized prefetch is illegal, but
                # the block layout admits coarse-grain pipelining: each
                # processor computes its whole block after receiving the
                # boundary strip its left neighbour finished producing.
                return PendingComm(
                    ref.array, "pipeline", axis, dimdist, ref.section,
                    delta=delta,
                    origin=f"{self.proc.name}:{expr_str_safe(ref)}",
                )
            if dimdist.kind == "block_cyclic":
                raise _NeedsRTR(
                    f"{ref.array}: shift across a block_cyclic "
                    f"distribution (multi-neighbour pattern)"
                )
            return PendingComm(
                ref.array, "shift", axis, dimdist, ref.section, delta=delta,
                origin=f"{self.proc.name}:{expr_str_safe(ref)}",
            )
        # single-owner slice: broadcast from its owner.  The subscript
        # may be a loop variable (the pivot column index k): placement
        # is then clamped inside that loop by the at-variable rule in
        # _place, giving one broadcast per iteration of *that* loop.
        if d.kind in ("const", "sym", "var"):
            sub_expr = self._axis_expr(ref, axis)
            if constraint is not None and _same_point(
                constraint, d
            ):
                return None  # owner-guarded statement reading its own slice
            return PendingComm(
                ref.array, "bcast", axis, dimdist, ref.section,
                at=sub_expr,
                origin=f"{self.proc.name}:{expr_str_safe(ref)}",
            )
        raise _NeedsRTR(
            f"{ref.array}: unsupported access on distributed axis "
            f"({d.kind})"
        )

    def _is_self_recurrence(self, ref: Ref, constraint) -> bool:
        """True when *ref* is the rhs of an assignment whose lhs is the
        same array at the partition subscript (the classic first-order
        recurrence), inside the partitioned loop."""
        s = ref.stmt
        if not isinstance(s, A.Assign) or not isinstance(s.target, A.ArrayRef):
            return False
        if s.target.name != ref.array:
            return False
        if not ref.loops or ref.loops[-1].var != constraint.var:
            return False
        # unit stride only: with a larger step the write and read sets
        # may be disjoint (red-black sweeps) and the wavefront protocol
        # would impose a dependence that does not exist
        if ref.loops[-1].step != A.ONE:
            return False
        return True

    def _axis_expr(self, ref: Ref, axis: int) -> A.Expr:
        d = ref.section.dims[axis]
        if isinstance(d, SymDim) and d.is_point:
            return d.lo
        if isinstance(d, Range) and d.lo == d.hi:
            return A.Num(d.lo)
        raise _NeedsRTR(f"{ref.array}: broadcast of non-point slice")

    # -- dependence-driven placement -------------------------------------------

    def placement_level(self, ref: Ref) -> tuple[int, bool]:
        """(level, pinned) for *ref*'s communication.

        ``level`` is the deepest loop that carries (or contains, for
        loop-independent deps) a true dependence whose sink is *ref* —
        the loop the message is vectorized within.  ``pinned`` is True
        when *any* true dependence from a local write reaches *ref*:
        then the communication must be generated in this procedure,
        placed after the write (the paper's §5.4 rule); only unpinned
        references may be delayed to the caller.
        """
        level = 0
        pinned = False
        for w in self.writes:
            if w.array != ref.array:
                continue
            common = _common_loops(w.loops, ref.loops)
            same_site = (
                w.site is not None and ref.site is not None
                and w.site is ref.site
            )
            same_stmt = w.stmt is ref.stmt
            w_before_r = (
                not same_site and not same_stmt and w.order <= ref.order
            )
            dep = true_dependence(
                w.dims, ref.dims, common, self.env, w_before_r=w_before_r
            )
            if dep is None:
                continue
            pinned = True
            if dep.carried_levels:
                level = max(level, dep.deepest())
            if dep.loop_independent:
                level = max(level, len(common))
        return level, pinned

    # -- main entry -------------------------------------------------------------

    def analyze(self) -> CommPlan:
        self.collect()
        self._build_summaries()
        # reads of local statements
        for ref in self.reads:
            if ref.site is not None:
                continue
            self._plan_ref(ref, from_site=None)
        # pending communication imported from call sites
        for site in self.acg.calls_from(self.proc.name):
            exports = self.callee_exports.get(site.callee)
            if exports is None:
                continue
            for p in exports.pending:
                self._import_pending(p, site)
        self._coalesce()
        return self.result

    def _plan_ref(self, ref: Ref, from_site: Optional[CallSite]) -> None:
        constraint = self.plan.stmt_constraint.get(id(ref.stmt))
        try:
            pending = self.classify_read(ref, constraint)
        except _NeedsRTR as e:
            why = str(e)
            if isinstance(ref.stmt, A.If):
                why = f"branch condition: {why}"
            self.result.rtr_stmts[id(ref.stmt)] = why
            return
        if pending is None:
            return
        self._place(pending, ref)

    def _import_pending(self, p: PendingComm, site: CallSite) -> None:
        actual = array_binding(site, self.acg).get(p.array)
        if actual is None:
            return
        info = self.arrays.get(actual)
        if info is None or not info.distributed:
            # COMMON arrays may not be declared in this procedure: the
            # pending's own distribution (validated by reaching in the
            # callee) is authoritative, so analysis proceeds
            if actual not in _program_commons(self.acg):
                return
        if actual in self.plan.rtr_arrays:
            self.result.rtr_stmts[id(site.stmt)] = (
                self.plan.rtr_arrays[actual]
            )
            return
        tsec = translate_section(p.section, site.actual_of, self.env)
        at = substitute(p.at, site.actual_of) if p.at is not None else None
        lv = {l.var for l in site.loops}
        dims = [classify_rsd_dim(d, lv, self.env) for d in tsec.dims]
        anchors = self._site_anchors(site)
        ref = Ref(actual, dims, tsec, site.loops, anchors, site.stmt,
                  self._order_of(site.stmt), False, site=site)
        pending = PendingComm(actual, p.kind, p.axis, p.dimdist, tsec,
                              delta=p.delta, at=at, origin=p.origin)
        self._place(pending, ref)

    def _order_of(self, stmt: A.Stmt) -> int:
        for w in self.writes:
            if w.stmt is stmt:
                return w.order
        for r in self.reads:
            if r.stmt is stmt:
                return r.order
        return self._order + 1

    def _site_anchors(self, site: CallSite) -> list[A.Stmt]:
        """Ancestor chain of a call statement at each loop depth."""
        anchors: list[A.Stmt] = []
        target: A.Stmt = site.stmt
        chain = _ancestor_chain(self.proc.body, target)
        # chain includes every enclosing statement; pick the one directly
        # inside each loop of site.loops (plus top level)
        depth_anchor: list[A.Stmt] = []
        bodies: list[list[A.Stmt]] = [self.proc.body]
        for l in site.loops:
            bodies.append(l.stmt.body)
        for b in bodies:
            a = _anchor_in(b, target, chain)
            depth_anchor.append(a if a is not None else target)
        return depth_anchor

    def _place(self, pending: PendingComm, ref: Ref) -> None:
        from ..analysis.symbolics import free_vars

        if pending.kind == "pipeline":
            # anchored at the partitioned (innermost) loop: the recv
            # precedes it, the send of the finished boundary follows it
            anchor = ref.anchors[len(ref.loops) - 1] if ref.loops else ref.stmt
            self.result.actions.append(
                CommAction(pending, anchor, len(ref.loops) - 1)
            )
            self.result.notes.append(
                f"pipelined at block granularity: {pending.describe()}"
            )
            return
        level, pinned = self.placement_level(ref)
        # A broadcast whose root subscript varies with a local loop
        # (e.g. the pivot column index k) selects a *different owner per
        # iteration*: it can never hoist above that loop, dependences or
        # not.
        if pending.kind == "bcast" and pending.at is not None:
            at_vars = free_vars(pending.at)
            for depth, l in enumerate(ref.loops, start=1):
                if l.var in at_vars:
                    level = max(level, depth)
        # Delaying hands the section/root expressions to the caller,
        # which can only evaluate formals and parameters — check on the
        # *expanded* section (loop bounds may themselves mention locals).
        exportable_names = set(self.proc.formals) | set(self.env)
        expanded = expand_section(pending.section, ref.loops, 0, self.env)
        mentioned: set[str] = set()
        if pending.at is not None:
            mentioned |= free_vars(pending.at)
        for d in expanded.dims:
            if isinstance(d, SymDim):
                mentioned |= free_vars(d.lo)
                if d.hi is not None:
                    mentioned |= free_vars(d.hi)
        translatable = mentioned <= exportable_names
        can_delay = (
            level == 0
            and not pinned
            and translatable
            and not self.is_main
            and self.opts.mode is Mode.INTER
            and self.opts.delay_communication
        )
        if can_delay:
            # vectorized over all local loops, in caller-translatable terms
            pending.section = expanded
            self.result.exported.append(pending)
            self.result.notes.append(
                f"delayed: {pending.describe()}"
            )
            return
        section = expand_section(pending.section, ref.loops, level, self.env)
        placed = PendingComm(pending.array, pending.kind, pending.axis,
                             pending.dimdist, section, delta=pending.delta,
                             at=pending.at, origin=pending.origin)
        anchor = ref.anchors[level] if level < len(ref.anchors) else ref.stmt
        if level == 0 and not ref.anchors:
            anchor = ref.stmt
        self.result.actions.append(CommAction(placed, anchor, level))
        self.result.notes.append(
            f"vectorized at level {level}: {placed.describe()}"
        )

    def _coalesce(self) -> None:
        """Merge identical/mergeable messages at the same anchor
        (message coalescing, §5.4), and subsume same-direction shifts:
        the boundary strip of a larger |delta| contains the smaller's
        (Livermore-kernel-style ``z(k+10)``/``z(k+11)`` pairs need one
        message, not two)."""
        self._subsume_shifts(self.result.actions)
        merged: list[CommAction] = []
        for act in self.result.actions:
            for m in merged:
                if (
                    m.pending.array == act.pending.array
                    and m.pending.kind == act.pending.kind
                    and m.pending.axis == act.pending.axis
                    and m.pending.delta == act.pending.delta
                    and m.pending.at == act.pending.at
                    and m.anchor is act.anchor
                ):
                    u = m.pending.section.merge(act.pending.section)
                    if u is not None:
                        m.pending.section = u
                        break
                    if m.pending.section == act.pending.section:
                        break
            else:
                merged.append(act)
                continue
        self.result.actions = merged
        exported: list[PendingComm] = []
        for p in self.result.exported:
            for q in exported:
                if (
                    q.array == p.array and q.kind == p.kind
                    and q.axis == p.axis and q.delta == p.delta
                    and q.at == p.at
                ):
                    u = q.section.merge(p.section)
                    if u is not None:
                        q.section = u
                        break
                    if q.section == p.section:
                        break
            else:
                exported.append(p)
        self.result.exported = exported

    def _subsume_shifts(self, actions: list[CommAction]) -> None:
        for act in list(actions):
            p = act.pending
            if p.kind != "shift":
                continue
            for other in actions:
                if other is act:
                    continue
                q = other.pending
                if (
                    q.kind == "shift"
                    and q.array == p.array
                    and q.axis == p.axis
                    and other.anchor is act.anchor
                    and q.delta * p.delta > 0
                    and abs(q.delta) >= abs(p.delta)
                    and q.section.dims[:q.axis] == p.section.dims[:p.axis]
                    and q.section.dims[q.axis + 1:] ==
                        p.section.dims[p.axis + 1:]
                ):
                    if abs(q.delta) > abs(p.delta) or other is not act:
                        actions.remove(act)
                        self.result.notes.append(
                            f"subsumed: {p.describe()} by {q.describe()}"
                        )
                        break

    # -- summaries for callers ---------------------------------------------------

    def _build_summaries(self) -> None:
        for w in self.writes:
            sec = expand_section(w.section, w.loops, 0, self.env)
            self.exports_writes.setdefault(w.array, []).append(sec)
        for r in self.reads:
            sec = expand_section(r.section, r.loops, 0, self.env)
            self.exports_reads.setdefault(r.array, []).append(sec)
        for d in (self.exports_writes, self.exports_reads):
            for arr, secs in d.items():
                from ..analysis.rsd import merge_rsd_list

                d[arr] = merge_rsd_list(secs)[:8]  # cap summary size


class _NeedsRTR(Exception):
    pass


def _same_point(c: Constraint, d: DimAccess) -> bool:
    if d.kind == "const":
        return False
    return c.var == d.var and c.off == d.off


def _common_loops(a: list[LoopInfo], b: list[LoopInfo]) -> list[LoopInfo]:
    out = []
    for x, y in zip(a, b):
        if x.stmt is y.stmt:
            out.append(x)
        else:
            break
    return out


def translate_section(sec: RSD, bindings: dict, env: dict) -> RSD:
    """Translate a section across a call boundary: substitute actuals for
    formals, folding numeric results."""
    from ..analysis.symbolics import fold

    dims: list = []
    for d in sec.dims:
        if isinstance(d, Range):
            dims.append(d)
            continue
        lo = fold(substitute(d.lo, bindings), env)
        hi = fold(substitute(d.hi, bindings), env) if d.hi is not None else None
        lo_i = eval_int(lo, env)
        hi_i = eval_int(hi, env) if hi is not None else None
        if hi is None:
            if lo_i is not None:
                dims.append(Range(lo_i, lo_i))
            else:
                dims.append(SymDim(lo))
        elif lo_i is not None and hi_i is not None:
            dims.append(Range(lo_i, hi_i))
        else:
            dims.append(SymDim(lo, hi))
    return RSD(tuple(dims))


def _program_commons(acg: ACG) -> set[str]:
    out: set[str] = set()
    for node in acg.nodes.values():
        out |= set(node.proc.commons)
    return out


def expr_str_safe(ref: Ref) -> str:
    return f"{ref.array}{ref.section}"


def _ancestor_chain(body: list[A.Stmt], target: A.Stmt) -> list[A.Stmt]:
    """Statements on the path from *body* down to *target* (inclusive)."""

    def find(b: list[A.Stmt]) -> Optional[list[A.Stmt]]:
        for s in b:
            if s is target:
                return [s]
            for blk in A.child_blocks(s):
                sub = find(blk)
                if sub is not None:
                    return [s] + sub
        return None

    return find(body) or [target]


def _anchor_in(
    body: list[A.Stmt], target: A.Stmt, chain: list[A.Stmt]
) -> Optional[A.Stmt]:
    # identity, not equality: two textually identical call statements
    # are distinct anchors
    for s in body:
        if any(s is c for c in chain):
            return s
    return None
