"""Reduction recognition.

The owner-computes rule has no owner for ``s = s + x(i)`` — the target
is a replicated scalar — so without special handling such loops fall
back to run-time resolution.  The Fortran D compiler family recognizes
*reduction idioms* instead: partition the loop by the distributed
operand, accumulate local partial results, and combine them with a
global reduction after the loop.

Supported shapes (``s`` a scalar, ``e`` reading a distributed array
indexed by the loop variable):

* ``s = s + e`` / ``s = e + s``            -> partial sums,   global sum
* ``s = min(s, e)`` / ``s = min(e, s)``    -> partial minima, global min
* ``s = max(s, e)`` / ``s = max(e, s)``    -> partial maxima, global max

For sums the incoming value of ``s`` must not be counted once per
processor, so the generated code snapshots it before the loop and adds
it back after the combine::

    s$red = s ; s = 0
    do i = <owned iterations>
      s = s + e(i)
    enddo
    global_sum(s)
    s = s + s$red
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..analysis.symbolics import affine_of
from ..lang import ast as A
from .model import Constraint
from .partition import ArrayInfo


@dataclass
class ReductionSpec:
    """One recognized reduction statement."""

    stmt: A.Assign
    var: str               # the accumulator scalar
    op: str                # "sum" | "min" | "max"
    loop: A.Do             # the partitioned loop
    constraint: Constraint  # owner constraint of the distributed operand
    temp: str              # snapshot temporary name


def _split_reduction_expr(
    target: str, e: A.Expr
) -> Optional[tuple[str, A.Expr]]:
    """Match ``target (+|min|max) rest``; returns (op, rest)."""
    if isinstance(e, A.BinOp) and e.op == "+":
        if e.left == A.Var(target):
            return ("sum", e.right)
        if e.right == A.Var(target):
            return ("sum", e.left)
    if isinstance(e, A.CallExpr) and e.name in ("min", "max") \
            and len(e.args) == 2:
        op = e.name
        if e.args[0] == A.Var(target):
            return (op, e.args[1])
        if e.args[1] == A.Var(target):
            return (op, e.args[0])
    return None


def _accumulator_ok(var: str, loop: A.Do, stmt: A.Assign) -> bool:
    """The accumulator may appear in the loop only inside *stmt* (one
    update per iteration, no other reads/writes)."""
    for s in A.walk_stmts(loop.body):
        if s is stmt:
            continue
        for e in A.stmt_exprs(s):
            for x in A.walk_exprs(e):
                if isinstance(x, A.Var) and x.name == var:
                    return False
        if isinstance(s, A.Assign) and isinstance(s.target, A.Var) \
                and s.target.name == var:
            return False
        if isinstance(s, A.Do) and s.var == var:
            return False
    return True


def recognize_reduction(
    stmt: A.Assign,
    loops: list[A.Do],
    arrays: dict[str, ArrayInfo],
    env: dict,
    temp_index: int,
) -> Optional[ReductionSpec]:
    """Try to recognize *stmt* (at loop nest *loops*) as a reduction over
    a distributed array partitioned by the innermost loop."""
    if not isinstance(stmt.target, A.Var) or not loops:
        return None
    var = stmt.target.name
    split = _split_reduction_expr(var, stmt.expr)
    if split is None:
        return None
    op, rest = split
    # the rest must not mention the accumulator again
    for x in A.walk_exprs(rest):
        if isinstance(x, A.Var) and x.name == var:
            return None
    # find a distributed-array read indexed by an enclosing loop var
    loop_by_var = {l.var: l for l in loops}
    candidate: Optional[tuple[A.Do, Constraint]] = None
    for x in A.walk_exprs(rest):
        if not isinstance(x, A.ArrayRef):
            continue
        info = arrays.get(x.name)
        if info is None or not info.distributed:
            continue
        sub = x.subs[info.axis]
        aff = affine_of(sub, env)
        if aff is None or aff.var not in loop_by_var:
            return None  # distributed read not aligned with a loop: bail
        dim = info.dist.dims[info.axis]
        c = Constraint(dim, sub, aff.var, aff.offset)
        if candidate is not None:
            prev_loop, prev_c = candidate
            if prev_loop is not loop_by_var[aff.var] or \
                    prev_c.dimdist != c.dimdist or prev_c.off != c.off:
                return None  # conflicting partitions
        candidate = (loop_by_var[aff.var], c)
    if candidate is None:
        return None
    loop, constraint = candidate
    if loop.step != A.ONE and constraint.dimdist.kind == "block":
        return None
    if not _accumulator_ok(var, loop, stmt):
        return None
    return ReductionSpec(
        stmt, var, op, loop, constraint, f"{var}$red{temp_index}"
    )


def reduction_prologue(spec: ReductionSpec) -> list[A.Stmt]:
    """Statements inserted before the partitioned loop."""
    out: list[A.Stmt] = [A.Assign(A.Var(spec.temp), A.Var(spec.var))]
    if spec.op == "sum":
        out.append(A.Assign(A.Var(spec.var), A.Num(0)))
    return out


def reduction_epilogue(spec: ReductionSpec) -> list[A.Stmt]:
    """Statements inserted after the partitioned loop: combine the
    partial results and restore the incoming contribution."""
    out: list[A.Stmt] = [A.GlobalReduce(spec.var, spec.op)]
    if spec.op == "sum":
        out.append(A.Assign(
            A.Var(spec.var),
            A.BinOp("+", A.Var(spec.var), A.Var(spec.temp)),
        ))
    else:
        fn = spec.op  # min / max against the incoming value
        out.append(A.Assign(
            A.Var(spec.var),
            A.CallExpr(fn, (A.Var(spec.var), A.Var(spec.temp))),
        ))
    return out
