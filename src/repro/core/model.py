"""Shared data model of the interprocedural compilation passes.

Everything a procedure exports to its callers when compiled in reverse
topological order (§5's "collect ... for callers") lives in
:class:`ProcExports`:

* the *delayed computation partition* — uniform iteration-set
  constraints on formal parameters (§5.3);
* the *delayed communication* — nonlocal index sets not yet instantiated
  (§5.4);
* interprocedural RSD summaries of array writes/reads (used for
  dependence testing at call sites);
* the dynamic-decomposition summary sets DecompUse/Kill/Before/After
  (§6.1);
* overlap offsets (§5.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..analysis.rsd import RSD
from ..dist import Distribution
from ..dist.distribution import DimDistribution
from ..lang import ast as A


@dataclass(frozen=True)
class Constraint:
    """One iteration-set constraint: "execute only where
    ``owner_coord(sub) == my$p`` on the (single) distributed axis".

    ``var``/``off`` describe the affine form ``var + off`` when the
    subscript is loop/formal-affine; ``sub`` is the full expression used
    for guard generation.
    """

    dimdist: DimDistribution
    sub: A.Expr
    var: Optional[str]
    off: int

    def shifted_to(self, new_sub: A.Expr, new_var: Optional[str]) -> "Constraint":
        return Constraint(self.dimdist, new_sub, new_var, self.off)


@dataclass
class PendingComm:
    """A nonlocal index set whose instantiation is delayed (§5.4).

    ``section`` is in the owning procedure's terms (formals symbolic).
    ``kind``:
      * ``shift`` — nearest-neighbour pattern: data at distance ``delta``
        in the distributed axis of the executing processor's own set;
      * ``bcast`` — a single owner's slice needed by all executing
        processors; ``at`` is the distributed-axis subscript expression.
    """

    array: str
    kind: str                     # "shift" | "bcast"
    axis: int                     # distributed array axis
    dimdist: DimDistribution
    section: RSD
    delta: int = 0                # for shift
    at: Optional[A.Expr] = None   # for bcast
    origin: str = ""              # provenance, for reports/tests

    def describe(self) -> str:
        if self.kind in ("shift", "pipeline"):
            return (f"{self.kind}({self.delta}) {self.array}{self.section} "
                    f"[{self.origin}]")
        from ..lang.printer import expr_str

        return (f"bcast@{expr_str(self.at)} {self.array}{self.section} "
                f"[{self.origin}]")


@dataclass
class DecompSets:
    """§6.1 summary sets, in the procedure's own (formal) terms.

    ``after[X] is None`` means "restore the caller's inherited
    decomposition" (the callee cannot know which one that is — exactly
    why instantiation is delayed to the caller).
    """

    use: set[str] = field(default_factory=set)
    kill: set[str] = field(default_factory=set)
    #: array -> distribution it must have before invoking the procedure
    before: dict[str, Distribution] = field(default_factory=dict)
    #: array -> distribution to restore after the procedure returns
    #: (None = the caller's own current distribution)
    after: dict[str, Optional[Distribution]] = field(default_factory=dict)
    #: array -> distribution the array actually has when the procedure
    #: returns (statically known cases only)
    exit: dict[str, Optional[Distribution]] = field(default_factory=dict)
    #: arrays whose first access in the procedure overwrites every
    #: element before any read (array-kill analysis, §6.3)
    full_kill: set[str] = field(default_factory=set)


@dataclass
class ProcExports:
    """Everything a compiled procedure passes up to its callers."""

    name: str
    #: the uniform procedure-level constraint (owner-computes over a
    #: formal parameter) whose instantiation is delayed to callers
    constraint: Optional[Constraint] = None
    #: delayed nonlocal index sets
    pending: list[PendingComm] = field(default_factory=list)
    #: array -> write RSD summaries (formal terms)
    writes: dict[str, list[RSD]] = field(default_factory=dict)
    #: array -> read RSD summaries (formal terms)
    reads: dict[str, list[RSD]] = field(default_factory=dict)
    decomp: DecompSets = field(default_factory=DecompSets)
    #: array -> per-axis (lo_off, hi_off) overlap offsets
    overlap_offsets: dict[str, list[tuple[int, int]]] = field(
        default_factory=dict
    )

    def add_write(self, array: str, section: RSD) -> None:
        self.writes.setdefault(array, []).append(section)

    def add_read(self, array: str, section: RSD) -> None:
        self.reads.setdefault(array, []).append(section)


class CompileError(Exception):
    """Input outside the compilable subset with no safe fallback."""
