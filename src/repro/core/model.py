"""Shared data model of the interprocedural compilation passes.

Everything a procedure exports to its callers when compiled in reverse
topological order (§5's "collect ... for callers") lives in
:class:`ProcExports`:

* the *delayed computation partition* — uniform iteration-set
  constraints on formal parameters (§5.3);
* the *delayed communication* — nonlocal index sets not yet instantiated
  (§5.4);
* interprocedural RSD summaries of array writes/reads (used for
  dependence testing at call sites);
* the dynamic-decomposition summary sets DecompUse/Kill/Before/After
  (§6.1);
* overlap offsets (§5.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..analysis.rsd import RSD
from ..dist import Distribution
from ..dist.distribution import DimDistribution
from ..lang import ast as A


@dataclass(frozen=True)
class Constraint:
    """One iteration-set constraint: "execute only where
    ``owner_coord(sub) == my$p`` on the (single) distributed axis".

    ``var``/``off`` describe the affine form ``var + off`` when the
    subscript is loop/formal-affine; ``sub`` is the full expression used
    for guard generation.
    """

    dimdist: DimDistribution
    sub: A.Expr
    var: Optional[str]
    off: int

    def shifted_to(self, new_sub: A.Expr, new_var: Optional[str]) -> "Constraint":
        return Constraint(self.dimdist, new_sub, new_var, self.off)


@dataclass
class PendingComm:
    """A nonlocal index set whose instantiation is delayed (§5.4).

    ``section`` is in the owning procedure's terms (formals symbolic).
    ``kind``:
      * ``shift`` — nearest-neighbour pattern: data at distance ``delta``
        in the distributed axis of the executing processor's own set;
      * ``bcast`` — a single owner's slice needed by all executing
        processors; ``at`` is the distributed-axis subscript expression.
    """

    array: str
    kind: str                     # "shift" | "bcast"
    axis: int                     # distributed array axis
    dimdist: DimDistribution
    section: RSD
    delta: int = 0                # for shift
    at: Optional[A.Expr] = None   # for bcast
    origin: str = ""              # provenance, for reports/tests

    def describe(self) -> str:
        if self.kind in ("shift", "pipeline"):
            return (f"{self.kind}({self.delta}) {self.array}{self.section} "
                    f"[{self.origin}]")
        from ..lang.printer import expr_str

        return (f"bcast@{expr_str(self.at)} {self.array}{self.section} "
                f"[{self.origin}]")


@dataclass
class DecompSets:
    """§6.1 summary sets, in the procedure's own (formal) terms.

    ``after[X] is None`` means "restore the caller's inherited
    decomposition" (the callee cannot know which one that is — exactly
    why instantiation is delayed to the caller).
    """

    use: set[str] = field(default_factory=set)
    kill: set[str] = field(default_factory=set)
    #: array -> distribution it must have before invoking the procedure
    before: dict[str, Distribution] = field(default_factory=dict)
    #: array -> distribution to restore after the procedure returns
    #: (None = the caller's own current distribution)
    after: dict[str, Optional[Distribution]] = field(default_factory=dict)
    #: array -> distribution the array actually has when the procedure
    #: returns (statically known cases only)
    exit: dict[str, Optional[Distribution]] = field(default_factory=dict)
    #: arrays whose first access in the procedure overwrites every
    #: element before any read (array-kill analysis, §6.3)
    full_kill: set[str] = field(default_factory=set)


@dataclass
class ProcExports:
    """Everything a compiled procedure passes up to its callers."""

    name: str
    #: the uniform procedure-level constraint (owner-computes over a
    #: formal parameter) whose instantiation is delayed to callers
    constraint: Optional[Constraint] = None
    #: delayed nonlocal index sets
    pending: list[PendingComm] = field(default_factory=list)
    #: array -> write RSD summaries (formal terms)
    writes: dict[str, list[RSD]] = field(default_factory=dict)
    #: array -> read RSD summaries (formal terms)
    reads: dict[str, list[RSD]] = field(default_factory=dict)
    decomp: DecompSets = field(default_factory=DecompSets)
    #: array -> per-axis (lo_off, hi_off) overlap offsets
    overlap_offsets: dict[str, list[tuple[int, int]]] = field(
        default_factory=dict
    )

    def add_write(self, array: str, section: RSD) -> None:
        self.writes.setdefault(array, []).append(section)

    def add_read(self, array: str, section: RSD) -> None:
        self.reads.setdefault(array, []).append(section)


class CompileError(Exception):
    """Input outside the compilable subset with no safe fallback."""


# ---------------------------------------------------------------------------
# distribution-plan overrides (``fdc --distribute`` / the auto-tuner)
# ---------------------------------------------------------------------------

#: distribution kinds a user or the tuner may request per dimension
DIST_KINDS = ("block", "cyclic", "block_cyclic")


@dataclass(frozen=True)
class DistOverride:
    """One array's distribution override.

    ``specs`` is a tuple of per-dimension ``(kind, param)`` pairs in
    :class:`~repro.lang.ast.DistSpec` terms.  A single-entry tuple on a
    multi-dimensional array is *elastic*: the kind applies to every
    dimension the source program distributes, non-distributed (``:``)
    dimensions stay put — so ``a=cyclic`` turns ``distribute a(:, block)``
    into ``distribute a(:, cyclic)`` without knowing the axis.
    """

    array: str
    specs: tuple[tuple[str, Optional[int]], ...]

    @staticmethod
    def parse(text: str) -> "DistOverride":
        """Parse ``ARRAY=KIND[:k]`` or ``ARRAY=SPEC,SPEC,...`` (each SPEC
        one of ``block``, ``cyclic``, ``block_cyclic:k``, or ``:``).
        Raises ``ValueError`` with a usage-quality message."""
        if "=" not in text:
            raise ValueError(
                f"bad --distribute {text!r}: expected ARRAY=KIND[:k] "
                f"(kinds: {', '.join(DIST_KINDS)}) or ARRAY=SPEC,SPEC,..."
            )
        array, _, rhs = text.partition("=")
        array = array.strip()
        if not array.isidentifier():
            raise ValueError(
                f"bad --distribute {text!r}: {array!r} is not an array name"
            )
        if not rhs.strip():
            raise ValueError(f"bad --distribute {text!r}: empty spec")
        specs: list[tuple[str, Optional[int]]] = []
        for part in rhs.split(","):
            part = part.strip()
            if part == ":":
                specs.append(("none", None))
                continue
            kind, _, param = part.partition(":")
            kind = kind.strip().lower()
            if kind not in DIST_KINDS:
                raise ValueError(
                    f"bad --distribute {text!r}: unknown kind {kind!r} "
                    f"(expected one of {', '.join(DIST_KINDS)} or ':')"
                )
            if kind == "block_cyclic":
                if not param:
                    raise ValueError(
                        f"bad --distribute {text!r}: block_cyclic needs "
                        f"a block size, e.g. {array}=block_cyclic:4"
                    )
                try:
                    k = int(param)
                except ValueError:
                    raise ValueError(
                        f"bad --distribute {text!r}: block size "
                        f"{param!r} is not an integer"
                    ) from None
                if k < 1:
                    raise ValueError(
                        f"bad --distribute {text!r}: block size must "
                        f"be >= 1"
                    )
                specs.append((kind, k))
            else:
                if param:
                    raise ValueError(
                        f"bad --distribute {text!r}: {kind} takes no "
                        f"parameter"
                    )
                specs.append((kind, None))
        return DistOverride(array, tuple(specs))

    def describe(self) -> str:
        def one(kind, param):
            if kind == "none":
                return ":"
            if kind == "block_cyclic":
                return f"block_cyclic:{param}"
            return kind

        return f"{self.array}=" + ",".join(one(k, p) for k, p in self.specs)


def parse_distribute_args(args: list[str]) -> tuple[DistOverride, ...]:
    """Parse repeated ``--distribute`` values; later overrides of the
    same array win (the tuner refines plans that way)."""
    by_array: dict[str, DistOverride] = {}
    for a in args:
        ov = DistOverride.parse(a)
        by_array[ov.array] = ov
    return tuple(by_array.values())


def apply_dist_overrides(prog, overrides) -> None:
    """Rewrite every DISTRIBUTE statement of each overridden array,
    program-wide (main *and* procedures — a phase-local DISTRIBUTE is a
    remap point, and pinning the array to one layout collapses it).

    Mutates *prog* in place.  Raises :class:`CompileError` when an
    override names an array no DISTRIBUTE statement targets, or when an
    explicit per-dimension spec list does not match the statement's
    dimensionality.
    """
    if not overrides:
        return
    by_array = {ov.array: ov for ov in overrides}
    seen: set[str] = set()
    known: set[str] = set()
    for unit in prog.units:
        for s in A.walk_stmts(unit.body):
            if not isinstance(s, A.Distribute):
                continue
            known.add(s.name)
            ov = by_array.get(s.name)
            if ov is None:
                continue
            seen.add(s.name)
            s.specs = _overridden_specs(unit.name, s, ov)
    missing = sorted(set(by_array) - seen)
    if missing:
        raise CompileError(
            f"--distribute names unknown array(s) {', '.join(missing)}: "
            f"no DISTRIBUTE statement targets them (distributed arrays: "
            f"{', '.join(sorted(known)) or 'none'})"
        )


def _overridden_specs(proc_name: str, stmt, ov: DistOverride):
    old = list(stmt.specs)
    if len(ov.specs) == 1 and len(old) > 1:
        # elastic form: retarget only the distributed dimensions
        kind, param = ov.specs[0]
        if kind == "none":
            raise CompileError(
                f"--distribute {ov.describe()}: ':' alone would "
                f"undistribute {ov.array}; spell out every dimension"
            )
        return [
            A.DistSpec(kind, param) if sp.kind != "none" else sp
            for sp in old
        ]
    if len(ov.specs) != len(old):
        raise CompileError(
            f"--distribute {ov.describe()}: {len(ov.specs)} spec(s) for "
            f"{len(old)}-dimensional DISTRIBUTE of {ov.array} in "
            f"{proc_name}"
        )
    return [A.DistSpec(kind, param) for kind, param in ov.specs]
