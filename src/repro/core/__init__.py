"""The interprocedural Fortran D compiler (the paper's contribution)."""

from .driver import CompiledProgram, ProcedureCompiler, compile_program
from .model import (
    CompileError,
    Constraint,
    DecompSets,
    DistOverride,
    PendingComm,
    ProcExports,
    parse_distribute_args,
)
from .localize import layout_summary, localized_procedure_text
from .options import CompileReport, DynOpt, Mode, Options
from .overlaps import (
    OverlapEstimate,
    estimate_overlaps,
    local_offsets,
    validate_overlaps,
)
from .recompile import RecompilationManager, source_fingerprint

__all__ = [
    "compile_program",
    "CompiledProgram",
    "ProcedureCompiler",
    "Options",
    "Mode",
    "DynOpt",
    "CompileReport",
    "CompileError",
    "Constraint",
    "DistOverride",
    "parse_distribute_args",
    "PendingComm",
    "ProcExports",
    "DecompSets",
    "localized_procedure_text",
    "layout_summary",
    "estimate_overlaps",
    "local_offsets",
    "validate_overlaps",
    "OverlapEstimate",
    "RecompilationManager",
    "source_fingerprint",
]
