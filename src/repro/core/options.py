"""Compiler options and compilation modes.

The three modes are the paper's comparison axes:

* ``RTR``   — run-time resolution everywhere (Figure 3): every reference
  is guarded by ownership tests and nonlocal elements move in individual
  messages.  The no-information baseline.
* ``INTRA`` — compile-time intraprocedural compilation with *immediate
  instantiation* at procedure boundaries (Figure 12): decompositions are
  known (as if supplied by interface blocks), but the computation
  partition and communication are instantiated inside each procedure, so
  no optimization crosses a call boundary (§5.5).
* ``INTER`` — full interprocedural compilation (Figure 10): reaching
  decompositions, cloning, and delayed instantiation of partition,
  communication, and dynamic data decomposition.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Mode(enum.Enum):
    RTR = "rtr"
    INTRA = "intra"
    INTER = "inter"


class DynOpt(enum.IntEnum):
    """Dynamic data decomposition optimization levels (Figure 16 a-d)."""

    NONE = 0          # remap before/after every call (16a)
    LIVE = 1          # + live decompositions: dead remaps removed,
                      #   identical live remaps coalesced (16b)
    HOIST = 2         # + loop-invariant decompositions hoisted (16c)
    KILLS = 3         # + array kills: remap dead arrays in place (16d)


@dataclass
class Options:
    """Knobs of one compilation."""

    nprocs: int = 4
    mode: Mode = Mode.INTER
    dynopt: DynOpt = DynOpt.KILLS
    #: master switches for ablation benches (INTER mode only)
    delay_communication: bool = True
    delay_partition: bool = True
    enable_cloning: bool = True
    #: abort cloning when program grows beyond this factor (§5.2:
    #: "cloning may be disabled when a threshold program growth has been
    #: exceeded, forcing run-time resolution instead")
    clone_growth_limit: float = 8.0
    #: emit parameterized overlap bounds (Figure 14) in localized output
    parameterized_overlaps: bool = False
    #: collect human-readable notes about decisions taken
    verbose_notes: bool = True
    #: when False (the default), a procedure whose analysis fails or
    #: that uses an unsupported construct is *demoted* to the run-time
    #: resolution compilation path instead of aborting the whole
    #: compilation — exactly the paper's fallback (§1, §4).  strict=True
    #: preserves the hard-error behavior for tests and debugging.
    strict: bool = False
    #: distribution-plan overrides applied to the parsed program before
    #: any analysis runs (a tuple of :class:`~repro.core.model.DistOverride`):
    #: every DISTRIBUTE statement naming an overridden array is rewritten
    #: to the override's specs, so a candidate layout applies without
    #: editing source (``fdc --distribute`` / the auto-tuner).
    distribute: tuple = ()

    def notes_sink(self) -> list[str]:
        return []


@dataclass
class CompileReport:
    """What the compiler did — asserted by tests and shown by examples."""

    mode: Mode = Mode.INTER
    nprocs: int = 0
    cloned: dict[str, list[str]] = field(default_factory=dict)
    #: procedure -> array -> distribution string
    distributions: dict[str, dict[str, str]] = field(default_factory=dict)
    #: messages vectorized at each placement (for inspection)
    comm_placements: list[str] = field(default_factory=list)
    #: machine-readable communication sites: (procedure, array, kind) —
    #: the auto-tuner's map from traffic back to tunable arrays
    comm_sites: list[tuple[str, str, str]] = field(default_factory=list)
    #: arrays that fell back to run-time resolution, with reasons
    rtr_fallbacks: list[str] = field(default_factory=list)
    #: whole procedures demoted to the run-time-resolution path after an
    #: analysis failure (strict=False graceful degradation), with reasons
    rtr_demotions: list[str] = field(default_factory=list)
    #: remap statements emitted / eliminated / hoisted / marked
    remaps_emitted: int = 0
    remaps_eliminated: int = 0
    remaps_hoisted: int = 0
    remaps_marked: int = 0
    #: overlap extents per (procedure, array): list of (lo_off, hi_off)
    overlaps: dict[tuple[str, str], list[tuple[int, int]]] = field(
        default_factory=dict
    )
    notes: list[str] = field(default_factory=list)

    def note(self, msg: str) -> None:
        self.notes.append(msg)
