"""The whole-program Fortran D compiler driver.

Phases (§4, §5):

1. **Local analysis** — reaching-decomposition summaries, directive
   tables, call graph construction (the ACG).
2. **Interprocedural propagation** — reaching decompositions top-down,
   procedure cloning, side effects.
3. **Interprocedural code generation** — one pass over the procedures in
   reverse topological order; each :class:`ProcedureCompiler` consumes
   its callees' exports (delayed partitions, pending communication, RSD
   summaries, decomposition sets) and produces its own.

The result executes directly on the simulated machine via
:meth:`CompiledProgram.run`.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from contextlib import nullcontext
from dataclasses import astuple, dataclass
from typing import Optional, Union

from ..analysis.symbolics import affine_of, eval_const
from ..callgraph.acg import ACG
from ..dist import Distribution
from ..interp.interpreter import SPMDResult, run_spmd
from ..lang import ast as A
from ..lang import parse, program_str
from ..machine.costmodel import CostModel, IPSC860
from ..obs import resolve_trace
from .cloning import clone_program
from .codegen import (
    RewritePlan,
    TagAllocator,
    build_comm,
    build_p2p_from_bcast,
    ensure_myproc,
    rewrite_body,
    rtr_rewrite_assign,
)
from .communication import CommPlanner
from .dynamic import DynamicDecompPlanner
from .model import (
    CompileError,
    Constraint,
    ProcExports,
    apply_dist_overrides,
)
from .options import Mode, Options, CompileReport
from .partition import (
    PartitionPlan,
    UnsupportedSubscript,
    owner_constraint,
    plan_blocks,
    resolve_arrays,
)
from .reaching import ReachingResult, compute_reaching


@dataclass
class CompiledProgram:
    """A compiled SPMD node program plus everything needed to run it."""

    program: A.Program
    initial_dists: dict[tuple[str, str], Distribution]
    report: CompileReport
    opts: Options

    def run(
        self,
        cost: CostModel = IPSC860,
        timeout_s: Optional[float] = None,
        init_fn=None,
        vectorize: Optional[bool] = None,
        faults=None,
        scheduler: Optional[str] = None,
        trace=None,
        topology=None,
        codegen: Optional[bool] = None,
        metrics=None,
    ) -> SPMDResult:
        """Execute on the simulated machine.  *timeout_s* defaults to
        ``REPRO_SIM_TIMEOUT`` (else 60 s); *faults* is an optional
        :class:`~repro.machine.faults.FaultPlan` (``REPRO_FAULTS`` when
        None); *scheduler* selects the simulation backend
        (``REPRO_SCHEDULER`` or ``"coop"`` when None); *trace* enables
        event tracing (a :class:`~repro.obs.Tracer`, ``True``, or the
        ``REPRO_TRACE`` environment variable when None); *topology*
        selects the interconnect (a Topology instance, a name like
        ``"hypercube"``, or ``REPRO_TOPOLOGY`` / uniform when None);
        *codegen* selects generated node programs vs the interpreter
        (``REPRO_CODEGEN``, default on) — with ``Options.strict`` any
        codegen demotion becomes a hard error; *metrics* enables the
        metrics registry (a :class:`~repro.obs.MetricsRegistry`,
        ``True`` for the default registry, or ``REPRO_METRICS`` when
        None)."""
        from ..interp.interpreter import default_init

        return run_spmd(
            self.program,
            self.opts.nprocs,
            cost,
            initial_dists=self.initial_dists,
            init_fn=init_fn or default_init,
            timeout_s=timeout_s,
            vectorize=vectorize,
            faults=faults,
            scheduler=scheduler,
            trace=trace,
            topology=topology,
            codegen=codegen,
            codegen_strict=self.opts.strict,
            metrics=metrics,
        )

    def text(self) -> str:
        """The generated node program, Figure-2/10-style."""
        return program_str(self.program)

    def explain(self) -> str:
        """Human-readable compilation narrative: distributions chosen,
        clones created, communication placements, remap optimization
        counts, overlaps, and any run-time-resolution fallbacks."""
        r = self.report
        lines = [
            f"mode={r.mode.value} nprocs={r.nprocs}",
            "",
            "data partitioning:",
        ]
        for proc, dists in sorted(r.distributions.items()):
            for arr, d in sorted(dists.items()):
                lines.append(f"  {proc}.{arr}: {d}")
        if r.cloned:
            lines.append("")
            lines.append("procedure cloning:")
            for base, clones in sorted(r.cloned.items()):
                lines.append(f"  {base} -> {base}, {', '.join(clones)}")
        if r.comm_placements:
            lines.append("")
            lines.append("communication:")
            for c in r.comm_placements:
                lines.append(f"  {c}")
        if r.remaps_emitted or r.remaps_eliminated or r.remaps_hoisted \
                or r.remaps_marked:
            lines.append("")
            lines.append(
                f"dynamic decomposition: emitted={r.remaps_emitted} "
                f"eliminated={r.remaps_eliminated} "
                f"hoisted={r.remaps_hoisted} marked={r.remaps_marked}"
            )
        if r.overlaps:
            lines.append("")
            lines.append("overlap regions:")
            for (proc, arr), offs in sorted(r.overlaps.items()):
                lines.append(f"  {proc}.{arr}: {offs}")
        if r.rtr_fallbacks:
            lines.append("")
            lines.append("run-time resolution fallbacks:")
            for f in r.rtr_fallbacks:
                lines.append(f"  {f}")
        if r.rtr_demotions:
            lines.append("")
            lines.append("procedures demoted to run-time resolution:")
            for d in r.rtr_demotions:
                lines.append(f"  {d}")
        return "\n".join(lines)


class ProcedureCompiler:
    """Compiles one procedure in the reverse-topological sweep."""

    def __init__(
        self,
        proc: A.Procedure,
        acg: ACG,
        reaching: ReachingResult,
        opts: Options,
        callee_exports: dict[str, ProcExports],
        report: CompileReport,
        tags: TagAllocator,
        is_main: bool,
        tracer=None,
    ) -> None:
        self.proc = proc
        self.acg = acg
        self.reaching = reaching
        self.opts = opts
        self.callee_exports = callee_exports
        self.report = report
        self.tags = tags
        self.is_main = is_main
        self.tracer = tracer
        env = dict(_param_env(proc))
        consts = getattr(reaching, "constants", None) or {}
        env.update(consts.get(proc.name, {}))
        self.env = env

    # ------------------------------------------------------------------

    def _decide(self, name: str, **fields) -> None:
        """Record a compilation decision when tracing is enabled."""
        if self.tracer is not None:
            self.tracer.decision(name, **fields)

    def compile(self) -> ProcExports:
        proc, opts = self.proc, self.opts
        pr = self.reaching.per_proc[proc.name]
        arrays, rtr_arrays = resolve_arrays(proc, pr, opts)
        self.report.distributions[proc.name] = {
            n: (str(i.dist) if i.dist else "replicated")
            for n, i in arrays.items()
        }
        for n, d in sorted(self.report.distributions[proc.name].items()):
            self._decide("distribution", proc=proc.name, array=n, dist=d)
        for n, why in rtr_arrays.items():
            self.report.rtr_fallbacks.append(f"{proc.name}.{n}: {why}")
            self._decide("rtr-fallback", proc=proc.name,
                         why=f"{n}: {why}")

        if opts.mode is Mode.RTR:
            return self._compile_rtr(arrays, rtr_arrays)

        forced_rtr: dict[int, str] = {}
        allow_export = True
        for _round in range(8):
            plan = PartitionPlan(arrays=arrays, rtr_arrays=dict(rtr_arrays))
            plan.rtr_stmts.update(forced_rtr)
            self._assign_constraints(plan)
            plan_blocks(proc, plan, opts, self.env, self.is_main,
                        allow_export=allow_export)
            planner = CommPlanner(
                proc, self.acg, arrays, plan, opts,
                self.callee_exports, self.env, self.is_main,
            )
            comm = planner.analyze()
            self._check_collective_safety(plan, comm)
            self._reduction_safety(plan)
            for sid, why in plan.rtr_stmts.items():
                if sid not in forced_rtr and "reduction over" in why:
                    comm.rtr_stmts.setdefault(sid, why)
            # An exported constraint means callers may restrict who calls
            # this procedure; any synchronizing construct in its body
            # (pipeline exchanges, collectives other than the degraded
            # point-to-point broadcast) would then desynchronize.  Cancel
            # the export and guard internally instead.
            if allow_export and plan.export is not None and (
                any(a.pending.kind == "pipeline" for a in comm.actions)
                or plan.reductions
            ):
                allow_export = False
                continue
            new_rtr = {
                sid: why for sid, why in comm.rtr_stmts.items()
                if sid not in forced_rtr
            }
            if not new_rtr:
                break
            forced_rtr.update(new_rtr)
            for why in new_rtr.values():
                self.report.rtr_fallbacks.append(f"{proc.name}: {why}")
                self._decide("rtr-fallback", proc=proc.name, why=why)
        else:  # pragma: no cover - the fixpoint always terminates
            raise CompileError(f"{proc.name}: partition planning diverged")

        dyn = DynamicDecompPlanner(
            proc, self.acg, arrays, opts, self.callee_exports, self.env,
            self.is_main, self.report, reaching_pr=pr,
        )
        dyn_plan = dyn.analyze()

        self._rewrite(plan, comm, dyn_plan, arrays)
        exports = ProcExports(proc.name)
        exports.constraint = plan.export
        exports.pending = comm.exported
        exports.writes = _sanitize_summaries(
            planner.exports_writes, proc, arrays
        )
        exports.reads = _sanitize_summaries(
            planner.exports_reads, proc, arrays
        )
        exports.decomp = dyn_plan.sets
        exports.overlap_offsets = self._overlaps(comm, arrays)
        for act in comm.actions:
            self.report.comm_placements.append(
                f"{proc.name}: level {act.level} {act.pending.describe()}"
            )
            self.report.comm_sites.append(
                (proc.name, act.pending.array, act.pending.kind)
            )
            self._decide("comm-placement", proc=proc.name, level=act.level,
                         placement=act.pending.describe())
        return exports

    # -- constraints ------------------------------------------------------

    def _assign_constraints(self, plan: PartitionPlan) -> None:
        site_of = {id(s.stmt): s for s in self.acg.calls_from(self.proc.name)}
        self._detect_reductions(plan)
        for s in A.walk_stmts(self.proc.body):
            sid = id(s)
            if sid in plan.rtr_stmts or sid in plan.reductions:
                continue
            if isinstance(s, A.Assign) and isinstance(s.target, A.ArrayRef):
                info = plan.arrays.get(s.target.name)
                if info is None:
                    continue
                if s.target.name in plan.rtr_arrays:
                    plan.rtr_stmts[sid] = plan.rtr_arrays[s.target.name]
                    continue
                if not info.distributed:
                    plan.stmt_constraint[sid] = None
                    continue
                try:
                    plan.stmt_constraint[sid] = owner_constraint(
                        info, s.target.subs, self.env
                    )
                except UnsupportedSubscript as e:
                    why = (
                        f"unsupported lhs subscript {e} on {s.target.name}"
                    )
                    plan.rtr_stmts[sid] = why
                    full = f"{self.proc.name}: {why}"
                    if full not in self.report.rtr_fallbacks:
                        self.report.rtr_fallbacks.append(full)
                        self._decide("rtr-fallback", proc=self.proc.name,
                                     why=why)
            elif isinstance(s, A.Call):
                site = site_of.get(sid)
                if site is None:
                    continue
                exp = self.callee_exports.get(site.callee)
                if exp is None or exp.constraint is None:
                    plan.stmt_constraint[sid] = None
                    continue
                c = exp.constraint
                new_sub = site.translate_expr(c.sub)
                aff = affine_of(new_sub, self.env)
                plan.stmt_constraint[sid] = Constraint(
                    c.dimdist, new_sub,
                    aff.var if aff else None,
                    aff.offset if aff else 0,
                )

    def _detect_reductions(self, plan: PartitionPlan) -> None:
        """Recognize reduction idioms (core.reductions); a recognized
        statement is partitioned by its distributed operand and combined
        with a global reduction after the loop."""
        from .reductions import recognize_reduction

        # reductions are an intraprocedural recognition: both compile-
        # time modes get them; only run-time resolution goes without
        if self.opts.mode is Mode.RTR:
            return
        counter = [0]

        def walk(body, loops):
            for s in body:
                if isinstance(s, A.Do):
                    walk(s.body, loops + [s])
                elif isinstance(s, A.If):
                    walk(s.then_body, loops)
                    walk(s.else_body, loops)
                elif isinstance(s, A.Assign) and isinstance(s.target, A.Var):
                    counter[0] += 1
                    spec = recognize_reduction(
                        s, loops, plan.arrays, self.env, counter[0]
                    )
                    if spec is not None and \
                            spec.constraint.dimdist.kind in ("block", "cyclic"):
                        plan.reductions[id(s)] = spec
                        plan.stmt_constraint[id(s)] = spec.constraint

        walk(self.proc.body, [])

    def _reduction_safety(self, plan: PartitionPlan) -> None:
        """The combining GlobalReduce is a collective: every loop
        enclosing the reduction loop must be executed by all processors.
        Otherwise the recognition is withdrawn (the statement falls back
        to run-time resolution in the next planning round)."""
        for sid, spec in list(plan.reductions.items()):
            bad = False
            for anc in _ancestors_of(self.proc.body, spec.loop):
                if id(anc) in plan.loop_reduce or id(anc) in plan.guard_stmt:
                    bad = True
                    break
            if bad:
                del plan.reductions[sid]
                plan.stmt_constraint.pop(sid, None)
                plan.rtr_stmts[sid] = (
                    f"reduction over {spec.var} nested inside a "
                    f"partitioned loop"
                )

    # -- safety: collectives & matched sends must be reached by all procs --

    def _check_collective_safety(self, plan: PartitionPlan, comm) -> None:
        reduced = set(plan.loop_reduce)
        guarded = set(plan.guard_stmt)
        for act in list(comm.actions):
            path = act.anchor
            # every enclosing loop up to the placement level must be
            # executed identically by all processors
            bad = False
            for anc in _ancestors_of(self.proc.body, act.anchor):
                if id(anc) in reduced or id(anc) in guarded:
                    bad = True
                    break
            if bad:
                comm.actions.remove(act)
                sid = id(act.anchor)
                comm.rtr_stmts[sid] = (
                    f"communication for {act.pending.array} pinned inside a "
                    f"partitioned loop (no pipelinable recurrence form)"
                )

    # -- rewriting -----------------------------------------------------------

    def _rewrite(self, plan, comm, dyn_plan, arrays) -> None:
        rw = RewritePlan()
        rw.loop_reduce = plan.loop_reduce
        rw.guard_stmt = dict(plan.guard_stmt)
        rw.replace.update(dyn_plan.replace)
        for sid, stmts in dyn_plan.insert_before.items():
            rw.insert_before.setdefault(sid, []).extend(stmts)
        for sid, stmts in dyn_plan.insert_after.items():
            rw.insert_after.setdefault(sid, []).extend(stmts)
        distributed = {
            n for n, i in arrays.items()
            if i.distributed or n in plan.rtr_arrays
        }
        # reduction prologues/epilogues around their partitioned loops
        from .reductions import reduction_epilogue, reduction_prologue

        for spec in plan.reductions.values():
            rw.insert_before.setdefault(id(spec.loop), []).extend(
                reduction_prologue(spec)
            )
            rw.insert_after.setdefault(id(spec.loop), []).extend(
                reduction_epilogue(spec)
            )
        # communication insertions
        for act in comm.actions:
            if act.pending.kind == "pipeline":
                continue  # second pass: their receives must follow all
                          # pre-loop sends or a wavefront could deadlock
            recv_c = None
            if act.pending.kind == "bcast":
                # A collective may only be instantiated where *all*
                # processors execute.  When the whole procedure runs
                # under an exported owner-computes constraint (callers
                # reduce their loops, so only owners call it), the
                # broadcast degrades to a point-to-point transfer from
                # the data's owner to the executing owner.  INTRA mode
                # additionally degrades under its uniform local guard —
                # Figure 12's per-call send/recv shape.
                recv_c = plan.export
                if recv_c is None and self.opts.mode is Mode.INTRA:
                    recv_c = self._uniform_guard(plan)
            if recv_c is not None:
                stmts = build_p2p_from_bcast(act, recv_c, self.tags)
            else:
                stmts = build_comm(act, self.tags)
            rw.insert_before.setdefault(id(act.anchor), []).extend(stmts)
        # pipeline exchanges: pre-loop receive appended after every
        # other pre-loop message, post-loop send appended after the loop
        from .codegen import build_pipeline

        for act in comm.actions:
            if act.pending.kind != "pipeline":
                continue
            pre, post = build_pipeline(act, self.tags)
            rw.insert_before.setdefault(id(act.anchor), []).extend(pre)
            rw.insert_after.setdefault(id(act.anchor), []).extend(post)
        # message aggregation (§5.4): same guard + same destination at
        # the same point -> one packed message; then order sends ahead
        # of receives within each message run (sends never block, so
        # send-first is always deadlock-free)
        from .codegen import aggregate_messages, order_sends_first

        for sid in list(rw.insert_before):
            rw.insert_before[sid] = order_sends_first(
                aggregate_messages(rw.insert_before[sid])
            )
        # run-time resolution rewrites
        from .codegen import rtr_rewrite_if

        rtr_sids = set(plan.rtr_stmts) | set(comm.rtr_stmts)
        for s in A.walk_stmts(self.proc.body):
            if id(s) not in rtr_sids:
                continue
            if isinstance(s, A.Assign):
                rw.replace[id(s)] = rtr_rewrite_assign(
                    s, distributed, self.tags
                )
                rw.guard_stmt.pop(id(s), None)
            elif isinstance(s, A.If):
                for anc in _ancestors_of(self.proc.body, s):
                    if id(anc) in plan.loop_reduce \
                            or id(anc) in rw.guard_stmt:
                        raise CompileError(
                            f"{self.proc.name}: a branch condition reads "
                            f"distributed data inside a partitioned loop "
                            f"— not compilable (restructure the branch)"
                        )
                rw.insert_before.setdefault(id(s), []).extend(
                    rtr_rewrite_if(s, distributed, self.tags)
                )
        # INTRA: the procedure-uniform constraint was not exported; it is
        # already guarded by plan_blocks (export disabled in that mode)
        self.proc.body = rewrite_body(self.proc.body, rw)
        ensure_myproc(self.proc)

    def _uniform_guard(self, plan: PartitionPlan) -> Optional[Constraint]:
        cs = {c for c in plan.guard_stmt.values() if c is not None}
        uniq = {(c.dimdist, c.var, c.off) for c in cs}
        if len(uniq) == 1:
            return next(iter(cs))
        return None

    # -- RTR mode ----------------------------------------------------------------

    def _compile_rtr(self, arrays, rtr_arrays) -> ProcExports:
        rw = RewritePlan()
        distributed = {
            n for n, i in arrays.items()
            if i.distributed or n in rtr_arrays
        }
        # dynamic decompositions become unconditional physical remaps
        for s in A.walk_stmts(self.proc.body):
            if isinstance(s, A.Distribute) and not (
                self.is_main and _in_prologue(self.proc, s)
            ):
                changed = _distribute_targets(self.proc, s, arrays)
                repl = [A.Remap(arr, list(s.specs), comment="rtr dynamic")
                        for arr in changed]
                rw.replace[id(s)] = repl
                self.report.remaps_emitted += len(repl)
            elif isinstance(s, A.Assign):
                reads_dist = any(
                    isinstance(r, A.ArrayRef) and r.name in distributed
                    for r in A.walk_exprs(s.expr)
                )
                writes_dist = (
                    isinstance(s.target, A.ArrayRef)
                    and s.target.name in distributed
                )
                if reads_dist or writes_dist:
                    rw.replace[id(s)] = rtr_rewrite_assign(
                        s, distributed, self.tags
                    )
            elif isinstance(s, A.If):
                from .codegen import rtr_rewrite_if

                if any(isinstance(r, A.ArrayRef) and r.name in distributed
                       for r in A.walk_exprs(s.cond)):
                    rw.insert_before.setdefault(id(s), []).extend(
                        rtr_rewrite_if(s, distributed, self.tags)
                    )
        self.proc.body = rewrite_body(self.proc.body, rw)
        ensure_myproc(self.proc)
        return ProcExports(self.proc.name)

    # -- overlaps ------------------------------------------------------------------

    def _overlaps(self, comm, arrays) -> dict[str, list[tuple[int, int]]]:
        out: dict[str, list[tuple[int, int]]] = {}
        for act in comm.actions:
            p = act.pending
            if p.kind != "shift":
                continue
            offs = out.setdefault(
                p.array, [(0, 0)] * p.section.rank
            )
            lo, hi = offs[p.axis]
            if p.delta > 0:
                offs[p.axis] = (lo, max(hi, p.delta))
            else:
                offs[p.axis] = (min(lo, p.delta), hi)
        for arr, offs in out.items():
            self.report.overlaps[(self.proc.name, arr)] = offs
        return out


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _param_env(proc: A.Procedure) -> dict:
    env: dict = {}
    for p in proc.params:
        v = eval_const(p.value, env)
        if v is not None:
            env[p.name] = v
    return env


def _ancestors_of(body: list[A.Stmt], target: A.Stmt) -> list[A.Stmt]:
    def find(b):
        for s in b:
            if s is target:
                return []
            for blk in A.child_blocks(s):
                sub = find(blk)
                if sub is not None:
                    return [s] + sub
        return None

    return find(body) or []


def _in_prologue(proc: A.Procedure, stmt: A.Stmt) -> bool:
    """True when *stmt* sits in the leading directive-only prefix of the
    procedure body (the static data-placement prologue)."""
    for s in proc.body:
        if s is stmt:
            return True
        if not isinstance(s, (A.Decomposition, A.Align, A.Distribute)):
            return False
    return False


def _distribute_targets(proc, stmt, arrays) -> list[str]:
    from .reaching import build_directive_table

    table = build_directive_table(proc)
    try:
        return [a for a in table.resolve_distribute(stmt) if a in arrays]
    except ValueError:
        return []


def _sanitize_summaries(
    summaries: dict[str, list], proc: A.Procedure, arrays
) -> dict[str, list]:
    """Keep only summaries on formal arrays whose dimension expressions
    are caller-translatable (formals/params only); opaque local values
    are renamed to fresh symbols so caller-side dependence analysis stays
    conservative rather than wrong."""
    from ..analysis.rsd import RSD, Range, SymDim
    from ..analysis.symbolics import free_vars

    ok_names = set(proc.formals) | {p.name for p in proc.params} \
        | set(proc.commons)
    out: dict[str, list] = {}
    counter = [0]

    def sanitize_dim(d):
        if isinstance(d, Range):
            return d
        names = free_vars(d.lo) | (free_vars(d.hi) if d.hi else set())
        if names <= ok_names:
            return d
        counter[0] += 1
        return SymDim(A.Var(f"$opaque{counter[0]}"))

    interface_arrays = set(proc.formals) | set(proc.commons)
    for arr, secs in summaries.items():
        if arr not in interface_arrays:
            continue
        out[arr] = [RSD(tuple(sanitize_dim(d) for d in s.dims)) for s in secs]
    return out


# ---------------------------------------------------------------------------
# whole-program driver
# ---------------------------------------------------------------------------


#: memoized compilations, keyed on (source text, option values).  The
#: benchmark sweeps recompile identical programs many times (warmup plus
#: measured rounds); compilation is deterministic and its result is
#: treated as immutable by every runner, so caching is safe.  Only
#: string sources are cached: a caller-supplied Program AST may be
#: mutated between calls.
_compile_cache: dict[tuple, "CompiledProgram"] = {}

#: process-wide compile-memo counters, surfaced by ``fdc --report``
#: (RunStats.as_dict folds them in next to the comm/codegen caches)
_compile_cache_stats = {"hits": 0, "misses": 0, "disk_hits": 0,
                        "disk_degraded": 0}

#: bump when CompiledProgram's pickled shape changes; stale disk
#: entries then fail the header check and regenerate
_DISK_CACHE_VERSION = "2"

#: directories already reported unwritable (one decision event per dir)
_degraded_dirs: set[str] = set()


def compile_cache_stats() -> dict:
    """Snapshot of the compile-memo hit/miss counters."""
    return dict(_compile_cache_stats)


def _cache_setting() -> str:
    """``REPRO_COMPILE_CACHE``: ``"0"`` disables memoization, ``"1"``
    (or unset) keeps the in-process memo, and any other value names a
    *directory* holding a persistent on-disk compile cache shared
    across processes (entries are crash-safe mkstemp+rename writes;
    corrupt, stale, or unreadable entries regenerate silently, and an
    unwritable directory degrades to in-memory-only caching)."""
    return os.environ.get("REPRO_COMPILE_CACHE", "1").strip()


def _disk_entry_path(directory: str, source: str, opts: Options) -> str:
    blob = f"{_DISK_CACHE_VERSION}\n{astuple(opts)!r}\n{source}"
    key = hashlib.sha256(blob.encode()).hexdigest()
    return os.path.join(directory, f"compile-{key}.pkl")


def _disk_header(path: str) -> bytes:
    stem = os.path.basename(path)
    return f"# repro-compile {_DISK_CACHE_VERSION} {stem}\n".encode()


def _disk_load(directory: str, source: str, opts: Options
               ) -> Optional["CompiledProgram"]:
    """Load a disk-cached compilation; any failure — missing file,
    truncated header, unpicklable body — is a silent miss."""
    path = _disk_entry_path(directory, source, opts)
    header = _disk_header(path)
    try:
        with open(path, "rb") as fh:
            if fh.read(len(header)) != header:
                return None
            obj = pickle.load(fh)
    except Exception:
        return None
    return obj if isinstance(obj, CompiledProgram) else None


def _disk_store(directory: str, source: str, opts: Options,
                compiled: "CompiledProgram", tracer=None) -> None:
    """Atomically write a disk-cache entry.  All failures are soft: an
    unwritable or read-only cache directory degrades to uncached
    (in-memory-only) compilation, recorded once per directory as a
    ``compile.cache-degraded`` decision."""
    path = _disk_entry_path(directory, source, opts)
    try:
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(_disk_header(path))
                pickle.dump(compiled, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except (OSError, pickle.PicklingError):
        _compile_cache_stats["disk_degraded"] += 1
        if directory not in _degraded_dirs:
            _degraded_dirs.add(directory)
            if tracer is not None:
                tracer.decision("compile.cache-degraded", dir=directory)


def compile_program(
    source: Union[str, A.Program],
    opts: Optional[Options] = None,
    trace=None,
) -> CompiledProgram:
    """Compile Fortran D source (or a parsed Program) to an SPMD node
    program for ``opts.nprocs`` processors.

    Repeated compilations of the same source text with equal options
    return a shared memoized :class:`CompiledProgram` (disable with
    ``REPRO_COMPILE_CACHE=0``; set it to a directory path for an
    additional persistent on-disk cache shared across processes).
    *trace* optionally supplies a :class:`~repro.obs.Tracer` (or
    ``True``) recording per-phase timings and compilation decisions; a
    memoized hit records a single ``compile.cache-hit`` decision
    instead of re-tracing the phases.
    """
    opts = opts or Options()
    tracer = resolve_trace(trace)
    setting = _cache_setting()
    cache_key = None
    disk_dir = None
    if isinstance(source, str) and setting != "0":
        if setting not in ("", "1"):
            disk_dir = setting
        cache_key = (source, astuple(opts))
        hit = _compile_cache.get(cache_key)
        if hit is not None:
            _compile_cache_stats["hits"] += 1
            if tracer is not None:
                tracer.decision("compile.cache-hit", mode=opts.mode.value,
                                nprocs=opts.nprocs)
            return hit
        if disk_dir is not None:
            hit = _disk_load(disk_dir, source, opts)
            if hit is not None:
                _compile_cache_stats["hits"] += 1
                _compile_cache_stats["disk_hits"] += 1
                _compile_cache[cache_key] = hit
                if tracer is not None:
                    tracer.decision("compile.cache-hit", tier="disk",
                                    mode=opts.mode.value,
                                    nprocs=opts.nprocs)
                return hit
    _compile_cache_stats["misses"] += 1
    compiled = _compile_uncached(source, opts, tracer)
    if cache_key is not None:
        _compile_cache[cache_key] = compiled
        if disk_dir is not None:
            _disk_store(disk_dir, source, opts, compiled, tracer)
    return compiled


def front_end(
    source: Union[str, A.Program], opts: Options, tracer=None
):
    """The compiler front end shared by the whole-program driver and the
    compile service: parse, interprocedural analysis (cloning + reaching
    decompositions), and the §6.4 alias check.  Returns ``(prog, acg,
    reaching, report)`` with the report seeded with cloning outcomes.
    Deterministic: every process running it over the same source and
    options reconstructs identical structures."""
    def span(name, **fields):
        return tracer.phase(name, **fields) if tracer is not None \
            else nullcontext()

    with span("parse"):
        prog = parse(source) if isinstance(source, str) \
            else _deep_copy(source)
    if opts.distribute:
        # plan overrides rewrite DISTRIBUTE statements *before* any
        # analysis, so every downstream fact (reaching decompositions,
        # fingerprints, worker re-runs) sees the overridden layout
        with span("distribution-overrides"):
            apply_dist_overrides(prog, opts.distribute)
            if tracer is not None:
                for ov in opts.distribute:
                    tracer.decision("dist-override", spec=ov.describe())
    report = CompileReport(mode=opts.mode, nprocs=opts.nprocs)

    with span("interprocedural-analysis"):
        if opts.mode in (Mode.INTER, Mode.INTRA):
            outcome = clone_program(prog, opts)
            prog, acg, reaching = \
                outcome.program, outcome.acg, outcome.reaching
            report.cloned = outcome.clones
            if outcome.growth_capped:
                report.note("cloning disabled: growth threshold exceeded")
                if tracer is not None:
                    tracer.decision("clone-growth-capped")
            if tracer is not None:
                for base, clones in sorted(report.cloned.items()):
                    tracer.decision("clone", base=base,
                                    clones=", ".join(clones))
        else:
            acg = ACG(prog)
            reaching = compute_reaching(acg, opts)

    # §6.4: dynamic decomposition of aliased variables is rejected
    from ..analysis.aliasing import (
        check_dynamic_decomposition,
        compute_aliases,
    )

    with span("alias-analysis"):
        check_dynamic_decomposition(acg, compute_aliases(acg))
    return prog, acg, reaching, report


def compile_procedure_unit(
    prog: A.Program,
    name: str,
    acg: ACG,
    reaching: ReachingResult,
    opts: Options,
    exports: dict[str, ProcExports],
    report: CompileReport,
    tags: TagAllocator,
    main_name: str,
    tracer=None,
) -> ProcExports:
    """Compile one procedure of the reverse-topological sweep, with the
    paper's graceful degradation: a failed compile-time analysis demotes
    the procedure to run-time resolution instead of aborting (unless
    ``opts.strict``).  Mutates ``prog.unit(name)`` in place and appends
    to *report*; returns the procedure's exports.  The compile service
    and its workers call this for byte-identical per-procedure results
    (same rewrites, same tag-allocation deltas) as the whole-program
    driver."""
    pc = ProcedureCompiler(
        prog.unit(name), acg, reaching, opts, exports, report,
        tags, is_main=(name == main_name), tracer=tracer,
    )
    if opts.strict:
        return pc.compile()
    try:
        return pc.compile()
    except (CompileError, UnsupportedSubscript) as e:
        # Graceful degradation (§1, §4): instead of aborting on an
        # unanalyzable construct, demote this one procedure to the
        # run-time-resolution path — per-reference ownership tests and
        # on-demand element messages need no analysis.  All
        # compile-phase failures raise *before* the body rewrite, so
        # the procedure is still pristine source here; it exports
        # nothing, which callers already treat conservatively.
        return _demote_to_rtr(
            name, e, prog, acg, reaching, opts, exports,
            report, tags, main_name, tracer,
        )


def _compile_uncached(
    source: Union[str, A.Program], opts: Options, tracer=None
) -> CompiledProgram:
    def span(name, **fields):
        return tracer.phase(name, **fields) if tracer is not None \
            else nullcontext()

    with span("compile", mode=opts.mode.value, nprocs=opts.nprocs):
        prog, acg, reaching, report = front_end(source, opts, tracer)

        # initial (static prologue) distributions of the main program
        with span("initial-distributions"):
            initial = _initial_distributions(prog, reaching, opts)

        tags = TagAllocator()
        exports: dict[str, ProcExports] = {}
        main_name = prog.main.name
        with span("codegen"):
            for name in acg.reverse_topological_order():
                with span("procedure", proc=name):
                    exports[name] = compile_procedure_unit(
                        prog, name, acg, reaching, opts, exports,
                        report, tags, main_name, tracer,
                    )

    compiled = CompiledProgram(prog, initial, report, opts)
    with span("emit-node-program", nprocs=opts.nprocs):
        _prewarm_codegen(compiled, tracer)
    return compiled


def _prewarm_codegen(compiled: CompiledProgram, tracer=None) -> None:
    """Generate (or load from cache) the node-program modules for the
    environment-default execution options, so the first run doesn't pay
    for generation.  Under ``Options.strict`` a codegen demotion is a
    compile error; otherwise every failure here is soft — ``run_spmd``
    regenerates on demand and demotes to the interpreter."""
    from ..codegen import CodegenError, enabled, get_generated
    from ..interp.vectorize import enabled as vec_enabled

    if not enabled(None):
        return
    try:
        gen, _, _ = get_generated(
            compiled.program, compiled.opts.nprocs, vec_enabled(None),
            strict=compiled.opts.strict,
        )
    except CodegenError as e:
        raise CompileError(str(e)) from None
    except Exception:  # pragma: no cover - cache/emit trouble is soft
        return
    if tracer is not None:
        for cls, variant, proc, cause in gen.demotions:
            tracer.decision("codegen-demotion", proc=proc, rank_class=cls,
                            variant=variant, cause=cause)


def _demote_to_rtr(
    name, err, prog, acg, reaching, opts, exports, report,
    tags, main_name, tracer=None,
) -> ProcExports:
    """Compile procedure *name* with run-time resolution after its
    compile-time analysis failed with *err* (Options.strict=False)."""
    cause = str(err)
    if cause.startswith(f"{name}: "):  # many errors already name the proc
        cause = cause[len(name) + 2:]
    why = f"{name}: demoted to run-time resolution ({cause})"
    report.rtr_demotions.append(f"{name}: {cause}")
    if why not in report.rtr_fallbacks:
        report.rtr_fallbacks.append(why)
    if tracer is not None:
        tracer.decision("rtr-demotion", proc=name, cause=cause)
    proc = prog.unit(name)
    pr = reaching.per_proc[name]
    pc = ProcedureCompiler(
        proc, acg, reaching, opts, exports, report, tags,
        is_main=(name == main_name), tracer=tracer,
    )
    arrays, rtr_arrays = resolve_arrays(proc, pr, opts)
    return pc._compile_rtr(arrays, rtr_arrays)


def _deep_copy(prog: A.Program) -> A.Program:
    return A.Program([A.clone_procedure(u) for u in prog.units])


def _initial_distributions(
    prog: A.Program, reaching: ReachingResult, opts: Options
) -> dict[tuple[str, str], Distribution]:
    """Distributions of main's arrays established by the static placement
    prologue (these become the arrays' creation-time distributions; no
    data motion is needed because arrays start uninitialized)."""
    main = prog.main
    pr = reaching.per_proc[main.name]
    out: dict[tuple[str, str], Distribution] = {}
    for d in main.decls:
        if not d.is_array:
            continue
        dists = {
            x for x in pr.reaching_dists(d.name)
            if isinstance(x, Distribution)
        }
        if len(dists) == 1:
            dist = next(iter(dists))
            if not dist.is_replicated:
                out[(main.name, d.name)] = dist
        elif len(dists) > 1:
            # dynamic redistribution: the creation-time distribution is
            # the one reaching the first use (approximated by the one
            # generated in the prologue)
            proto = _prologue_distribution(main, d.name, pr, opts)
            if proto is not None:
                out[(main.name, d.name)] = proto
    return out


def _prologue_distribution(main, name, pr, opts) -> Optional[Distribution]:
    """The distribution of *name* established by the static placement
    prologue: the unique fact reaching the first executable statement."""
    for s in main.body:
        if isinstance(s, (A.Decomposition, A.Align, A.Distribute)):
            continue
        facts = pr.at_stmt.get(id(s))
        if facts:
            dists = {d for (n, d) in facts
                     if n == name and isinstance(d, Distribution)}
            if len(dists) == 1:
                return next(iter(dists))
        return None
    return None
