"""Optimizing dynamic data decomposition (§6, Figures 15-17).

Executable ``DISTRIBUTE``/``ALIGN`` statements outside the main program's
static prologue remap arrays at run time.  Naive placement of calls to
the remap library is disastrous (Figure 16a: four remaps per loop
iteration); this module implements the paper's optimization ladder:

* **Delayed instantiation** — a callee whose redistribution happens
  before it uses the inherited decomposition does not remap itself; it
  exports ``DecompBefore`` / ``DecompAfter`` and the *caller* places the
  remaps around the call (the key enabler, §6).
* **Live decompositions** (Figure 17) — remaps whose decomposition
  reaches no use are deleted; identical remaps with overlapping live
  ranges coalesce (16a → 16b).
* **Loop-invariant decompositions** — a remap not used within its loop
  moves after the loop; the then-unique remap reaching every use in the
  loop hoists before it (16b → 16c).
* **Array kills** — a remap whose array is dead (every element
  overwritten before any read) becomes an in-place marking with zero
  data motion (16c → 16d).

Liveness/reachability run on a linearized event model of the structured
body (loop bodies walked with wrap-around for the back edge; branch
events merged conservatively), which is exact for the straight-line
loop nests the paper targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..callgraph.acg import ACG, CallSite
from ..dist import Distribution
from ..lang import ast as A
from .model import DecompSets, ProcExports
from .options import DynOpt, Options, CompileReport
from .partition import ArrayInfo
from .reaching import build_directive_table, _array_bounds


@dataclass(eq=False)
class RemapOp:
    """A candidate remap operation awaiting placement/optimization.

    ``eq=False``: operations are compared and indexed by identity — two
    remaps of the same array to the same distribution at structurally
    identical anchors are still distinct events."""

    array: str
    dist: Optional[Distribution]  # None = restore caller's distribution
    #: "before" | "after" (relative to anchor) | "inplace" (replaces it)
    where: str
    anchor: A.Stmt
    #: loop nesting chain of the anchor (list of A.Do), outermost first
    loops: list[A.Do] = field(default_factory=list)
    alive: bool = True
    mark_only: bool = False   # array-kill: remap in place
    hoisted: Optional[str] = None  # "pre" | "post" of loops[-1]

    def resolved(self, fallback: Optional[Distribution]) -> Optional[Distribution]:
        return self.dist if self.dist is not None else fallback


@dataclass
class DynPlan:
    replace: dict[int, list[A.Stmt]] = field(default_factory=dict)
    insert_before: dict[int, list[A.Stmt]] = field(default_factory=dict)
    insert_after: dict[int, list[A.Stmt]] = field(default_factory=dict)
    sets: DecompSets = field(default_factory=DecompSets)


# -- event model -------------------------------------------------------------


@dataclass(eq=False)
class _Use:
    array: str
    stmt: A.Stmt


@dataclass(eq=False)
class _FullKill:
    array: str
    stmt: A.Stmt


@dataclass(eq=False)
class _LoopStart:
    loop: A.Do


@dataclass(eq=False)
class _LoopEnd:
    loop: A.Do


Event = Union[RemapOp, _Use, _FullKill, _LoopStart, _LoopEnd]


class DynamicDecompPlanner:
    """Per-procedure dynamic-decomposition planning (runs during the
    reverse-topological code-generation sweep)."""

    def __init__(
        self,
        proc: A.Procedure,
        acg: ACG,
        arrays: dict[str, ArrayInfo],
        opts: Options,
        callee_exports: dict[str, ProcExports],
        env: dict,
        is_main: bool,
        report: CompileReport,
        reaching_pr=None,
    ) -> None:
        self.proc = proc
        self.acg = acg
        self.arrays = arrays
        self.reaching_pr = reaching_pr
        self.opts = opts
        self.callee_exports = callee_exports
        self.env = env
        self.is_main = is_main
        self.report = report
        self.site_of = {id(s.stmt): s for s in acg.calls_from(proc.name)}
        self.table = build_directive_table(proc)
        self.plan = DynPlan()

    # ------------------------------------------------------------------

    def analyze(self) -> DynPlan:
        dynamic = find_dynamic_distributes(self.proc, self.is_main)
        has_callee_sets = any(
            self._callee_sets(site) for site in self.acg.calls_from(self.proc.name)
        )
        self._export_kill_analysis()
        self._collect_use(dynamic)
        if not dynamic and not has_callee_sets:
            return self.plan
        if not self.is_main and dynamic:
            self._plan_callee(dynamic)
            if not has_callee_sets:
                return self.plan
        ops, events = self._collect_events(dynamic)
        if self.opts.dynopt >= DynOpt.LIVE:
            self._live_pass(ops, events)
            self._coalesce_pass(ops, events)
        if self.opts.dynopt >= DynOpt.HOIST:
            self._hoist_pass(ops, events)
        if self.opts.dynopt >= DynOpt.KILLS:
            self._kill_pass(ops, events)
        self._emit(ops, dynamic)
        return self.plan

    # -- callee side ------------------------------------------------------

    def _plan_callee(self, dynamic: list[A.Distribute]) -> None:
        """Delayed instantiation in a callee (§6.1): redistribution that
        precedes any use of the inherited decomposition is exported as
        DecompBefore/DecompAfter; the Distribute statement vanishes."""
        sets = self.plan.sets
        used_before: set[str] = set()
        for s in self.proc.body:
            if isinstance(s, A.Distribute) and any(s is d for d in dynamic):
                targets = self._targets(s)
                interface = set(self.proc.formals) | set(self.proc.commons)
                for arr, dist in targets.items():
                    if arr not in interface or arr in used_before \
                            or arr in sets.before:
                        # cannot delay: remap in place
                        self.plan.replace.setdefault(id(s), []).append(
                            A.Remap(arr, list(dist.specs),
                                    comment=f"{self.proc.name} local remap")
                        )
                        sets.exit[arr] = dist
                        self.report.remaps_emitted += 1
                    else:
                        sets.before[arr] = dist
                        sets.after[arr] = None  # restore inherited
                        sets.exit[arr] = dist
                    sets.kill.add(arr)
                self.plan.replace.setdefault(id(s), [])
            else:
                for arr in _stmt_array_uses(s, set(self.arrays)):
                    if arr not in sets.kill:
                        used_before.add(arr)
                        if arr in self.proc.formals or \
                                arr in self.proc.commons:
                            sets.use.add(arr)
        # arrays used but never killed use the inherited decomposition
        iface = set(self.proc.formals) | set(self.proc.commons)
        for s in A.walk_stmts(self.proc.body):
            for arr in _stmt_array_uses(s, set(self.arrays)):
                if arr in iface and arr not in sets.kill:
                    sets.use.add(arr)

    def _collect_use(self, dynamic: list[A.Distribute]) -> None:
        """DecompUse(P): formal arrays that may use a decomposition
        inherited from the caller — referenced anywhere unless a local
        dynamic redistribution dominates every reference."""
        sets = self.plan.sets
        killed_first: set[str] = set()
        for s in self.proc.body:
            if isinstance(s, A.Distribute) and any(s is d for d in dynamic):
                for arr in self._targets(s):
                    if arr not in sets.use:
                        killed_first.add(arr)
            else:
                for arr in _stmt_array_uses(s, set(self.arrays)):
                    if (arr in self.proc.formals or arr in self.proc.commons) \
                            and arr not in killed_first:
                        sets.use.add(arr)
        # references inside nested structure count as uses too
        for s in A.walk_stmts(self.proc.body):
            for arr in _stmt_array_uses(s, set(self.arrays)):
                if (arr in self.proc.formals or arr in self.proc.commons) \
                        and arr not in killed_first:
                    sets.use.add(arr)

    def _export_kill_analysis(self) -> None:
        """Array-kill analysis (§6.3): formal arrays whose first access
        overwrites every element before any read."""
        sets = self.plan.sets
        for arr in list(self.proc.formals) + list(self.proc.commons):
            info = self.arrays.get(arr)
            if info is None:
                continue
            decl = self.proc.decl(arr)
            if decl is None or not decl.is_array:
                continue
            if _first_access_is_full_kill(self.proc, arr, self.env):
                sets.full_kill.add(arr)

    # -- event collection ----------------------------------------------------

    def _callee_sets(self, site: CallSite) -> Optional[DecompSets]:
        exp = self.callee_exports.get(site.callee)
        if exp is None:
            return None
        d = exp.decomp
        if d.before or d.after or d.exit:
            return d
        return None

    def _targets(self, s: A.Distribute) -> dict[str, Distribution]:
        out: dict[str, Distribution] = {}
        try:
            changed = self.table.resolve_distribute(s)
        except ValueError:
            return out
        for arr, value in changed.items():
            bounds = _array_bounds(self.proc, arr, self.env)
            if bounds is not None:
                out[arr] = Distribution.from_specs(
                    value.specs, bounds, self.opts.nprocs
                )
        return out

    def _collect_events(
        self, dynamic: list[A.Distribute]
    ) -> tuple[list[RemapOp], list[Event]]:
        ops: list[RemapOp] = []
        events: list[Event] = []
        arrays = set(self.arrays)

        def walk(body: list[A.Stmt], loops: list[A.Do]) -> None:
            for s in body:
                if isinstance(s, A.Distribute):
                    if self.is_main and any(s is d for d in dynamic):
                        for arr, dist in self._targets(s).items():
                            op = RemapOp(arr, dist, "inplace", s, list(loops))
                            ops.append(op)
                            events.append(op)
                        self.plan.replace.setdefault(id(s), [])
                    continue
                if isinstance(s, A.Call) and id(s) in self.site_of:
                    site = self.site_of[id(s)]
                    from .communication import array_binding

                    amap = array_binding(site, self.acg)
                    sets = self._callee_sets(site)
                    exp = self.callee_exports.get(site.callee)
                    if sets is not None:
                        for formal, dist in sets.before.items():
                            arr = amap.get(formal)
                            if arr is None:
                                continue
                            op = RemapOp(arr, dist, "before", s, list(loops))
                            ops.append(op)
                            events.append(op)
                    # the call itself: uses + full kills
                    if exp is not None:
                        for formal in exp.decomp.use - exp.decomp.full_kill:
                            arr = amap.get(formal)
                            if arr is not None:
                                events.append(_Use(arr, s))
                        for formal in exp.decomp.full_kill:
                            arr = amap.get(formal)
                            if arr is not None:
                                events.append(_FullKill(arr, s))
                        for formal in (
                            set(exp.writes) | set(exp.reads)
                        ) - exp.decomp.full_kill:
                            arr = amap.get(formal)
                            if arr is not None:
                                events.append(_Use(arr, s))
                    else:
                        for arr in amap.values():
                            events.append(_Use(arr, s))
                    if sets is not None:
                        for formal, dist in sets.after.items():
                            arr = amap.get(formal)
                            if arr is None:
                                continue
                            restore = (
                                dist if dist is not None
                                else self._inherited_dist(arr, s)
                            )
                            op = RemapOp(arr, restore, "after", s, list(loops))
                            ops.append(op)
                            events.append(op)
                    continue
                if isinstance(s, A.Do):
                    events.append(_LoopStart(s))
                    walk(s.body, loops + [s])
                    events.append(_LoopEnd(s))
                    continue
                if isinstance(s, A.DoWhile):
                    walk(s.body, loops)
                    continue
                if isinstance(s, A.If):
                    walk(s.then_body, loops)
                    walk(s.else_body, loops)
                    continue
                for arr in _stmt_array_uses(s, arrays):
                    events.append(_Use(arr, s))

        walk(self.proc.body, [])
        return ops, events

    def _inherited_dist(
        self, arr: str, stmt: Optional[A.Stmt] = None
    ) -> Optional[Distribution]:
        """The caller's own distribution of *arr* (the restore target of
        a DecompAfter): per-array when unique, else the reaching fact at
        the call statement (needed for COMMON arrays the caller never
        references directly)."""
        info = self.arrays.get(arr)
        if info is not None and info.dist is not None:
            return info.dist
        if self.reaching_pr is not None and stmt is not None:
            dists = {
                d for d in self.reaching_pr.dists_of(arr, stmt)
                if isinstance(d, Distribution)
            }
            if len(dists) == 1:
                return next(iter(dists))
        return None

    # -- optimization passes -----------------------------------------------------

    def _live_pass(self, ops: list[RemapOp], events: list[Event]) -> None:
        """Figure 17: eliminate remaps whose decomposition reaches no
        use.  A "before" remap feeds its own call (always live); "after"
        and "inplace" remaps are live only if some later use (in linear
        order, with loop wrap-around) sees them before another remap of
        the same array."""
        for op in ops:
            if op.where == "before":
                continue
            if self._reaches_use(op, events):
                continue
            op.alive = False
            self.report.remaps_eliminated += 1

    def _reaches_use(self, op: RemapOp, events: list[Event]) -> bool:
        """May-reachability of a use from *op* along any control path:
        forward fall-through plus loop back edges, stopping a path at a
        full kill or another (live) remap of the same array."""
        n = len(events)
        seen: set[int] = set()
        work = [events.index(op) + 1]
        while work:
            i = work.pop()
            while i < n:
                if i in seen:
                    break
                seen.add(i)
                e = events[i]
                if isinstance(e, (_Use, _FullKill)) and e.array == op.array:
                    # a full kill still *uses* the decomposition (the
                    # overwriting statements run on the owners); it only
                    # lets the remap become an in-place marking (§6.3)
                    return True
                if isinstance(e, RemapOp) and e.array == op.array \
                        and e.alive and e is not op:
                    break
                if isinstance(e, _LoopEnd):
                    back = _loop_start_index(events, e.loop) + 1
                    if back not in seen:
                        work.append(back)
                i += 1
        return False

    def _coalesce_pass(self, ops: list[RemapOp], events: list[Event]) -> None:
        """Remove remaps whose incoming decomposition is already the
        target (reaching pass over the linear event order, loops entered
        with unknown state on first join when a remap lives inside)."""
        def join(a, b):
            if a is not None and b is not None and a.same_mapping(b):
                return a
            return None  # unknown

        def initial_state():
            return {
                n: (i.dist if i.dist else None)
                for n, i in self.arrays.items()
            }

        removed_any = True
        outer = 0
        while removed_any and outer < 8:
            removed_any = False
            outer += 1
            # converge the reaching-distribution state through loop back
            # edges first, then decide redundancy with the final states
            backedge: dict[int, dict] = {}
            incoming_at: dict[int, dict[str, Optional[Distribution]]] = {}
            for _round in range(len(events) + 2):
                state = initial_state()
                stable = True
                for e in events:
                    if isinstance(e, _LoopStart):
                        be = backedge.get(id(e.loop))
                        if be is not None:
                            state = {
                                arr: join(state.get(arr), be.get(arr))
                                for arr in set(state) | set(be)
                            }
                    elif isinstance(e, _LoopEnd):
                        prev = backedge.get(id(e.loop))
                        snap = dict(state)
                        if prev != snap:
                            backedge[id(e.loop)] = snap
                            stable = False
                    elif isinstance(e, RemapOp) and e.alive:
                        incoming_at[id(e)] = dict(state)
                        state[e.array] = e.dist
                if stable:
                    break
            for e in events:
                if isinstance(e, RemapOp) and e.alive:
                    cur = incoming_at.get(id(e), {}).get(e.array)
                    if e.dist is not None and cur is not None \
                            and cur.same_mapping(e.dist):
                        e.alive = False
                        self.report.remaps_eliminated += 1
                        removed_any = True
                        break  # states changed; reconverge

    def _hoist_pass(self, ops: list[RemapOp], events: list[Event]) -> None:
        """Loop-invariant decompositions (§6.2): move a remap after its
        loop when unused within it; then hoist the unique remap reaching
        all in-loop uses before the loop."""
        for op in ops:
            if not op.alive or not op.loops:
                continue
            loop = op.loops[-1]
            if not self._used_within_loop(op, loop, events):
                op.hoisted = "post"
                self.report.remaps_hoisted += 1
        for op in ops:
            if not op.alive or not op.loops or op.hoisted:
                continue
            loop = op.loops[-1]
            if self._only_decomp_in_loop(op, loop, events, ops):
                op.hoisted = "pre"
                self.report.remaps_hoisted += 1

    def _used_within_loop(
        self, op: RemapOp, loop: A.Do, events: list[Event]
    ) -> bool:
        start = _loop_start_index(events, loop)
        end = _loop_end_index(events, loop)
        idx = events.index(op)
        # cyclic walk within [start, end] from op
        order = list(range(idx + 1, end)) + list(range(start + 1, idx))
        for i in order:
            e = events[i]
            if isinstance(e, _Use) and e.array == op.array:
                return True
            if isinstance(e, (RemapOp, _FullKill)) and getattr(
                e, "array", None
            ) == op.array and getattr(e, "alive", True):
                return False
        return False

    def _only_decomp_in_loop(
        self, op: RemapOp, loop: A.Do, events: list[Event], ops: list[RemapOp]
    ) -> bool:
        start = _loop_start_index(events, loop)
        end = _loop_end_index(events, loop)
        idx = events.index(op)
        # no other live remap of the same array inside the loop
        for other in ops:
            if other is op or not other.alive or other.hoisted == "post":
                continue
            if other.array == op.array:
                j = events.index(other)
                if start < j < end:
                    return False
        # no use of the array before the remap on the first iteration
        for i in range(start + 1, idx):
            e = events[i]
            if isinstance(e, _Use) and e.array == op.array:
                return False
        return True

    def _kill_pass(self, ops: list[RemapOp], events: list[Event]) -> None:
        """Array kills (§6.3): a remap followed (in its new placement) by
        a full overwrite of the array before any read is a marking."""
        for op in ops:
            if not op.alive:
                continue
            if self._next_access_is_kill(op, events):
                op.mark_only = True
                self.report.remaps_marked += 1

    def _next_access_is_kill(self, op: RemapOp, events: list[Event]) -> bool:
        idx = events.index(op)
        seq = events[idx + 1:]
        if op.hoisted == "post":
            end = _loop_end_index(events, op.loops[-1])
            seq = events[end + 1:]
        for e in seq:
            if isinstance(e, _FullKill) and e.array == op.array:
                return True
            if isinstance(e, _Use) and e.array == op.array:
                return False
            if isinstance(e, RemapOp) and e.array == op.array and e.alive:
                return False
        return False

    # -- emission -------------------------------------------------------------

    def _emit(self, ops: list[RemapOp], dynamic: list[A.Distribute]) -> None:
        for op in ops:
            if not op.alive:
                continue
            if op.dist is None:
                continue  # unknown restore target: nothing to emit
            stmt: A.Stmt
            if op.mark_only:
                stmt = A.MarkDist(op.array, list(op.dist.specs))
            else:
                stmt = A.Remap(op.array, list(op.dist.specs),
                               comment=f"dyn {op.where}")
                self.report.remaps_emitted += 1
            if op.hoisted == "post":
                self.plan.insert_after.setdefault(
                    id(op.loops[-1]), []).append(stmt)
            elif op.hoisted == "pre":
                self.plan.insert_before.setdefault(
                    id(op.loops[-1]), []).append(stmt)
            elif op.where == "before":
                self.plan.insert_before.setdefault(
                    id(op.anchor), []).append(stmt)
            elif op.where == "after":
                self.plan.insert_after.setdefault(
                    id(op.anchor), []).append(stmt)
            else:  # inplace (a Distribute statement being replaced)
                self.plan.replace.setdefault(id(op.anchor), []).append(stmt)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def find_dynamic_distributes(
    proc: A.Procedure, is_main: bool
) -> list[A.Distribute]:
    """DISTRIBUTE statements with run-time remapping semantics: all of
    them in subprograms; those outside the leading static prologue in
    the main program."""
    out: list[A.Distribute] = []
    in_prologue = is_main
    for s in A.walk_stmts(proc.body):
        if isinstance(s, (A.Decomposition, A.Align)):
            continue
        if isinstance(s, A.Distribute):
            if not in_prologue:
                out.append(s)
        elif in_prologue and s in proc.body:
            in_prologue = False
    return out


def _stmt_array_uses(s: A.Stmt, arrays: set[str]) -> set[str]:
    out: set[str] = set()
    if isinstance(s, (A.Do, A.DoWhile, A.If)):
        exprs = list(A.stmt_exprs(s))
    else:
        exprs = list(A.stmt_exprs(s))
    for e in exprs:
        for x in A.walk_exprs(e):
            if isinstance(x, (A.ArrayRef, A.Var)) and x.name in arrays:
                out.add(x.name)
    return out


def _loop_start_index(events: list[Event], loop: A.Do) -> int:
    for i, e in enumerate(events):
        if isinstance(e, _LoopStart) and e.loop is loop:
            return i
    return 0


def _loop_end_index(events: list[Event], loop: A.Do) -> int:
    for i, e in enumerate(events):
        if isinstance(e, _LoopEnd) and e.loop is loop:
            return i
    return len(events) - 1


def _first_access_is_full_kill(
    proc: A.Procedure, arr: str, env: dict
) -> bool:
    """Conservative array-kill detection: the first statement touching
    *arr* is a loop nest assigning every element (identity subscripts
    over the full declared range) with no read of *arr* inside."""
    from ..analysis.symbolics import eval_int

    decl = proc.decl(arr)
    bounds = []
    for lo_e, hi_e in decl.dims:
        lo, hi = eval_int(lo_e, env), eval_int(hi_e, env)
        if lo is None or hi is None:
            return False
        bounds.append((lo, hi))

    def first_touch(body: list[A.Stmt], loops: list[A.Do]):
        for s in body:
            if isinstance(s, A.Do):
                r = first_touch(s.body, loops + [s])
                if r is not None:
                    return r
            elif isinstance(s, A.If):
                r = first_touch(s.then_body, loops)
                if r is None:
                    r = first_touch(s.else_body, loops)
                if r is not None:
                    return r
            elif arr in _stmt_array_uses(s, {arr}):
                return (s, loops)
        return None

    hit = first_touch(proc.body, [])
    if hit is None:
        return False
    s, loops = hit
    if not isinstance(s, A.Assign) or not isinstance(s.target, A.ArrayRef) \
            or s.target.name != arr:
        return False
    # no read of arr on the rhs
    for x in A.walk_exprs(s.expr):
        if isinstance(x, A.ArrayRef) and x.name == arr:
            return False
    if len(s.target.subs) != len(bounds):
        return False
    loop_by_var = {l.var: l for l in loops}
    for sub, (lo, hi) in zip(s.target.subs, bounds):
        if not isinstance(sub, A.Var) or sub.name not in loop_by_var:
            return False
        l = loop_by_var[sub.name]
        if eval_int(l.lo, env) != lo or eval_int(l.hi, env) != hi:
            return False
        if l.step != A.ONE:
            return False
    return True
