"""SPMD code generation (§3 step 7 + §5's interprocedural instantiation).

The :class:`ProcedureCompiler` rewrites one procedure body in place:

* reduces loop bounds / inserts guards per the partition plan;
* builds and inserts vectorized ``send``/``recv``/``broadcast``
  statements for the planned communication actions;
* rewrites statements that fell back to run-time resolution into the
  Figure 3 ownership-test pattern;
* strips the Fortran D directives (their effect now lives in the initial
  distribution table and in Remap statements);
* prepends ``my$p = myproc()`` when the generated code uses it.

Expression helpers generate the block/cyclic bound arithmetic of Figure 2
(``ub$1 = min((my$p+1)*25, 95)`` and friends).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..analysis.rsd import RSD, Range
from ..analysis.symbolics import fold
from ..dist.distribution import DimDistribution
from ..lang import ast as A
from .communication import CommAction
from .model import Constraint

MYP = A.Var("my$p")


def _n(v: int) -> A.Num:
    return A.Num(v)


# ---------------------------------------------------------------------------
# bound / guard expression builders
# ---------------------------------------------------------------------------


def block_lb(dim: DimDistribution) -> A.Expr:
    """First global index owned by my$p under a block distribution."""
    return fold(A.add(_n(dim.lo), A.mul(MYP, _n(dim.block))))


def block_ub(dim: DimDistribution) -> A.Expr:
    """Last global index owned by my$p (clamped to the dimension)."""
    raw = A.sub(A.add(_n(dim.lo), A.mul(A.add(MYP, _n(1)), _n(dim.block))),
                _n(1))
    return A.CallExpr("min", (fold(raw), _n(dim.hi)))


def owner_rank_expr(dim: DimDistribution, sub: A.Expr) -> A.Expr:
    """Rank of the owner of global index *sub* (rank-1 grids)."""
    return fold(dim.owner_coord_expr(sub))


def guard_expr(c: Constraint) -> A.Expr:
    """``owner(sub) == my$p`` for the constraint's distribution."""
    return A.BinOp("==", owner_rank_expr(c.dimdist, c.sub), MYP)


def reduce_block_bounds(
    loop: A.Do, c: Constraint
) -> tuple[A.Expr, A.Expr, A.Expr]:
    """Bounds reduction for a block distribution (Figure 2's ub$1).

    The statement partitions on subscript ``i + off``; my$p owns global
    indices ``[lb, ub]``, so the owned iterations are
    ``[max(lo, lb - off), min(hi, ub_raw - off)]`` (program validity
    keeps ``i + off`` inside the dimension, so the dim.hi clamp folds
    into the loop's own upper bound).
    """
    dim = c.dimdist
    lb = fold(A.sub(block_lb(dim), _n(c.off)))
    ub_raw = fold(A.sub(
        A.sub(A.add(_n(dim.lo), A.mul(A.add(MYP, _n(1)), _n(dim.block))),
              _n(1)),
        _n(c.off)))
    lo = _simplify_max(A.CallExpr("max", (loop.lo, lb)))
    hi = _simplify_minmax(A.CallExpr("min", (loop.hi, ub_raw)))
    return lo, hi, loop.step


def _simplify_max(e: A.Expr) -> A.Expr:
    """``max(c, c' + k*my$p)`` with ``c' >= c`` and ``k >= 0`` is the
    second argument (my$p >= 0); keeps generated bounds readable."""
    if isinstance(e, A.CallExpr) and e.name == "max" and len(e.args) == 2:
        a, b = e.args
        if isinstance(a, A.Num):
            base = _affine_in_myp(b)
            if base is not None and base[0] >= a.value and base[1] >= 0:
                return b
    return _simplify_minmax(e)


def _affine_in_myp(e: A.Expr) -> Optional[tuple[float, float]]:
    """Recognize ``c + k * my$p`` (any association); returns (c, k)."""
    if isinstance(e, A.Num):
        return (e.value, 0)
    if isinstance(e, A.Var) and e.name == "my$p":
        return (0, 1)
    if isinstance(e, A.BinOp) and e.op == "+":
        l, r = _affine_in_myp(e.left), _affine_in_myp(e.right)
        if l and r:
            return (l[0] + r[0], l[1] + r[1])
    if isinstance(e, A.BinOp) and e.op == "*":
        if isinstance(e.left, A.Num):
            r = _affine_in_myp(e.right)
            if r:
                return (e.left.value * r[0], e.left.value * r[1])
        if isinstance(e.right, A.Num):
            l = _affine_in_myp(e.left)
            if l:
                return (e.right.value * l[0], e.right.value * l[1])
    return None


def reduce_cyclic_bounds(
    loop: A.Do, c: Constraint
) -> tuple[A.Expr, A.Expr, A.Expr]:
    """Bounds reduction for a cyclic distribution: first owned index at
    or above lo, stride P."""
    dim = c.dimdist
    P = dim.nprocs
    # i owned iff (i + off - dim.lo) mod P == my$p
    # start = lo + pmod(my$p - (lo + off - dim.lo), P)
    inner = A.sub(MYP, fold(A.sub(A.add(loop.lo, _n(c.off)), _n(dim.lo))))
    start = fold(A.add(loop.lo, A.CallExpr("pmod", (fold(inner), _n(P)))))
    return start, loop.hi, _n(P)


def _simplify_minmax(e: A.Expr) -> A.Expr:
    """Fold min/max with two numeric args."""
    if isinstance(e, A.CallExpr) and e.name in ("min", "max") \
            and len(e.args) == 2:
        a, b = e.args
        if isinstance(a, A.Num) and isinstance(b, A.Num):
            v = min(a.value, b.value) if e.name == "min" else max(
                a.value, b.value)
            return A.Num(v)
    return e


def section_subs(section: RSD) -> list[A.Expr]:
    """AST subscripts of a (possibly symbolic) section."""
    subs: list[A.Expr] = []
    for d in section.dims:
        if isinstance(d, Range):
            if d.lo == d.hi:
                subs.append(_n(d.lo))
            else:
                subs.append(A.Triplet(
                    _n(d.lo), _n(d.hi), _n(d.step) if d.step != 1 else None))
        else:
            if d.is_point:
                subs.append(d.lo)
            else:
                subs.append(A.Triplet(d.lo, d.hi, d.step))
    return subs


# ---------------------------------------------------------------------------
# communication statement construction
# ---------------------------------------------------------------------------


class TagAllocator:
    """Unique message tags per communication point."""

    def __init__(self) -> None:
        self.next = 1

    def take(self) -> int:
        t = self.next
        self.next += 1
        return t


def build_shift(action: CommAction, tags: TagAllocator) -> list[A.Stmt]:
    """Nearest-neighbour exchange for a constant-offset access along the
    distributed axis (Figure 2's guarded send/recv pair)."""
    p = action.pending
    dim = p.dimdist
    P = dim.nprocs
    delta = p.delta
    tag = tags.take()
    subs = section_subs(p.section)
    origin = p.origin

    if dim.kind == "block":
        lb, ub = block_lb(dim), block_ub(dim)
        if delta > 0:
            send_axis = A.Triplet(
                lb, _simplify_minmax(
                    A.CallExpr("min", (fold(A.add(lb, _n(delta - 1))),
                                       _n(dim.hi)))), None)
            recv_axis = A.Triplet(
                fold(A.add(ub, _n(1))),
                _simplify_minmax(A.CallExpr(
                    "min", (fold(A.add(ub, _n(delta))), _n(dim.hi)))), None)
            send_guard = A.BinOp(">", MYP, _n(0))
            recv_guard = A.BinOp("<", MYP, _n(P - 1))
            send_to = fold(A.sub(MYP, _n(1)))
            recv_from = fold(A.add(MYP, _n(1)))
        else:
            d = -delta
            send_axis = A.Triplet(
                fold(A.sub(ub, _n(d - 1))), ub, None)
            recv_axis = A.Triplet(
                A.CallExpr("max", (fold(A.sub(lb, _n(d))), _n(dim.lo))),
                fold(A.sub(lb, _n(1))), None)
            send_guard = A.BinOp("<", MYP, _n(P - 1))
            recv_guard = A.BinOp(">", MYP, _n(0))
            send_to = fold(A.add(MYP, _n(1)))
            recv_from = fold(A.sub(MYP, _n(1)))
    elif dim.kind == "cyclic":
        if delta % P == 0:
            return []
        my_first = fold(A.add(_n(dim.lo), MYP))
        their = A.CallExpr("pmod", (fold(A.add(MYP, _n(delta))), _n(P)))
        their_first = fold(A.add(_n(dim.lo), their))
        send_axis = A.Triplet(my_first, _n(dim.hi), _n(P))
        recv_axis = A.Triplet(their_first, _n(dim.hi), _n(P))
        send_guard = None
        recv_guard = None
        send_to = A.CallExpr("pmod", (fold(A.sub(MYP, _n(delta))), _n(P)))
        recv_from = their
    else:
        raise NotImplementedError("block_cyclic shifts use run-time resolution")

    send_subs = list(subs)
    send_subs[p.axis] = send_axis
    recv_subs = list(subs)
    recv_subs[p.axis] = recv_axis
    send = A.Send(p.array, send_subs, send_to, tag, comment=origin)
    recv = A.Recv(p.array, recv_subs, recv_from, tag, comment=origin)
    out: list[A.Stmt] = []
    out.append(A.If(send_guard, [send], []) if send_guard else send)
    out.append(A.If(recv_guard, [recv], []) if recv_guard else recv)
    return out


def build_bcast(action: CommAction, tags: TagAllocator) -> list[A.Stmt]:
    """Broadcast of a single owner's slice to all processors."""
    p = action.pending
    root = owner_rank_expr(p.dimdist, p.at)
    subs = section_subs(p.section)
    return [A.Bcast(p.array, subs, root, tags.take(), comment=p.origin)]


def build_pipeline(
    action: CommAction, tags: TagAllocator
) -> tuple[list[A.Stmt], list[A.Stmt]]:
    """Coarse-grain pipelining of a first-order recurrence over a block
    distribution: before its loop, each processor (except the first)
    receives the last |delta| elements of its left neighbour's block;
    after the loop, each (except the last) forwards its own finished
    boundary.  Execution serializes as a wavefront — correct in the
    presence of the carried dependence, and still one message per
    neighbour pair instead of per-element run-time resolution."""
    p = action.pending
    dim = p.dimdist
    P = dim.nprocs
    d = -p.delta
    tag = tags.take()
    lb = block_lb(dim)
    ub = block_ub(dim)
    subs = section_subs(p.section)
    recv_axis = A.Triplet(
        A.CallExpr("max", (fold(A.sub(lb, _n(d))), _n(dim.lo))),
        fold(A.sub(lb, _n(1))), None)
    send_axis = A.Triplet(
        A.CallExpr("max", (fold(A.sub(ub, _n(d - 1))), _n(dim.lo))),
        ub, None)
    recv_subs = list(subs)
    recv_subs[p.axis] = recv_axis
    send_subs = list(subs)
    send_subs[p.axis] = send_axis
    pre = [A.If(A.BinOp(">", MYP, _n(0)),
                [A.Recv(p.array, recv_subs, fold(A.sub(MYP, _n(1))), tag,
                        comment=p.origin)], [])]
    post = [A.If(A.BinOp("<", MYP, _n(P - 1)),
                 [A.Send(p.array, send_subs, fold(A.add(MYP, _n(1))), tag,
                         comment=p.origin)], [])]
    return pre, post


def build_comm(action: CommAction, tags: TagAllocator) -> list[A.Stmt]:
    if action.pending.kind == "shift":
        return build_shift(action, tags)
    if action.pending.kind == "bcast":
        return build_bcast(action, tags)
    raise NotImplementedError(action.pending.kind)


def build_p2p_from_bcast(
    action: CommAction, recv_constraint: Constraint, tags: TagAllocator
) -> list[A.Stmt]:
    """Immediate-instantiation variant (INTRA): when the executing set is
    a single owner (the procedure is guarded by *recv_constraint*), a
    broadcast degrades to one point-to-point message owner->executor
    (Figure 12's per-call send/recv)."""
    p = action.pending
    tag = tags.take()
    root = owner_rank_expr(p.dimdist, p.at)
    dest = owner_rank_expr(recv_constraint.dimdist, recv_constraint.sub)
    subs = section_subs(p.section)
    send = A.If(
        A.BinOp(".and.",
                A.BinOp("==", root, MYP),
                A.BinOp("/=", dest, MYP)),
        [A.Send(p.array, list(subs), dest, tag, comment=p.origin)], [])
    recv = A.If(
        A.BinOp(".and.",
                A.BinOp("==", dest, MYP),
                A.BinOp("/=", root, MYP)),
        [A.Recv(p.array, list(subs), root, tag, comment=p.origin)], [])
    return [send, recv]


def aggregate_messages(stmts: list[A.Stmt]) -> list[A.Stmt]:
    """Message aggregation (§5.4): sends at the same program point with
    the same guard and destination combine into one packed message (and
    the matching receives into one packed receive).

    Pairing across processors is by tag: each shift built its send/recv
    pair with one tag, so a send group and a recv group with the same
    tag set describe the same messages; parts are ordered by tag on both
    sides so they pack and unpack identically.
    """

    def classify(s: A.Stmt):
        cond = None
        inner = s
        if isinstance(s, A.If) and len(s.then_body) == 1 and not s.else_body:
            cond = s.cond
            inner = s.then_body[0]
        if isinstance(inner, A.Send):
            return ("send", cond, inner.dest, inner)
        if isinstance(inner, A.Recv):
            return ("recv", cond, inner.src, inner)
        return None

    def aggregate_run(run: list[A.Stmt]) -> list[A.Stmt]:
        groups: dict[tuple, list[A.Stmt]] = {}
        order: list[tuple] = []
        for s in run:
            kind, cond, peer, _inner = classify(s)
            key = (kind, cond, peer)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(s)
        out: list[A.Stmt] = []
        for key in order:
            kind, cond, peer = key
            members = groups[key]
            if len(members) == 1:
                out.append(members[0])
                continue
            inners = [classify(m)[3] for m in members]
            inners.sort(key=lambda x: x.tag)
            parts = [(x.array, list(x.subs)) for x in inners]
            tag = inners[0].tag
            comment = "aggregated: " + "; ".join(
                x.comment for x in inners if x.comment
            )
            packed: A.Stmt
            if kind == "send":
                packed = A.SendPack(parts, peer, tag, comment)
            else:
                packed = A.RecvPack(parts, peer, tag, comment)
            out.append(
                A.If(cond, [packed], []) if cond is not None else packed
            )
        return out

    # aggregate only within contiguous message runs so ordering against
    # remaps/collectives at the same point is preserved
    out: list[A.Stmt] = []
    run: list[A.Stmt] = []
    for s in stmts:
        if classify(s) is not None:
            run.append(s)
        else:
            if run:
                out.extend(aggregate_run(run))
                run = []
            out.append(s)
    if run:
        out.extend(aggregate_run(run))
    return out


def order_sends_first(stmts: list[A.Stmt]) -> list[A.Stmt]:
    """Within each contiguous run of message statements, move sends
    ahead of receives (stable).  Sends are non-blocking on the simulated
    machine, so send-first ordering is always deadlock-free, and it lets
    independently generated exchanges (shifts, pipelines) interleave
    safely at one program point."""

    def kind_of(s: A.Stmt):
        inner = s
        if isinstance(s, A.If) and len(s.then_body) == 1 and not s.else_body:
            inner = s.then_body[0]
        if isinstance(inner, (A.Send, A.SendPack)):
            return "send"
        if isinstance(inner, (A.Recv, A.RecvPack)):
            return "recv"
        return None

    out: list[A.Stmt] = []
    run: list[A.Stmt] = []

    def flush():
        out.extend(x for x in run if kind_of(x) == "send")
        out.extend(x for x in run if kind_of(x) == "recv")
        run.clear()

    for s in stmts:
        if kind_of(s) is not None:
            run.append(s)
        else:
            flush()
            out.append(s)
    flush()
    return out


# ---------------------------------------------------------------------------
# run-time resolution rewriting (Figure 3)
# ---------------------------------------------------------------------------


def rtr_rewrite_if(
    s: A.If,
    distributed: set[str],
    tags: TagAllocator,
) -> list[A.Stmt]:
    """Run-time resolution of a branch whose condition reads distributed
    elements: each element is broadcast from its (run-time) owner right
    before the branch, so every processor evaluates the same condition.
    Returns only the broadcasts — the caller inserts them *before* the
    branch (so statements nested in the branch still receive their own
    rewriting).  Collective: legal only where all processors execute
    (the driver verifies the context is unpartitioned)."""
    from ..lang.printer import expr_str

    out: list[A.Stmt] = []
    for r in A.walk_exprs(s.cond):
        if isinstance(r, A.ArrayRef) and r.name in distributed:
            out.append(A.Bcast(
                r.name, list(r.subs), A.CallExpr("owner", (r,)),
                tags.take(), comment=f"rtr cond {expr_str(r)}",
            ))
    return out


def rtr_rewrite_assign(
    s: A.Assign,
    distributed: set[str],
    tags: TagAllocator,
) -> list[A.Stmt]:
    """Rewrite an assignment into the run-time resolution pattern: the
    owner of each distributed rhs element sends it to the owner of the
    lhs, which alone executes the assignment."""

    def owner_of(ref: A.ArrayRef) -> A.Expr:
        return A.CallExpr("owner", (ref,))

    from ..lang.printer import expr_str

    reads = [
        r for r in A.walk_exprs(s.expr)
        if isinstance(r, A.ArrayRef) and r.name in distributed
    ]
    if isinstance(s.target, A.ArrayRef):
        for sub in s.target.subs:
            reads += [
                r for r in A.walk_exprs(sub)
                if isinstance(r, A.ArrayRef) and r.name in distributed
            ]
    lhs_distributed = (
        isinstance(s.target, A.ArrayRef) and s.target.name in distributed
    )
    if lhs_distributed:
        # a read of the very element being written is already local to
        # the executing owner: its transfer guards (`I own the read and
        # someone else owns the write`) can never hold, so emitting them
        # would only burn one owner() evaluation per element per
        # processor
        lhs_text = expr_str(s.target)
        reads = [r for r in reads if expr_str(r) != lhs_text]
    out: list[A.Stmt] = []
    if lhs_distributed:
        lhs_owner = owner_of(s.target)
        recvs: list[A.Stmt] = []
        for r in reads:
            tag = tags.take()
            r_owner = owner_of(r)
            out.append(A.If(
                A.BinOp(".and.",
                        A.BinOp("==", MYP, r_owner),
                        A.BinOp("/=", MYP, lhs_owner)),
                [A.Send(r.name, list(r.subs), lhs_owner, tag,
                        comment=f"rtr {expr_str(r)} -> {lhs_text}")], []))
            recvs.append(A.If(
                A.BinOp("/=", MYP, r_owner),
                [A.Recv(r.name, list(r.subs), r_owner, tag,
                        comment=f"rtr {expr_str(r)} -> {lhs_text}")], []))
        out.append(A.If(
            A.BinOp("==", MYP, lhs_owner),
            recvs + [A.Assign(s.target, s.expr, s.label)], []))
        return out
    # replicated lhs: every processor needs the distributed elements
    for r in reads:
        out.append(A.Bcast(r.name, list(r.subs), owner_of(r), tags.take(),
                           comment=f"rtr {expr_str(r)}"))
    out.append(A.Assign(s.target, s.expr, s.label))
    return out


# ---------------------------------------------------------------------------
# body rewriting
# ---------------------------------------------------------------------------


@dataclass
class RewritePlan:
    """Everything the body rewriter needs, keyed by statement identity."""

    loop_reduce: dict[int, Constraint] = field(default_factory=dict)
    guard_stmt: dict[int, Constraint] = field(default_factory=dict)
    #: id(anchor stmt) -> comm statements to insert before it
    insert_before: dict[int, list[A.Stmt]] = field(default_factory=dict)
    #: id(anchor stmt) -> statements to insert after it (remap restores)
    insert_after: dict[int, list[A.Stmt]] = field(default_factory=dict)
    #: comm statements to prepend at the top of the body
    prepend: list[A.Stmt] = field(default_factory=list)
    #: id(stmt) -> replacement statement list (RTR rewrites, remaps)
    replace: dict[int, list[A.Stmt]] = field(default_factory=dict)
    drop_directives: bool = True


def rewrite_body(body: list[A.Stmt], plan: RewritePlan) -> list[A.Stmt]:
    out: list[A.Stmt] = list(plan.prepend)
    for s in body:
        sid = id(s)
        out.extend(plan.insert_before.get(sid, ()))
        if sid in plan.replace:
            out.extend(plan.replace[sid])
            continue
        if plan.drop_directives and isinstance(
            s, (A.Decomposition, A.Align, A.Distribute)
        ):
            continue
        if isinstance(s, A.Do):
            s.body = rewrite_body(s.body, _nested(plan))
            if sid in plan.loop_reduce:
                c = plan.loop_reduce[sid]
                if c.dimdist.kind == "block":
                    s.lo, s.hi, s.step = reduce_block_bounds(s, c)
                else:
                    s.lo, s.hi, s.step = reduce_cyclic_bounds(s, c)
        elif isinstance(s, A.DoWhile):
            s.body = rewrite_body(s.body, _nested(plan))
        elif isinstance(s, A.If):
            s.then_body = rewrite_body(s.then_body, _nested(plan))
            s.else_body = rewrite_body(s.else_body, _nested(plan))
        if sid in plan.guard_stmt:
            out.append(A.If(guard_expr(plan.guard_stmt[sid]), [s], []))
        else:
            out.append(s)
        out.extend(plan.insert_after.get(sid, ()))
    return out


def _nested(plan: RewritePlan) -> RewritePlan:
    inner = RewritePlan(
        loop_reduce=plan.loop_reduce,
        guard_stmt=plan.guard_stmt,
        insert_before=plan.insert_before,
        insert_after=plan.insert_after,
        prepend=[],
        replace=plan.replace,
        drop_directives=plan.drop_directives,
    )
    return inner


def uses_myproc(body: list[A.Stmt]) -> bool:
    for e in A.walk_all_exprs(body):
        if isinstance(e, A.Var) and e.name == "my$p":
            return True
    for s in A.walk_stmts(body):
        if isinstance(s, (A.Send, A.Recv, A.Bcast)):
            for e in list(s.subs) + [
                getattr(s, "dest", None), getattr(s, "src", None),
                getattr(s, "root", None),
            ]:
                if e is None:
                    continue
                for x in A.walk_exprs(e):
                    if isinstance(x, A.Var) and x.name == "my$p":
                        return True
    return False


def ensure_myproc(proc: A.Procedure) -> None:
    if uses_myproc(proc.body):
        if not any(isinstance(s, A.SetMyProc) for s in proc.body[:2]):
            proc.body.insert(0, A.SetMyProc())
