"""Data and computation partitioning (§5.3, Figure 9).

Data partitioning turns reaching decompositions into a distribution
function per array.  Computation partitioning applies the owner-computes
rule to every assignment, yielding one :class:`Constraint` per statement
(rank-1 processor grids: exactly one distributed axis per array).

The *delayed instantiation* logic lives in :func:`plan_blocks`: the
compiler first forms the union of iteration sets; bounds are reduced for
local loops whose work items all agree, guards are introduced only where
items disagree, and a procedure-uniform constraint on a formal parameter
is **exported to callers** instead of being instantiated locally (INTER
mode), which is what lets the caller reduce its own loop bounds (the
``j`` loop of Figure 10) or merge guards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..analysis.symbolics import affine_of
from ..dist import TOP, Distribution
from ..lang import ast as A
from .model import Constraint
from .options import Mode, Options
from .reaching import ProcReaching


@dataclass
class ArrayInfo:
    """Resolved per-array placement within one procedure."""

    name: str
    dist: Optional[Distribution]  # None -> replicated / scalar
    axis: int = -1                # the single distributed axis (or -1)

    @property
    def distributed(self) -> bool:
        return self.dist is not None and not self.dist.is_replicated


@dataclass
class PartitionPlan:
    """Computation-partition decisions for one procedure."""

    arrays: dict[str, ArrayInfo] = field(default_factory=dict)
    rtr_arrays: dict[str, str] = field(default_factory=dict)  # name -> why
    #: id(Assign/Call stmt) -> owner-computes constraint (None = replicated)
    stmt_constraint: dict[int, Optional[Constraint]] = field(
        default_factory=dict
    )
    #: id(Do stmt) -> constraint absorbed by bounds reduction
    loop_reduce: dict[int, Constraint] = field(default_factory=dict)
    #: id(stmt) -> constraint to wrap in a guard
    guard_stmt: dict[int, Constraint] = field(default_factory=dict)
    #: uniform constraint exported to callers (INTER, non-main)
    export: Optional[Constraint] = None
    #: statements forced to run-time resolution, with reasons
    rtr_stmts: dict[int, str] = field(default_factory=dict)
    #: id(Assign stmt) -> recognized reduction (see core.reductions)
    reductions: dict[int, object] = field(default_factory=dict)


def resolve_arrays(
    proc: A.Procedure,
    reaching: ProcReaching,
    opts: Options,
) -> tuple[dict[str, ArrayInfo], dict[str, str]]:
    """Data partitioning: a unique Distribution per array, or a run-time
    resolution fallback reason."""
    arrays: dict[str, ArrayInfo] = {}
    rtr: dict[str, str] = {}
    using_stmts = _array_using_statements(proc)
    for d in proc.decls:
        if not d.is_array:
            continue
        dists: set = set()
        for s in using_stmts.get(d.name, ()):
            dists |= reaching.dists_of(d.name, s)
        if not dists:
            arrays[d.name] = ArrayInfo(d.name, None)
            continue
        if TOP in dists:
            rtr[d.name] = "decomposition unknown at some use (TOP)"
            arrays[d.name] = ArrayInfo(d.name, None)
            continue
        concrete = {dd for dd in dists if isinstance(dd, Distribution)}
        if len(concrete) > 1:
            rtr[d.name] = (
                f"multiple reaching decompositions "
                f"{sorted(str(x) for x in concrete)}"
            )
            arrays[d.name] = ArrayInfo(d.name, None)
            continue
        dist = next(iter(concrete))
        axes = dist.distributed_axes()
        if len(axes) > 1:
            rtr[d.name] = "more than one distributed dimension"
            arrays[d.name] = ArrayInfo(d.name, None)
            continue
        info = ArrayInfo(d.name, dist, axes[0] if axes else -1)
        arrays[d.name] = info
    return arrays, rtr


def owner_constraint(
    info: ArrayInfo,
    subs: tuple[A.Expr, ...],
    env: dict,
) -> Optional[Constraint]:
    """Owner-computes constraint of an assignment to ``info``'s array."""
    if not info.distributed:
        return None
    sub = subs[info.axis]
    aff = affine_of(sub, env)
    if aff is None:
        raise UnsupportedSubscript(sub)
    dim = info.dist.dims[info.axis]
    return Constraint(dim, sub, aff.var, aff.offset)


def _array_using_statements(
    proc: A.Procedure,
) -> dict[str, list[A.Stmt]]:
    """Statements referencing each array (element refs or whole-array
    actual arguments) — the points whose reaching decompositions define
    the array's compile-time distribution."""
    out: dict[str, list[A.Stmt]] = {}
    arrays = {d.name for d in proc.decls if d.is_array}
    for s in A.walk_stmts(proc.body):
        if isinstance(s, (A.Distribute, A.Align, A.Decomposition)):
            continue
        names: set[str] = set()
        for e in A.stmt_exprs(s):
            for x in A.walk_exprs(e):
                if isinstance(x, (A.ArrayRef, A.Var)) and x.name in arrays:
                    names.add(x.name)
        for n in names:
            out.setdefault(n, []).append(s)
    return out


class UnsupportedSubscript(Exception):
    """Subscript outside the compiled affine subset."""

    def __init__(self, sub: A.Expr) -> None:
        from ..lang.printer import expr_str

        super().__init__(expr_str(sub))
        self.sub = sub


# ---------------------------------------------------------------------------
# Iteration-set planning over the statement tree
# ---------------------------------------------------------------------------

_SELF = "self"
_ALL = "all"


@dataclass
class _Item:
    status: str
    constraint: Optional[Constraint] = None


def _same(a: Constraint, b: Constraint) -> bool:
    return (
        a.dimdist == b.dimdist
        and a.var == b.var
        and a.off == b.off
        and a.var is not None
    )


def plan_blocks(
    proc: A.Procedure,
    plan: PartitionPlan,
    opts: Options,
    env: dict,
    is_main: bool,
    allow_export: bool = True,
) -> None:
    """Decide bounds reduction vs guards vs export for every constraint.

    Implements the Figure 9 algorithm: constraints bubble outward while
    every sibling work item agrees; a loop whose items all partition on
    its own index gets bounds reduction; disagreement instantiates guards
    at that level; a constraint that bubbles out of the whole body of a
    non-main procedure is exported (delayed instantiation).
    """

    def visit_block(body: list[A.Stmt]) -> _Item:
        items: list[tuple[A.Stmt, _Item]] = []
        for s in body:
            it = visit_stmt(s)
            if it is not None:
                items.append((s, it))
        return combine(items)

    def combine(items: list[tuple[A.Stmt, _Item]]) -> _Item:
        selfs = [(s, it) for s, it in items if it.status == _SELF]
        if not selfs:
            return _Item(_ALL)
        first = selfs[0][1].constraint
        uniform = all(
            _same(it.constraint, first) for _, it in selfs
        ) and len(selfs) == len(items)
        if uniform and first is not None and first.var is not None:
            return _Item(_SELF, first)
        # disagreement: guard each self item here
        for s, it in selfs:
            plan.guard_stmt[id(s)] = it.constraint
        return _Item(_ALL)

    def visit_stmt(s: A.Stmt) -> Optional[_Item]:
        sid = id(s)
        if isinstance(s, (A.Assign, A.Call)):
            c = plan.stmt_constraint.get(sid)
            if sid in plan.rtr_stmts:
                return _Item(_ALL)  # run-time resolution handles itself
            if c is None:
                return _Item(_ALL)
            if c.var is None:
                # constant-subscript owner: guard immediately
                plan.guard_stmt[sid] = c
                return _Item(_ALL)
            return _Item(_SELF, c)
        if isinstance(s, A.Do):
            inner = visit_block(s.body)
            if inner.status == _SELF:
                c = inner.constraint
                if c.var == s.var:
                    if _reducible(s, c):
                        plan.loop_reduce[id(s)] = c
                        return _Item(_ALL)
                    _guard_items(s.body, c)
                    return _Item(_ALL)
                if c.var in _defined_vars(s.body) or c.var == s.var:
                    _guard_items(s.body, c)
                    return _Item(_ALL)
                return _Item(_SELF, c)  # invariant: keep bubbling
            return _Item(_ALL)
        if isinstance(s, A.DoWhile):
            inner = visit_block(s.body)
            if inner.status == _SELF:
                _guard_items(s.body, inner.constraint)
            return _Item(_ALL)
        if isinstance(s, A.If):
            then_it = visit_block(s.then_body)
            else_it = visit_block(s.else_body) if s.else_body else None
            branches = [(s.then_body, then_it)]
            if else_it is not None:
                branches.append((s.else_body, else_it))
            cs = [it.constraint for _b, it in branches if it.status == _SELF]
            if cs and len(cs) == len(branches) and all(
                _same(c, cs[0]) for c in cs
            ):
                return _Item(_SELF, cs[0])
            for b, it in branches:
                if it.status == _SELF:
                    _guard_items(b, it.constraint)
            return _Item(_ALL)
        if isinstance(s, (A.Distribute, A.Align, A.Decomposition)):
            return None
        return _Item(_ALL)

    def _guard_items(body: list[A.Stmt], c: Constraint) -> None:
        """Place guards on the constraint-bearing items of a block whose
        constraint could not be absorbed."""
        for s in body:
            sid = id(s)
            if sid in plan.loop_reduce or sid in plan.guard_stmt:
                continue
            if isinstance(s, (A.Assign, A.Call)):
                sc = plan.stmt_constraint.get(sid)
                if sc is not None and sc.var is not None:
                    plan.guard_stmt[sid] = sc
            elif isinstance(s, (A.Do, A.DoWhile)):
                # guard the whole loop once: the constraint is invariant
                plan.guard_stmt[sid] = c
            elif isinstance(s, A.If):
                _guard_items(s.then_body, c)
                _guard_items(s.else_body, c)

    def _reducible(loop: A.Do, c: Constraint) -> bool:
        if c.dimdist.kind == "block":
            return loop.step == A.ONE
        if c.dimdist.kind == "cyclic":
            return loop.step == A.ONE
        return False  # block_cyclic: guards

    def _defined_vars(body: list[A.Stmt]) -> set[str]:
        out: set[str] = set()
        for s in A.walk_stmts(body):
            if isinstance(s, A.Do):
                out.add(s.var)
            elif isinstance(s, A.Assign) and isinstance(s.target, A.Var):
                out.add(s.target.name)
        return out

    top = visit_block(proc.body)
    if top.status == _SELF:
        c = top.constraint
        exportable = (
            allow_export
            and not is_main
            and opts.mode is Mode.INTER
            and opts.delay_partition
            # communication that is *not* delayed must be instantiated
            # where the executing set is locally known: if the partition
            # were exported, a locally placed point-to-point transfer's
            # sender might never execute (its owner doesn't call the
            # procedure once the caller reduces its loop).  The paper's
            # "delayed instantiation" covers both together.
            and opts.delay_communication
            and c.var in proc.formals
        )
        if exportable:
            plan.export = c
        else:
            _guard_items(proc.body, c)
