"""Recompilation analysis (§4, §8).

In an interprocedural system an unedited module may still need
recompilation when changes elsewhere alter the interprocedural facts it
was compiled under.  Rather than recompiling the whole program after
each change, ParaScope "performs recompilation analysis to pinpoint
modules that may have been affected".

We implement that as fingerprinting: every procedure's compilation
records (a) a fingerprint of its own source and (b) a fingerprint of
every interprocedural input it consumed — reaching decompositions,
propagated constants, and the callee exports (delayed partitions,
pending communication, RSD summaries, decomposition sets) visible at its
call sites.  On a subsequent compilation, a procedure is recompiled only
when one of those fingerprints changed; everything else keeps its
previous node code (here: the compiled Procedure object is reused).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Union

from ..callgraph.acg import ACG
from ..lang import ast as A
from ..lang import parse, procedure_str
from .cloning import clone_program
from .driver import CompiledProgram, ProcedureCompiler, TagAllocator, \
    _initial_distributions
from .model import ProcExports
from .options import CompileReport, Mode, Options
from .reaching import compute_reaching


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def source_fingerprint(proc: A.Procedure) -> str:
    """Stable fingerprint of one procedure's source (the "local summary
    collected after an editing session")."""
    return _digest(procedure_str(proc))


def exports_fingerprint(exp: ProcExports) -> str:
    """Stable fingerprint of everything a procedure exports to its
    callers — the interface summary whose change forces callers to
    recompile (also the summary-store key ingredient for the compile
    service)."""
    parts = [exp.name]
    if exp.constraint is not None:
        c = exp.constraint
        parts.append(f"c:{c.dimdist}:{c.var}:{c.off}")
    for p in exp.pending:
        parts.append(f"p:{p.describe()}")
    for arr in sorted(exp.writes):
        parts.append(f"w:{arr}:" + ",".join(map(str, exp.writes[arr])))
    for arr in sorted(exp.reads):
        parts.append(f"r:{arr}:" + ",".join(map(str, exp.reads[arr])))
    d = exp.decomp
    parts.append(f"d:{sorted(d.use)}:{sorted(d.kill)}:"
                 f"{sorted((k, str(v)) for k, v in d.before.items())}:"
                 f"{sorted((k, str(v)) for k, v in d.after.items())}:"
                 f"{sorted(d.full_kill)}")
    parts.append(str(sorted(exp.overlap_offsets.items())))
    return _digest("|".join(parts))


#: backwards-compatible private alias
_exports_fingerprint = exports_fingerprint


def inputs_fingerprint(
    name: str,
    acg: ACG,
    reaching,
    exports: dict[str, ProcExports],
    opts: Options,
) -> str:
    """Fingerprint of every interprocedural input procedure *name*'s
    compilation consumes: the facts reaching its entry, propagated
    constants, the exports of its callees, and the option values that
    shape code generation.  A procedure whose source *and* inputs
    fingerprints are unchanged compiles to identical node code."""
    parts = []
    pr = reaching.per_proc[name]
    parts.append(str(sorted(str(f) for f in pr.entry)))
    consts = (getattr(reaching, "constants", None) or {}).get(name, {})
    parts.append(str(sorted(consts.items())))
    for site in acg.calls_from(name):
        exp = exports.get(site.callee)
        parts.append(
            f"{site.callee}:" + (exports_fingerprint(exp) if exp else "-")
        )
    parts.append(str(opts.nprocs))
    parts.append(opts.mode.value)
    parts.append(str(int(opts.dynopt)))
    return _digest("|".join(parts))


@dataclass
class ProcRecord:
    """What one procedure's last compilation depended on."""

    source: str
    inputs: str          # reaching + constants + callee exports digest
    compiled: A.Procedure
    exports: ProcExports


@dataclass
class RecompilationManager:
    """Separate-compilation façade over the whole-program driver.

    ``compile()`` performs a full build and caches per-procedure
    records; subsequent ``compile()`` calls with edited source reuse
    every procedure whose source *and* interprocedural inputs are
    unchanged.  ``last_recompiled`` lists what was actually rebuilt —
    the quantity §8's analysis minimizes.
    """

    opts: Options = field(default_factory=Options)
    records: dict[str, ProcRecord] = field(default_factory=dict)
    last_recompiled: list[str] = field(default_factory=list)
    last_reused: list[str] = field(default_factory=list)
    #: persistent across compilations so reused node code (which keeps
    #: its old message tags) never collides with freshly compiled code
    tags: TagAllocator = field(default_factory=TagAllocator)

    def compile(self, source: Union[str, A.Program]) -> CompiledProgram:
        prog = parse(source) if isinstance(source, str) else \
            A.Program([A.clone_procedure(u) for u in source.units])
        report = CompileReport(mode=self.opts.mode, nprocs=self.opts.nprocs)
        if self.opts.mode in (Mode.INTER, Mode.INTRA):
            outcome = clone_program(prog, self.opts)
            prog, acg, reaching = (
                outcome.program, outcome.acg, outcome.reaching
            )
            report.cloned = outcome.clones
        else:
            acg = ACG(prog)
            reaching = compute_reaching(acg, self.opts)
        initial = _initial_distributions(prog, reaching, self.opts)

        tags = self.tags
        exports: dict[str, ProcExports] = {}
        new_records: dict[str, ProcRecord] = {}
        self.last_recompiled = []
        self.last_reused = []
        main_name = prog.main.name
        for name in acg.reverse_topological_order():
            proc = prog.unit(name)
            src_fp = source_fingerprint(proc)
            in_fp = self._inputs_fingerprint(name, acg, reaching, exports)
            old = self.records.get(name)
            if old is not None and old.source == src_fp \
                    and old.inputs == in_fp:
                # reuse: swap in the previously compiled body
                idx = prog.units.index(proc)
                prog.units[idx] = old.compiled
                exports[name] = old.exports
                new_records[name] = old
                self.last_reused.append(name)
                continue
            pc = ProcedureCompiler(
                proc, acg, reaching, self.opts, exports, report, tags,
                is_main=(name == main_name),
            )
            exports[name] = pc.compile()
            new_records[name] = ProcRecord(src_fp, in_fp, proc,
                                           exports[name])
            self.last_recompiled.append(name)
        self.records = new_records
        return CompiledProgram(prog, initial, report, self.opts)

    def _inputs_fingerprint(
        self,
        name: str,
        acg: ACG,
        reaching,
        exports: dict[str, ProcExports],
    ) -> str:
        return inputs_fingerprint(name, acg, reaching, exports, self.opts)
