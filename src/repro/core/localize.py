"""Localization: Figure-2-style node code with local index spaces.

The executable node programs this compiler emits run in *global* index
space (DESIGN.md §4.2): ownership is enforced by reduced bounds and
guards, and every node allocates full-size arrays.  The paper's figures,
however, show the classical presentation — array declarations shrunk to
the local block plus overlap ("REAL X(30)"), loops running over local
indices ("do i = 1, ub$1").

This module derives that presentation for BLOCK-distributed dimensions:
given a compiled procedure and its distributions/overlaps, it rewrites a
*display copy* with local declarations and loop bounds, including the
overlap extension of §5.6 and, optionally, the parameterized overlaps of
Figure 14 (bounds passed as extra formal parameters).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dist import Distribution
from ..lang import ast as A
from ..lang.printer import procedure_str


@dataclass
class LocalLayout:
    """Local shape of one BLOCK-distributed array on one node."""

    array: str
    axis: int                    # the distributed axis
    block: int                   # block length
    lo_overlap: int              # overlap extension below the block
    hi_overlap: int              # overlap extension above


def local_declaration(
    decl: A.Decl, dist: Distribution, overlaps: list[tuple[int, int]]
) -> A.Decl:
    """Shrink a declaration to the per-node block plus overlap regions
    (Figure 2: ``REAL X(100)`` with overlap 5 becomes ``REAL X(30)``)."""
    dims: list[tuple[A.Expr, A.Expr]] = []
    for axis, (lo_e, hi_e) in enumerate(decl.dims):
        dim = dist.dims[axis]
        if dim.kind == "block":
            lo_off, hi_off = overlaps[axis] if axis < len(overlaps) else (0, 0)
            length = dim.block + hi_off - lo_off
            dims.append((A.Num(1), A.Num(length)))
        else:
            dims.append((lo_e, hi_e))
    return A.Decl(decl.type, decl.name, dims)


def parameterized_declaration(decl: A.Decl, dist: Distribution) -> tuple[
    A.Decl, list[str]
]:
    """Figure 14: overlap extents as run-time bounds — the declaration
    becomes ``REAL X(Xlo:Xhi)`` and the bounds join the formal list."""
    dims: list[tuple[A.Expr, A.Expr]] = []
    extra: list[str] = []
    for axis, (lo_e, hi_e) in enumerate(decl.dims):
        dim = dist.dims[axis]
        if dim.kind == "block":
            lo_name = f"{decl.name}lo{axis + 1}" if decl.rank > 1 \
                else f"{decl.name}lo"
            hi_name = f"{decl.name}hi{axis + 1}" if decl.rank > 1 \
                else f"{decl.name}hi"
            dims.append((A.Var(lo_name), A.Var(hi_name)))
            extra += [lo_name, hi_name]
        else:
            dims.append((lo_e, hi_e))
    return A.Decl(decl.type, decl.name, dims), extra


def localized_procedure_text(
    proc: A.Procedure,
    dists: dict[str, Distribution],
    overlaps: dict[str, list[tuple[int, int]]],
    parameterized: bool = False,
) -> str:
    """Render *proc* with local-index declarations (display only).

    Loops that were bounds-reduced keep their generated expressions —
    which already read like Figure 2's ``ub$1`` arithmetic — while array
    declarations shrink to block+overlap (or gain run-time bounds when
    *parameterized*).
    """
    display = A.clone_procedure(proc)
    extra_formals: list[str] = []
    new_decls: list[A.Decl] = []
    for d in display.decls:
        dist = dists.get(d.name)
        if d.is_array and dist is not None and not dist.is_replicated \
                and all(x.kind in ("block", "none") for x in dist.dims):
            ov = overlaps.get(d.name, [(0, 0)] * d.rank)
            if parameterized and d.name in display.formals:
                nd, extra = parameterized_declaration(d, dist)
                new_decls.append(nd)
                extra_formals += extra
                continue
            new_decls.append(local_declaration(d, dist, ov))
        else:
            new_decls.append(d)
    display.decls = new_decls
    for name in extra_formals:
        display.formals.append(name)
        display.decls.append(A.Decl("integer", name, []))
    return procedure_str(display)


def layout_summary(
    dists: dict[str, Distribution],
    overlaps: dict[str, list[tuple[int, int]]],
) -> list[LocalLayout]:
    """Per-array local layouts (asserted by the overlap tests)."""
    out: list[LocalLayout] = []
    for name, dist in dists.items():
        if dist is None or dist.is_replicated:
            continue
        for axis, dim in enumerate(dist.dims):
            if dim.kind != "block":
                continue
            ov = overlaps.get(name, [(0, 0)] * len(dist.dims))
            lo, hi = ov[axis] if axis < len(ov) else (0, 0)
            out.append(LocalLayout(name, axis, dim.block, lo, hi))
    return out
