"""Interprocedural overlap calculation (§5.6, Figure 13).

Overlap regions extend an array's local block to hold nonlocal boundary
data ("overlaps" [Gerndt]).  Because multidimensional arrays must keep
consistent shapes across procedures, overlap extents must agree globally
— which naively needs a second compilation pass.  The paper instead
*estimates*: during local analysis it records the constant offsets that
appear in subscripts; interprocedural propagation translates and merges
them bottom-up through call sites and broadcasts the resulting maximal
estimate; code generation then checks the estimate against the overlaps
actually needed (our shift-communication actions) and falls back to
buffers when it was too small.

This module implements the estimation pipeline; the driver's
per-procedure ``exports.overlap_offsets`` are the "actual" values the
estimate is validated against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.symbolics import affine_of
from ..callgraph.acg import ACG
from ..lang import ast as A

#: per-axis (lowest negative offset, highest positive offset)
Offsets = list[tuple[int, int]]


@dataclass
class OverlapEstimate:
    """Whole-program overlap estimates."""

    #: (procedure, array) -> per-axis offsets
    per_proc: dict[tuple[str, str], Offsets] = field(default_factory=dict)
    #: array name in the procedure that declares it -> global estimate
    merged: dict[tuple[str, str], Offsets] = field(default_factory=dict)

    def get(self, proc: str, array: str, rank: int) -> Offsets:
        return self.per_proc.get((proc, array), [(0, 0)] * rank)


def _merge(a: Offsets, b: Offsets) -> Offsets:
    rank = max(len(a), len(b))
    a = a + [(0, 0)] * (rank - len(a))
    b = b + [(0, 0)] * (rank - len(b))
    return [
        (min(x[0], y[0]), max(x[1], y[1])) for x, y in zip(a, b)
    ]


def local_offsets(proc: A.Procedure, env: dict | None = None) -> dict[str, Offsets]:
    """Local analysis phase: constant subscript offsets per array axis
    (the reference ``Z(k+5, i)`` yields offset ``(+5, 0)``)."""
    arrays = {d.name: d.rank for d in proc.decls if d.is_array}
    out: dict[str, Offsets] = {
        name: [(0, 0)] * rank for name, rank in arrays.items()
    }
    for e in A.walk_all_exprs(proc.body):
        if not isinstance(e, A.ArrayRef) or e.name not in arrays:
            continue
        offs = out[e.name]
        for axis, sub in enumerate(e.subs):
            if axis >= len(offs):
                break
            aff = affine_of(sub, env)
            if aff is None or aff.var is None:
                continue
            lo, hi = offs[axis]
            offs[axis] = (min(lo, aff.offset), max(hi, aff.offset))
    return out


def estimate_overlaps(acg: ACG, env_of: dict[str, dict] | None = None) -> OverlapEstimate:
    """Figure 13's propagation phase: merge local offsets bottom-up
    through call sites (formal -> actual), then push the merged maxima
    back down so every procedure sees a consistent estimate."""
    env_of = env_of or {}
    est = OverlapEstimate()
    local: dict[str, dict[str, Offsets]] = {}
    for name in acg.nodes:
        local[name] = local_offsets(acg.node(name).proc,
                                    env_of.get(name))

    # bottom-up merge: callee offsets translate to actual arrays
    combined: dict[str, dict[str, Offsets]] = {
        name: {k: list(v) for k, v in offs.items()}
        for name, offs in local.items()
    }
    for name in acg.reverse_topological_order():
        for site in acg.calls_from(name):
            callee = combined[site.callee]
            for formal, actual in site.array_actuals.items():
                if formal in callee:
                    mine = combined[name].setdefault(
                        actual, [(0, 0)] * len(callee[formal])
                    )
                    combined[name][actual] = _merge(mine, callee[formal])

    # top-down broadcast of the final estimates along call chains
    for name in acg.topological_order():
        for arr, offs in combined[name].items():
            est.per_proc[(name, arr)] = list(offs)
        for site in acg.calls_from(name):
            for formal, actual in site.array_actuals.items():
                mine = combined[name].get(actual)
                if mine is None:
                    continue
                theirs = combined[site.callee].setdefault(
                    formal, [(0, 0)] * len(mine)
                )
                combined[site.callee][formal] = _merge(theirs, mine)
    for name in acg.nodes:
        for arr, offs in combined[name].items():
            est.per_proc[(name, arr)] = list(offs)
    return est


@dataclass
class OverlapValidation:
    """Code-generation phase check: estimate vs actually needed."""

    sufficient: bool
    #: (procedure, array, axis) entries where the estimate was too small
    #: and buffers must be used instead (§5.6 "use buffer instead")
    buffer_fallbacks: list[tuple[str, str, int]] = field(default_factory=list)


def validate_overlaps(
    estimate: OverlapEstimate,
    actual: dict[tuple[str, str], Offsets],
) -> OverlapValidation:
    """Compare the interprocedural estimate against the overlaps the
    generated communication actually requires."""
    v = OverlapValidation(sufficient=True)
    for (proc, arr), offs in actual.items():
        est = estimate.per_proc.get((proc, arr))
        if est is None:
            est = [(0, 0)] * len(offs)
        for axis, (lo, hi) in enumerate(offs):
            elo, ehi = est[axis] if axis < len(est) else (0, 0)
            if lo < elo or hi > ehi:
                v.sufficient = False
                v.buffer_fallbacks.append((proc, arr, axis))
    return v
