"""Reaching decompositions (§5.2, Figures 6-7).

The compiler must know the data decomposition of every array at every
reference.  Locally this is a reaching-definitions-style forward problem
(each DISTRIBUTE is a "definition" of the arrays it affects);
interprocedurally it is solved in **one top-down pass** because Fortran D
scoping guarantees a callee's redistributions are undone on return, so a
procedure's reaching decompositions depend only on its callers.

Facts are ``(array name, Distribution | TOP)`` pairs; ``TOP`` is the
placeholder for "inherited from caller" that interprocedural propagation
later expands (the ``<⊤, V>`` elements of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from ..analysis.dataflow import solve
from ..callgraph.acg import ACG, CallSite
from ..dist import TOP, DirectiveTable, Distribution
from ..dist.decomposition import _Top
from ..ir.cfg import CFG
from ..lang import ast as A
from .options import Options

DistOrTop = Union[Distribution, _Top]
Fact = tuple[str, "DistOrTop"]


class ReachingError(Exception):
    """Unresolvable decomposition structure."""


@dataclass
class ProcReaching:
    """Reaching-decompositions results for one procedure."""

    name: str
    cfg: CFG
    #: facts entering the procedure (formal arrays start at TOP until
    #: interprocedural propagation fills them in)
    entry: frozenset[Fact] = frozenset()
    #: per call site id: facts at the call, translated to callee formals
    local_reaching: dict[int, frozenset[Fact]] = field(default_factory=dict)
    #: per statement (id of the AST node): facts reaching it
    at_stmt: dict[int, frozenset[Fact]] = field(default_factory=dict)
    #: the directive table (decomps/aligns declared in this procedure)
    table: DirectiveTable | None = None

    def dists_of(self, array: str, stmt: A.Stmt) -> set[DistOrTop]:
        facts = self.at_stmt.get(id(stmt), frozenset())
        return {d for (n, d) in facts if n == array}

    def reaching_dists(self, array: str) -> set[DistOrTop]:
        """Union of distributions reaching any use of *array*."""
        out: set[DistOrTop] = set()
        for facts in self.at_stmt.values():
            out |= {d for (n, d) in facts if n == array}
        return out


def build_directive_table(proc: A.Procedure) -> DirectiveTable:
    arrays = {d.name: d.rank for d in proc.decls if d.is_array}
    table = DirectiveTable(arrays)
    for s in A.walk_stmts(proc.body):
        if isinstance(s, A.Decomposition):
            table.add_decomposition(s)
        elif isinstance(s, A.Align):
            table.add_align(s)
    return table


def _array_bounds(proc: A.Procedure, name: str,
                  param_env: dict) -> list[tuple[int, int]] | None:
    """Constant declared bounds of an array, or None when symbolic."""
    from ..analysis.symbolics import eval_int

    d = proc.decl(name)
    if d is None:
        return None
    out = []
    for lo_e, hi_e in d.dims:
        lo = eval_int(lo_e, param_env)
        hi = eval_int(hi_e, param_env)
        if lo is None or hi is None:
            return None
        out.append((lo, hi))
    return out


def _param_env(proc: A.Procedure) -> dict:
    from ..analysis.symbolics import eval_const

    env: dict = {}
    for p in proc.params:
        v = eval_const(p.value, env)
        if v is not None:
            env[p.name] = v
    return env


def analyze_procedure(
    proc: A.Procedure,
    opts: Options,
    entry: frozenset[Fact] | None = None,
    const_env: dict | None = None,
) -> ProcReaching:
    """Local reaching-decompositions for one procedure.

    ``entry`` overrides the default entry facts (used when re-running
    after interprocedural propagation has resolved TOP); ``const_env``
    supplies interprocedurally propagated constants so DISTRIBUTE of
    formal arrays with symbolic bounds resolves.
    """
    table = build_directive_table(proc)
    cfg = CFG.build(proc.body)
    param_env = dict(const_env) if const_env else _param_env(proc)

    commons = set(proc.commons)
    formal_arrays = {
        d.name for d in proc.decls if d.is_array and d.name in proc.formals
    }
    # COMMON arrays inherit their decomposition from the caller exactly
    # like formals (in the main program they behave like locals)
    inherited = formal_arrays | (commons if proc.kind != "program" else set())
    local_arrays = {
        d.name for d in proc.decls
        if d.is_array and d.name not in inherited
    }
    if entry is None:
        facts: set[Fact] = {(n, TOP) for n in inherited}
        for n in local_arrays:
            bounds = _array_bounds(proc, n, param_env)
            if bounds is not None:
                facts.add((n, Distribution.replicated(bounds, opts.nprocs)))
        entry = frozenset(facts)

    # gen/kill per CFG node
    gen: dict[int, set[Fact]] = {}
    kills_arrays: dict[int, set[str]] = {}
    for node in cfg.nodes:
        s = node.stmt
        if isinstance(s, A.Distribute):
            try:
                changed = table.resolve_distribute(s)
            except ValueError as e:
                raise ReachingError(f"{proc.name}: {e}") from e
            g: set[Fact] = set()
            for arr, value in changed.items():
                bounds = _array_bounds(proc, arr, param_env)
                if bounds is None:
                    # symbolic bounds: distribution becomes concrete only
                    # with inherited bounds; defer via TOP-like handling
                    raise ReachingError(
                        f"{proc.name}: DISTRIBUTE of {arr} with symbolic "
                        f"bounds is not supported"
                    )
                g.add((arr, Distribution.from_specs(
                    value.specs, bounds, opts.nprocs)))
            gen[node.id] = g
            kills_arrays[node.id] = set(changed)

    def transfer(node, inset):
        ka = kills_arrays.get(node.id)
        if ka:
            inset = frozenset(f for f in inset if f[0] not in ka)
        g = gen.get(node.id)
        if g:
            inset = inset | frozenset(g)
        return inset

    ins, _outs = solve(cfg, transfer, "forward", boundary=entry)

    pr = ProcReaching(proc.name, cfg, entry, table=table)
    for node in cfg.nodes:
        if node.stmt is not None:
            pr.at_stmt[id(node.stmt)] = ins[node.id]
    return pr


def translate_to_callee(
    facts: frozenset[Fact], site: CallSite, callee: A.Procedure | None = None
) -> frozenset[Fact]:
    """The paper's ``Translate``: map actual-array facts to the callee's
    formal names; facts for COMMON (global) arrays are simply copied."""
    out: set[Fact] = set()
    for formal, actual in site.array_actuals.items():
        for name, d in facts:
            if name == actual:
                out.add((formal, d))
    if callee is not None and callee.commons:
        commons = set(callee.commons)
        for name, d in facts:
            if name in commons:
                out.add((name, d))
    return frozenset(out)


@dataclass
class ReachingResult:
    """Whole-program reaching decompositions."""

    per_proc: dict[str, ProcReaching]
    #: Reaching(P): facts entering each procedure from all its callers
    reaching: dict[str, frozenset[Fact]]
    #: per call-site id: translated facts (callee formal names)
    site_reaching: dict[int, frozenset[Fact]]
    #: per-procedure constant environments (interprocedural constants)
    constants: dict[str, dict] = None  # type: ignore[assignment]


def compute_reaching(acg: ACG, opts: Options) -> ReachingResult:
    """Figure 6: local analysis + top-down interprocedural propagation +
    the final recomputation pass that resolves TOP in every procedure."""
    program = acg.program
    from ..analysis.constants import propagate_constants

    constants = propagate_constants(acg)

    # --- local analysis phase -----------------------------------------
    local: dict[str, ProcReaching] = {}
    for proc in program.units:
        local[proc.name] = analyze_procedure(
            proc, opts, const_env=constants[proc.name]
        )

    # --- interprocedural propagation (topological: callers first) -------
    reaching: dict[str, frozenset[Fact]] = {}
    site_reaching: dict[int, frozenset[Fact]] = {}
    final: dict[str, ProcReaching] = {}
    for name in acg.topological_order():
        proc = program.unit(name)
        callers = acg.calls_to(name)
        if proc.kind == "program" or not callers:
            reaching[name] = frozenset()
        else:
            merged: set[Fact] = set()
            for site in callers:
                caller_pr = final[site.caller]
                at_call = caller_pr.at_stmt.get(id(site.stmt), frozenset())
                translated = translate_to_callee(at_call, site, proc)
                site_reaching[site.id] = translated
                merged |= translated
            reaching[name] = frozenset(merged)
        # resolve TOP: re-run local analysis with the propagated entry
        entry_facts: set[Fact] = set()
        base = local[name].entry
        for arr, d in base:
            if d is TOP:
                resolved = {dd for (n, dd) in reaching[name] if n == arr}
                if resolved:
                    entry_facts |= {(arr, dd) for dd in resolved}
                else:
                    entry_facts.add((arr, TOP))
            else:
                entry_facts.add((arr, d))
        final[name] = analyze_procedure(
            proc, opts, frozenset(entry_facts), const_env=constants[name]
        )

    return ReachingResult(final, reaching, site_reaching, constants)
