"""Procedure cloning (§5.2, Figure 8).

The compiler generates much better code when each array has a single
reaching decomposition per procedure.  Calls to P are partitioned by
``Filter(Translate(LocalReaching(C)), Appear(P))`` — the decompositions
they supply for variables that actually appear in P or its descendants —
and a clone of P is created per partition.  Pathological growth is capped
(§5.2: beyond a threshold, cloning is disabled and run-time resolution
takes over).

Cloning changes the call graph, which changes reaching decompositions in
descendants, so the driver iterates: analyze, clone the first procedure
that needs it (in topological order), re-analyze — until stable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.sideeffects import compute_side_effects
from ..callgraph.acg import ACG
from ..lang import ast as A
from .options import Options
from .reaching import Fact, ReachingResult, compute_reaching


@dataclass
class CloneOutcome:
    """Result of the cloning transformation."""

    program: A.Program
    acg: ACG
    reaching: ReachingResult
    #: original name -> clone names created (original kept for 1st group)
    clones: dict[str, list[str]] = field(default_factory=dict)
    #: cloning disabled due to growth; affected procedures
    growth_capped: bool = False


def _filter(facts: frozenset[Fact], names: set[str]) -> frozenset[Fact]:
    """The paper's Filter: drop decompositions of variables that do not
    appear in the callee or its descendants."""
    return frozenset(f for f in facts if f[0] in names)


def _partition_calls(
    acg: ACG, reaching: ReachingResult, appear_sets: dict[str, set[str]],
    name: str,
) -> list[tuple[frozenset[Fact], list]]:
    """Group calls to *name* by filtered reaching facts."""
    groups: dict[frozenset[Fact], list] = {}
    for site in acg.calls_to(name):
        facts = reaching.site_reaching.get(site.id, frozenset())
        key = _filter(facts, appear_sets[name])
        groups.setdefault(key, []).append(site)
    return list(groups.items())


def clone_program(program: A.Program, opts: Options) -> CloneOutcome:
    """Iteratively clone until every procedure has a single partition of
    callers (or the growth cap is hit)."""
    original_count = len(program.units)
    outcome = CloneOutcome(program, ACG(program),
                           compute_reaching(ACG(program), opts))
    if not opts.enable_cloning:
        return outcome

    while True:
        acg = ACG(program)
        reaching = compute_reaching(acg, opts)
        effects = compute_side_effects(acg)
        appear_sets = {
            name: effects[name].appear & (
                set(program.unit(name).formals)
                | set(program.unit(name).commons)
            )
            for name in acg.nodes
        }
        changed = False
        for name in acg.topological_order():
            proc = program.unit(name)
            if proc.kind == "program":
                continue
            groups = _partition_calls(acg, reaching, appear_sets, name)
            if len(groups) <= 1:
                continue
            if len(program.units) + len(groups) - 1 > (
                opts.clone_growth_limit * original_count
            ):
                outcome.growth_capped = True
                outcome.program = program
                outcome.acg = acg
                outcome.reaching = reaching
                return outcome
            # create one clone per additional partition; the first keeps
            # the original name
            clone_names = []
            for gi, (_key, sites) in enumerate(groups[1:], start=1):
                clone_name = _fresh_name(program, name, gi)
                clone = A.clone_procedure(proc, clone_name)
                program.units.append(clone)
                clone_names.append(clone_name)
                for site in sites:
                    site.stmt.name = clone_name
            outcome.clones.setdefault(name, []).extend(clone_names)
            changed = True
            break  # re-analyze from scratch after each transformation
        if not changed:
            outcome.program = program
            outcome.acg = acg
            outcome.reaching = reaching
            return outcome


def _fresh_name(program: A.Program, base: str, start: int) -> str:
    i = start
    names = set(program.names())
    while f"{base}${i}" in names:
        i += 1
    return f"{base}${i}"
