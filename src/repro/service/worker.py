"""Compile worker: one procedure-compiling subprocess.

Run as ``python -m repro.service.worker``.  Speaks length-prefixed
pickle frames over stdin/stdout (see :mod:`.protocol`); the pool is the
only intended peer, and pool and worker are always the same build.

Jobs::

    {"op": "ping"}
    {"op": "exit"}
    {"op": "compile", "source": str, "opts": Options, "names": [str],
     "exports": {name: ProcExports}, "main_name": str,
     "crash_flag": path|None, "hang_flag": path|None}
    {"op": "evaluate", "source": str,
     "plans": [{"idx": int, "opts": Options}],
     "scheduler": str, "cost": str, "store_dir": path|None,
     "crash_flag": path|None, "hang_flag": path|None}

A compile job re-runs the deterministic front end from source (reaching
results are keyed by statement identity, so they cannot travel between
processes) and compiles each requested procedure with a private tag
allocator via the same :func:`~repro.service.compiler.compile_one` the
in-daemon fallback uses — results are byte-identical either way.  The
front end is memoized per (source, options) so one wave's many jobs
parse and analyze once.

``crash_flag`` and ``hang_flag`` are the chaos hooks: if the named
file exists when a compile job arrives, the worker consumes it and
SIGKILLs itself (crash) or sleeps forever (hang) — deterministic
mid-compile failures for the supervisor tests.

Any per-job exception is reported as ``{"ok": False, "error": ...}``;
the worker itself keeps running.  Stray prints cannot corrupt framing:
stdout is duplicated for frames and ``sys.stdout`` is rebound to
stderr before any compilation runs.
"""

from __future__ import annotations

import os
import signal
import sys
import time
from collections import OrderedDict

from ..core.driver import front_end
from ..core.recompile import _digest
from .compiler import compile_one
from .protocol import read_pipe_frame, write_pipe_frame
from .store import opts_fingerprint

#: front-end memo size (source+options pairs); jobs in one wave share
#: one entry, a small window covers edit sequences
_FRONT_END_MEMO = 4


class _FrontEndCache:
    """LRU of (source, options) -> (prog, acg, reaching, used_names).

    ``used_names`` tracks procedures already compiled against this
    front end: compilation rewrites the procedure body in place, and
    reaching results are keyed by the *original* statement identities —
    so a name may be compiled at most once per front-end instance.  A
    repeat request (possible after pool retries) re-runs the front end.
    """

    def __init__(self, cap: int = _FRONT_END_MEMO) -> None:
        self.cap = cap
        self.entries: OrderedDict[tuple, tuple] = OrderedDict()

    def get(self, source, opts, names):
        key = (_digest(source), opts_fingerprint(opts))
        entry = self.entries.get(key)
        if entry is not None:
            used = entry[3]
            if used.isdisjoint(names):
                self.entries.move_to_end(key)
                used.update(names)
                return entry[:3]
            del self.entries[key]
        prog, acg, reaching, _report = front_end(source, opts)
        self.entries[key] = (prog, acg, reaching, set(names))
        while len(self.entries) > self.cap:
            self.entries.popitem(last=False)
        return prog, acg, reaching


def _consume_chaos_flags(job: dict) -> None:
    flag = job.get("crash_flag")
    if flag and os.path.exists(flag):
        # chaos hook: die abruptly mid-request, exactly once per flag
        try:
            os.unlink(flag)
        finally:
            os.kill(os.getpid(), signal.SIGKILL)
    flag = job.get("hang_flag")
    if flag and os.path.exists(flag):
        # chaos hook: wedge mid-request so the supervisor's deadline
        # reads and SIGKILL-restart path get exercised
        os.unlink(flag)
        time.sleep(3600)


def _handle_compile(job: dict, cache: _FrontEndCache) -> dict:
    _consume_chaos_flags(job)
    source = job["source"]
    opts = job["opts"]
    names = job["names"]
    prog, acg, reaching = cache.get(source, opts, names)
    exports = dict(job["exports"])
    results = []
    for name in names:
        s = compile_one(prog, name, acg, reaching, opts, exports,
                        job["main_name"])
        results.append(s)
    return {"ok": True, "results": results}


#: per-process evaluation compilers, one per summary-store directory —
#: persistent so every plan a worker evaluates reuses the summaries of
#: the plans before it (the disk tier shares them *across* workers)
_EVAL_COMPILERS: dict[str, object] = {}


def _handle_evaluate(job: dict) -> dict:
    """Evaluate a chunk of candidate distribution plans: compile each
    plan's :class:`Options` through a persistent incremental
    :class:`~repro.service.compiler.ServiceCompiler` and run it on the
    simulated machine.  Per-plan failures (e.g. a plan outside the
    compilable subset) are reported in-band so sibling plans in the
    chunk still produce metrics."""
    from ..tune.evaluate import evaluate_plan, make_eval_compiler

    _consume_chaos_flags(job)
    store_dir = job.get("store_dir")
    sc = _EVAL_COMPILERS.get(store_dir or "")
    if sc is None:
        sc = make_eval_compiler(store_dir)
        _EVAL_COMPILERS[store_dir or ""] = sc
    results = []
    for plan in job["plans"]:
        try:
            metrics = evaluate_plan(
                sc, job["source"], plan["opts"],
                scheduler=job.get("scheduler", "event"),
                cost=job.get("cost", "ipsc860"),
            )
        except Exception as e:
            metrics = {"error": f"{type(e).__name__}: {e}"}
        metrics["idx"] = plan["idx"]
        results.append(metrics)
    return {"ok": True, "results": results}


def main() -> int:
    # claim the frame channel before anything can print to it
    out = os.fdopen(os.dup(1), "wb")
    inp = os.fdopen(os.dup(0), "rb")
    sys.stdout = sys.stderr
    cache = _FrontEndCache()
    while True:
        job = read_pipe_frame(inp)
        if job is None or job.get("op") == "exit":
            return 0
        if job.get("op") == "ping":
            write_pipe_frame(out, {"ok": True, "pong": True,
                                   "pid": os.getpid()})
            continue
        if job.get("op") not in ("compile", "evaluate"):
            write_pipe_frame(
                out, {"ok": False, "error": f"unknown op {job.get('op')!r}"}
            )
            continue
        try:
            if job["op"] == "evaluate":
                reply = _handle_evaluate(job)
            else:
                reply = _handle_compile(job, cache)
        except Exception as e:  # report, stay alive
            reply = {"ok": False,
                     "error": f"{type(e).__name__}: {e}",
                     "names": job.get("names")}
        write_pipe_frame(out, reply)


if __name__ == "__main__":
    sys.exit(main())
