"""The compile daemon: unix-socket server around the service compiler.

``fdc serve --socket PATH`` runs one.  Requests are length-prefixed
JSON frames (:mod:`.protocol`); ``compile`` requests pass through a
**bounded queue** drained by handler threads, while control ops
(``ping``, ``stats``, ``shutdown``) are answered inline so they keep
working under load.

Backpressure and shedding: when the queue is full an incoming
speculative request is refused immediately and a non-speculative
request sheds the *oldest queued speculative* request (both receive a
retryable ``overloaded`` reply carrying ``retry_after_s``); if nothing
can be shed the newcomer is refused.  Requests also carry deadlines —
the daemon clamps them to ``max_deadline_s``, expires requests that
aged out while queued, and propagates the deadline into the compiler
and worker pool (cooperative cancellation).

Every phase is traced when a tracer is supplied (``service.request``
spans, ``service.overloaded``/``service.shed`` decisions), and
``stats`` exposes request counters plus store/pool stats.

The daemon also owns an always-on :class:`~repro.obs.MetricsRegistry`:
per-request latency histograms and outcome counters, a live queue-depth
gauge, queue-wait times, and mirrors of the pool / store / compile-cache
counters.  The ``metrics`` control op serves a snapshot plus the
Prometheus text exposition (``fdc metrics``).
"""

from __future__ import annotations

import os
import socket
import threading
import time
from collections import deque
from typing import Optional

from ..obs.metrics import MetricsRegistry, mirror_counters
from .compiler import ServiceCompiler
from .pool import WorkerPool
from .protocol import (
    PROTOCOL_VERSION,
    FrameError,
    ServiceError,
    error_reply,
    options_from_wire,
    pack_blob,
    recv_frame,
    send_frame,
)
from .store import SummaryStore


class CompileDaemon:
    """One compile-service daemon (see module docstring)."""

    def __init__(
        self,
        socket_path: str,
        store_dir: Optional[str] = None,
        pool_size: int = 2,
        queue_limit: int = 8,
        handlers: int = 2,
        max_deadline_s: float = 300.0,
        request_read_timeout_s: float = 10.0,
        seed: int = 0,
        tracer=None,
        crash_flag: Optional[str] = None,
        hang_flag: Optional[str] = None,
        pool: Optional[WorkerPool] = None,
    ) -> None:
        self.socket_path = socket_path
        self.tracer = tracer
        self.max_deadline_s = max_deadline_s
        self.request_read_timeout_s = request_read_timeout_s
        self.queue_limit = queue_limit
        self.handlers = max(1, handlers)
        self.metrics = MetricsRegistry()
        self._m_requests = self.metrics.counter(
            "fdc_requests_total", "service requests by op and outcome",
            labels=("op", "outcome"),
        )
        self._m_latency = self.metrics.histogram(
            "fdc_request_latency_seconds",
            "compile-request handling latency by outcome",
            labels=("outcome",),
        )
        self._m_queue_wait = self.metrics.histogram(
            "fdc_queue_wait_seconds",
            "time compile requests spent queued",
        ).labels()
        self._m_queue_depth = self.metrics.gauge(
            "fdc_queue_depth", "compile requests currently queued",
        ).labels()
        self.store = SummaryStore(store_dir)
        if pool is not None:
            self.pool = pool
        elif pool_size > 0:
            self.pool = WorkerPool(size=pool_size, seed=seed,
                                   crash_flag=crash_flag,
                                   hang_flag=hang_flag, tracer=tracer,
                                   metrics=self.metrics)
        else:
            self.pool = None
        if self.pool is not None and self.pool.metrics is None:
            self.pool.metrics = self.metrics
        self.compiler = ServiceCompiler(store=self.store, pool=self.pool,
                                        tracer=tracer)
        self.counters = {
            "requests": 0, "completed": 0, "errors": 0,
            "overloaded": 0, "shed": 0, "expired": 0, "bad": 0,
        }
        #: queue entries: (conn, request, enqueued_at, deadline)
        self._queue: deque = deque()
        self._cv = threading.Condition()
        self._stop = threading.Event()
        self.ready = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._threads: list[threading.Thread] = []

    # -- lifecycle ----------------------------------------------------------

    def serve_forever(self) -> None:
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass
        lst = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        lst.bind(self.socket_path)
        lst.listen(16)
        lst.settimeout(0.2)
        self._listener = lst
        for i in range(self.handlers):
            t = threading.Thread(target=self._handler_loop,
                                 name=f"fdc-handler-{i}", daemon=True)
            t.start()
            self._threads.append(t)
        self.ready.set()
        try:
            while not self._stop.is_set():
                try:
                    conn, _ = lst.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                t = threading.Thread(target=self._read_request,
                                     args=(conn,), daemon=True)
                t.start()
        finally:
            self._shutdown_cleanup()

    def serve_in_thread(self) -> threading.Thread:
        """Start the daemon on a background thread (tests); returns the
        thread once the socket is accepting."""
        t = threading.Thread(target=self.serve_forever, daemon=True)
        t.start()
        if not self.ready.wait(timeout=10):
            raise RuntimeError("daemon did not start")
        return t

    def stop(self) -> None:
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._cv:
            self._cv.notify_all()

    def _shutdown_cleanup(self) -> None:
        self._stop.set()
        with self._cv:
            pending = list(self._queue)
            self._queue.clear()
            self._cv.notify_all()
        for conn, _req, _t, _dl in pending:
            self._reply_close(conn, error_reply(
                "shutdown", "daemon stopping", retryable=True))
        if self.pool is not None:
            self.pool.close()
        try:
            self._listener.close()
        except (OSError, AttributeError):
            pass
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass

    # -- request intake -----------------------------------------------------

    def _read_request(self, conn: socket.socket) -> None:
        """Read one request frame (bounded), answer control ops inline,
        enqueue compile requests under the backpressure policy."""
        deadline = time.monotonic() + self.request_read_timeout_s
        try:
            req = recv_frame(conn, deadline)
        except (FrameError, TimeoutError, OSError):
            # slow-loris / garbage client: drop the connection
            with self._cv:
                self.counters["bad"] += 1
            self._m_requests.inc(1.0, op="?", outcome="bad")
            try:
                conn.close()
            except OSError:
                pass
            return
        op = req.get("op")
        with self._cv:
            self.counters["requests"] += 1
        if req.get("v") != PROTOCOL_VERSION:
            self._m_requests.inc(1.0, op=str(op), outcome="bad")
            self._reply_close(conn, error_reply(
                "bad-request",
                f"protocol version {req.get('v')!r} != "
                f"{PROTOCOL_VERSION}", retryable=False))
            return
        if op == "ping":
            self._m_requests.inc(1.0, op="ping", outcome="ok")
            self._reply_close(conn, {"ok": True, "pong": True,
                                     "pid": os.getpid(),
                                     "v": PROTOCOL_VERSION})
            return
        if op == "stats":
            self._m_requests.inc(1.0, op="stats", outcome="ok")
            self._reply_close(conn, {"ok": True, "v": PROTOCOL_VERSION,
                                     "stats": self.stats()})
            return
        if op == "metrics":
            self._m_requests.inc(1.0, op="metrics", outcome="ok")
            self._sync_metrics()
            self._reply_close(conn, {
                "ok": True, "v": PROTOCOL_VERSION,
                "metrics": self.metrics.snapshot(),
                "prometheus": self.metrics.prometheus(),
            })
            return
        if op == "shutdown":
            self._m_requests.inc(1.0, op="shutdown", outcome="ok")
            self._reply_close(conn, {"ok": True, "stopping": True,
                                     "v": PROTOCOL_VERSION})
            self.stop()
            return
        if op != "compile":
            self._m_requests.inc(1.0, op=str(op), outcome="bad")
            self._reply_close(conn, error_reply(
                "bad-request", f"unknown op {op!r}", retryable=False))
            return
        self._enqueue(conn, req)

    def _enqueue(self, conn: socket.socket, req: dict) -> None:
        now = time.monotonic()
        want = req.get("deadline_s")
        try:
            want = float(want) if want is not None \
                else self.max_deadline_s
        except (TypeError, ValueError):
            want = self.max_deadline_s
        deadline = now + max(0.0, min(want, self.max_deadline_s))
        speculative = bool(req.get("speculative"))
        with self._cv:
            if self._stop.is_set():
                shed_entry, refused = None, "shutdown"
            elif len(self._queue) < self.queue_limit:
                shed_entry, refused = None, None
            elif speculative:
                # a full queue never accepts more speculation
                shed_entry, refused = None, "overloaded"
            else:
                # shed the oldest queued speculative request in favor
                # of the non-speculative newcomer
                shed_entry = None
                for i, entry in enumerate(self._queue):
                    if entry[1].get("speculative"):
                        shed_entry = entry
                        del self._queue[i]
                        break
                refused = None if shed_entry is not None \
                    else "overloaded"
            if refused is None:
                self._queue.append((conn, req, now, deadline))
                self._cv.notify()
            qlen = len(self._queue)
            if refused == "overloaded" or shed_entry is not None:
                self.counters["overloaded"] += 1
            if shed_entry is not None:
                self.counters["shed"] += 1
        self._m_queue_depth.set(qlen)
        retry_after = round(0.1 * (qlen + 1), 3)
        if shed_entry is not None:
            self._m_requests.inc(1.0, op="compile", outcome="shed")
            if self.tracer is not None:
                self.tracer.decision("service.shed")
            self._reply_close(shed_entry[0], error_reply(
                "overloaded", "shed for a non-speculative request",
                retryable=True, retry_after_s=retry_after))
        if refused == "overloaded":
            self._m_requests.inc(1.0, op="compile", outcome="overloaded")
            if self.tracer is not None:
                self.tracer.decision("service.overloaded")
            self._reply_close(conn, error_reply(
                "overloaded", "compile queue full", retryable=True,
                retry_after_s=retry_after))
        elif refused == "shutdown":
            self._m_requests.inc(1.0, op="compile", outcome="shutdown")
            self._reply_close(conn, error_reply(
                "shutdown", "daemon stopping", retryable=True))

    # -- handling -----------------------------------------------------------

    def _handler_loop(self) -> None:
        while True:
            with self._cv:
                while not self._queue and not self._stop.is_set():
                    self._cv.wait(timeout=0.5)
                if self._stop.is_set() and not self._queue:
                    return
                if not self._queue:
                    continue
                conn, req, enq, deadline = self._queue.popleft()
                qlen = len(self._queue)
            self._m_queue_depth.set(qlen)
            start = time.monotonic()
            self._m_queue_wait.observe(max(0.0, start - enq))
            if start > deadline:
                with self._cv:
                    self.counters["expired"] += 1
                self._m_requests.inc(1.0, op="compile",
                                     outcome="expired")
                self._reply_close(conn, error_reply(
                    "deadline", "request expired while queued",
                    retryable=True))
                continue
            reply = self._compile(req, deadline)
            outcome = "ok" if reply.get("ok") else "error"
            self._m_latency.observe(time.monotonic() - start,
                                    outcome=outcome)
            self._m_requests.inc(1.0, op="compile", outcome=outcome)
            self._reply_close(conn, reply)

    def _compile(self, req: dict, deadline: float) -> dict:
        def span():
            from contextlib import nullcontext
            if self.tracer is None:
                return nullcontext()
            return self.tracer.phase("service.request", op="compile")

        try:
            source = req["source"]
            opts = options_from_wire(req["opts"]) if req.get("opts") \
                else None
            if not isinstance(source, str):
                raise KeyError("source")
        except (KeyError, TypeError, ValueError) as e:
            with self._cv:
                self.counters["bad"] += 1
            return error_reply("bad-request", f"malformed request: {e}",
                               retryable=False)
        try:
            with span():
                compiled, stats = self.compiler.compile(
                    source, opts, deadline=deadline)
        except ServiceError as e:
            with self._cv:
                self.counters["errors"] += 1
            return error_reply(e.kind, str(e), retryable=e.retryable,
                               retry_after_s=e.retry_after_s)
        except Exception as e:
            # the program itself failed to compile: a deterministic,
            # non-retryable outcome the client should surface (its
            # in-process fallback would fail identically)
            with self._cv:
                self.counters["errors"] += 1
            return error_reply("compile-error",
                               f"{type(e).__name__}: {e}",
                               retryable=False)
        with self._cv:
            self.counters["completed"] += 1
        return {"ok": True, "v": PROTOCOL_VERSION,
                "blob": pack_blob(compiled), "stats": stats}

    # -- misc ---------------------------------------------------------------

    def stats(self) -> dict:
        with self._cv:
            out = dict(self.counters)
            out["queued"] = len(self._queue)
        out["store"] = self.store.stats()
        if self.pool is not None:
            out["pool"] = self.pool.stats()
        return out

    def _sync_metrics(self) -> None:
        """Refresh the mirrored counter families (pool / store /
        compile-cache / intake counters) and the queue-depth gauge so a
        ``metrics`` reply reflects the daemon's current state."""
        from ..core.driver import compile_cache_stats

        with self._cv:
            counters = dict(self.counters)
            qlen = len(self._queue)
        self._m_queue_depth.set(qlen)
        mirror_counters(self.metrics, "fdc_daemon_events_total",
                        counters,
                        help="daemon request-intake counters")
        mirror_counters(self.metrics, "fdc_store_events_total",
                        self.store.stats(),
                        help="summary-store activity")
        if self.pool is not None:
            mirror_counters(self.metrics, "fdc_pool_events_total",
                            self.pool.stats(),
                            help="worker-pool supervision counters")
        mirror_counters(self.metrics, "fdc_compile_cache_events_total",
                        compile_cache_stats(),
                        help="in-process compile memo activity")

    def _reply_close(self, conn: socket.socket, obj: dict) -> None:
        try:
            send_frame(conn, obj)
        except OSError:
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass
