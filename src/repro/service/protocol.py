"""Wire protocol of the compile service.

Frames are length-prefixed JSON: a 4-byte big-endian payload length
followed by that many bytes of UTF-8 JSON.  JSON keeps the protocol
inspectable and version-tolerant; binary payloads (a pickled
:class:`~repro.core.driver.CompiledProgram`) travel inside it as base64
blobs.  The same framing is used on the client socket and on the
worker's stdin/stdout pipes (the latter carry pickle payloads directly —
daemon and worker are always the same build).

Every reply carries ``ok``; failures add ``error`` (human-readable),
``kind`` (machine-readable, see below) and ``retryable``.  Retryable
failures from an overloaded daemon add ``retry_after_s`` — the 429
pattern.

Error kinds::

    bad-request     malformed or unparseable request   (not retryable)
    compile-error   the program itself does not compile (not retryable)
    deadline        per-request deadline expired        (retryable)
    overloaded      bounded queue full / request shed   (retryable)
    shutdown        daemon is stopping                  (retryable)
    internal        unexpected daemon-side failure      (retryable)
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
import struct
import time
from dataclasses import asdict
from typing import Any, Optional

from ..core.options import DynOpt, Mode, Options

#: protocol revision; bump on incompatible frame/blob changes.  A daemon
#: refuses mismatched requests with ``bad-request`` so a stale client
#: degrades to in-process compilation instead of misbehaving.
PROTOCOL_VERSION = 1

#: hard ceiling on one frame — a corrupt length prefix must not make a
#: reader allocate gigabytes
MAX_FRAME = 256 * 1024 * 1024

_LEN = struct.Struct(">I")


class FrameError(Exception):
    """Framing violation: short read, oversized length, bad JSON."""


class ServiceError(Exception):
    """Structured service failure, locally raised or decoded from an
    error reply (``kind`` per the table above)."""

    def __init__(self, kind: str, message: str, *,
                 retryable: bool = False,
                 retry_after_s: Optional[float] = None) -> None:
        super().__init__(message)
        self.kind = kind
        self.retryable = retryable
        self.retry_after_s = retry_after_s


# ---------------------------------------------------------------------------
# socket framing
# ---------------------------------------------------------------------------


def send_frame(sock: socket.socket, obj: dict) -> None:
    payload = json.dumps(obj, separators=(",", ":")).encode()
    if len(payload) > MAX_FRAME:
        raise FrameError(f"frame too large ({len(payload)} bytes)")
    sock.sendall(_LEN.pack(len(payload)) + payload)


def recv_frame(sock: socket.socket,
               deadline: Optional[float] = None) -> dict:
    """Read one frame; *deadline* is an absolute ``time.monotonic()``
    instant after which :class:`TimeoutError` is raised.  EOF before a
    complete frame raises :class:`FrameError`."""
    head = _recv_exact(sock, _LEN.size, deadline)
    (n,) = _LEN.unpack(head)
    if n > MAX_FRAME:
        raise FrameError(f"frame length {n} exceeds limit")
    payload = _recv_exact(sock, n, deadline)
    try:
        obj = json.loads(payload.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as e:
        raise FrameError(f"bad frame payload: {e}") from None
    if not isinstance(obj, dict):
        raise FrameError("frame payload is not an object")
    return obj


def _recv_exact(sock: socket.socket, n: int,
                deadline: Optional[float]) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError("frame read deadline expired")
            sock.settimeout(remaining)
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise FrameError(
                f"connection closed mid-frame ({len(buf)}/{n} bytes)"
            )
        buf.extend(chunk)
    return bytes(buf)


# ---------------------------------------------------------------------------
# pipe framing (worker stdin/stdout; pickle payloads)
# ---------------------------------------------------------------------------


def write_pipe_frame(fh, obj: Any) -> None:
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME:
        raise FrameError(f"frame too large ({len(payload)} bytes)")
    fh.write(_LEN.pack(len(payload)) + payload)
    fh.flush()


def read_pipe_frame(fh) -> Any:
    """Blocking read of one pickle frame from a binary file object.
    Returns None on clean EOF at a frame boundary."""
    head = fh.read(_LEN.size)
    if not head:
        return None
    if len(head) < _LEN.size:
        raise FrameError("pipe closed mid-length")
    (n,) = _LEN.unpack(head)
    if n > MAX_FRAME:
        raise FrameError(f"frame length {n} exceeds limit")
    payload = fh.read(n)
    if len(payload) < n:
        raise FrameError(f"pipe closed mid-frame ({len(payload)}/{n})")
    return pickle.loads(payload)


# ---------------------------------------------------------------------------
# wire (de)serialization
# ---------------------------------------------------------------------------


def options_to_wire(opts: Options) -> dict:
    d = asdict(opts)
    d["mode"] = opts.mode.value
    d["dynopt"] = int(opts.dynopt)
    return d


def options_from_wire(d: dict) -> Options:
    kw = dict(d)
    kw["mode"] = Mode(kw["mode"])
    kw["dynopt"] = DynOpt(kw["dynopt"])
    return Options(**kw)


def pack_blob(obj: Any) -> str:
    """Pickle *obj* into a base64 string for embedding in a JSON frame."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def unpack_blob(s: str) -> Any:
    return pickle.loads(base64.b64decode(s.encode("ascii")))


def error_reply(kind: str, message: str, *, retryable: bool,
                retry_after_s: Optional[float] = None) -> dict:
    rep = {"ok": False, "kind": kind, "error": message,
           "retryable": retryable, "v": PROTOCOL_VERSION}
    if retry_after_s is not None:
        rep["retry_after_s"] = retry_after_s
    return rep
