"""Compile-service client with graceful in-process fallback.

Server resolution order (``resolve_server``):

1. an explicit argument (``fdc --server WHERE``),
2. the ``REPRO_SERVER`` environment variable,
3. off (compile in-process).

``WHERE`` is ``off`` (disable), ``auto`` (the per-user default socket
``$TMPDIR/repro-fdc-<uid>.sock``) or an explicit socket path.

``compile_with_fallback`` is the entry point the CLI uses: it sends the
compile to the daemon and, on *any* infrastructure failure — daemon
unreachable, connection dying mid-request, malformed or oversized
reply, retryable server errors after bounded retries — falls back to
the in-process :func:`~repro.core.driver.compile_program`.  The result
is therefore byte-identical whether or not the daemon is healthy; only
``compile-error`` replies (the program itself is at fault) surface as
:class:`~repro.core.model.CompileError` exactly like a local compile.
Every fallback is recorded in the module counters
(:func:`client_stats`) and as a ``service.fallback`` trace decision.
"""

from __future__ import annotations

import os
import socket
import tempfile
import time
from typing import Optional

from ..core.driver import CompiledProgram, compile_program
from ..core.model import CompileError
from ..core.options import Options
from ..obs.tracer import resolve_trace
from .protocol import (
    PROTOCOL_VERSION,
    FrameError,
    ServiceError,
    options_to_wire,
    recv_frame,
    send_frame,
    unpack_blob,
)

#: process-wide client counters (surfaced by tests and ``fdc --report``)
_stats = {"remote": 0, "fallback": 0, "retries": 0, "local": 0}


def client_stats() -> dict:
    return dict(_stats)


def default_socket_path() -> str:
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return os.path.join(tempfile.gettempdir(), f"repro-fdc-{uid}.sock")


def resolve_server(arg: Optional[str] = None) -> Optional[str]:
    """Resolve the server socket path: explicit *arg* wins, then
    ``REPRO_SERVER``; ``off``/empty disables, ``auto`` names the
    per-user default socket."""
    value = arg if arg is not None \
        else os.environ.get("REPRO_SERVER", "").strip()
    if not value or value == "off":
        return None
    if value == "auto":
        return default_socket_path()
    return value


class CompileClient:
    """One-request-per-connection client of :class:`CompileDaemon`."""

    def __init__(self, path: str, timeout_s: float = 60.0) -> None:
        self.path = path
        self.timeout_s = timeout_s

    def request(self, obj: dict,
                timeout_s: Optional[float] = None) -> dict:
        """Send one frame, read one reply.  Raises ``OSError`` family
        on connection trouble, :class:`FrameError` on protocol
        corruption, :class:`TimeoutError` on deadline expiry, and
        :class:`ServiceError` for structured server-side failures."""
        budget = timeout_s if timeout_s is not None else self.timeout_s
        deadline = time.monotonic() + budget
        obj = dict(obj)
        obj.setdefault("v", PROTOCOL_VERSION)
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.settimeout(min(budget, 10.0))
            sock.connect(self.path)
            send_frame(sock, obj)
            reply = recv_frame(sock, deadline)
        finally:
            try:
                sock.close()
            except OSError:
                pass
        if not isinstance(reply, dict):
            raise FrameError("reply is not an object")
        if not reply.get("ok"):
            raise ServiceError(
                reply.get("kind", "internal"),
                str(reply.get("error", "unknown server error")),
                retryable=bool(reply.get("retryable")),
                retry_after_s=reply.get("retry_after_s"),
            )
        return reply

    # -- ops ----------------------------------------------------------------

    def ping(self, timeout_s: float = 5.0) -> dict:
        return self.request({"op": "ping"}, timeout_s=timeout_s)

    def stats(self, timeout_s: float = 5.0) -> dict:
        return self.request({"op": "stats"},
                            timeout_s=timeout_s)["stats"]

    def metrics(self, timeout_s: float = 5.0) -> dict:
        """The daemon's metrics: ``{"metrics": snapshot,
        "prometheus": text}``."""
        reply = self.request({"op": "metrics"}, timeout_s=timeout_s)
        return {"metrics": reply.get("metrics", {}),
                "prometheus": reply.get("prometheus", "")}

    def shutdown(self, timeout_s: float = 5.0) -> dict:
        return self.request({"op": "shutdown"}, timeout_s=timeout_s)

    def compile(self, source: str, opts: Optional[Options] = None,
                deadline_s: Optional[float] = None,
                speculative: bool = False) -> CompiledProgram:
        """Compile remotely.  The reply's pickled program is validated;
        anything that is not a :class:`CompiledProgram` raises
        :class:`FrameError` (and the fallback path treats it as an
        infrastructure failure)."""
        req = {
            "op": "compile",
            "source": source,
            "opts": options_to_wire(opts or Options()),
            "speculative": speculative,
        }
        if deadline_s is not None:
            req["deadline_s"] = deadline_s
        # the read budget outlives the server-side deadline so the
        # daemon's structured "deadline" reply can still arrive
        budget = deadline_s + 5.0 if deadline_s is not None \
            else self.timeout_s
        reply = self.request(req, timeout_s=budget)
        try:
            compiled = unpack_blob(reply["blob"])
        except Exception as e:
            raise FrameError(f"undecodable compile reply: {e}") from None
        if not isinstance(compiled, CompiledProgram):
            raise FrameError("compile reply is not a CompiledProgram")
        return compiled


def compile_with_fallback(
    source: str,
    opts: Optional[Options] = None,
    server: Optional[str] = None,
    trace=None,
    deadline_s: Optional[float] = None,
    speculative: bool = False,
    retries: int = 1,
) -> tuple[CompiledProgram, dict]:
    """Compile via the resolved server, falling back to in-process
    compilation on any infrastructure failure.  Returns ``(compiled,
    info)`` where ``info`` records ``used`` (``server``/``local``),
    the fallback ``cause`` when any, and retry counts."""
    path = resolve_server(server)
    tracer = resolve_trace(trace)
    if path is None:
        _stats["local"] += 1
        return compile_program(source, opts, trace=tracer), \
            {"used": "local", "cause": "no server configured"}
    client = CompileClient(path)
    cause = None
    attempts = 0
    while attempts <= retries:
        attempts += 1
        try:
            compiled = client.compile(source, opts,
                                      deadline_s=deadline_s,
                                      speculative=speculative)
            _stats["remote"] += 1
            return compiled, {"used": "server", "attempts": attempts}
        except ServiceError as e:
            if e.kind == "compile-error":
                # deterministic program fault: surface it exactly like
                # a local compile would, never mask it with a retry
                raise CompileError(str(e)) from None
            cause = f"{e.kind}: {e}"
            if e.retryable and attempts <= retries:
                _stats["retries"] += 1
                time.sleep(min(e.retry_after_s or 0.05, 0.5))
                continue
            break
        except (OSError, FrameError, TimeoutError) as e:
            cause = f"{type(e).__name__}: {e}"
            break
    _stats["fallback"] += 1
    if tracer is not None:
        tracer.decision("service.fallback", cause=cause or "unknown")
    return compile_program(source, opts, trace=tracer), \
        {"used": "local", "cause": cause, "attempts": attempts}
