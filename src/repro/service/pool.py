"""Supervised worker-process pool.

The pool owns N compile-worker subprocesses (:mod:`.worker`) and the
supervision logic the service's robustness rests on:

* **crash detection** — a worker that exits or breaks framing mid-job
  is killed and replaced; the job retries on a fresh worker (bounded by
  ``max_retries``).
* **hang detection** — replies are read with ``select`` under the
  request deadline and a per-job timeout; expiry SIGKILLs the worker.
* **restart backoff** — consecutive worker failures back off
  exponentially (``backoff_base * 2**n`` capped at ``backoff_cap``)
  with deterministic jitter from a seeded RNG, so supervision behavior
  is reproducible in tests.
* **degraded mode** — when retries are exhausted the pool raises a
  retryable :class:`~repro.service.protocol.ServiceError`; the
  :class:`~repro.service.compiler.ServiceCompiler` then compiles the
  affected procedures in-process, trading parallelism for progress.

All failures are counted in :meth:`stats` (spawns, crashes, hangs,
retries, backoff waits) for the daemon's ``stats`` op and the chaos
tests.
"""

from __future__ import annotations

import os
import random
import select
import struct
import subprocess
import sys
import threading
import time
from typing import Optional

from .protocol import MAX_FRAME, FrameError, ServiceError, \
    write_pipe_frame
from .store import ProcSummary

_LEN = struct.Struct(">I")


def _src_root() -> str:
    """Directory to put on the worker's PYTHONPATH (the parent of the
    ``repro`` package), so workers import the same build."""
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__)))


class _Worker:
    """One live worker subprocess."""

    def __init__(self) -> None:
        env = dict(os.environ)
        root = _src_root()
        pp = env.get("PYTHONPATH", "")
        if root not in pp.split(os.pathsep):
            env["PYTHONPATH"] = root + (os.pathsep + pp if pp else "")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service.worker"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
        )
        self.jobs_done = 0

    def alive(self) -> bool:
        return self.proc.poll() is None

    def kill(self) -> None:
        try:
            self.proc.kill()
        except OSError:
            pass
        try:
            self.proc.wait(timeout=5)
        except Exception:
            pass
        for fh in (self.proc.stdin, self.proc.stdout):
            try:
                fh.close()
            except OSError:
                pass

    def shutdown(self) -> None:
        """Polite exit; falls back to kill."""
        try:
            write_pipe_frame(self.proc.stdin, {"op": "exit"})
            self.proc.wait(timeout=2)
        except Exception:
            self.kill()

    # -- deadline-bounded frame read ---------------------------------------

    def read_reply(self, deadline: float):
        """Read one pickle frame from the worker's stdout, bounded by
        the absolute monotonic *deadline*.  Raises TimeoutError on
        expiry (hang) and FrameError on EOF/corruption (crash)."""
        fd = self.proc.stdout.fileno()
        buf = bytearray()
        need = _LEN.size
        total = None
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError("worker reply deadline expired")
            ready, _, _ = select.select([fd], [], [],
                                        min(remaining, 0.5))
            if not ready:
                continue
            chunk = os.read(fd, 1 << 16)
            if not chunk:
                raise FrameError("worker closed pipe mid-reply")
            buf.extend(chunk)
            if total is None and len(buf) >= _LEN.size:
                (n,) = _LEN.unpack(buf[:_LEN.size])
                if n > MAX_FRAME:
                    raise FrameError(f"worker frame length {n}")
                total = _LEN.size + n
                need = total
            if total is not None and len(buf) >= total:
                import pickle

                return pickle.loads(bytes(buf[_LEN.size:total]))


class WorkerPool:
    """Supervised pool of compile workers (see module docstring)."""

    def __init__(self, size: int = 2, max_retries: int = 2,
                 backoff_base: float = 0.05, backoff_cap: float = 2.0,
                 seed: int = 0, job_timeout_s: float = 60.0,
                 crash_flag: Optional[str] = None,
                 hang_flag: Optional[str] = None,
                 tracer=None, metrics=None) -> None:
        self.size = max(1, size)
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.job_timeout_s = job_timeout_s
        self.crash_flag = crash_flag
        self.hang_flag = hang_flag
        self.tracer = tracer
        #: optional MetricsRegistry (the daemon attaches its own)
        self.metrics = metrics
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._idle: list[_Worker] = []
        self._live = 0
        self._consec_failures = 0
        self._closed = False
        self.counters = {
            "spawns": 0, "crashes": 0, "hangs": 0, "retries": 0,
            "jobs_ok": 0, "jobs_failed": 0, "backoff_waits": 0,
        }

    # -- public API ---------------------------------------------------------

    def compile_procs(self, source, opts, names, exports, main_name,
                      deadline: Optional[float] = None
                      ) -> list[ProcSummary]:
        """Compile *names* (one wave: mutually independent) across the
        pool.  Returns their summaries in no particular order; raises
        :class:`ServiceError` when a chunk cannot be completed."""
        nchunks = min(self.size, len(names))
        chunks = [names[i::nchunks] for i in range(nchunks)]
        jobs = [{
            "op": "compile", "source": source, "opts": opts,
            "names": chunk, "exports": exports, "main_name": main_name,
            "crash_flag": self.crash_flag, "hang_flag": self.hang_flag,
        } for chunk in chunks]
        replies = self._run_jobs(jobs, deadline)
        out: list[ProcSummary] = []
        for rep in replies:
            out.extend(rep["results"])
        return out

    def evaluate_plans(self, source, plan_opts, scheduler: str = "event",
                       cost: str = "ipsc860",
                       store_dir: Optional[str] = None,
                       deadline: Optional[float] = None) -> list[dict]:
        """Evaluate candidate distribution plans (fully-formed
        :class:`~repro.core.options.Options`, one per plan) across the
        pool: compile each through the workers' persistent incremental
        compilers (sharing *store_dir* summaries across processes) and
        run it on the simulated machine.  Returns one metrics dict per
        plan, in input order; an infeasible plan yields
        ``{"error": ...}`` instead of metrics."""
        if not plan_opts:
            return []
        indexed = [{"idx": i, "opts": o} for i, o in enumerate(plan_opts)]
        nchunks = min(self.size, len(indexed))
        chunks = [indexed[i::nchunks] for i in range(nchunks)]
        jobs = [{
            "op": "evaluate", "source": source, "plans": chunk,
            "scheduler": scheduler, "cost": cost, "store_dir": store_dir,
            "crash_flag": self.crash_flag, "hang_flag": self.hang_flag,
        } for chunk in chunks]
        replies = self._run_jobs(jobs, deadline)
        out: list[Optional[dict]] = [None] * len(indexed)
        for rep in replies:
            for m in rep["results"]:
                out[m.pop("idx")] = m
        return out

    def _run_jobs(self, jobs: list[dict],
                  deadline: Optional[float]) -> list[dict]:
        """Run the jobs concurrently (one thread per job, each blocking
        on its own worker subprocess); raise the first failure."""
        if len(jobs) == 1:
            return [self._run_job(jobs[0], deadline)]
        replies: list[Optional[dict]] = [None] * len(jobs)
        errors: list[Exception] = []

        def run(i):
            try:
                replies[i] = self._run_job(jobs[i], deadline)
            except Exception as e:
                errors.append(e)

        threads = [threading.Thread(target=run, args=(i,), daemon=True)
                   for i in range(len(jobs))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise errors[0]
        return replies

    def stats(self) -> dict:
        with self._lock:
            d = dict(self.counters)
            d["live"] = self._live
            d["consec_failures"] = self._consec_failures
            return d

    def close(self) -> None:
        with self._lock:
            self._closed = True
            workers, self._idle = self._idle, []
            self._live = 0
        for w in workers:
            w.shutdown()

    # -- supervision --------------------------------------------------------

    def _run_job(self, job: dict, deadline: Optional[float]) -> dict:
        last_err = "no attempt made"
        for attempt in range(self.max_retries + 1):
            job_deadline = time.monotonic() + self.job_timeout_s
            if deadline is not None:
                job_deadline = min(job_deadline, deadline)
            if job_deadline <= time.monotonic():
                raise ServiceError("deadline",
                                   "compile deadline expired",
                                   retryable=True)
            if attempt:
                with self._lock:
                    self.counters["retries"] += 1
            w = self._acquire()
            try:
                write_pipe_frame(w.proc.stdin, job)
                reply = w.read_reply(job_deadline)
            except TimeoutError:
                self._discard(w, "hangs")
                last_err = "worker hang (deadline expired)"
                if deadline is not None \
                        and time.monotonic() >= deadline:
                    raise ServiceError("deadline",
                                       "compile deadline expired",
                                       retryable=True)
                continue
            except (FrameError, OSError, EOFError,
                    BrokenPipeError) as e:
                self._discard(w, "crashes")
                last_err = f"worker crash: {type(e).__name__}: {e}"
                continue
            except Exception as e:  # unpickling trouble etc.
                self._discard(w, "crashes")
                last_err = f"worker reply corrupt: {e}"
                continue
            if not isinstance(reply, dict):
                self._discard(w, "crashes")
                last_err = "worker reply not a dict"
                continue
            if reply.get("ok"):
                self._release(w)
                with self._lock:
                    self.counters["jobs_ok"] += 1
                    self._consec_failures = 0
                return reply
            # the worker survived but the job raised: not a worker
            # fault — retrying would re-raise identically
            self._release(w)
            with self._lock:
                self.counters["jobs_failed"] += 1
            raise ServiceError(
                "internal",
                f"worker job failed: {reply.get('error')}",
                retryable=False,
            )
        with self._lock:
            self.counters["jobs_failed"] += 1
        raise ServiceError(
            "internal",
            f"worker retries exhausted ({last_err})",
            retryable=True,
        )

    def _acquire(self) -> _Worker:
        dead = []
        got = None
        with self._lock:
            if self._closed:
                raise ServiceError("shutdown", "pool is closed",
                                   retryable=True)
            while self._idle:
                w = self._idle.pop()
                if w.alive():
                    got = w
                    break
                # died while idle
                self._live -= 1
                self.counters["crashes"] += 1
                self._consec_failures += 1
                dead.append((w, self._consec_failures,
                             dict(self.counters)))
                w.kill()
            backoff = 0.0 if got is not None else self._backoff_locked()
        for w, consec, counters in dead:
            self._record_restart(w, "crashes", consec, counters)
        if got is not None:
            return got
        if backoff > 0:
            with self._lock:
                self.counters["backoff_waits"] += 1
            time.sleep(backoff)
        w = _Worker()
        with self._lock:
            self.counters["spawns"] += 1
            self._live += 1
        if self.tracer is not None:
            self.tracer.decision("service.worker-spawn",
                                 pid=w.proc.pid)
        return w

    def _release(self, w: _Worker) -> None:
        w.jobs_done += 1
        with self._lock:
            if self._closed or not w.alive() \
                    or len(self._idle) >= self.size:
                self._live -= 1
                kill = True
            else:
                self._idle.append(w)
                kill = False
        if kill:
            w.kill()

    def _discard(self, w: _Worker, kind: str) -> None:
        """A worker failed mid-job: kill it, record the failure, and
        leave a postmortem bundle (when ``REPRO_POSTMORTEM_DIR`` is
        configured) so the dead worker's cause survives the restart."""
        w.kill()
        with self._lock:
            self._live -= 1
            self.counters[kind] += 1
            self._consec_failures += 1
            consec = self._consec_failures
            counters = dict(self.counters)
        self._record_restart(w, kind, consec, counters)

    def _record_restart(self, w: _Worker, kind: str, consec: int,
                        counters: dict) -> None:
        """Record one worker replacement — metric, trace decision, and
        postmortem bundle — regardless of whether the death was noticed
        mid-job (:meth:`_discard`) or while idle (:meth:`_acquire`)."""
        if self.metrics is not None:
            self.metrics.counter(
                "fdc_worker_restarts_total",
                "workers killed and replaced by cause",
                labels=("cause",),
            ).inc(1.0, cause=kind)
        if self.tracer is not None:
            self.tracer.decision("service.worker-restart", cause=kind)
        from ..obs.flightrec import dump_postmortem

        dump_postmortem(
            "worker-crash",
            recorder=self.tracer,
            metrics=self.metrics,
            extra={
                "cause": kind,
                "worker_pid": w.proc.pid,
                "jobs_done": w.jobs_done,
                "consec_failures": consec,
                "counters": counters,
            },
        )

    def _backoff_locked(self) -> float:
        """Exponential backoff with deterministic jitter before
        replacing a failed worker (0 when the pool is healthy).  Called
        with the lock held; returns the seconds to sleep unlocked."""
        n = self._consec_failures
        if n <= 0:
            return 0.0
        raw = min(self.backoff_cap, self.backoff_base * (2 ** (n - 1)))
        return raw * (0.5 + self._rng.random() / 2)
