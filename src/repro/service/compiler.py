"""Incremental service compiler.

``ServiceCompiler.compile`` produces output **byte-identical** to the
whole-program :func:`~repro.core.driver.compile_program` while only
actually compiling procedures whose §8 recompilation tests fire:

1. Run the shared front end (parse, cloning, reaching decompositions,
   alias check) — cheap, deterministic, and the source of the
   fingerprints.
2. Sweep the ACG in reverse topological *waves*: a procedure is ready
   once all its callees are resolved.  For each ready procedure compute
   its summary-store key (options + source + interprocedural-inputs
   fingerprints) and probe the store; misses form the wave's *dirty*
   set — mutually independent by construction, so they compile in
   parallel on the worker pool (or locally when no pool is available).
3. Assemble: each procedure was compiled with a private
   :class:`TagAllocator` (message tags 1..tag_count), so splicing the
   compiled bodies back in reverse topological order while shifting
   each block by the running total reproduces the sequential driver's
   contiguous tag numbering exactly.  Report fragments merge in the
   same order, reproducing the sequential report.

Deadlines are cooperative: the compiler checks between waves and
between local procedure compiles, and worker reads time out; an expiry
raises :class:`~repro.service.protocol.ServiceError` with kind
``deadline`` (retryable).
"""

from __future__ import annotations

import time
from typing import Optional

from ..callgraph.acg import ACG
from ..core.codegen import TagAllocator
from ..core.driver import (
    CompiledProgram,
    _initial_distributions,
    compile_procedure_unit,
    front_end,
)
from ..core.options import CompileReport, Options
from ..core.recompile import inputs_fingerprint, source_fingerprint
from ..lang import ast as A
from .protocol import ServiceError
from .store import ProcSummary, SummaryStore, store_opts_fingerprint

#: statement types carrying allocator-issued message tags (tag > 0 iff
#: the allocator issued it; tags only affect runtime message matching,
#: never printed text)
_TAGGED = (A.Send, A.Recv, A.SendPack, A.RecvPack, A.Bcast,
           A.GlobalReduce)


def renumber_tags(proc: A.Procedure, base: int) -> None:
    """Shift every allocator-issued message tag in *proc* by *base*."""
    if base == 0:
        return
    for st in A.walk_stmts(proc.body):
        if isinstance(st, _TAGGED) and st.tag > 0:
            st.tag += base


def merge_fragment(report: CompileReport, frag: CompileReport) -> None:
    """Fold one procedure's report fragment into the program report.
    Fragments merge in reverse topological order, which reproduces the
    sequential driver's append order exactly (all list entries are
    procedure-prefixed, so plain extends are also duplicate-safe)."""
    for proc, dists in frag.distributions.items():
        report.distributions.setdefault(proc, {}).update(dists)
    report.comm_placements.extend(frag.comm_placements)
    report.comm_sites.extend(frag.comm_sites)
    report.rtr_fallbacks.extend(frag.rtr_fallbacks)
    report.rtr_demotions.extend(frag.rtr_demotions)
    report.remaps_emitted += frag.remaps_emitted
    report.remaps_eliminated += frag.remaps_eliminated
    report.remaps_hoisted += frag.remaps_hoisted
    report.remaps_marked += frag.remaps_marked
    for k, v in frag.overlaps.items():
        report.overlaps[k] = v
    report.notes.extend(frag.notes)


def compile_one(prog, name, acg, reaching, opts, exports, main_name,
                tracer=None) -> ProcSummary:
    """Compile one procedure with a private tag allocator and report.
    The shared path used by workers *and* the in-daemon fallback — both
    produce the same bytes the sequential driver would."""
    tags = TagAllocator()
    frag = CompileReport(mode=opts.mode, nprocs=opts.nprocs)
    exp = compile_procedure_unit(
        prog, name, acg, reaching, opts, dict(exports), frag, tags,
        main_name, tracer,
    )
    return ProcSummary(
        name=name,
        proc=A.clone_procedure(prog.unit(name)),
        exports=exp,
        tag_count=tags.next - 1,
        fragment=frag,
    )


def _check_deadline(deadline: Optional[float]) -> None:
    if deadline is not None and time.monotonic() > deadline:
        raise ServiceError("deadline", "compile deadline expired",
                           retryable=True)


class ServiceCompiler:
    """Incremental compiler over a summary store and a worker pool.

    *store* defaults to a fresh in-memory :class:`SummaryStore`; *pool*
    is an optional :class:`~repro.service.pool.WorkerPool` — without
    one (or whenever the pool reports itself unusable) dirty procedures
    compile in-process, preserving results at the cost of parallelism.
    """

    def __init__(self, store: Optional[SummaryStore] = None,
                 pool=None, tracer=None) -> None:
        self.store = store if store is not None else SummaryStore()
        self.pool = pool
        self.tracer = tracer

    def compile(self, source: str, opts: Optional[Options] = None,
                deadline: Optional[float] = None,
                tracer=None) -> tuple[CompiledProgram, dict]:
        """Compile *source*, reusing stored summaries.  Returns the
        compiled program plus a per-request stats dict (procedures
        reused vs compiled, store counters)."""
        opts = opts or Options()
        tracer = tracer if tracer is not None else self.tracer

        def span(name, **fields):
            from contextlib import nullcontext
            return tracer.phase(name, **fields) if tracer is not None \
                else nullcontext()

        _check_deadline(deadline)
        with span("service.front-end"):
            prog, acg, reaching, report = front_end(source, opts, tracer)
        with span("service.initial-distributions"):
            initial = _initial_distributions(prog, reaching, opts)

        order = list(acg.reverse_topological_order())
        # plan-invariant on purpose: distribution overrides rewrite the
        # program before fingerprinting, so sibling tuning plans share
        # summaries of untouched procedures (see store_opts_fingerprint)
        opts_fp = store_opts_fingerprint(opts)
        main_name = prog.main.name
        src_fps = {n: source_fingerprint(prog.unit(n)) for n in order}

        resolved: dict[str, ProcSummary] = {}
        keys: dict[str, str] = {}
        reused: list[str] = []
        compiled_names: list[str] = []
        pending = list(order)
        with span("service.waves"):
            while pending:
                _check_deadline(deadline)
                ready = [
                    n for n in pending
                    if all(site.callee in resolved
                           for site in acg.calls_from(n))
                ]
                if not ready:  # pragma: no cover - ACG is a DAG
                    raise ServiceError(
                        "internal",
                        f"call-graph cycle among {sorted(pending)}",
                        retryable=False,
                    )
                exports_now = {
                    n: s.exports for n, s in resolved.items()
                }
                dirty = []
                for n in ready:
                    in_fp = inputs_fingerprint(
                        n, acg, reaching, exports_now, opts
                    )
                    keys[n] = SummaryStore.key(opts_fp, src_fps[n], in_fp)
                    hit = self.store.load(keys[n])
                    if hit is not None and hit.name == n:
                        resolved[n] = hit
                        reused.append(n)
                        if tracer is not None:
                            tracer.decision("service.summary-reuse",
                                            proc=n)
                    else:
                        dirty.append(n)
                if dirty:
                    got = self._compile_wave(
                        source, prog, dirty, acg, reaching, opts,
                        exports_now, main_name, deadline, tracer,
                    )
                    for n in dirty:
                        resolved[n] = got[n]
                        compiled_names.append(n)
                        self.store.store(keys[n], got[n])
                for n in ready:
                    pending.remove(n)

        # assembly: splice compiled bodies back in reverse topological
        # order, shifting each procedure's private tag block by the
        # running total — reproducing the sequential driver's single
        # shared allocator byte-for-byte
        with span("service.assemble"):
            base = 0
            for name in order:
                s = resolved[name]
                proc = A.clone_procedure(s.proc)
                renumber_tags(proc, base)
                base += s.tag_count
                idx = prog.units.index(prog.unit(name))
                prog.units[idx] = proc
                merge_fragment(report, s.fragment)

        compiled = CompiledProgram(prog, initial, report, opts)
        stats = {
            "procs": len(order),
            "reused": len(reused),
            "compiled": len(compiled_names),
            "store": self.store.stats(),
        }
        if self.pool is not None:
            stats["pool"] = self.pool.stats()
        return compiled, stats

    # -- dirty-wave compilation --------------------------------------------

    def _compile_wave(self, source, prog, dirty, acg, reaching, opts,
                      exports_now, main_name, deadline, tracer
                      ) -> dict[str, ProcSummary]:
        """Compile the wave's dirty procedures — on the worker pool when
        one is available, else locally.  Pool failure of any kind falls
        back to local compilation of the affected names (results are
        identical either way)."""
        if self.pool is not None and len(dirty) > 0:
            need = sorted({
                site.callee for n in dirty for site in acg.calls_from(n)
            })
            exports_sub = {c: exports_now[c] for c in need}
            try:
                results = self.pool.compile_procs(
                    source, opts, dirty, exports_sub, main_name,
                    deadline=deadline,
                )
                return {s.name: s for s in results}
            except ServiceError as e:
                if e.kind == "deadline":
                    raise
                if tracer is not None:
                    tracer.decision("service.pool-fallback",
                                    cause=str(e))
        out = {}
        for n in dirty:
            _check_deadline(deadline)
            out[n] = compile_one(prog, n, acg, reaching, opts,
                                 exports_now, main_name, tracer)
        return out
