"""Compile service: a supervised, incremental compiler daemon.

The paper's §8 recompilation analysis exists to preserve separate
compilation; this package turns it into a long-lived *service*.  A
daemon (`fdc serve`) listens on a unix socket, keeps a content-addressed
per-procedure summary store (procedure ASTs, exports, report fragments
keyed by source + interprocedural-input fingerprints) and dispatches
procedures whose recompilation tests fire to a supervised worker-process
pool.  Clients (`fdc --server`) fall back to in-process compilation on
any infrastructure failure — the service accelerates compilation, it
never changes its results: service output is byte-identical to
``compile_program``.

Layers::

    protocol.py   length-prefixed JSON frames + wire (de)serialization
    store.py      crash-safe content-addressed summary store
    compiler.py   ServiceCompiler: incremental waves over the ACG
    worker.py     per-procedure compile worker (python -m ...)
    pool.py       supervised worker pool (restart, backoff, deadlines)
    daemon.py     the socket server (queueing, backpressure, shedding)
    client.py     CompileClient + graceful in-process fallback

See ``docs/service.md`` for the protocol, the store layout, and the
failure/degradation matrix.
"""

from .client import (
    CompileClient,
    client_stats,
    compile_with_fallback,
    resolve_server,
)
from .compiler import ServiceCompiler
from .daemon import CompileDaemon
from .pool import WorkerPool
from .protocol import ServiceError
from .store import SummaryStore

__all__ = [
    "CompileClient",
    "CompileDaemon",
    "ServiceCompiler",
    "ServiceError",
    "SummaryStore",
    "WorkerPool",
    "client_stats",
    "compile_with_fallback",
    "resolve_server",
]
