"""Content-addressed per-procedure summary store.

One entry holds everything the §8 recompilation test lets the service
reuse for a procedure: its compiled body (with *locally numbered*
message tags 1..tag_count — the assembly phase renumbers them into the
whole-program sequence), its exports (RSD summaries, reaching
decomposition sets, overlaps, pending communication), and the fragment
of the compile report its compilation produced.

Entries are keyed by a digest of

* the store format version,
* an options fingerprint (every :class:`Options` field),
* the procedure's source fingerprint
  (:func:`~repro.core.recompile.source_fingerprint`), and
* its interprocedural-inputs fingerprint
  (:func:`~repro.core.recompile.inputs_fingerprint` — reaching facts,
  propagated constants, callee exports),

so a hit is valid by construction; there is no invalidation protocol.

Disk discipline follows ``codegen/cache.py``: entries are written to a
mkstemp temp file and published with ``os.replace`` (atomic on POSIX),
start with a self-describing header naming the format version and their
own key, and *every* read/write failure is soft — corrupt, stale,
truncated, or unreadable entries count as misses and regenerate
silently; an unwritable directory degrades the store to memory-only.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import astuple, dataclass, field, replace
from typing import Optional

from ..core.options import CompileReport, Options
from ..lang import ast as A

#: bump when ProcSummary's pickled shape changes; old entries then fail
#: the header check and regenerate
STORE_VERSION = "2"


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def opts_fingerprint(opts: Options) -> str:
    """Fingerprint of every compilation option (any of them can change
    generated code, so all of them key the store)."""
    return _digest(repr(astuple(opts)))[:16]


def store_opts_fingerprint(opts: Options) -> str:
    """The *summary-store* options fingerprint: every option except the
    distribution-plan overrides.  Overrides rewrite DISTRIBUTE
    statements before analysis, so their whole effect is already visible
    in the per-procedure source and interprocedural-inputs fingerprints
    — excluding them here lets sibling candidate plans of one tuning run
    share the summaries of every procedure the plan change does not
    actually touch.  (The worker front-end memo keeps the full
    :func:`opts_fingerprint`: two compilations of the same source under
    different overrides are different programs.)"""
    return opts_fingerprint(replace(opts, distribute=()))


@dataclass
class ProcSummary:
    """One procedure's reusable compilation result."""

    name: str
    #: compiled body with local tags 1..tag_count
    proc: A.Procedure
    exports: object                 # ProcExports (picklable, name-keyed)
    tag_count: int
    #: the per-procedure slice of the compile report
    fragment: CompileReport


@dataclass
class SummaryStore:
    """Two-tier (memory + optional disk) summary store."""

    directory: Optional[str] = None
    memory: dict[str, ProcSummary] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=lambda: {
        "hits": 0, "misses": 0, "disk_hits": 0, "stores": 0,
        "corrupt": 0, "degraded": 0,
    })
    #: set when a write failed; disk layer disabled for this store
    degraded: bool = False

    # -- keys ---------------------------------------------------------------

    @staticmethod
    def key(opts_fp: str, src_fp: str, in_fp: str) -> str:
        return _digest(f"{STORE_VERSION}|{opts_fp}|{src_fp}|{in_fp}")

    def _path(self, key: str) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, f"proc-{key}.pkl")

    def _header(self, key: str) -> bytes:
        return f"# repro-summary {STORE_VERSION} proc-{key}.pkl\n".encode()

    # -- access -------------------------------------------------------------

    def load(self, key: str) -> Optional[ProcSummary]:
        hit = self.memory.get(key)
        if hit is not None:
            self.counters["hits"] += 1
            return hit
        if self.directory is not None and not self.degraded:
            hit = self._disk_load(key)
            if hit is not None:
                self.memory[key] = hit
                self.counters["hits"] += 1
                self.counters["disk_hits"] += 1
                return hit
        self.counters["misses"] += 1
        return None

    def store(self, key: str, summary: ProcSummary) -> None:
        self.memory[key] = summary
        self.counters["stores"] += 1
        if self.directory is not None and not self.degraded:
            self._disk_store(key, summary)

    def stats(self) -> dict:
        return dict(self.counters)

    # -- disk tier ----------------------------------------------------------

    def _disk_load(self, key: str) -> Optional[ProcSummary]:
        path = self._path(key)
        header = self._header(key)
        try:
            with open(path, "rb") as fh:
                if fh.read(len(header)) != header:
                    # truncated, stale version, or foreign file: treat
                    # as corrupt, drop it, regenerate silently
                    self.counters["corrupt"] += 1
                    self._discard(path)
                    return None
                obj = pickle.load(fh)
        except FileNotFoundError:
            return None
        except Exception:
            self.counters["corrupt"] += 1
            self._discard(path)
            return None
        if not isinstance(obj, ProcSummary):
            self.counters["corrupt"] += 1
            self._discard(path)
            return None
        return obj

    def _disk_store(self, key: str, summary: ProcSummary) -> None:
        path = self._path(key)
        try:
            os.makedirs(self.directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(self._header(key))
                    pickle.dump(summary, fh,
                                protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                self._discard(tmp)
                raise
        except (OSError, pickle.PicklingError):
            # unwritable/read-only directory: memory-only from here on
            self.counters["degraded"] += 1
            self.degraded = True

    @staticmethod
    def _discard(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass
