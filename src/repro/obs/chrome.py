"""Chrome trace-event / Perfetto JSON export.

``chrome_trace`` turns a :class:`~repro.obs.tracer.Tracer` into the
trace-event JSON object format (https://ui.perfetto.dev loads it
directly, as does ``chrome://tracing``):

* **pid 0 "compiler (host time)"** — one track of nested phase spans
  (``ph: "X"`` complete events) plus decision instants, timestamped in
  host µs relative to the tracer's epoch;
* **pid 1 "simulation (virtual time)"** — one tid per simulated rank;
  receive waits, collective rendezvous and vectorized blocks are spans,
  sends / cache probes / faults / scheduler transitions are instants.

Timestamps are µs in both coordinate systems (the trace-event format's
native unit); the two pids simply use different clocks, which is why
they live in different process groups.
"""

from __future__ import annotations

import json
from typing import Any

from .tracer import Tracer

#: rank events rendered as duration spans; everything else is an instant
_SPAN_KINDS = {"net.recv", "coll", "interp.vec"}

COMPILER_PID = 0
SIM_PID = 1


def _args(ev: dict, skip: tuple) -> dict:
    return {k: v for k, v in ev.items() if k not in skip and v is not None}


def chrome_trace(tracer: Tracer) -> dict[str, Any]:
    """The trace as a Chrome trace-event JSON object."""
    out: list[dict] = [
        {"ph": "M", "pid": COMPILER_PID, "tid": 0,
         "name": "process_name",
         "args": {"name": "compiler (host time)"}},
        {"ph": "M", "pid": SIM_PID, "tid": 0,
         "name": "process_name",
         "args": {"name": "simulation (virtual time)"}},
    ]
    for rank in range(tracer.nprocs):
        out.append({
            "ph": "M", "pid": SIM_PID, "tid": rank,
            "name": "thread_name", "args": {"name": f"rank {rank}"},
        })

    epoch = tracer.epoch
    for ev in tracer.host_events:
        ts = (ev["t0"] - epoch) * 1e6
        if ev["kind"] == "compile.phase":
            t1 = ev["t1"] if ev["t1"] is not None else ev["t0"]
            out.append({
                "name": ev["name"], "cat": "compile", "ph": "X",
                "pid": COMPILER_PID, "tid": 0,
                "ts": ts, "dur": max(0.0, (t1 - ev["t0"]) * 1e6),
                "args": _args(ev, ("kind", "name", "t0", "t1", "depth")),
            })
        else:
            out.append({
                "name": ev["name"], "cat": "compile", "ph": "i",
                "s": "t", "pid": COMPILER_PID, "tid": 0, "ts": ts,
                "args": _args(ev, ("kind", "name", "t0", "depth")),
            })

    for rank, events in enumerate(tracer.rank_events):
        for ev in events:
            kind = ev["kind"]
            rec: dict[str, Any] = {
                "name": kind, "cat": kind.split(".", 1)[0],
                "pid": SIM_PID, "tid": rank, "ts": ev["ts"],
                "args": _args(ev, ("kind", "rank", "ts", "dur")),
            }
            if kind in _SPAN_KINDS:
                rec["ph"] = "X"
                rec["dur"] = ev.get("dur", 0.0)
            else:
                rec["ph"] = "i"
                rec["s"] = "t"
            out.append(rec)

    meta = dict(tracer.meta)
    dropped = getattr(tracer, "dropped_events", 0)
    if dropped:
        meta["dropped_events"] = dropped
    return {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": meta,
    }


def write_chrome_trace(tracer: Tracer, path: str) -> str:
    """Serialize :func:`chrome_trace` to *path*; returns the path."""
    with open(path, "w") as f:
        json.dump(chrome_trace(tracer), f, default=str)
        f.write("\n")
    return path
