"""Trace consumers: communication hot spots, the rank x rank traffic
matrix, and the virtual-time critical path.

The critical path is the chain of blocking dependencies that sets the
run's final virtual clock — exactly the paper's pipelining-vs-blocking
story (Fig 10 vs Fig 12) made visible.  Starting from the rank whose
clock is the makespan, the walk goes backward through time: local
compute until the nearest blocking event; if a receive resumed the rank
(the message arrived *after* the rank started waiting), the path jumps
to the sender at its send clock; if a collective resumed it, the path
jumps to the last participant to arrive.  The produced segments tile
``[0, final clock]`` exactly, so ``path_length(segments)`` equals the
final virtual clock — an invariant the test suite asserts per run.
"""

from __future__ import annotations

from .tracer import Tracer

#: event kinds that can block a rank in virtual time
_BLOCKING = ("net.recv", "coll")


# ---------------------------------------------------------------------------
# hot spots
# ---------------------------------------------------------------------------


def comm_hotspots(tracer: Tracer) -> list[dict]:
    """Communication volume grouped by source-program provenance.

    Returns rows ``{proc, origin, kind, count, bytes}`` sorted by byte
    volume (then message count).  Point-to-point sends and exchange
    transfers count per message; collectives count once per operation
    (every participant records the rendezvous, so rank 0's stream —
    every collective includes rank 0 — enumerates each exactly once).
    """
    groups: dict[tuple, dict] = {}

    def add(origin, kind, nbytes, n=1):
        # origins are "proc:statement" strings built at closure-compile
        # time; anything without the colon (e.g. a bare collective
        # label) has no procedure attribution
        proc = origin.split(":", 1)[0] if origin and ":" in origin else None
        key = (proc or "?", origin or "?", kind)
        row = groups.get(key)
        if row is None:
            row = groups[key] = {
                "proc": key[0], "origin": key[1], "kind": kind,
                "count": 0, "bytes": 0,
            }
        row["count"] += n
        row["bytes"] += nbytes

    for evs in tracer.rank_events:
        for ev in evs:
            k = ev["kind"]
            if k in ("net.send", "net.exchange"):
                add(ev.get("origin"), k, ev.get("bytes", 0))
            elif k == "coll" and ev["rank"] == 0:
                add(ev.get("origin") or ev.get("label"),
                    f"coll.{ev.get('label', '?')}", ev.get("bytes", 0))
    return sorted(
        groups.values(),
        key=lambda r: (-r["bytes"], -r["count"], r["proc"], r["origin"]),
    )


# ---------------------------------------------------------------------------
# rank x rank matrix
# ---------------------------------------------------------------------------


def comm_matrix(tracer: Tracer) -> tuple[list[list[int]], list[list[float]]]:
    """Per-run communication matrix: ``(messages, bytes)`` indexed
    ``[src][dst]``.  Point-to-point sends and the pairwise transfers
    inside all-to-all exchanges are counted; collectives are not (they
    have no single destination)."""
    P = tracer.nprocs
    msgs = [[0] * P for _ in range(P)]
    byts = [[0.0] * P for _ in range(P)]
    for evs in tracer.rank_events:
        for ev in evs:
            if ev["kind"] in ("net.send", "net.exchange"):
                src, dst = ev["rank"], ev["dst"]
                msgs[src][dst] += 1
                byts[src][dst] += ev.get("bytes", 0)
    return msgs, byts


def link_traffic(
    tracer: Tracer, topology
) -> tuple[dict[tuple, dict], dict[int, int]]:
    """Per-link traffic under *topology*: every point-to-point message
    and exchange transfer is routed along ``topology.link_path(src,
    dst)`` and charged to each directed link it crosses.

    Returns ``(links, hop_histogram)`` where *links* maps each link
    label to ``{"msgs": n, "bytes": b}`` and *hop_histogram* maps hop
    count to number of messages.  Under a non-uniform topology this is
    the congestion picture the uniform model cannot see: a 2D-mesh
    transpose funnels traffic through central links even though the
    rank x rank matrix looks perfectly balanced.
    """
    links: dict[tuple, dict] = {}
    hops: dict[int, int] = {}
    for evs in tracer.rank_events:
        for ev in evs:
            if ev["kind"] not in ("net.send", "net.exchange"):
                continue
            path = topology.link_path(ev["rank"], ev["dst"])
            hops[len(path)] = hops.get(len(path), 0) + 1
            nbytes = ev.get("bytes", 0)
            for link in path:
                row = links.get(link)
                if row is None:
                    row = links[link] = {"msgs": 0, "bytes": 0.0}
                row["msgs"] += 1
                row["bytes"] += nbytes
    return links, hops


# ---------------------------------------------------------------------------
# critical path
# ---------------------------------------------------------------------------


def _seg(kind: str, rank: int, t0: float, t1: float, **fields) -> dict:
    seg = {"kind": kind, "rank": rank, "t0": t0, "t1": t1,
           "dur": t1 - t0}
    seg.update(fields)
    return seg


def critical_path(
    tracer: Tracer, proc_times: dict[int, float]
) -> list[dict]:
    """The blocking-dependency chain from t=0 to the final virtual
    clock, as time-ordered segments that tile ``[0, makespan]``.

    *proc_times* is ``RunStats.proc_times`` (final clock per rank).
    Segment kinds: ``compute`` (the rank ran), ``recv`` (receive
    overhead; ``blocked`` tells whether the message was awaited),
    ``wait`` (blocked on an in-flight message; ``src``/``origin`` name
    the sender and the emitting statement), ``collective`` (rendezvous
    cost, or the idle-until-last-arrival span when this rank was not
    the straggler).
    """
    if not proc_times:
        return []
    T = max(proc_times.values())
    rank = min(r for r, t in proc_times.items() if t == T)
    blocking = [
        [e for e in evs if e["kind"] in _BLOCKING]
        for evs in tracer.rank_events
    ]
    ptr = [len(b) - 1 for b in blocking]
    eps = 1e-9 * max(1.0, abs(T))
    segs: list[dict] = []
    t = T
    budget = sum(len(b) for b in blocking) + len(blocking) + 8
    while t > eps and budget > 0:
        budget -= 1
        evs = blocking[rank] if rank < len(blocking) else []
        i = ptr[rank] if rank < len(ptr) else -1
        while i >= 0 and evs[i]["ts"] + evs[i].get("dur", 0.0) > t + eps:
            i -= 1
        if i < 0:
            if rank < len(ptr):
                ptr[rank] = i
            segs.append(_seg("compute", rank, 0.0, t))
            t = 0.0
            break
        e = evs[i]
        ptr[rank] = i - 1
        end = e["ts"] + e.get("dur", 0.0)
        if t > end + eps:
            segs.append(_seg("compute", rank, end, t))
        t = end
        if e["kind"] == "net.recv":
            avail = e.get("avail", e["ts"])
            sent = e.get("sent_at", avail)
            if avail > e["ts"] + eps:
                # the message set the resume clock: the path crosses
                # the network to the sender
                segs.append(_seg(
                    "recv", rank, avail, t, blocked=True,
                    src=e.get("src"), tag=e.get("tag"),
                    origin=e.get("origin"), proc=e.get("proc"),
                ))
                segs.append(_seg(
                    "wait", rank, sent, avail, src=e.get("src"),
                    tag=e.get("tag"), bytes=e.get("bytes"),
                    origin=e.get("origin"), proc=e.get("proc"),
                ))
                rank = e.get("src", rank)
                t = sent
            else:
                segs.append(_seg(
                    "recv", rank, e["ts"], t, blocked=False,
                    src=e.get("src"), tag=e.get("tag"),
                    origin=e.get("origin"), proc=e.get("proc"),
                ))
                t = e["ts"]
        else:  # collective rendezvous
            mc = e.get("maxclock", e["ts"])
            mr = e.get("maxrank", rank)
            label = e.get("label", "?")
            if mr != rank and mc > e["ts"] + eps:
                # another rank arrived last: the path jumps to it at
                # the rendezvous clock
                segs.append(_seg(
                    "collective", rank, mc, t, label=label,
                    straggler=mr, origin=e.get("origin"),
                    proc=e.get("proc"),
                ))
                rank = mr
                t = mc
            else:
                segs.append(_seg(
                    "collective", rank, e["ts"], t, label=label,
                    straggler=rank, origin=e.get("origin"),
                    proc=e.get("proc"),
                ))
                t = e["ts"]
    if t > eps:  # pragma: no cover - defensive (budget exhausted)
        segs.append(_seg("compute", rank, 0.0, t))
    segs.reverse()
    return segs


def path_length(segments: list[dict]) -> float:
    """Total virtual duration of a critical path (== final clock)."""
    return sum(s["dur"] for s in segments)


def objective_summary(tracer: Tracer, stats) -> dict:
    """Machine-readable tuning objective: the profile report's numbers
    as data.  The auto-tuner prunes its plan space with this —
    ``comm_share`` (fraction of the critical path not spent computing)
    decides whether layout search is worth anything at all, and
    ``hotspots`` names the procedures/statements whose arrays are worth
    retargeting.

    Returns ``{time_us, path: {kind: virtual-us on the critical path},
    comm_share, hotspots: [{proc, origin, kind, count, bytes}],
    bytes_by_array_site: [...comm_hotspots rows...]}``.
    """
    segs = critical_path(tracer, stats.proc_times)
    by_kind: dict[str, float] = {}
    for s in segs:
        by_kind[s["kind"]] = by_kind.get(s["kind"], 0.0) + s["dur"]
    total = path_length(segs)
    comm = sum(v for k, v in by_kind.items() if k != "compute")
    return {
        "time_us": stats.time_us,
        "path": by_kind,
        "comm_share": (comm / total) if total > 0 else 0.0,
        "hotspots": comm_hotspots(tracer),
    }


# ---------------------------------------------------------------------------
# the --profile text report
# ---------------------------------------------------------------------------


def _fmt_origin(row: dict) -> str:
    origin = row["origin"]
    proc = row["proc"]
    if origin.startswith(f"{proc}:"):
        return origin
    return f"{proc}: {origin}" if proc != "?" else origin


def _fmt_link(link: tuple) -> str:
    a, b = link
    return f"{a}->{b}"


def profile_report(
    tracer: Tracer,
    stats,
    max_hotspots: int = 20,
    max_segments: int = 40,
    topology=None,
) -> str:
    """The ``fdc --profile`` report: hot spots, matrix, critical path,
    and — when *topology* is a non-uniform
    :class:`~repro.machine.topology.Topology` — per-link traffic with a
    hop-count histogram."""
    lines: list[str] = []
    rows = comm_hotspots(tracer)
    lines.append("communication hot spots (by provenance):")
    if rows:
        lines.append(f"  {'msgs':>7} {'bytes':>10}  {'kind':<12} source")
        for row in rows[:max_hotspots]:
            lines.append(
                f"  {row['count']:>7} {row['bytes']:>10.0f}  "
                f"{row['kind']:<12} {_fmt_origin(row)}"
            )
        if len(rows) > max_hotspots:
            lines.append(f"  ... {len(rows) - max_hotspots} more")
    else:
        lines.append("  (no communication recorded)")

    msgs, byts = comm_matrix(tracer)
    P = tracer.nprocs
    lines.append("")
    lines.append("communication matrix (messages src->dst):")
    header = "  src\\dst " + "".join(f"{d:>8}" for d in range(P))
    lines.append(header)
    for s in range(P):
        lines.append(
            f"  {s:>7} " + "".join(f"{msgs[s][d]:>8}" for d in range(P))
        )

    if topology is not None and topology.name != "uniform":
        links, hops = link_traffic(tracer, topology)
        lines.append("")
        lines.append(
            f"per-link traffic (topology={topology.describe()}, "
            f"busiest first):"
        )
        if links:
            ranked = sorted(
                links.items(),
                key=lambda kv: (-kv[1]["bytes"], -kv[1]["msgs"],
                                str(kv[0])),
            )
            lines.append(f"  {'msgs':>7} {'bytes':>10}  link")
            for link, row in ranked[:max_hotspots]:
                lines.append(
                    f"  {row['msgs']:>7} {row['bytes']:>10.0f}  "
                    f"{_fmt_link(link)}"
                )
            if len(ranked) > max_hotspots:
                lines.append(f"  ... {len(ranked) - max_hotspots} more")
            lines.append("  hop histogram: " + "  ".join(
                f"{h} hop{'s' if h != 1 else ''}={n} msgs"
                for h, n in sorted(hops.items())
            ))
        else:
            lines.append("  (no point-to-point traffic recorded)")

    segs = critical_path(tracer, stats.proc_times)
    total = path_length(segs)
    lines.append("")
    lines.append(
        f"virtual-time critical path: {total:.3f} us over "
        f"{len(segs)} segments (final clock {stats.time_us:.3f} us)"
    )
    by_kind: dict[str, float] = {}
    for s in segs:
        by_kind[s["kind"]] = by_kind.get(s["kind"], 0.0) + s["dur"]
    if total > 0:
        lines.append("  breakdown: " + "  ".join(
            f"{k}={v:.3f}us ({100 * v / total:.1f}%)"
            for k, v in sorted(by_kind.items(), key=lambda kv: -kv[1])
        ))
    shown = segs if len(segs) <= max_segments else segs[:max_segments]
    for s in shown:
        desc = ""
        if s["kind"] == "wait":
            desc = (f"msg from rank {s.get('src')} "
                    f"({s.get('origin') or '?'})")
        elif s["kind"] == "recv":
            desc = (f"recv overhead from rank {s.get('src')}"
                    + ("" if s.get("blocked") else " (already queued)"))
        elif s["kind"] == "collective":
            desc = (f"{s.get('label')} (last arrival: rank "
                    f"{s.get('straggler')})")
        lines.append(
            f"  [{s['t0']:>12.3f} -> {s['t1']:>12.3f}] rank {s['rank']} "
            f"{s['kind']:<10} {desc}"
        )
    if len(segs) > max_segments:
        lines.append(f"  ... {len(segs) - max_segments} more segments")
    return "\n".join(lines)
