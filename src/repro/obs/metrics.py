"""Production metrics: labeled counters, gauges, and latency histograms.

One :class:`MetricsRegistry` holds a process's metric families.  The
compile daemon owns a registry that is served live over the unix-socket
protocol (``op: "metrics"`` / ``fdc metrics``); the simulator attaches
one when ``REPRO_METRICS`` is set (or ``Machine(metrics=...)`` /
``run_spmd(metrics=...)`` passes one) and folds a snapshot into
:meth:`~repro.machine.stats.RunStats.as_dict`, so benchmarks, the
daemon, and ``fdc --stats-json`` all share one schema.

Design constraints (the same contract as :mod:`.tracer`):

* **cheap-when-disabled** — with metrics off, each instrumentation
  point costs one ``metrics is not None`` test; nothing is allocated.
* **read-only** — recording never touches simulated state: virtual
  timestamps come from the same observation points the tracer uses, so
  metrics-on runs stay bit-identical to metrics-off runs
  (``tests/test_metrics.py`` enforces it across all three backends).
* **hot paths hoist children** — ``family.labels(...)`` resolves a
  label set once to a bound child; a record on the child is one locked
  float add (plus one bisect for histograms).

Exposition comes in two forms: :meth:`MetricsRegistry.snapshot` (a
JSON-ready dict, histograms carrying extracted p50/p90/p99) and
:meth:`MetricsRegistry.prometheus` (text exposition format, cumulative
``_bucket``/``_sum``/``_count`` series).
"""

from __future__ import annotations

import os
import threading
from bisect import bisect_left
from typing import Any, Iterable, Optional, Sequence

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_VIRTUAL_BUCKETS",
    "MetricsRegistry",
    "SimMetrics",
    "default_registry",
    "metrics_enabled",
    "mirror_counters",
    "resolve_metrics",
]

_INF = float("inf")

#: default histogram buckets for host-side latencies, in seconds
#: (log-spaced, covering sub-millisecond cache hits through the
#: daemon's 300 s deadline ceiling)
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

#: default buckets for simulated (virtual-time) durations, in µs —
#: blocked-receive waits range from single-hop latencies to whole-run
#: makespans
DEFAULT_VIRTUAL_BUCKETS: tuple[float, ...] = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1e3, 2.5e3, 5e3, 1e4, 2.5e4, 5e4, 1e5, 2.5e5, 1e6,
)


def _fmt(v: float) -> str:
    """Prometheus-style number: integers without a trailing ``.0``."""
    if v == _INF:
        return "+Inf"
    if float(v).is_integer():
        return str(int(v))
    return repr(float(v))


def _escape(v: Any) -> str:
    return str(v).replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n")


class _Child:
    """One (family, label-values) series: a single locked float cell."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    # monotonic mirror: adopt an externally-maintained cumulative
    # counter (pool/store/cache counters) without double counting
    set_to = set

    def get(self) -> float:
        with self._lock:
            return self.value


class _HistChild:
    """One histogram series: bucket counts + sum + count."""

    __slots__ = ("_lock", "bounds", "counts", "sum", "count")

    def __init__(self, lock: threading.Lock,
                 bounds: Sequence[float]) -> None:
        self._lock = lock
        self.bounds = tuple(bounds)          # upper edges, +Inf implicit
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        i = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[i] += 1
            self.sum += value
            self.count += 1

    def quantile(self, q: float) -> float:
        """Approximate q-quantile by linear interpolation inside the
        bucket holding the q-th observation (0 with no samples; the
        last finite edge for observations in the overflow bucket)."""
        with self._lock:
            total = self.count
            counts = list(self.counts)
        if total <= 0:
            return 0.0
        rank = q * total
        cum = 0
        for i, c in enumerate(counts):
            prev = cum
            cum += c
            if cum >= rank and c > 0:
                lo = 0.0 if i == 0 else self.bounds[i - 1]
                hi = self.bounds[i] if i < len(self.bounds) \
                    else self.bounds[-1]
                if hi <= lo:
                    return hi
                return lo + (hi - lo) * ((rank - prev) / c)
        return self.bounds[-1] if self.bounds else 0.0


class _Family:
    """A named metric family: children keyed by label-value tuples."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str,
                 help: str, labelnames: Iterable[str]) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = registry._lock
        self._children: dict[tuple, Any] = {}

    def _key(self, labels: dict[str, Any]) -> tuple:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: labels {sorted(labels)} != declared "
                f"{sorted(self.labelnames)}"
            )
        return tuple(str(labels[k]) for k in self.labelnames)

    def _make_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, **labels: Any):
        """The bound child for one label-value set (created on first
        use).  Hot paths call this once and keep the child."""
        key = self._key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._make_child()
        return child

    def _items(self) -> list[tuple[dict, Any]]:
        with self._lock:
            items = list(self._children.items())
        return [
            (dict(zip(self.labelnames, key)), child)
            for key, child in sorted(items)
        ]


class CounterFamily(_Family):
    kind = "counter"

    def _make_child(self) -> _Child:
        return _Child(self._lock)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        self.labels(**labels).inc(amount)

    def value(self, **labels: Any) -> float:
        return self.labels(**labels).get()


class GaugeFamily(CounterFamily):
    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        self.labels(**labels).set(value)


class HistogramFamily(_Family):
    kind = "histogram"

    def __init__(self, registry: "MetricsRegistry", name: str,
                 help: str, labelnames: Iterable[str],
                 buckets: Sequence[float]) -> None:
        super().__init__(registry, name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"{name}: need at least one bucket edge")
        self.buckets = bounds

    def _make_child(self) -> _HistChild:
        return _HistChild(self._lock, self.buckets)

    def observe(self, value: float, **labels: Any) -> None:
        self.labels(**labels).observe(value)

    def quantile(self, q: float, **labels: Any) -> float:
        return self.labels(**labels).quantile(q)


class MetricsRegistry:
    """A process-local set of metric families (see module docstring)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _register(self, name: str, family: _Family) -> _Family:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if type(existing) is not type(family):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}"
                    )
                return existing
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "",
                labels: Iterable[str] = ()) -> CounterFamily:
        return self._register(name, CounterFamily(self, name, help,
                                                  labels))

    def gauge(self, name: str, help: str = "",
              labels: Iterable[str] = ()) -> GaugeFamily:
        return self._register(name, GaugeFamily(self, name, help,
                                                labels))

    def histogram(self, name: str, help: str = "",
                  labels: Iterable[str] = (),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  ) -> HistogramFamily:
        return self._register(
            name, HistogramFamily(self, name, help, labels, buckets)
        )

    # -- exposition ---------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready dump: ``{family: {type, help, values: [...]}}``,
        histogram values carrying extracted p50/p90/p99."""
        with self._lock:
            families = sorted(self._families.items())
        out: dict[str, Any] = {}
        for name, fam in families:
            values = []
            for labels, child in fam._items():
                if fam.kind == "histogram":
                    values.append({
                        "labels": labels,
                        "count": child.count,
                        "sum": child.sum,
                        "p50": child.quantile(0.50),
                        "p90": child.quantile(0.90),
                        "p99": child.quantile(0.99),
                        "buckets": {
                            _fmt(b): c for b, c in zip(
                                fam.buckets + (_INF,), child.counts
                            )
                        },
                    })
                else:
                    values.append({"labels": labels,
                                   "value": child.get()})
            out[name] = {"type": fam.kind, "help": fam.help,
                         "values": values}
        return out

    def prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        with self._lock:
            families = sorted(self._families.items())
        for name, fam in families:
            if fam.help:
                lines.append(f"# HELP {name} {fam.help}")
            lines.append(f"# TYPE {name} {fam.kind}")
            for labels, child in fam._items():
                base = ",".join(
                    f'{k}="{_escape(v)}"' for k, v in labels.items()
                )
                if fam.kind != "histogram":
                    sel = f"{{{base}}}" if base else ""
                    lines.append(f"{name}{sel} {_fmt(child.get())}")
                    continue
                cum = 0
                for b, c in zip(fam.buckets + (_INF,), child.counts):
                    cum += c
                    sel = base + ("," if base else "") \
                        + f'le="{_fmt(b)}"'
                    lines.append(f"{name}_bucket{{{sel}}} {cum}")
                sel = f"{{{base}}}" if base else ""
                lines.append(f"{name}_sum{sel} {_fmt(child.sum)}")
                lines.append(f"{name}_count{sel} {child.count}")
        return "\n".join(lines) + ("\n" if lines else "")


def mirror_counters(registry: MetricsRegistry, name: str,
                    values: dict, label: str = "event",
                    help: str = "", **const_labels: Any) -> None:
    """Adopt an externally-maintained counter dict (``pool.stats()``,
    ``store.stats()``, cache counters) as a labeled counter family —
    the sources are monotonic, so ``set_to`` preserves counter
    semantics without instrumenting every increment site."""
    fam = registry.counter(name, help,
                           labels=(*const_labels.keys(), label))
    for k, v in values.items():
        if isinstance(v, (int, float)):
            fam.labels(**const_labels, **{label: k}).set_to(v)


# -- enabling ---------------------------------------------------------------

_default_lock = threading.Lock()
_default_registry: Optional[MetricsRegistry] = None


def default_registry() -> MetricsRegistry:
    """The process-wide registry (created on first use) — what
    ``REPRO_METRICS=1`` runs and the benchmark harness record into."""
    global _default_registry
    with _default_lock:
        if _default_registry is None:
            _default_registry = MetricsRegistry()
        return _default_registry


def metrics_enabled(arg: Any = None) -> bool:
    """``REPRO_METRICS`` truthiness (explicit *arg* wins)."""
    if arg is not None:
        return bool(arg)
    v = os.environ.get("REPRO_METRICS", "").strip().lower()
    return bool(v) and v not in ("0", "false", "no", "off")


def resolve_metrics(metrics: Any = None) -> Optional[MetricsRegistry]:
    """Normalize a ``metrics=`` argument: a registry passes through,
    ``True`` selects the default registry, ``False`` forces metrics
    off, and ``None`` defers to ``REPRO_METRICS``."""
    if isinstance(metrics, MetricsRegistry):
        return metrics
    if metrics is True:
        return default_registry()
    if metrics is False:
        return None
    return default_registry() if metrics_enabled() else None


class SimMetrics:
    """Pre-bound simulator instruments for one :class:`Machine`.

    Hot-path children (blocked-time histograms, block counters) are
    hoisted here once per run so the per-event cost is a single locked
    update; whole-run totals (messages, bytes, dispatches, cache
    counters) are folded in from :class:`RunStats` at the end of the
    run rather than per event, keeping metrics-on overhead within the
    BENCH_obs_metrics bound.
    """

    def __init__(self, registry: MetricsRegistry, backend: str,
                 topology: str = "uniform") -> None:
        self.registry = registry
        self.backend = backend
        self.topology = topology
        blocked = registry.histogram(
            "repro_sim_blocked_us",
            "virtual µs a rank spent blocked before its operation "
            "completed", labels=("backend", "kind"),
            buckets=DEFAULT_VIRTUAL_BUCKETS,
        )
        self.recv_blocked = blocked.labels(backend=backend, kind="recv")
        self.coll_blocked = blocked.labels(backend=backend,
                                           kind="collective")
        blocks = registry.counter(
            "repro_sim_blocks_total",
            "rank block events by cause", labels=("backend", "why"),
        )
        self.block_recv = blocks.labels(backend=backend, why="recv")
        self.block_coll = blocks.labels(backend=backend,
                                        why="collective")
        self._runs = registry.counter(
            "repro_sim_runs_total", "simulated SPMD runs by outcome",
            labels=("backend", "outcome"),
        )
        self._totals = registry.counter(
            "repro_sim_events_total",
            "simulated traffic and scheduling totals across runs",
            labels=("backend", "event"),
        )
        self._wall = registry.histogram(
            "repro_sim_run_wall_seconds",
            "host wall-clock of Machine.run", labels=("backend",),
        ).labels(backend=backend)
        self._time = registry.histogram(
            "repro_sim_time_us",
            "simulated makespan (virtual µs)", labels=("backend",),
            buckets=DEFAULT_VIRTUAL_BUCKETS,
        ).labels(backend=backend)

    def record_run(self, stats: Any, failed: bool = False) -> None:
        """Fold one finished run's :class:`RunStats` into the registry
        (bulk counter adds — one lock round-trip per series)."""
        outcome = "failed" if failed else "ok"
        self._runs.inc(1.0, backend=self.backend, outcome=outcome)
        t = self._totals
        for event, amount in (
            ("messages", stats.messages),
            ("bytes", stats.bytes),
            ("collectives", stats.collectives),
            ("collective_bytes", stats.collective_bytes),
            ("dispatches", stats.dispatches),
            ("switches", stats.switches),
            ("guards", stats.guards),
            ("faulted_messages", stats.faulted_messages),
            ("retransmits", stats.retransmits),
        ):
            if amount:
                t.labels(backend=self.backend, event=event).inc(amount)
        mirror_counters(
            self.registry, "repro_cache_events_total",
            {
                "comm_hits": stats.comm_cache_hits,
                "comm_misses": stats.comm_cache_misses,
                "codegen_hits": stats.codegen_cache_hits,
                "codegen_misses": stats.codegen_cache_misses,
                "codegen_demotions": stats.codegen_demotions,
            },
            help="interpreter/codegen cache activity (latest run)",
        )
        self._wall.observe(stats.wall_s)
        self._time.observe(stats.time_us)
