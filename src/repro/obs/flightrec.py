"""Flight recorder: bounded always-on tracing + postmortem bundles.

Full tracing (:class:`~repro.obs.tracer.Tracer`) keeps every event and
is opt-in; the :class:`FlightRecorder` is its bounded sibling — one
ring buffer of the most recent events per rank — cheap enough to leave
attached to every run.  When no explicit tracer is requested,
:class:`~repro.machine.machine.Machine` attaches one automatically
(capacity via ``REPRO_FLIGHTREC``: ``0`` disables, a number sizes the
per-rank rings, default 256 events), so a run that dies with a
:class:`~repro.machine.network.SimulationError` or deadlock still has
its final moments on record.

The postmortem side: :func:`dump_postmortem` writes one JSON bundle —
the error, the structured :class:`DeadlockReport`, the run's
:class:`RunStats`, the recorder's event tails, and a metrics snapshot —
into ``REPRO_POSTMORTEM_DIR`` (no directory configured → no bundle; the
dump is best-effort and never raises into the failing run).  The
machine dumps on simulation failure; the service worker pool dumps on
worker crashes and hang kills.
"""

from __future__ import annotations

import datetime
import json
import os
import tempfile
import threading
from collections import deque
from typing import Any, Optional

from .tracer import Tracer

#: default per-rank ring capacity (events kept per rank)
DEFAULT_CAPACITY = 256


def flightrec_capacity() -> int:
    """Configured ring capacity: ``REPRO_FLIGHTREC`` — ``0``/``off``
    disables, a positive integer sizes the rings, anything else (or
    unset) selects :data:`DEFAULT_CAPACITY`."""
    v = os.environ.get("REPRO_FLIGHTREC", "").strip().lower()
    if v in ("0", "off", "false", "no"):
        return 0
    if v in ("", "1", "on", "true", "yes"):
        return DEFAULT_CAPACITY
    try:
        return max(0, int(v))
    except ValueError:
        return DEFAULT_CAPACITY


class FlightRecorder(Tracer):
    """A :class:`Tracer` whose event storage is bounded.

    Same hook interface (``rank_event``/``phase``/``decision``), same
    read-only discipline — so attaching one cannot perturb the
    simulation — but each rank's stream and the host stream are
    ``deque(maxlen=capacity)`` rings: memory stays O(P · capacity) no
    matter how long the run, and what remains at failure time is
    exactly the recent history a postmortem needs.
    """

    def __init__(self, nprocs: int = 0,
                 capacity: Optional[int] = None) -> None:
        self.capacity = DEFAULT_CAPACITY if capacity is None \
            else max(1, capacity)
        #: total events offered (appends beyond capacity evict the
        #: oldest; approximate under the thread-per-rank backend)
        self.events_seen = 0
        super().__init__(sample=False)
        self.host_events = deque(maxlen=self.capacity)
        self.rank_events = []
        self.ensure_ranks(nprocs)

    def ensure_ranks(self, nprocs: int) -> None:
        while len(self.rank_events) < nprocs:
            self.rank_events.append(deque(maxlen=self.capacity))

    def rank_event(self, rank: int, kind: str, ts: float,
                   dur: float = 0.0, **fields: Any) -> None:
        self.events_seen += 1
        super().rank_event(rank, kind, ts, dur, **fields)

    def tail(self) -> dict:
        """The recorder's content as a JSON-ready dict (only ranks
        that recorded anything appear)."""
        return {
            "capacity": self.capacity,
            "events_seen": self.events_seen,
            "host": list(self.host_events),
            "ranks": {
                str(r): list(evs)
                for r, evs in enumerate(self.rank_events) if evs
            },
        }


def _recorder_tail(recorder: Any) -> Optional[dict]:
    """Event tails from a FlightRecorder *or* a full Tracer (when the
    run was explicitly traced, the postmortem reuses its last events)."""
    if recorder is None:
        return None
    if isinstance(recorder, FlightRecorder):
        return recorder.tail()
    cap = DEFAULT_CAPACITY
    return {
        "capacity": cap,
        "events_seen": recorder.event_count(),
        "host": list(recorder.host_events)[-cap:],
        "ranks": {
            str(r): list(evs)[-cap:]
            for r, evs in enumerate(recorder.rank_events) if evs
        },
    }


def _report_dict(report: Any) -> Optional[dict]:
    """A DeadlockReport as JSON-ready structure (best-effort)."""
    if report is None:
        return None
    try:
        return {
            "reason": report.reason,
            "waits": [
                {"rank": w.rank, "state": w.state,
                 "awaiting": str(w.awaiting), "clock": w.clock}
                for w in report.waits
            ],
            "pending": {
                str(r): [[list(key), n] for key, n in keys]
                for r, keys in sorted(report.pending.items())
            },
            "describe": report.describe(),
        }
    except Exception:  # pragma: no cover - malformed report
        return {"describe": str(report)}


def postmortem_dir(directory: Optional[str] = None) -> Optional[str]:
    """Where bundles go: explicit *directory*, else
    ``REPRO_POSTMORTEM_DIR``, else None (dumping disabled)."""
    if directory:
        return directory
    d = os.environ.get("REPRO_POSTMORTEM_DIR", "").strip()
    return d or None


_seq_lock = threading.Lock()
_seq = 0


def dump_postmortem(
    kind: str,
    error: Optional[BaseException] = None,
    report: Any = None,
    stats: Any = None,
    recorder: Any = None,
    metrics: Any = None,
    extra: Optional[dict] = None,
    directory: Optional[str] = None,
) -> Optional[str]:
    """Write one postmortem bundle; returns its path, or None when no
    directory is configured.  Best-effort: any failure here returns
    None rather than masking the error being reported."""
    global _seq
    try:
        d = postmortem_dir(directory)
        if d is None:
            return None
        os.makedirs(d, exist_ok=True)
        bundle = {
            "schema": 1,
            "kind": kind,
            "generated_at": datetime.datetime.now(
                datetime.timezone.utc).isoformat(timespec="seconds"),
            "pid": os.getpid(),
            "error": None if error is None else {
                "type": type(error).__name__,
                "message": str(error),
            },
            "deadlock": _report_dict(report),
            "stats": stats.as_dict() if stats is not None else None,
            "metrics": metrics.snapshot() if metrics is not None
            else None,
            "events": _recorder_tail(recorder),
        }
        if extra:
            bundle["extra"] = extra
        with _seq_lock:
            _seq += 1
            seq = _seq
        name = f"postmortem-{kind}-{os.getpid()}-{seq}.json"
        fd, tmp = tempfile.mkstemp(dir=d, prefix=".pm-", suffix=".json")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(bundle, f, indent=2, sort_keys=True,
                          default=str)
                f.write("\n")
            out = os.path.join(d, name)
            os.replace(tmp, out)
            return out
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except Exception:
        return None
