"""Observability layer: structured tracing, profiling, and
critical-path analysis for the compiler and the simulated machine.

The paper's whole argument (§9) is *explaining* where messages come from
and which communication pattern dominates; this package makes that story
visible for any compiled program:

* :class:`Tracer` — a low-overhead structured event recorder threaded
  through the compiler driver (host-time phase spans and decision
  events) and the simulator (virtual-time message lifecycle, scheduler
  dispatch, collective rendezvous, vectorized-block and comm-cache
  events).  Off by default; when off, every instrumentation point is a
  single ``is not None`` test and traced and untraced runs are
  bit-identical.
* :func:`chrome_trace` / :func:`write_chrome_trace` — export to the
  Chrome trace-event / Perfetto JSON format (``fdc --trace out.json``):
  one track per simulated rank in virtual µs plus compiler-phase tracks
  in host time.
* :func:`comm_hotspots`, :func:`comm_matrix`, :func:`critical_path`,
  :func:`profile_report` — ``fdc --profile``: communication hot spots by
  (procedure, statement), the rank x rank traffic matrix, and the
  virtual-time critical path — the chain of blocking dependencies from
  t=0 to the final clock.
* :class:`MetricsRegistry` (:mod:`.metrics`) — labeled counters,
  gauges, and bucketed latency histograms with p50/p90/p99 extraction;
  the production-telemetry substrate of the compile daemon
  (``fdc metrics``) and, under ``REPRO_METRICS``, the simulator.
* :class:`FlightRecorder` (:mod:`.flightrec`) — an always-on bounded
  ring of recent trace events per rank, dumped via
  :func:`dump_postmortem` into ``REPRO_POSTMORTEM_DIR`` when a run or
  a service worker dies.
"""

from .tracer import Tracer, resolve_trace, trace_output_path
from .chrome import chrome_trace, write_chrome_trace
from .flightrec import (
    FlightRecorder,
    dump_postmortem,
    flightrec_capacity,
    postmortem_dir,
)
from .metrics import (
    MetricsRegistry,
    SimMetrics,
    default_registry,
    metrics_enabled,
    mirror_counters,
    resolve_metrics,
)
from .profile import (
    comm_hotspots,
    comm_matrix,
    critical_path,
    link_traffic,
    objective_summary,
    path_length,
    profile_report,
)

__all__ = [
    "Tracer",
    "resolve_trace",
    "trace_output_path",
    "chrome_trace",
    "write_chrome_trace",
    "FlightRecorder",
    "dump_postmortem",
    "flightrec_capacity",
    "postmortem_dir",
    "MetricsRegistry",
    "SimMetrics",
    "default_registry",
    "metrics_enabled",
    "mirror_counters",
    "resolve_metrics",
    "comm_hotspots",
    "comm_matrix",
    "critical_path",
    "link_traffic",
    "objective_summary",
    "path_length",
    "profile_report",
]
