"""The structured event tracer.

One :class:`Tracer` instance collects everything observable about one
compile + run: compiler phases and decisions in *host* time, and
simulator events in *virtual* time, one event stream per simulated
rank.  Design constraints (enforced by ``tests/test_trace.py`` and the
traced-vs-untraced differential suite):

* **bit-identical-off** — tracing must never perturb the simulation.
  Every hook only *reads* state; virtual timestamps at non-observation
  points come from :meth:`ProcContext.clock_estimate`, which previews
  the batched-charge flush without performing it (an actual flush
  changes floating-point summation order and would alter clocks).
* **low overhead** — with tracing off, each instrumentation point costs
  one ``tracer is not None`` test.  With tracing on, an event is one
  dict construction and one list append into a per-rank list (so no
  lock is needed even under the thread-per-rank backend: each rank's
  list is only ever appended by code running on behalf of that rank,
  or — for collective completions — at a rendezvous point where every
  other participant is parked).

Event schema
------------

Rank events (virtual time) are dicts with at least ``kind``, ``rank``
and ``ts`` (virtual µs); span-like events carry ``dur``.  Kinds:

=================  ========================================================
``net.send``       message posted: dst, tag, bytes, avail, origin, proc
``net.recv``       matched receive span: src, tag, bytes, sent_at, avail,
                   wait (blocked µs), origin, proc
``net.exchange``   one pairwise transfer inside an all-to-all exchange
``coll``           collective rendezvous span: label, seq, maxclock,
                   maxrank, bytes, origin, proc
``sched.dispatch`` cooperative scheduler handed this rank the CPU
``sched.block``    rank blocked (why: recv/collective, detail)
``sched.unblock``  a send/rendezvous made this rank runnable again
``interp.vec``     vectorized block execution span: unit, var, n, ops
``interp.cache``   comm-schedule cache probe: array, hit
``fault``          injected delay/retransmit on a posted message
=================  ========================================================

Host events are spans (``kind == "compile.phase"``, with ``t0``/``t1``
in ``time.perf_counter`` seconds and a nesting ``depth``) and instants
(``kind == "compile.decision"``).

Enabling
--------

``Machine(trace=...)`` / ``cp.run(trace=...)`` / ``compile_program(...,
trace=...)`` accept a Tracer (or ``True`` for a fresh one); the
``REPRO_TRACE`` environment variable turns tracing on globally —
``REPRO_TRACE=1`` collects in memory, any other value is a path the
run's Chrome trace JSON is written to.

Sampling
--------

Full-fidelity traces become unusable (and memory-hungry) at
event-backend scale: P=4096 ranks each produce thousands of events.
``REPRO_TRACE_SAMPLE=<ranks>[:<events-per-rank>]`` bounds the trace:
only ``<ranks>`` evenly-spaced ranks record events (rank 0 and the
last rank always included), and each sampled rank keeps at most
``<events-per-rank>`` events (0 or omitted = unbounded).  Sampling
drops *whole* events, so each surviving per-rank stream is an ordered
subsequence of the unsampled stream — per-rank clock monotonicity is
preserved (``tests/test_trace_sampling.py`` enforces it).  The drop
count is tracked in :attr:`Tracer.dropped_events`.
"""

from __future__ import annotations

import os
import time
from typing import Any, Optional


def _env_trace() -> str:
    return os.environ.get("REPRO_TRACE", "").strip()


def trace_output_path() -> Optional[str]:
    """The trace-file path requested via ``REPRO_TRACE``, if any
    (values that merely switch tracing on/off are not paths)."""
    v = _env_trace()
    if v and v.lower() not in ("0", "1", "false", "true", "no", "yes",
                               "off", "on"):
        return v
    return None


def _parse_sample(spec: str) -> tuple[Optional[int], Optional[int]]:
    """``"<ranks>[:<events-per-rank>]"`` -> (rank limit, event budget);
    0/empty/garbage components mean "no limit" for that component."""
    ranks: Optional[int] = None
    budget: Optional[int] = None
    head, _, tail = spec.partition(":")
    try:
        n = int(head)
        ranks = n if n > 0 else None
    except ValueError:
        pass
    if tail:
        try:
            n = int(tail)
            budget = n if n > 0 else None
        except ValueError:
            pass
    return ranks, budget


def resolve_trace(trace: Any = None) -> Optional["Tracer"]:
    """Normalize a ``trace=`` argument: a Tracer passes through,
    ``True`` makes a fresh one, ``False`` forces tracing off, and
    ``None`` defers to ``REPRO_TRACE``."""
    if isinstance(trace, Tracer):
        return trace
    if trace is True:
        return Tracer()
    if trace is False:
        return None
    v = _env_trace()
    if v and v.lower() not in ("0", "false", "no", "off"):
        return Tracer()
    return None


class _PhaseSpan:
    """Context manager recording one host-time compiler phase."""

    __slots__ = ("tracer", "event")

    def __init__(self, tracer: "Tracer", event: dict) -> None:
        self.tracer = tracer
        self.event = event

    def __enter__(self) -> dict:
        return self.event

    def __exit__(self, *exc) -> None:
        self.event["t1"] = time.perf_counter()
        self.tracer._depth -= 1
        return None


class Tracer:
    """Collects host-time compiler events and virtual-time rank events."""

    def __init__(self, nprocs: int = 0, sample: Any = None) -> None:
        self.host_events: list[dict] = []
        self.rank_events: list[list[dict]] = [[] for _ in range(nprocs)]
        self.meta: dict[str, Any] = {}
        self._depth = 0
        self.epoch = time.perf_counter()
        # -- sampling (see module docstring): *sample* is a spec
        # string, False to force full fidelity, or None to defer to
        # REPRO_TRACE_SAMPLE
        if sample is None:
            sample = os.environ.get("REPRO_TRACE_SAMPLE", "").strip()
        self.sample_ranks: Optional[int] = None
        self._budget: Optional[int] = None
        if sample:
            self.sample_ranks, self._budget = _parse_sample(sample)
            self.meta["trace_sample"] = sample
        #: ranks allowed to record (None = all ranks)
        self._sampled: Optional[set[int]] = None
        self.dropped_events = 0

    # -- machine attachment -------------------------------------------------

    def ensure_ranks(self, nprocs: int) -> None:
        """Grow the per-rank event streams to *nprocs* tracks (the
        tracer may be created before the machine exists)."""
        while len(self.rank_events) < nprocs:
            self.rank_events.append([])
        n = self.sample_ranks
        P = len(self.rank_events)
        if n is not None and P > n:
            # evenly-spaced deterministic rank subset, endpoints kept
            if n == 1:
                self._sampled = {0}
            else:
                self._sampled = {
                    round(i * (P - 1) / (n - 1)) for i in range(n)
                }

    @property
    def nprocs(self) -> int:
        return len(self.rank_events)

    # -- compiler (host time) ----------------------------------------------

    def phase(self, name: str, **fields: Any) -> _PhaseSpan:
        """``with tracer.phase("codegen", proc="dgefa"):`` — a nested
        host-time span around one compiler phase."""
        ev = {
            "kind": "compile.phase",
            "name": name,
            "t0": time.perf_counter(),
            "t1": None,
            "depth": self._depth,
        }
        if fields:
            ev.update(fields)
        self._depth += 1
        self.host_events.append(ev)
        return _PhaseSpan(self, ev)

    def decision(self, name: str, **fields: Any) -> None:
        """An instantaneous compiler decision event (distribution
        chosen, clone created, communication placed, RTR fallback)."""
        ev = {
            "kind": "compile.decision",
            "name": name,
            "t0": time.perf_counter(),
            "depth": self._depth,
        }
        if fields:
            ev.update(fields)
        self.host_events.append(ev)

    # -- simulator (virtual time) -------------------------------------------

    def rank_event(self, rank: int, kind: str, ts: float,
                   dur: float = 0.0, **fields: Any) -> None:
        """Record one virtual-time event on *rank*'s track (dropped
        whole when the sampling policy excludes it)."""
        if self._sampled is not None and rank not in self._sampled:
            self.dropped_events += 1
            return
        evs = self.rank_events[rank]
        if self._budget is not None and len(evs) >= self._budget:
            self.dropped_events += 1
            return
        ev = {"kind": kind, "rank": rank, "ts": ts}
        if dur:
            ev["dur"] = dur
        if fields:
            ev.update(fields)
        evs.append(ev)

    # -- summaries ----------------------------------------------------------

    def event_count(self) -> int:
        return len(self.host_events) + sum(
            len(evs) for evs in self.rank_events
        )

    def events(self, kind: Optional[str] = None) -> list[dict]:
        """All rank events (optionally filtered by kind), rank-major."""
        out: list[dict] = []
        for evs in self.rank_events:
            for ev in evs:
                if kind is None or ev["kind"] == kind:
                    out.append(ev)
        return out
