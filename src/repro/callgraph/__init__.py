"""Augmented call graph."""

from .acg import ACG, CallGraphError, CallSite, LoopInfo, ProcNode

__all__ = ["ACG", "CallGraphError", "CallSite", "LoopInfo", "ProcNode"]
