"""Augmented call graph (ACG) — §5.1, Figure 5.

The ACG is the call graph plus *loop nodes* (bounds, step, and index
variable of every loop) and *nesting edges* recording which loops enclose
which call sites.  It also stores the formal/actual parameter bindings
used by the ``Translate`` function to map data-flow sets across calls —
including the annotation that a formal parameter is bound to a caller's
loop index variable (the paper's example: formal ``i`` of F1/F2 is the
index of P1's loop running 1:100 step 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..lang import ast as A
from ..lang.printer import expr_str


class CallGraphError(Exception):
    """Recursion, missing procedures, or malformed call sites."""


@dataclass
class LoopInfo:
    """One loop node of the ACG."""

    var: str
    lo: A.Expr
    hi: A.Expr
    step: A.Expr
    stmt: A.Do
    depth: int  # 1-based nesting depth within its procedure

    def __str__(self) -> str:
        return (
            f"do {self.var} = {expr_str(self.lo)}, {expr_str(self.hi)}"
            + (f", {expr_str(self.step)}" if self.step != A.ONE else "")
        )


@dataclass
class CallSite:
    """A call edge of the ACG, with its enclosing loop stack and parameter
    bindings."""

    id: int
    caller: str
    callee: str
    stmt: A.Call
    loops: list[LoopInfo]  # outermost first
    actual_of: dict[str, A.Expr] = field(default_factory=dict)
    #: formal array name -> actual array name, for whole-array actuals
    array_actuals: dict[str, str] = field(default_factory=dict)
    #: formal scalar name -> the caller LoopInfo whose index it is bound to
    index_formals: dict[str, LoopInfo] = field(default_factory=dict)
    #: True when any array actual/formal pair disagrees in rank
    reshaped: bool = False

    def translate_expr(self, e: A.Expr) -> A.Expr:
        """Rewrite an expression over callee formals into caller terms."""
        from ..analysis.symbolics import substitute

        return substitute(e, self.actual_of)

    def __str__(self) -> str:
        return f"{self.caller} -> {self.callee} @site{self.id}"


@dataclass
class ProcNode:
    """Per-procedure ACG information."""

    proc: A.Procedure
    loops: list[LoopInfo] = field(default_factory=list)
    call_sites: list[CallSite] = field(default_factory=list)  # outgoing


class ACG:
    """The augmented call graph for a whole program."""

    def __init__(self, program: A.Program) -> None:
        self.program = program
        self.nodes: dict[str, ProcNode] = {}
        self.calls: list[CallSite] = []
        self._build()
        self._check_recursion()

    # -- queries ---------------------------------------------------------

    def node(self, name: str) -> ProcNode:
        return self.nodes[name]

    def procedures(self) -> Iterator[A.Procedure]:
        for n in self.nodes.values():
            yield n.proc

    def calls_from(self, name: str) -> list[CallSite]:
        return self.nodes[name].call_sites

    def calls_to(self, name: str) -> list[CallSite]:
        return [c for c in self.calls if c.callee == name]

    def callees(self, name: str) -> set[str]:
        return {c.callee for c in self.calls_from(name)}

    def topological_order(self) -> list[str]:
        """Callers before callees (main first)."""
        order: list[str] = []
        visited: set[str] = set()

        def visit(name: str) -> None:
            if name in visited:
                return
            visited.add(name)
            for c in self.calls_from(name):
                visit(c.callee)
            order.append(name)

        roots = [u.name for u in self.program.units if u.kind == "program"]
        roots += [n for n in self.nodes if n not in visited]
        for r in roots:
            visit(r)
        order.reverse()
        return order

    def reverse_topological_order(self) -> list[str]:
        """Callees before callers — the paper's code-generation order."""
        return list(reversed(self.topological_order()))

    # -- construction ------------------------------------------------------

    def _build(self) -> None:
        for unit in self.program.units:
            self.nodes[unit.name] = ProcNode(unit)
        for unit in self.program.units:
            self._scan_body(unit, unit.body, [])

    def _scan_body(
        self, unit: A.Procedure, body: list[A.Stmt], loops: list[LoopInfo]
    ) -> None:
        for s in body:
            if isinstance(s, A.Do):
                info = LoopInfo(s.var, s.lo, s.hi, s.step, s, len(loops) + 1)
                self.nodes[unit.name].loops.append(info)
                self._scan_body(unit, s.body, loops + [info])
            elif isinstance(s, A.DoWhile):
                self._scan_body(unit, s.body, loops)
            elif isinstance(s, A.If):
                self._scan_body(unit, s.then_body, loops)
                self._scan_body(unit, s.else_body, loops)
            elif isinstance(s, A.Call):
                self._add_call(unit, s, list(loops))
            # function calls in expressions: treated as side-effect free
            # intrinsics (user functions with array args are out of the
            # compiled subset and rejected by the driver)

    def _add_call(
        self, unit: A.Procedure, stmt: A.Call, loops: list[LoopInfo]
    ) -> None:
        callee = self.nodes.get(stmt.name)
        if callee is None:
            raise CallGraphError(
                f"{unit.name}: call to undefined procedure {stmt.name!r}"
            )
        formals = callee.proc.formals
        if len(formals) != len(stmt.args):
            raise CallGraphError(
                f"{unit.name}: call to {stmt.name} passes {len(stmt.args)} "
                f"args for {len(formals)} formals"
            )
        site = CallSite(
            id=len(self.calls),
            caller=unit.name,
            callee=stmt.name,
            stmt=stmt,
            loops=loops,
        )
        loop_by_var = {l.var: l for l in loops}
        for formal, actual in zip(formals, stmt.args):
            site.actual_of[formal] = actual
            fdecl = callee.proc.decl(formal)
            if fdecl is not None and fdecl.is_array:
                if isinstance(actual, A.Var):
                    adecl = unit.decl(actual.name)
                    if adecl is None or not adecl.is_array:
                        raise CallGraphError(
                            f"site {site}: array formal {formal!r} bound to "
                            f"non-array actual {expr_str(actual)!r}"
                        )
                    site.array_actuals[formal] = actual.name
                    if adecl.rank != fdecl.rank:
                        site.reshaped = True
                else:
                    # passing an element/section: reshaping across the call
                    site.reshaped = True
            else:
                if isinstance(actual, A.Var) and actual.name in loop_by_var:
                    site.index_formals[formal] = loop_by_var[actual.name]
        self.calls.append(site)
        self.nodes[unit.name].call_sites.append(site)

    def _check_recursion(self) -> None:
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {n: WHITE for n in self.nodes}

        def dfs(name: str, stack: list[str]) -> None:
            color[name] = GRAY
            for c in self.calls_from(name):
                if color[c.callee] == GRAY:
                    cycle = " -> ".join(stack + [name, c.callee])
                    raise CallGraphError(
                        f"recursive call chain not supported: {cycle}"
                    )
                if color[c.callee] == WHITE:
                    dfs(c.callee, stack + [name])
            color[name] = BLACK

        for n in list(self.nodes):
            if color[n] == WHITE:
                dfs(n, [])

    # -- rendering (Figure 5 style) ----------------------------------------

    def describe(self) -> str:
        lines = []
        for name, node in self.nodes.items():
            lines.append(f"{name}:")
            for l in node.loops:
                lines.append(f"  loop {l}")
            for c in node.call_sites:
                nest = (
                    " in " + "/".join(l.var for l in c.loops) if c.loops else ""
                )
                lines.append(f"  call {c.callee}{nest}")
        return "\n".join(lines)
