"""Classical reaching definitions over the CFG.

Reaching decompositions "is computed in the same manner as reaching
definitions, with each decomposition treated as a definition" (§5.2);
this module is the plain-definitions instance, used for scalar
data-flow queries (e.g. which assignment feeds a loop bound) and as the
reference implementation the decomposition variant is tested against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..ir.cfg import CFG
from ..lang import ast as A
from .dataflow import gen_kill_transfer, solve

#: a definition fact: (variable name, defining statement id)
Def = tuple[str, int]


@dataclass
class ReachingDefs:
    """Reaching-definition sets for one procedure body."""

    cfg: CFG
    ins: dict[int, frozenset[Def]] = field(default_factory=dict)
    outs: dict[int, frozenset[Def]] = field(default_factory=dict)
    #: definition id -> the statement object
    def_stmt: dict[int, A.Stmt] = field(default_factory=dict)

    def reaching(self, stmt: A.Stmt, var: str) -> list[A.Stmt]:
        """The definitions of *var* reaching *stmt* (statements are
        mutable AST nodes, so the result is an identity-deduplicated
        list rather than a set)."""
        node = self.cfg.node_of(stmt)
        out: list[A.Stmt] = []
        for (v, d) in self.ins.get(node.id, frozenset()):
            if v == var and d in self.def_stmt:
                cand = self.def_stmt[d]
                if not any(cand is x for x in out):
                    out.append(cand)
        return out

    def unique_reaching(self, stmt: A.Stmt, var: str) -> Optional[A.Stmt]:
        defs = self.reaching(stmt, var)
        return defs[0] if len(defs) == 1 else None


def _defined_var(s: A.Stmt) -> Optional[str]:
    if isinstance(s, A.Assign) and isinstance(s.target, A.Var):
        return s.target.name
    if isinstance(s, A.Do):
        return s.var
    return None


def compute_reaching_defs(body: list[A.Stmt]) -> ReachingDefs:
    """Solve reaching definitions for scalar variables in *body*."""
    cfg = CFG.build(body)
    result = ReachingDefs(cfg)
    gen: dict[int, set[Def]] = {}
    for node in cfg.nodes:
        if node.stmt is None:
            continue
        var = _defined_var(node.stmt)
        if var is not None:
            gen[node.id] = {(var, id(node.stmt))}
            result.def_stmt[id(node.stmt)] = node.stmt

    def kill(node, inset):
        if node.stmt is None:
            return frozenset()
        var = _defined_var(node.stmt)
        if var is None:
            return frozenset()
        return frozenset(f for f in inset if f[0] == var)

    transfer = gen_kill_transfer(gen, kill)
    ins, outs = solve(cfg, transfer, "forward")
    result.ins = {k: frozenset(v) for k, v in ins.items()}
    result.outs = {k: frozenset(v) for k, v in outs.items()}
    return result
