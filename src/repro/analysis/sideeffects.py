"""Interprocedural side-effect analysis: GMOD / GREF and ``Appear``.

``Gmod(P)`` / ``Gref(P)`` are the formal parameters of P that may be
modified / referenced by P *or its descendants* in the call graph.  The
paper uses ``Appear(P) = Gmod(P) ∪ Gref(P)`` to avoid unnecessary cloning
(§5.2): cloning is driven only by decompositions of variables that
actually appear in the callee or below.

Alongside the scalar sets we collect *array section* side effects —
RSD-summarized defs/uses per array (the "interprocedural RSD analysis"
of §4/§5.4) — which communication analysis consumes at call sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..callgraph.acg import ACG
from ..lang import ast as A


@dataclass
class SideEffects:
    """Per-procedure side-effect summary over *formal* names."""

    mod: set[str] = field(default_factory=set)  # directly or below
    ref: set[str] = field(default_factory=set)

    @property
    def appear(self) -> set[str]:
        return self.mod | self.ref


def _direct_effects(proc: A.Procedure) -> SideEffects:
    """mod/ref of the procedure's own statements (call effects excluded)."""
    eff = SideEffects()

    def note_expr(e: A.Expr) -> None:
        for sub in A.walk_exprs(e):
            if isinstance(sub, (A.Var, A.ArrayRef)):
                eff.ref.add(sub.name)
            elif isinstance(sub, A.CallExpr):
                pass  # intrinsic: args already walked

    for s in A.walk_stmts(proc.body):
        if isinstance(s, A.Assign):
            eff.mod.add(s.target.name)
            if isinstance(s.target, A.ArrayRef):
                for sub in s.target.subs:
                    note_expr(sub)
            note_expr(s.expr)
        elif isinstance(s, A.If):
            note_expr(s.cond)
        elif isinstance(s, A.Do):
            eff.mod.add(s.var)
            note_expr(s.lo)
            note_expr(s.hi)
            note_expr(s.step)
        elif isinstance(s, A.DoWhile):
            note_expr(s.cond)
        elif isinstance(s, A.Print):
            for item in s.items:
                note_expr(item)
        elif isinstance(s, A.Call):
            for a in s.args:
                # scalar-expression actuals are referenced here; array
                # names flow through the interprocedural phase below
                if not isinstance(a, A.Var):
                    note_expr(a)
    return eff


def compute_side_effects(acg: ACG) -> dict[str, SideEffects]:
    """Solve GMOD/GREF bottom-up over the (acyclic) call graph.

    Returns per-procedure summaries restricted to names visible in that
    procedure (formals and locals); at call sites the callee's formal
    effects are translated to the actuals.
    """
    result: dict[str, SideEffects] = {}
    for name in acg.reverse_topological_order():
        proc = acg.node(name).proc
        eff = _direct_effects(proc)
        for site in acg.calls_from(name):
            callee_eff = result[site.callee]
            callee_proc = acg.node(site.callee).proc
            for g in callee_proc.commons:
                if g in callee_eff.mod:
                    eff.mod.add(g)
                if g in callee_eff.ref:
                    eff.ref.add(g)
            for formal in callee_proc.formals:
                actual = site.actual_of[formal]
                if isinstance(actual, A.Var):
                    if formal in callee_eff.mod:
                        eff.mod.add(actual.name)
                    if formal in callee_eff.ref:
                        eff.ref.add(actual.name)
                else:
                    # expression actual: a use of its variables; cannot be
                    # modified (Fortran would pass a temporary)
                    if formal in callee_eff.ref or formal in callee_eff.mod:
                        from .symbolics import free_vars

                        eff.ref |= free_vars(actual)
        result[name] = eff
    return result


def appear(acg: ACG, effects: dict[str, SideEffects], name: str) -> set[str]:
    """``Appear(P)`` restricted to the names visible across the call
    boundary: formal parameters and COMMON (global) arrays (§5.2)."""
    proc = acg.node(name).proc
    return effects[name].appear & (set(proc.formals) | set(proc.commons))
