"""Generic iterative data-flow framework over the CFG.

Both reaching-style (forward, may, union) and liveness-style (backward,
may, union) problems are instances of :func:`solve`.  The lattice is sets
of hashable facts; transfer functions are supplied per node as gen/kill
sets or as arbitrary callables.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, FrozenSet, Hashable, Mapping

from ..ir.cfg import CFG, Node

Facts = FrozenSet[Hashable]

Transfer = Callable[[Node, Facts], Facts]


def gen_kill_transfer(
    gen: Mapping[int, set],
    kill: Callable[[Node, Facts], Facts] | Mapping[int, set],
) -> Transfer:
    """Build a transfer function ``out = gen ∪ (in - kill)`` from
    per-node-id gen sets and either per-node-id kill sets or a callable
    kill (for kills that depend on the incoming facts, e.g. "kill every
    fact about variable v")."""

    if callable(kill):
        def f(node: Node, inset: Facts) -> Facts:
            kept = inset - kill(node, inset)
            return frozenset(gen.get(node.id, ())) | kept
    else:
        def f(node: Node, inset: Facts) -> Facts:
            kept = inset - frozenset(kill.get(node.id, ()))
            return frozenset(gen.get(node.id, ())) | kept
    return f


def solve(
    cfg: CFG,
    transfer: Transfer,
    direction: str = "forward",
    init: Facts = frozenset(),
    boundary: Facts = frozenset(),
) -> tuple[dict[int, Facts], dict[int, Facts]]:
    """Worklist solver.

    Returns ``(in_sets, out_sets)`` keyed by node id.  ``boundary`` seeds
    the entry node (forward) or exit node (backward); ``init`` is the
    initial value for all other nodes (use frozenset() for may/union
    problems).
    """
    if direction not in ("forward", "backward"):
        raise ValueError(direction)
    fwd = direction == "forward"
    start = cfg.entry if fwd else cfg.exit

    ins: dict[int, Facts] = {n.id: init for n in cfg.nodes}
    outs: dict[int, Facts] = {n.id: init for n in cfg.nodes}

    def preds(n: Node) -> list[int]:
        return n.preds if fwd else n.succs

    def succs(n: Node) -> list[int]:
        return n.succs if fwd else n.preds

    work: deque[int] = deque(n.id for n in cfg.nodes)
    ins[start.id] = boundary
    outs[start.id] = transfer(start, boundary)

    iterations = 0
    limit = 50 * max(len(cfg.nodes), 1) * max(len(cfg.nodes), 1)
    while work:
        iterations += 1
        if iterations > limit:  # pragma: no cover - safety net
            raise RuntimeError("dataflow did not converge")
        nid = work.popleft()
        node = cfg.node(nid)
        if node is not start:
            merged: Facts = frozenset()
            for p in preds(node):
                merged = merged | outs[p]
            ins[nid] = merged
        new_out = transfer(node, ins[nid])
        if new_out != outs[nid]:
            outs[nid] = new_out
            for s in succs(node):
                if s not in work:
                    work.append(s)
    if fwd:
        return ins, outs
    # for backward problems, "in" conventionally means facts live *before*
    # the node, i.e. the transfer output
    return outs, ins
