"""Program analyses: RSDs, dependence, dataflow, side effects."""

from .rsd import RSD, Range, SymDim, merge_rsd_list, rsd, subs_to_rsd

__all__ = ["RSD", "Range", "SymDim", "rsd", "merge_rsd_list", "subs_to_rsd"]
