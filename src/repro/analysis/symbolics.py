"""Symbolic and constant analysis.

Small but load-bearing: constant folding/evaluation under a PARAMETER
environment, substitution of formals by actuals (the `Translate` machinery
of §5.1 needs it), and recognition of the affine subscript forms the
partitioner and dependence analyzer understand (``c``, ``i``, ``i ± c``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Union

from ..lang import ast as A

Number = Union[int, float]


def eval_const(e: A.Expr, env: Mapping[str, Number] | None = None) -> Optional[Number]:
    """Evaluate *e* to a number when possible, else None.

    *env* supplies PARAMETER constants and any propagated interprocedural
    constants.
    """
    env = env or {}
    if isinstance(e, A.Num):
        return e.value
    if isinstance(e, A.Var):
        return env.get(e.name)
    if isinstance(e, A.UnOp) and e.op == "-":
        v = eval_const(e.operand, env)
        return None if v is None else -v
    if isinstance(e, A.BinOp):
        a = eval_const(e.left, env)
        b = eval_const(e.right, env)
        if a is None or b is None:
            return None
        if e.op == "+":
            return a + b
        if e.op == "-":
            return a - b
        if e.op == "*":
            return a * b
        if e.op == "/":
            if b == 0:
                return None
            if isinstance(a, int) and isinstance(b, int):
                return int(a / b) if (a < 0) != (b < 0) else a // b
            return a / b
        if e.op == "**":
            return a ** b
        return None
    if isinstance(e, A.CallExpr):
        args = [eval_const(a, env) for a in e.args]
        if any(v is None for v in args):
            return None
        if e.name == "min":
            return min(args)  # type: ignore[arg-type]
        if e.name == "max":
            return max(args)  # type: ignore[arg-type]
        if e.name == "mod":
            return args[0] % args[1]  # type: ignore[operator]
        if e.name == "abs":
            return abs(args[0])  # type: ignore[arg-type]
        return None
    return None


def eval_int(e: A.Expr, env: Mapping[str, Number] | None = None) -> Optional[int]:
    """eval_const restricted to integers."""
    v = eval_const(e, env)
    if isinstance(v, int):
        return v
    if isinstance(v, float) and v.is_integer():
        return int(v)
    return None


def substitute(e: A.Expr, bindings: Mapping[str, A.Expr]) -> A.Expr:
    """Replace variable occurrences per *bindings* (used to translate
    expressions in callee terms into caller terms)."""
    if isinstance(e, A.Var):
        return bindings.get(e.name, e)
    if isinstance(e, A.BinOp):
        return A.BinOp(e.op, substitute(e.left, bindings),
                       substitute(e.right, bindings))
    if isinstance(e, A.UnOp):
        return A.UnOp(e.op, substitute(e.operand, bindings))
    if isinstance(e, A.CallExpr):
        return A.CallExpr(e.name, tuple(substitute(a, bindings) for a in e.args))
    if isinstance(e, A.ArrayRef):
        return A.ArrayRef(e.name, tuple(substitute(s, bindings) for s in e.subs))
    if isinstance(e, A.Triplet):
        return A.Triplet(
            substitute(e.lo, bindings) if e.lo is not None else None,
            substitute(e.hi, bindings) if e.hi is not None else None,
            substitute(e.step, bindings) if e.step is not None else None,
        )
    return e


def fold(e: A.Expr, env: Mapping[str, Number] | None = None) -> A.Expr:
    """Constant-fold *e* (recursively), leaving symbolic parts intact."""
    v = eval_const(e, env)
    if v is not None:
        return A.Num(v)
    if isinstance(e, A.BinOp):
        l, r = fold(e.left, env), fold(e.right, env)
        if e.op == "+":
            return A.add(l, r)
        if e.op == "-":
            return A.sub(l, r)
        if e.op == "*":
            return A.mul(l, r)
        return A.BinOp(e.op, l, r)
    if isinstance(e, A.UnOp):
        return A.UnOp(e.op, fold(e.operand, env))
    if isinstance(e, A.CallExpr):
        return A.CallExpr(e.name, tuple(fold(a, env) for a in e.args))
    return e


@dataclass(frozen=True)
class Affine:
    """Affine subscript ``var + offset`` (coefficient 1) or a pure
    constant (``var is None``)."""

    var: Optional[str]
    offset: int

    @property
    def is_const(self) -> bool:
        return self.var is None


def affine_of(
    e: A.Expr, env: Mapping[str, Number] | None = None
) -> Optional[Affine]:
    """Recognize the subscript forms the compiler partitions on:
    ``c``, ``i``, ``i + c``, ``i - c``, ``c + i``.  Returns None for
    anything else (those references fall back to run-time resolution).
    """
    env = env or {}
    c = eval_int(e, env)
    if c is not None:
        return Affine(None, c)
    if isinstance(e, A.Var):
        return Affine(e.name, 0)
    if isinstance(e, A.BinOp) and e.op in ("+", "-"):
        lc = eval_int(e.left, env)
        rc = eval_int(e.right, env)
        if isinstance(e.left, A.Var) and rc is not None:
            return Affine(e.left.name, rc if e.op == "+" else -rc)
        if e.op == "+" and lc is not None and isinstance(e.right, A.Var):
            return Affine(e.right.name, lc)
    return None


def free_vars(e: A.Expr) -> set[str]:
    """Names of all variables occurring in *e*."""
    out: set[str] = set()
    for sub in A.walk_exprs(e):
        if isinstance(sub, A.Var):
            out.add(sub.name)
        elif isinstance(sub, A.ArrayRef):
            out.add(sub.name)
    return out


def is_invariant(e: A.Expr, loop_vars: set[str]) -> bool:
    """True when *e* mentions none of *loop_vars* (loop-invariant with
    respect to them)."""
    return not (free_vars(e) & loop_vars)
