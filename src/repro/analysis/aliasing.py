"""Alias analysis for parameter passing (§6.4).

In Fortran 77 aliases arise through parameter passing: two formals alias
when the same array is passed for both, directly or along some call
chain.  Fortran D "disallows dynamic data decomposition for aliased
variables" — redistributing one name would silently move the storage the
other name still expects — so the compiler must detect aliases and
reject (or fall back on) dynamic decomposition of aliased formals.

The analysis is the classical pairwise-formal propagation: alias pairs
are seeded at call sites that pass the same actual twice and propagated
top-down through the (acyclic) call graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..callgraph.acg import ACG
from ..lang import ast as A


@dataclass
class AliasInfo:
    """Per-procedure may-alias pairs over formal array names."""

    pairs: dict[str, set[frozenset[str]]] = field(default_factory=dict)

    def aliased(self, proc: str, a: str, b: str) -> bool:
        return frozenset((a, b)) in self.pairs.get(proc, set())

    def aliased_formals(self, proc: str) -> set[str]:
        out: set[str] = set()
        for pair in self.pairs.get(proc, set()):
            out |= set(pair)
        return out


def compute_aliases(acg: ACG) -> AliasInfo:
    """Top-down alias propagation over the call graph."""
    info = AliasInfo()
    for name in acg.nodes:
        info.pairs[name] = set()

    for name in acg.topological_order():
        caller_pairs = info.pairs[name]
        for site in acg.calls_from(name):
            callee_pairs = info.pairs[site.callee]
            # formals receiving the same actual array alias directly
            by_actual: dict[str, list[str]] = {}
            for formal, actual in site.array_actuals.items():
                by_actual.setdefault(actual, []).append(formal)
            for formals in by_actual.values():
                for i in range(len(formals)):
                    for j in range(i + 1, len(formals)):
                        callee_pairs.add(frozenset((formals[i], formals[j])))
            # aliases among actuals propagate to the bound formals
            actual_of: dict[str, str] = site.array_actuals
            inv: dict[str, list[str]] = {}
            for formal, actual in actual_of.items():
                inv.setdefault(actual, []).append(formal)
            for pair in caller_pairs:
                a, b = tuple(pair)
                for fa in inv.get(a, ()):
                    for fb in inv.get(b, ()):
                        if fa != fb:
                            callee_pairs.add(frozenset((fa, fb)))
    return info


class AliasedRedistributionError(Exception):
    """Dynamic data decomposition of an aliased variable (§6.4)."""


def check_dynamic_decomposition(acg: ACG, aliases: AliasInfo) -> None:
    """Enforce §6.4: a procedure may not dynamically redistribute a
    formal that may be aliased."""
    from ..core.dynamic import find_dynamic_distributes
    from ..core.reaching import build_directive_table

    for name in acg.nodes:
        proc = acg.node(name).proc
        is_main = proc.kind == "program"
        dynamic = find_dynamic_distributes(proc, is_main)
        if not dynamic:
            continue
        bad = aliases.aliased_formals(name)
        if not bad:
            continue
        table = build_directive_table(proc)
        for stmt in dynamic:
            try:
                targets = set(table.resolve_distribute(stmt))
            except ValueError:
                targets = {stmt.name}
            hit = targets & bad
            if hit:
                raise AliasedRedistributionError(
                    f"{name}: dynamic decomposition of aliased "
                    f"variable(s) {sorted(hit)} is not allowed in "
                    f"Fortran D (§6.4)"
                )
