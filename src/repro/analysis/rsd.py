"""Regular Section Descriptors (RSDs).

The Fortran D compiler represents both *index sets* (collections of data)
and *iteration sets* (collections of loop iterations) as regular sections
[Havlak & Kennedy 1991], written in Fortran 90 triplet notation — e.g.
``[1:25, 1:100]`` or ``[26:30, i]``.

An RSD here is a tuple of per-dimension descriptors:

* :class:`Range` — numeric triplet ``lo:hi:step`` (step may be > 1 for
  cyclic index sets);
* :class:`SymDim` — a symbolic dimension holding an AST expression (a
  single index such as ``i``, or a symbolic triplet) used when bounds are
  not compile-time constants.

Set algebra (intersection, difference, containment, merging) is exact for
numeric dimensions and structural/conservative for symbolic ones, exactly
the precision the paper's compiler achieves ("merged only if no loss of
precision will result", §5.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

from ..lang import ast as A
from ..lang.printer import expr_str


@dataclass(frozen=True)
class Range:
    """Numeric triplet ``lo:hi:step`` (inclusive bounds, step >= 1).

    An empty range is canonicalized to ``Range(1, 0, 1)``.
    """

    lo: int
    hi: int
    step: int = 1

    def __post_init__(self) -> None:
        if self.step < 1:
            raise ValueError(f"step must be >= 1, got {self.step}")

    @property
    def empty(self) -> bool:
        return self.hi < self.lo

    @property
    def count(self) -> int:
        if self.empty:
            return 0
        return (self.hi - self.lo) // self.step + 1

    @property
    def last(self) -> int:
        """Largest member (normalized hi)."""
        if self.empty:
            return self.hi
        return self.lo + (self.count - 1) * self.step

    def normalized(self) -> "Range":
        if self.empty:
            return EMPTY_RANGE
        return Range(self.lo, self.last, 1 if self.count == 1 else self.step)

    def contains(self, v: int) -> bool:
        return (not self.empty) and self.lo <= v <= self.hi \
            and (v - self.lo) % self.step == 0

    def contains_range(self, other: "Range") -> bool:
        if other.empty:
            return True
        if self.empty:
            return False
        if self.step == 1:
            return self.lo <= other.lo and other.last <= self.hi
        return all(self.contains(v) for v in other.iter())

    def iter(self) -> Iterable[int]:
        return range(self.lo, self.hi + 1, self.step)

    def shift(self, offset: int) -> "Range":
        if self.empty:
            return self
        return Range(self.lo + offset, self.hi + offset, self.step)

    def intersect(self, other: "Range") -> "Range":
        """Exact intersection; result step is lcm of the steps when the
        phases are compatible, else empty."""
        if self.empty or other.empty:
            return EMPTY_RANGE
        if self.step == 1 and other.step == 1:
            lo, hi = max(self.lo, other.lo), min(self.hi, other.hi)
            return Range(lo, hi) if lo <= hi else EMPTY_RANGE
        # general strided case via CRT on small steps
        import math

        g = math.gcd(self.step, other.step)
        if (other.lo - self.lo) % g != 0:
            return EMPTY_RANGE
        l = self.step // g * other.step  # lcm
        # find smallest x >= max(lo) with x ≡ self.lo (mod self.step)
        # and x ≡ other.lo (mod other.step)
        start = max(self.lo, other.lo)
        x = None
        for v in range(start, start + l):
            if (v - self.lo) % self.step == 0 and (v - other.lo) % other.step == 0:
                x = v
                break
        if x is None:
            return EMPTY_RANGE
        hi = min(self.last, other.last)
        if x > hi:
            return EMPTY_RANGE
        return Range(x, hi, l).normalized()

    def subtract(self, other: "Range") -> list["Range"]:
        """Exact difference ``self - other`` as a list of ranges."""
        if self.empty:
            return []
        if other.empty:
            return [self]
        if self.step == 1 and other.step == 1:
            out = []
            if other.lo > self.lo:
                out.append(Range(self.lo, min(self.hi, other.lo - 1)))
            if other.hi < self.hi:
                out.append(Range(max(self.lo, other.hi + 1), self.hi))
            return [r for r in out if not r.empty]
        # strided: enumerate when small, else conservative (keep self)
        if self.count <= 4096:
            kept = [v for v in self.iter() if not other.contains(v)]
            return _ranges_from_sorted(kept)
        inter = self.intersect(other)
        if inter.empty:
            return [self]
        return [self]  # conservative over-approximation

    def union_merge(self, other: "Range") -> Optional["Range"]:
        """Merge into a single range when no precision is lost, else
        None (the paper merges RSDs "only if no loss of precision will
        result")."""
        a, b = self.normalized(), other.normalized()
        if a.empty:
            return b
        if b.empty:
            return a
        if a.step == b.step == 1:
            if a.lo <= b.hi + 1 and b.lo <= a.hi + 1:
                return Range(min(a.lo, b.lo), max(a.hi, b.hi))
            return None
        if a.step == b.step and (a.lo - b.lo) % a.step == 0:
            if a.lo <= b.last + a.step and b.lo <= a.last + a.step:
                return Range(min(a.lo, b.lo), max(a.last, b.last), a.step)
        if a.contains_range(b):
            return a
        if b.contains_range(a):
            return b
        return None

    def __str__(self) -> str:
        if self.empty:
            return "empty"
        if self.lo == self.hi:
            return str(self.lo)
        if self.step == 1:
            return f"{self.lo}:{self.hi}"
        return f"{self.lo}:{self.hi}:{self.step}"


EMPTY_RANGE = Range(1, 0, 1)


def _ranges_from_sorted(values: list[int]) -> list[Range]:
    """Pack a sorted list of ints into maximal constant-stride ranges."""
    out: list[Range] = []
    i = 0
    n = len(values)
    while i < n:
        if i + 1 >= n:
            out.append(Range(values[i], values[i]))
            break
        stride = values[i + 1] - values[i]
        j = i + 1
        while j + 1 < n and values[j + 1] - values[j] == stride:
            j += 1
        out.append(Range(values[i], values[j], max(stride, 1)))
        i = j + 1
    return out


@dataclass(frozen=True)
class SymDim:
    """Symbolic dimension: a single index expression (``i``) or a
    symbolic triplet (``lo:hi`` with expression bounds)."""

    lo: A.Expr
    hi: Optional[A.Expr] = None  # None => single index
    step: Optional[A.Expr] = None

    @property
    def is_point(self) -> bool:
        return self.hi is None

    def __str__(self) -> str:
        if self.hi is None:
            return expr_str(self.lo)
        s = f"{expr_str(self.lo)}:{expr_str(self.hi)}"
        if self.step is not None:
            s += f":{expr_str(self.step)}"
        return s


Dim = Union[Range, SymDim]


@dataclass(frozen=True)
class RSD:
    """A regular section descriptor over ``rank`` dimensions."""

    dims: tuple[Dim, ...]

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def empty(self) -> bool:
        return any(isinstance(d, Range) and d.empty for d in self.dims)

    @property
    def numeric(self) -> bool:
        return all(isinstance(d, Range) for d in self.dims)

    @property
    def count(self) -> int:
        """Number of elements; raises for symbolic sections."""
        if not self.numeric:
            raise ValueError(f"count of symbolic RSD {self}")
        n = 1
        for d in self.dims:
            n *= d.count  # type: ignore[union-attr]
        return n

    def contains(self, other: "RSD") -> bool:
        """Structural/exact containment test (conservative: False when
        not provable)."""
        if other.empty:
            return True
        if self.rank != other.rank:
            return False
        for a, b in zip(self.dims, other.dims):
            if isinstance(a, Range) and isinstance(b, Range):
                if not a.contains_range(b):
                    return False
            elif a != b:
                return False
        return True

    def intersect(self, other: "RSD") -> "RSD":
        if self.rank != other.rank:
            raise ValueError("rank mismatch")
        dims: list[Dim] = []
        for a, b in zip(self.dims, other.dims):
            if isinstance(a, Range) and isinstance(b, Range):
                dims.append(a.intersect(b))
            elif a == b:
                dims.append(a)
            else:
                # unknown symbolic overlap: conservative = keep a
                dims.append(a)
        return RSD(tuple(dims))

    def subtract(self, other: "RSD") -> list["RSD"]:
        """Exact rectangular difference when all differing dims are
        numeric; conservative (returns self) otherwise.

        The result is a disjoint list of RSDs covering ``self - other``.
        """
        if self.rank != other.rank:
            raise ValueError("rank mismatch")
        if self.empty:
            return []
        if other.empty:
            return [self]
        # dimensions where other doesn't fully cover self
        out: list[RSD] = []
        remaining = list(self.dims)
        for axis, (a, b) in enumerate(zip(self.dims, other.dims)):
            if isinstance(a, Range) and isinstance(b, Range):
                pieces = a.subtract(b)
                inter = a.intersect(b)
            elif a == b:
                pieces, inter = [], a
            else:
                # cannot reason about symbolic difference: conservative
                return [self]
            for piece in pieces:
                dims = list(remaining)
                dims[axis] = piece
                cand = RSD(tuple(dims))
                if not cand.empty:
                    out.append(cand)
            if isinstance(inter, Range) and inter.empty:
                return out
            remaining[axis] = inter
        return out

    def shift(self, axis: int, offset: int) -> "RSD":
        dims = list(self.dims)
        d = dims[axis]
        if isinstance(d, Range):
            dims[axis] = d.shift(offset)
        else:
            lo = A.add(d.lo, A.Num(offset))
            hi = None if d.hi is None else A.add(d.hi, A.Num(offset))
            dims[axis] = SymDim(lo, hi, d.step)
        return RSD(tuple(dims))

    def with_dim(self, axis: int, dim: Dim) -> "RSD":
        dims = list(self.dims)
        dims[axis] = dim
        return RSD(tuple(dims))

    def merge(self, other: "RSD") -> Optional["RSD"]:
        """Union into one RSD iff exactly representable (differ in at most
        one numeric dimension that merges cleanly)."""
        if self.rank != other.rank:
            return None
        if self.empty:
            return other
        if other.empty:
            return self
        diff_axis = None
        for axis, (a, b) in enumerate(zip(self.dims, other.dims)):
            if a != b:
                if diff_axis is not None:
                    return None
                diff_axis = axis
        if diff_axis is None:
            return self
        a, b = self.dims[diff_axis], other.dims[diff_axis]
        if isinstance(a, Range) and isinstance(b, Range):
            merged = a.union_merge(b)
            if merged is not None:
                return self.with_dim(diff_axis, merged)
        return None

    def to_subs(self) -> list[A.Expr]:
        """Convert to AST subscript expressions (Triplets / indices) for
        use in generated Send/Recv statements."""
        subs: list[A.Expr] = []
        for d in self.dims:
            if isinstance(d, Range):
                if d.lo == d.hi:
                    subs.append(A.Num(d.lo))
                else:
                    subs.append(
                        A.Triplet(
                            A.Num(d.lo),
                            A.Num(d.hi),
                            A.Num(d.step) if d.step != 1 else None,
                        )
                    )
            else:
                if d.is_point:
                    subs.append(d.lo)
                else:
                    subs.append(A.Triplet(d.lo, d.hi, d.step))
        return subs

    def __str__(self) -> str:
        return "[" + ", ".join(str(d) for d in self.dims) + "]"


def rsd(*dims: Union[Dim, int, tuple]) -> RSD:
    """Convenience constructor::

        rsd((1, 25), (1, 100))      -> [1:25, 1:100]
        rsd(5, (6, 30))             -> [5, 6:30]
        rsd((1, 99, 2))             -> [1:99:2]
    """
    out: list[Dim] = []
    for d in dims:
        if isinstance(d, (Range, SymDim)):
            out.append(d)
        elif isinstance(d, int):
            out.append(Range(d, d))
        elif isinstance(d, tuple):
            if len(d) == 2:
                out.append(Range(d[0], d[1]))
            else:
                out.append(Range(d[0], d[1], d[2]))
        elif isinstance(d, A.Expr):
            out.append(SymDim(d))
        else:
            raise TypeError(f"bad dim {d!r}")
    return RSD(tuple(out))


def merge_rsd_list(sections: Sequence[RSD]) -> list[RSD]:
    """Repeatedly merge pairs of RSDs that combine without precision loss
    (used for message coalescing, §5.4)."""
    work = [s for s in sections if not s.empty]
    changed = True
    while changed:
        changed = False
        for i in range(len(work)):
            for j in range(i + 1, len(work)):
                m = work[i].merge(work[j])
                if m is not None:
                    work[i] = m
                    del work[j]
                    changed = True
                    break
            if changed:
                break
    return work


def subs_to_rsd(subs: Sequence[A.Expr]) -> RSD:
    """Build an RSD from AST subscripts, turning constant expressions into
    numeric dims and everything else into SymDims."""
    dims: list[Dim] = []
    for s in subs:
        if isinstance(s, A.Num) and isinstance(s.value, int):
            dims.append(Range(s.value, s.value))
        elif isinstance(s, A.Triplet):
            lo, hi, step = s.lo, s.hi, s.step
            if (
                isinstance(lo, A.Num)
                and isinstance(hi, A.Num)
                and (step is None or isinstance(step, A.Num))
            ):
                dims.append(
                    Range(lo.value, hi.value, step.value if step else 1)
                )
            else:
                dims.append(SymDim(lo if lo is not None else A.ONE,
                                   hi, step))
        else:
            dims.append(SymDim(s))
    return RSD(tuple(dims))
