"""Classical live-variable analysis over the CFG.

Live decompositions are calculated "in the same manner as live
variables" (§6.1); this module is the plain-variables instance, used to
sanity-check the decomposition variant and for dead-assignment queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.cfg import CFG
from ..lang import ast as A
from .dataflow import gen_kill_transfer, solve


@dataclass
class LiveVars:
    """Live-variable sets for one procedure body."""

    cfg: CFG
    #: live before each node (facts are variable names)
    before: dict[int, frozenset[str]] = field(default_factory=dict)
    after: dict[int, frozenset[str]] = field(default_factory=dict)

    def live_before(self, stmt: A.Stmt) -> frozenset[str]:
        return self.before.get(self.cfg.node_of(stmt).id, frozenset())

    def live_after(self, stmt: A.Stmt) -> frozenset[str]:
        return self.after.get(self.cfg.node_of(stmt).id, frozenset())

    def is_dead_store(self, stmt: A.Assign) -> bool:
        """A scalar assignment whose target is not live afterwards."""
        if not isinstance(stmt.target, A.Var):
            return False
        return stmt.target.name not in self.live_after(stmt)


def _uses(s: A.Stmt) -> set[str]:
    out: set[str] = set()

    def note(e: A.Expr) -> None:
        for x in A.walk_exprs(e):
            if isinstance(x, A.Var):
                out.add(x.name)
            elif isinstance(x, A.ArrayRef):
                out.add(x.name)

    if isinstance(s, A.Assign):
        note(s.expr)
        if isinstance(s.target, A.ArrayRef):
            # the array itself stays live (partial update), and the
            # subscripts are read
            out.add(s.target.name)
            for sub in s.target.subs:
                note(sub)
    elif isinstance(s, A.If):
        note(s.cond)
    elif isinstance(s, A.Do):
        note(s.lo)
        note(s.hi)
        note(s.step)
    elif isinstance(s, A.DoWhile):
        note(s.cond)
    elif isinstance(s, (A.Call, A.Print)):
        for e in A.stmt_exprs(s):
            note(e)
    return out


def _kills(s: A.Stmt) -> set[str]:
    if isinstance(s, A.Assign) and isinstance(s.target, A.Var):
        return {s.target.name}
    if isinstance(s, A.Do):
        return {s.var}
    return set()


def compute_live_vars(
    body: list[A.Stmt], live_out: frozenset[str] = frozenset()
) -> LiveVars:
    """Solve liveness backward; *live_out* seeds the exit (e.g. formal
    out-parameters)."""
    cfg = CFG.build(body)
    gen: dict[int, set[str]] = {}
    kill: dict[int, set[str]] = {}
    for node in cfg.nodes:
        if node.stmt is None:
            continue
        gen[node.id] = _uses(node.stmt)
        kill[node.id] = _kills(node.stmt)

    transfer = gen_kill_transfer(gen, kill)
    before, after = solve(cfg, transfer, "backward", boundary=live_out)
    return LiveVars(
        cfg,
        {k: frozenset(v) for k, v in before.items()},
        {k: frozenset(v) for k, v in after.items()},
    )
