"""Data dependence analysis for communication placement.

Message vectorization (§3 step 5, §5.4) places communication for a
nonlocal read at the *deepest loop carrying a true dependence* whose sink
is that read; absent loop-carried true dependences, messages are hoisted
(vectorized) out of the loop nest entirely.

The analyzer works on per-dimension *access descriptors* built either
from statement subscripts (``c``, ``i``, ``i ± c``) or from RSD
summaries at call sites (``k+1 : n`` style symbolic ranges).  Dependence
between two references is decided by intersecting, per common loop, the
interval of iteration distances ``d = r_iter - w_iter`` that allow the
two descriptors to touch the same element, then walking the common nest
outermost-first with the usual lexicographic-positivity argument.

The three result shapes:

* ``None`` — provably no true dependence;
* carried levels — the set of common-nest depths (1-based) at which a
  true dependence may be carried;
* loop-independent — a same-iteration dependence may exist.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Union

from ..callgraph.acg import LoopInfo
from ..lang import ast as A
from .rsd import Range, SymDim
from .symbolics import affine_of, eval_int

NEG_INF = -math.inf
POS_INF = math.inf


@dataclass(frozen=True)
class DimAccess:
    """Access descriptor of one array dimension of one reference.

    kind:
      * ``const``    — numeric constant (``value``);
      * ``var``      — loop-affine point ``var + off``;
      * ``sym``      — symbolic point (non-loop variable + offset);
      * ``range``    — numeric range [lo, hi];
      * ``symrange`` — ``var + off : <loose upper bound>``;
      * ``unknown``  — anything else (conservative).
    """

    kind: str
    var: Optional[str] = None
    off: int = 0
    value: int = 0
    lo: int = 0
    hi: int = 0

    @staticmethod
    def const(v: int) -> "DimAccess":
        return DimAccess("const", value=v)

    @staticmethod
    def point(var: str, off: int = 0) -> "DimAccess":
        return DimAccess("var", var=var, off=off)

    @staticmethod
    def sym(var: str, off: int = 0) -> "DimAccess":
        return DimAccess("sym", var=var, off=off)

    @staticmethod
    def num_range(lo: int, hi: int) -> "DimAccess":
        return DimAccess("range", lo=lo, hi=hi)

    @staticmethod
    def sym_range(var: str, off: int) -> "DimAccess":
        return DimAccess("symrange", var=var, off=off)

    @staticmethod
    def unknown() -> "DimAccess":
        return DimAccess("unknown")


def classify_subscript(
    e: A.Expr,
    loop_vars: set[str],
    env: Mapping[str, int] | None = None,
) -> DimAccess:
    """Classify a statement subscript expression."""
    aff = affine_of(e, env)
    if aff is None:
        return DimAccess.unknown()
    if aff.is_const:
        return DimAccess.const(aff.offset)
    if aff.var in loop_vars:
        return DimAccess.point(aff.var, aff.offset)
    return DimAccess.sym(aff.var, aff.offset)


def classify_rsd_dim(
    dim: Union[Range, SymDim],
    loop_vars: set[str],
    env: Mapping[str, int] | None = None,
) -> DimAccess:
    """Classify one dimension of an RSD summary."""
    if isinstance(dim, Range):
        if dim.lo == dim.hi:
            return DimAccess.const(dim.lo)
        return DimAccess.num_range(dim.lo, dim.hi)
    # SymDim
    if dim.is_point:
        return classify_subscript(dim.lo, loop_vars, env)
    lo_aff = affine_of(dim.lo, env)
    lo_num = eval_int(dim.lo, env)
    hi_num = eval_int(dim.hi, env) if dim.hi is not None else None
    if lo_num is not None and hi_num is not None:
        return DimAccess.num_range(lo_num, hi_num)
    if lo_aff is not None and lo_aff.var in loop_vars:
        return DimAccess.sym_range(lo_aff.var, lo_aff.offset)
    return DimAccess.unknown()


@dataclass
class DepResult:
    """Outcome of a true-dependence test."""

    carried_levels: set[int] = field(default_factory=set)
    loop_independent: bool = False

    @property
    def exists(self) -> bool:
        return bool(self.carried_levels) or self.loop_independent

    def deepest(self) -> int:
        return max(self.carried_levels) if self.carried_levels else 0


@dataclass
class _Interval:
    """Iteration-distance interval [lo, hi] for one common loop."""

    lo: float = NEG_INF
    hi: float = POS_INF

    def restrict(self, lo: float = NEG_INF, hi: float = POS_INF) -> bool:
        """Intersect; return False when empty."""
        self.lo = max(self.lo, lo)
        self.hi = min(self.hi, hi)
        return self.lo <= self.hi

    def allows_positive(self) -> bool:
        return self.hi > 0

    def allows_zero(self) -> bool:
        return self.lo <= 0 <= self.hi


def _loop_relation(
    inner: LoopInfo, outer_var: str, env: Mapping[str, int] | None
) -> Optional[int]:
    """If ``inner``'s lower bound is ``outer_var + c``, return ``c``
    (proving inner >= outer + c throughout the nest); else None."""
    aff = affine_of(inner.lo, env)
    if aff is not None and aff.var == outer_var:
        return aff.offset
    return None


def true_dependence(
    wdims: Sequence[DimAccess],
    rdims: Sequence[DimAccess],
    common: Sequence[LoopInfo],
    env: Mapping[str, int] | None = None,
    w_before_r: bool = True,
) -> Optional[DepResult]:
    """Test for a true (flow) dependence write -> read.

    ``common`` is the shared loop nest (outermost first); both references
    must have one DimAccess per array dimension.  Returns None when no
    true dependence can exist.
    """
    if len(wdims) != len(rdims):
        raise ValueError("dimension count mismatch")
    by_var = {l.var: i for i, l in enumerate(common)}
    intervals = [_Interval() for _ in common]

    def level_of(var: Optional[str]) -> Optional[int]:
        return by_var.get(var) if var else None

    for w, r in zip(wdims, rdims):
        ok = _dim_constraint(w, r, common, by_var, intervals, env)
        if not ok:
            return None

    # lexicographic walk, outermost first
    result = DepResult()
    prefix_can_be_zero = True
    for depth, iv in enumerate(intervals, start=1):
        if not prefix_can_be_zero:
            break
        if iv.allows_positive():
            result.carried_levels.add(depth)
        if not iv.allows_zero():
            prefix_can_be_zero = False
    if prefix_can_be_zero:
        # all-zero distance vector possible: loop-independent dependence
        # (realizable when the write precedes the read in execution order)
        result.loop_independent = w_before_r
    if not result.exists:
        return None
    return result


def _dim_constraint(
    w: DimAccess,
    r: DimAccess,
    common: Sequence[LoopInfo],
    by_var: dict[str, int],
    intervals: list[_Interval],
    env: Mapping[str, int] | None,
) -> bool:
    """Apply the constraint of one dimension pair to the per-loop distance
    intervals.  Returns False when the dimension proves independence."""

    def loop_idx(var: Optional[str]) -> Optional[int]:
        return by_var.get(var) if var is not None else None

    wk, rk = w.kind, r.kind

    # --- both constant ---------------------------------------------------
    if wk == "const" and rk == "const":
        return w.value == r.value
    # --- numeric ranges (no loop coupling) -------------------------------
    if wk in ("const", "range") and rk in ("const", "range"):
        wlo, whi = (w.value, w.value) if wk == "const" else (w.lo, w.hi)
        rlo, rhi = (r.value, r.value) if rk == "const" else (r.lo, r.hi)
        return not (whi < rlo or rhi < wlo)
    # --- symbolic points -------------------------------------------------
    if wk == "sym" and rk == "sym":
        if w.var == r.var:
            return w.off == r.off
        return True  # unknown symbols: may be equal
    # --- unknown ---------------------------------------------------------
    if wk == "unknown" or rk == "unknown":
        return True  # no constraint, dependence allowed everywhere

    wi, ri = loop_idx(w.var), loop_idx(r.var)

    # --- same loop variable on both sides --------------------------------
    if wk == "var" and rk == "var" and w.var == r.var and wi is not None:
        # element equality: iw + w.off == ir + r.off -> d = w.off - r.off
        d = w.off - r.off
        return intervals[wi].restrict(d, d)
    if wk == "symrange" and rk == "var" and w.var == r.var and wi is not None:
        # write [iw + w.off : H], read point ir + r.off:
        # need ir + r.off >= iw + w.off  ->  d >= w.off - r.off
        return intervals[wi].restrict(lo=w.off - r.off)
    if wk == "var" and rk == "symrange" and w.var == r.var and wi is not None:
        # write point iw + w.off, read [ir + r.off : H]:
        # need iw + w.off >= ir + r.off  ->  d <= w.off - r.off
        return intervals[wi].restrict(hi=w.off - r.off)
    if wk == "symrange" and rk == "symrange" and w.var == r.var:
        return True  # ranges starting near each iteration: overlap freely

    # --- different loop variables -----------------------------------------
    if wk in ("var", "symrange") and rk in ("var", "symrange") \
            and wi is not None and ri is not None and wi != ri:
        inner_i, outer_i = max(wi, ri), min(wi, ri)
        inner, outer = common[inner_i], common[outer_i]
        c = _loop_relation(inner, outer.var, env)
        if c is not None:
            # provable inner >= outer + c
            if wi == inner_i:
                # write uses inner var j, read uses outer var k:
                # j_w + w.off == k_r + r.off with j_w >= k_w + c
                # -> d_outer = k_r - k_w >= c + w.off - r.off
                return intervals[outer_i].restrict(lo=c + w.off - r.off)
            # write uses outer var k, read uses inner var j:
            # k_w + w.off == j_r + r.off with j_r >= k_r + c
            # -> d_outer = k_r - k_w <= w.off - r.off - c
            return intervals[outer_i].restrict(hi=w.off - r.off - c)
        return True  # unrelated loops: free
    # --- loop var against constants / symbols / ranges ---------------------
    if wk in ("var", "symrange") and wi is not None:
        if rk == "const":
            # write touches element ir-invariantly reachable? check bounds
            lo_b = eval_int(common[wi].lo, env)
            hi_b = eval_int(common[wi].hi, env)
            if wk == "var" and lo_b is not None and hi_b is not None:
                if not (lo_b + w.off <= r.value <= hi_b + w.off):
                    return False
        return True
    if rk in ("var", "symrange") and ri is not None:
        if wk == "const":
            lo_b = eval_int(common[ri].lo, env)
            hi_b = eval_int(common[ri].hi, env)
            if rk == "var" and lo_b is not None and hi_b is not None:
                if not (lo_b + r.off <= w.value <= hi_b + r.off):
                    return False
        return True
    # points in non-common loops or symbols vs ranges: allow
    return True
