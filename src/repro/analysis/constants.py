"""Interprocedural constant propagation (Table 1: "symbolics &
constants").

A formal scalar parameter is a known constant inside a procedure when
every call site passes the same compile-time-constant actual (evaluated
under the *caller's* constants, so values flow down call chains).  The
compiler uses this to resolve symbolic array bounds like ``a(n, n)`` and
loop bounds in callees — without it, DISTRIBUTE of formal arrays and
most of dgefa would fall back to run-time resolution.

The propagation is a single top-down pass over the (acyclic) call graph;
a formal receiving different values from different call sites is dropped
(procedure cloning, which runs alongside, tends to split exactly those
call sites anyway).
"""

from __future__ import annotations

from typing import Union

from ..callgraph.acg import ACG
from ..lang import ast as A
from .symbolics import eval_const

Number = Union[int, float]

#: sentinel for "multiple conflicting values"
_CONFLICT = object()


def local_param_env(proc: A.Procedure) -> dict[str, Number]:
    env: dict[str, Number] = {}
    for p in proc.params:
        v = eval_const(p.value, env)
        if v is not None:
            env[p.name] = v
    return env


def _is_assigned(proc: A.Procedure, name: str) -> bool:
    for s in A.walk_stmts(proc.body):
        if isinstance(s, A.Assign) and isinstance(s.target, A.Var) \
                and s.target.name == name:
            return True
        if isinstance(s, A.Do) and s.var == name:
            return True
    return False


def propagate_constants(acg: ACG) -> dict[str, dict[str, Number]]:
    """Per-procedure constant environments: PARAMETER constants plus
    formals constant across all call sites (and not reassigned)."""
    result: dict[str, dict[str, Number]] = {}
    for name in acg.topological_order():
        proc = acg.node(name).proc
        env = local_param_env(proc)
        sites = acg.calls_to(name)
        if sites:
            incoming: dict[str, object] = {}
            for site in sites:
                caller_env = result.get(site.caller, {})
                for formal, actual in site.actual_of.items():
                    if formal in site.array_actuals:
                        continue
                    v = eval_const(actual, caller_env)
                    prev = incoming.get(formal)
                    if v is None:
                        incoming[formal] = _CONFLICT
                    elif prev is None:
                        incoming[formal] = v
                    elif prev is not _CONFLICT and prev != v:
                        incoming[formal] = _CONFLICT
            for formal, v in incoming.items():
                if v is _CONFLICT:
                    continue
                if _is_assigned(proc, formal):
                    continue
                env.setdefault(formal, v)  # PARAMETER wins if clashing
        result[name] = env
    return result
