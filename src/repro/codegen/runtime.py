"""Run-time support for generated node programs.

A generated module (see :mod:`repro.codegen.emit`) is straight-line
Python: it reads and writes frame scalars and numpy buffers directly
and charges the virtual clock inline.  Everything that must stay
*shared* with the interpreter — frame construction, COMMON storage,
the communication-schedule cache, print formatting, remap execution,
call/return conventions — goes through the :class:`NodeRt` shim so the
two execution paths cannot drift apart.  One ``NodeRt`` wraps one
:class:`~repro.interp.interpreter.Interpreter` instance per rank; any
procedure the generator demoted falls back to that interpreter's
compiled closures mid-run, transparently.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..dist import Distribution
from ..interp.arrays import FArray
from ..interp.interpreter import Frame, Interpreter, InterpError, _Stop
from ..runtime.remap import mark_array, remap_array, remap_array_y


def fdiv(a, b):
    """Scalar mirror of the interpreter's ``/``: Fortran truncating
    division when both operands are integral, IEEE division otherwise."""
    if isinstance(a, (int, np.integer)) and isinstance(b, (int, np.integer)):
        q = abs(a) // abs(b)
        return int(q if (a >= 0) == (b >= 0) else -q)
    return a / b


def owner_of(arr: FArray, idx):
    """``owner()`` intrinsic against an array's current distribution."""
    dist = arr.dist
    if dist is None or dist.is_replicated:
        return 0
    return dist.owner(idx)


def ax_slice(arr: FArray, pos: int, first: int, last: int, st: int):
    """Loop-axis block section -> slice, bounds-checked at the block
    endpoints exactly like :func:`repro.interp.vectorize._block_slices`."""
    o_first = arr._offset(pos, first)
    o_last = arr._offset(pos, last)
    stop = o_last + (1 if st > 0 else -1)
    return slice(o_first, stop if stop >= 0 else None, st)


class NodeRt:
    """Per-rank runtime harness driving one generated module."""

    __slots__ = ("interp", "mod", "ctx", "tracer", "_caches")

    def __init__(self, interp: Interpreter, mod) -> None:
        self.interp = interp
        self.mod = mod
        self.ctx = interp.ctx
        self.tracer = interp.tracer
        #: per-comm-statement section caches, keyed by the static id the
        #: emitter assigned (mirrors the per-closure caches of the
        #: interpreter's compiled comm statements)
        self._caches: dict[int, dict] = {}

    # -- communication sections -------------------------------------------

    def comm_entry(self, sid: int, arr: FArray, raw: list):
        """Resolve one communication section through the interpreter's
        memoized path (identical hit/miss counters and trace events)."""
        cache = self._caches.get(sid)
        if cache is None:
            cache = self._caches[sid] = {}
        return self.interp._comm_entry(cache, arr, raw)

    write_entry = staticmethod(Interpreter._write_entry)

    def consumer(self, arr: FArray, view: Optional[np.ndarray],
                 slices: tuple):
        """Broadcast consume callback writing through a cached entry."""
        write = Interpreter._write_entry
        return lambda data: write(arr, view, slices, data)

    # -- remapping ---------------------------------------------------------

    def remap(self, arr: FArray, specs, origin: str) -> None:
        new = Distribution.from_specs(list(specs), arr.bounds,
                                      self.ctx.nprocs)
        remap_array(self.ctx, arr, new, origin=origin)

    def remap_y(self, arr: FArray, specs, origin: str):
        new = Distribution.from_specs(list(specs), arr.bounds,
                                      self.ctx.nprocs)
        yield from remap_array_y(self.ctx, arr, new, origin=origin)

    def mark(self, arr: FArray, specs) -> None:
        mark_array(arr, Distribution.from_specs(list(specs), arr.bounds,
                                                self.ctx.nprocs))

    # -- observability -----------------------------------------------------

    def emit_print(self, values) -> None:
        parts = [
            f"{v:.6g}" if isinstance(v, float) else str(v) for v in values
        ]
        self.interp.prints.append(f"[{self.ctx.rank}] " + " ".join(parts))

    def trace_vec(self, t0: float, unit: str, var: str, n: int,
                  ops: int) -> None:
        """The vectorized-block trace event, identical in kind and
        fields to the interpreter's (tools must not care which path
        executed the block)."""
        ctx = self.ctx
        self.tracer.rank_event(
            ctx.rank, "interp.vec", t0, dur=ctx.clock_estimate() - t0,
            unit=unit, var=var, n=n, ops=ops,
        )

    # -- calls -------------------------------------------------------------

    def call(self, name: str, fr: Frame, args: list,
             var_actuals: tuple) -> Frame:
        """CALL statement / function-call convention: identical frame
        binding, call-overhead charge, and scalar copy-out to
        :meth:`Interpreter._call_procedure`.  Dispatches to the callee's
        generated body when one exists, else to the interpreter."""
        interp = self.interp
        unit = interp.program.unit(name)
        callee = interp._make_frame(unit, args, fr)
        self.ctx.compute(3 + len(args))  # call overhead
        fn = self.mod.units.get(name)
        if fn is not None:
            fn(self, callee)
        else:
            interp._exec_unit(unit, callee)
        for formal, actual in zip(unit.formals, var_actuals):
            if actual is not None and actual not in fr.arrays:
                if formal in callee.scalars:
                    fr.scalars[actual] = callee.scalars[formal]
        return callee

    def call_y(self, name: str, fr: Frame, args: list, var_actuals: tuple):
        """Generator twin of :meth:`call` for blocking callees on the
        event backend."""
        interp = self.interp
        unit = interp.program.unit(name)
        callee = interp._make_frame(unit, args, fr)
        self.ctx.compute(3 + len(args))  # call overhead
        fn_y = self.mod.units_y.get(name)
        if fn_y is not None:
            yield from fn_y(self, callee)
        elif name not in self.mod.blocking and name in self.mod.units:
            self.mod.units[name](self, callee)
        else:
            if interp._blocking is None:
                interp._blocking = interp._find_blocking_units()
            yield from interp._exec_unit_y(unit, callee)
        for formal, actual in zip(unit.formals, var_actuals):
            if actual is not None and actual not in fr.arrays:
                if formal in callee.scalars:
                    fr.scalars[actual] = callee.scalars[formal]
        return callee

    def fcall(self, name: str, fr: Frame, args: list, var_actuals: tuple):
        """User-function reference in expression position."""
        callee = self.call(name, fr, args, var_actuals)
        try:
            return callee.scalars[name]
        except KeyError:
            raise InterpError(
                f"function {name} returned no value"
            ) from None

    # -- entry points ------------------------------------------------------

    def run(self) -> Frame:
        """Execute the main program (coop/threads backends)."""
        interp = self.interp
        main = interp.program.main
        frame = interp._make_frame(main, [], None)
        try:
            fn = self.mod.units.get(main.name)
            if fn is not None:
                fn(self, frame)
            else:
                interp._exec_unit(main, frame)
        except _Stop:
            pass
        return frame

    def run_y(self):
        """Generator twin of :meth:`run` for the event backend: yields
        exactly where the interpreter's event compile path yields."""
        interp = self.interp
        main = interp.program.main
        frame = interp._make_frame(main, [], None)
        try:
            fn_y = self.mod.units_y.get(main.name)
            if fn_y is not None:
                yield from fn_y(self, frame)
            elif main.name not in self.mod.blocking \
                    and main.name in self.mod.units:
                # a main that never blocks runs straight through
                self.mod.units[main.name](self, frame)
            else:
                if interp._blocking is None:
                    interp._blocking = interp._find_blocking_units()
                yield from interp._exec_unit_y(main, frame)
        except _Stop:
            pass
        return frame
