"""Python source generation for compiled node programs.

The interpreter executes a compiled procedure by walking a tree of
closures; this module instead *prints* the procedure as straight-line
Python — scalar reads/writes against ``fr.scalars``, direct numpy
indexing against each array's buffer, inline virtual-clock charges, and
explicit ``send/recv/bcast/allreduce/remap`` calls at the placements the
compiler chose.  One module is generated per **rank class** (lo / mid /
hi — see :func:`repro.codegen.rank_classes`) so that processor-identity
guards like ``if (my$p .eq. 0)`` fold away statically for the interior
ranks.

Two variants of each procedure may be emitted:

* a plain function ``fn(rt, fr)`` for the coop/threads backends, and
* a generator ``fn_y(rt, fr)`` for the event backend that yields at
  exactly the suspension points of the interpreter's blocking-units
  fixpoint (``find_blocking_units``).

The generated code must be **bit-identical** to the interpreter in
arrays, virtual clocks, and RunStats: every ``compute``/``loop_tick``/
``guard_tick`` charge is emitted in the interpreter's order, affine
loop nests are vectorized under exactly the legality rules of
:mod:`repro.interp.vectorize` (same runtime checks, same trace event),
and communication sections go through the interpreter's memoized
``_comm_entry`` so cache counters and trace events match.

Any construct without a generated equivalent raises :class:`Unsupported`
and the whole procedure demotes to the interpreter (see
:mod:`repro.codegen`) — never a hard failure unless ``--strict``.
"""

from __future__ import annotations

import re
from typing import Optional

from ..interp.interpreter import (
    _BLOCKING_STMTS,
    Interpreter,
    _count_ops,
    find_blocking_units,
)
from ..interp.vectorize import _INVARIANT_OK_CALLS, MIN_BLOCK, _mentions
from ..lang import ast as A
from ..runtime.intrinsics import PURE_INTRINSICS


class Unsupported(Exception):
    """A construct the emitter cannot lower; the procedure demotes."""


#: Test hook — statement classes the emitter must refuse.  Lets the
#: suite force the per-procedure demotion path on ordinary programs
#: (monkeypatched; consulted on every statement).
UNSUPPORTED_STMTS: tuple = ()


class _VecReject(Exception):
    """Internal: loop nest not vectorizable; emit the scalar loop."""


#: Fortran binary operators with a direct Python spelling.
_BIN_PY = {
    "+": "+", "-": "-", "*": "*", "**": "**",
    "==": "==", "/=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">=",
}

#: comparison flip for normalizing ``const OP rank`` to ``rank OP const``
_CMP_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
             "==": "==", "/=": "/="}

#: single-argument vector intrinsics -> numpy source template
_VEC_CALL_SRC = {
    "f": "f_func({0})",
    "g": "g_func({0})",
    "abs": "np.abs({0})",
    "sqrt": "np.sqrt({0})",
}


def scalar_type(unit: A.Procedure, name: str) -> str:
    """Mirror of ``Interpreter._scalar_type`` (declaration wins, else
    the I-N implicit-integer rule)."""
    d = unit.decl(name)
    if d is not None:
        return d.type
    return "integer" if name[0] in "ijklmn" else "real"


def _const_int(e: A.Expr) -> Optional[int]:
    if isinstance(e, A.Num) and isinstance(e.value, int):
        return e.value
    if isinstance(e, A.UnOp) and e.op == "-" \
            and isinstance(e.operand, A.Num) \
            and isinstance(e.operand.value, int):
        return -e.operand.value
    return None


def emit_module(program: A.Program, nprocs: int, cls: str,
                rlo: int, rhi: int, vectorize: bool, header: str) -> str:
    """Generate the node-program module source for one rank class.

    ``header`` becomes the first line verbatim (the disk cache uses it
    to validate an entry before trusting it)."""
    return _ModuleEmitter(
        program, nprocs, cls, rlo, rhi, vectorize, header
    ).emit()


# --------------------------------------------------------------------------
# module-level emission
# --------------------------------------------------------------------------


class _ModuleEmitter:
    def __init__(self, program: A.Program, nprocs: int, cls: str,
                 rlo: int, rhi: int, vectorize: bool, header: str) -> None:
        self.program = program
        self.nprocs = nprocs
        self.cls = cls
        self.rlo = rlo
        self.rhi = rhi
        self.vectorize = vectorize
        self.header = header
        self.blocking = find_blocking_units(program)
        self.unit_names = {u.name for u in program.units}
        self._sid = 0
        self._intrinsics: dict[str, str] = {}
        self._specs: dict[tuple, str] = {}
        self._fn_idents: set[str] = set()

    # -- registries shared by all function emitters ------------------------

    def next_sid(self) -> int:
        """Static id of one communication statement: its section cache
        in :class:`~repro.codegen.runtime.NodeRt` (one per statement,
        exactly like the interpreter's per-closure caches)."""
        self._sid += 1
        return self._sid

    def intrinsic(self, name: str) -> str:
        ident = self._intrinsics.get(name)
        if ident is None:
            ident = self._intrinsics[name] = f"_in_{name}"
        return ident

    def specs_const(self, specs) -> str:
        for sp in specs:
            if sp.param is not None and not isinstance(sp.param, int):
                raise Unsupported(f"distribution parameter {sp.param!r}")
        key = tuple((sp.kind, sp.param) for sp in specs)
        ident = self._specs.get(key)
        if ident is None:
            ident = self._specs[key] = f"_SPECS_{len(self._specs)}"
        return ident

    def fn_ident(self, unit_name: str, y: bool) -> str:
        base = "_u_" + re.sub(r"\W", "_", unit_name) + ("_y" if y else "")
        ident, k = base, 2
        while ident in self._fn_idents:
            ident = f"{base}{k}"
            k += 1
        self._fn_idents.add(ident)
        return ident

    # -- driver ------------------------------------------------------------

    def emit(self) -> str:
        fns: list[str] = []
        units: dict[str, str] = {}
        units_y: dict[str, str] = {}
        demoted: dict[str, str] = {}
        demoted_y: dict[str, str] = {}
        for u in self.program.units:
            try:
                src, ident = _FnEmitter(self, u, y=False).emit()
                fns.append(src)
                units[u.name] = ident
            except Unsupported as ex:
                demoted[u.name] = str(ex)
            except Exception as ex:  # defensive: demote, never fail
                demoted[u.name] = f"internal: {type(ex).__name__}: {ex}"
            if u.name in self.blocking:
                if u.name in demoted:
                    demoted_y[u.name] = demoted[u.name]
                    continue
                try:
                    src, ident = _FnEmitter(self, u, y=True).emit()
                    fns.append(src)
                    units_y[u.name] = ident
                except Unsupported as ex:
                    demoted_y[u.name] = str(ex)
                except Exception as ex:
                    demoted_y[u.name] = \
                        f"internal: {type(ex).__name__}: {ex}"
        return self._assemble(fns, units, units_y, demoted, demoted_y)

    def _assemble(self, fns, units, units_y, demoted, demoted_y) -> str:
        out = [self.header]
        out.append('"""Auto-generated node program — do not edit.')
        out.append("")
        out.append(f"rank class {self.cls!r}: ranks {self.rlo}..{self.rhi} "
                   f"of {self.nprocs}; vectorize={self.vectorize}")
        out.append('"""')
        out.append("")
        out.append("import numpy as np")
        out.append("")
        out.append("from repro.codegen.runtime import ax_slice, fdiv")
        out.append("from repro.interp.interpreter import InterpError, _Stop")
        out.append("from repro.interp.vectorize import _fortran_div as _vdiv")
        out.append("from repro.lang.ast import DistSpec")
        out.append("from repro.runtime.intrinsics import "
                   "PURE_INTRINSICS, f_func, g_func")
        out.append("")
        out.append(f"RANK_CLASS = {self.cls!r}")
        out.append(f"RANK_LO, RANK_HI = {self.rlo}, {self.rhi}")
        out.append(f"NPROCS = {self.nprocs}")
        blocking = sorted(self.blocking)
        out.append(f"BLOCKING = frozenset({blocking!r})")
        for name in sorted(self._intrinsics):
            out.append(f"{self._intrinsics[name]} = "
                       f"PURE_INTRINSICS[{name!r}]")
        for key, ident in self._specs.items():
            items = ", ".join(
                f"DistSpec(kind={kind!r}, param={param!r})"
                for kind, param in key
            )
            comma = "," if len(key) == 1 else ""
            out.append(f"{ident} = ({items}{comma})")
        out.append("")
        for fn in fns:
            out.append(fn)
            out.append("")
        out.append(_table("UNITS", units, quote_values=False))
        out.append(_table("UNITS_Y", units_y, quote_values=False))
        out.append(_table("DEMOTED", demoted, quote_values=True))
        out.append(_table("DEMOTED_Y", demoted_y, quote_values=True))
        return "\n".join(out) + "\n"


def _table(name: str, mapping: dict, quote_values: bool) -> str:
    if not mapping:
        return f"{name} = {{}}"
    rows = [f"{name} = {{"]
    for k in mapping:
        v = repr(mapping[k]) if quote_values else mapping[k]
        rows.append(f"    {k!r}: {v},")
    rows.append("}")
    return "\n".join(rows)


# --------------------------------------------------------------------------
# one function (one procedure, one variant)
# --------------------------------------------------------------------------


class _FnEmitter:
    """Emit one procedure as ``def fn(rt, fr)`` (or a generator twin).

    Charge placement mirrors ``Interpreter._compile_stmt`` statement by
    statement; the ``y`` variant yields exactly where
    ``Interpreter._compile_stmt_y`` does.
    """

    def __init__(self, mod: _ModuleEmitter, unit: A.Procedure,
                 y: bool) -> None:
        self.mod = mod
        self.unit = unit
        self.y = y
        self.ident = mod.fn_ident(unit.name, y)
        self.lines: list[str] = []
        self.ind = 1
        self._ntmp = 0
        self.uses: set[str] = set()
        self.arrays: dict[str, str] = {}     # array name -> ident
        self.arr_data: set[str] = set()      # idents needing .data alias
        self.arr_lo: set[tuple[str, int]] = set()  # (ident, axis) lbounds
        self.has_yield = False
        self.arr_ranks = {
            d.name: len(d.dims) for d in unit.decls if d.is_array
        }
        self.myvars = self._entry_rank_vars()

    # -- plumbing ----------------------------------------------------------

    def w(self, line: str) -> None:
        self.lines.append("    " * self.ind + line)

    def tmp(self) -> str:
        self._ntmp += 1
        return f"_t{self._ntmp}"

    def areg(self, name: str) -> str:
        """Register an array use; returns its sanitized ident."""
        if name not in self.arr_ranks:
            raise Unsupported(f"unknown array {name!r}")
        ident = self.arrays.get(name)
        if ident is None:
            base = re.sub(r"\W", "_", name)
            ident, k = base, 2
            while ident in self.arrays.values():
                ident = f"{base}{k}"
                k += 1
            self.arrays[name] = ident
        return ident

    def _entry_rank_vars(self) -> set[str]:
        """Scalars that provably hold ``ctx.rank`` throughout the body:
        bound by a SetMyProc in the entry prefix and never written by
        anything else.  These (plus ``myproc()`` itself) let
        processor-identity guards fold per rank class."""
        prefix: set[str] = set()
        for s in self.unit.body:
            if isinstance(s, A.SetMyProc):
                prefix.add(s.var)
            elif isinstance(s, (A.Decomposition, A.Align, A.Distribute,
                                A.Continue)):
                continue
            else:
                break
        if not prefix:
            return prefix
        written: set[str] = set(self.unit.formals)
        for s in A.walk_stmts(self.unit.body):
            if isinstance(s, A.Assign) and isinstance(s.target, A.Var):
                written.add(s.target.name)
            elif isinstance(s, A.Do):
                written.add(s.var)
            elif isinstance(s, A.GlobalReduce):
                written.add(s.var)
                if s.aux:
                    written.add(s.aux)
            elif isinstance(s, A.Call):
                written.update(
                    a.name for a in s.args if isinstance(a, A.Var)
                )
            for e in A.stmt_exprs(s):
                for sub in A.walk_exprs(e):
                    if isinstance(sub, A.CallExpr) \
                            and sub.name in self.mod.unit_names:
                        written.update(
                            a.name for a in sub.args
                            if isinstance(a, A.Var)
                        )
        return prefix - written

    # -- assembly ----------------------------------------------------------

    def emit(self) -> tuple[str, str]:
        if self.y:
            self._check_no_blocking_exprs()
        self.suite_inline(self.unit.body)
        if self.y and not self.has_yield:
            self.w("if False:")
            self.w("    yield  # pragma: no cover - generator marker")
        pre = self._preamble()
        body = pre + self.lines
        if not body:
            body = ["    pass"]
        variant = "event" if self.y else "node"
        head = [
            f"def {self.ident}(rt, fr):",
            f"    # {self.unit.kind} {self.unit.name} ({variant} variant)",
        ]
        return "\n".join(head + body), self.ident

    def _preamble(self) -> list[str]:
        u = self.uses
        pre: list[str] = []
        if u & {"ctx", "compute", "loop_tick", "guard_tick", "RANK"}:
            pre.append("ctx = rt.ctx")
        if "S" in u:
            pre.append("S = fr.scalars")
        if "A" in u or self.arrays:
            pre.append("A = fr.arrays")
        if "compute" in u:
            pre.append("compute = ctx.compute")
        if "loop_tick" in u:
            pre.append("loop_tick = ctx.loop_tick")
        if "guard_tick" in u:
            pre.append("guard_tick = ctx.guard_tick")
        if "RANK" in u:
            pre.append("RANK = ctx.rank")
        if "_trc" in u:
            pre.append("_trc = rt.tracer is not None")
        for name, ident in self.arrays.items():
            pre.append(f"_a_{ident} = A[{name!r}]")
            if ident in self.arr_data:
                pre.append(f"_d_{ident} = _a_{ident}.data")
        for ident, ax in sorted(self.arr_lo):
            pre.append(f"_l{ax}_{ident} = _a_{ident}.bounds[{ax}][0]")
        return ["    " + ln for ln in pre]

    # -- event-backend gating ---------------------------------------------

    def _check_no_blocking_exprs(self) -> None:
        """Mirror of ``Interpreter._check_no_blocking_exprs``: demoting
        here reproduces the interpreter's compile-time error exactly."""
        for st in A.walk_stmts(self.unit.body):
            for e in A.stmt_exprs(st):
                for sub in A.walk_exprs(e):
                    if isinstance(sub, A.CallExpr) \
                            and sub.name in self.mod.blocking:
                        raise Unsupported(
                            f"function {sub.name!r} communicates inside "
                            f"an expression (event backend)"
                        )

    def may_block(self, s: A.Stmt) -> bool:
        if isinstance(s, _BLOCKING_STMTS):
            return True
        if isinstance(s, A.Call):
            return s.name in self.mod.blocking
        return any(
            self.may_block(c)
            for blk in A.child_blocks(s) for c in blk
        )

    def body_may_block(self, body: list[A.Stmt]) -> bool:
        return any(self.may_block(s) for s in body)

    # -- expressions -------------------------------------------------------

    def ex(self, e: A.Expr) -> str:
        if isinstance(e, (A.Num, A.Logical, A.Str)):
            return repr(e.value)
        if isinstance(e, A.Var):
            self.uses.add("S")
            return f"S[{e.name!r}]"
        if isinstance(e, A.ArrayRef):
            return self.elem(e)
        if isinstance(e, A.BinOp):
            left, right = self.ex(e.left), self.ex(e.right)
            if e.op == ".and.":
                return f"(bool({left}) and bool({right}))"
            if e.op == ".or.":
                return f"(bool({left}) or bool({right}))"
            if e.op == "/":
                return f"fdiv({left}, {right})"
            op = _BIN_PY.get(e.op)
            if op is None:
                raise Unsupported(f"operator {e.op!r}")
            return f"({left} {op} {right})"
        if isinstance(e, A.UnOp):
            x = self.ex(e.operand)
            if e.op == "-":
                return f"(-{x})"
            if e.op == ".not.":
                return f"(not {x})"
            raise Unsupported(f"unary operator {e.op!r}")
        if isinstance(e, A.CallExpr):
            return self.call_expr(e)
        raise Unsupported(f"expression {type(e).__name__}")

    def elem(self, ref: A.ArrayRef) -> str:
        ident = self.areg(ref.name)
        self.arr_data.add(ident)
        idx = []
        for ax, s in enumerate(ref.subs):
            if isinstance(s, A.Triplet):
                raise Unsupported("array section outside communication")
            self.arr_lo.add((ident, ax))
            idx.append(f"int({self.ex(s)}) - _l{ax}_{ident}")
        return f"_d_{ident}[{', '.join(idx)}]"

    def call_expr(self, e: A.CallExpr) -> str:
        name = e.name
        if name == "myproc":
            self.uses.add("RANK")
            return "RANK"
        if name == "owner":
            if len(e.args) != 1 or not isinstance(e.args[0], A.ArrayRef):
                raise Unsupported("owner() takes one array element")
            ref = e.args[0]
            if any(isinstance(s, A.Triplet) for s in ref.subs):
                raise Unsupported("owner() of an array section")
            ident = self.areg(ref.name)
            parts = [f"int({self.ex(s)})" for s in ref.subs]
            if len(parts) <= 2:
                idx = "(" + ", ".join(parts) + ("," if len(parts) == 1
                                                else "") + ")"
            else:
                idx = "[" + ", ".join(parts) + "]"
            arr = f"_a_{ident}"
            return (f"(0 if {arr}.dist is None or {arr}.dist.is_replicated "
                    f"else {arr}.dist.owner({idx}))")
        if name in PURE_INTRINSICS:
            fn = self.mod.intrinsic(name)
            args = ", ".join(self.ex(a) for a in e.args)
            return f"{fn}({args})"
        if name not in self.mod.unit_names:
            raise Unsupported(f"unknown function {name!r}")
        if self.mod.program.unit(name).kind != "function":
            raise Unsupported(f"{name} is not a function")
        args_src, actuals_src = self.call_args(list(e.args))
        return f"rt.fcall({name!r}, fr, {args_src}, {actuals_src})"

    def call_args(self, args: list[A.Expr]) -> tuple[str, str]:
        items, actuals = [], []
        for a in args:
            if isinstance(a, A.Var):
                self.uses.update(("A", "S"))
                items.append(
                    f"(A[{a.name!r}] if {a.name!r} in A else {self.ex(a)})"
                )
                actuals.append(repr(a.name))
            else:
                items.append(self.ex(a))
                actuals.append("None")
        args_src = "[" + ", ".join(items) + "]"
        comma = "," if len(actuals) == 1 else ""
        actuals_src = "(" + ", ".join(actuals) + comma + ")"
        return args_src, actuals_src

    def _has_user_call(self, exprs: list[A.Expr]) -> bool:
        for e in exprs:
            for sub in A.walk_exprs(e):
                if isinstance(sub, A.CallExpr) \
                        and sub.name in self.mod.unit_names:
                    return True
        return False

    # -- statements --------------------------------------------------------

    def suite_inline(self, body: list[A.Stmt]) -> None:
        for s in body:
            self.emit_stmt(s)

    def suite(self, body: list[A.Stmt]) -> None:
        """Emit an indented suite, guaranteeing at least ``pass``."""
        self.ind += 1
        n0 = len(self.lines)
        self.suite_inline(body)
        if len(self.lines) == n0:
            self.w("pass")
        self.ind -= 1

    def emit_stmt(self, s: A.Stmt) -> None:
        if UNSUPPORTED_STMTS and isinstance(s, tuple(UNSUPPORTED_STMTS)):
            raise Unsupported(
                f"statement {type(s).__name__} disabled for testing"
            )
        if isinstance(s, A.Assign):
            return self.emit_assign(s)
        if isinstance(s, A.If):
            return self.emit_if(s)
        if isinstance(s, A.Do):
            return self.emit_do(s)
        if isinstance(s, A.DoWhile):
            return self.emit_dowhile(s)
        if isinstance(s, A.Call):
            return self.emit_call(s)
        if isinstance(s, A.Return):
            self.w("return")
            return
        if isinstance(s, A.Stop):
            self.w("raise _Stop()")
            return
        if isinstance(s, (A.Continue, A.Decomposition, A.Align,
                          A.Distribute)):
            return
        if isinstance(s, A.Print):
            return self.emit_print(s)
        if isinstance(s, A.SetMyProc):
            self.uses.update(("S", "RANK"))
            self.w(f"S[{s.var!r}] = RANK")
            return
        if isinstance(s, A.Send):
            return self.emit_send(s)
        if isinstance(s, A.Recv):
            return self.emit_recv(s)
        if isinstance(s, A.Bcast):
            return self.emit_bcast(s)
        if isinstance(s, A.SendPack):
            return self.emit_sendpack(s)
        if isinstance(s, A.RecvPack):
            return self.emit_recvpack(s)
        if isinstance(s, A.GlobalReduce):
            return self.emit_reduce(s)
        if isinstance(s, A.Remap):
            return self.emit_remap(s)
        if isinstance(s, A.MarkDist):
            return self.emit_mark(s)
        raise Unsupported(f"statement {type(s).__name__}")

    def emit_assign(self, s: A.Assign) -> None:
        self.uses.add("compute")
        ops = _count_ops(s.expr) + 1
        if isinstance(s.target, A.Var):
            name = s.target.name
            cast = "int" if scalar_type(self.unit, name) == "integer" \
                else "float"
            self.uses.add("S")
            self.w(f"S[{name!r}] = {cast}({self.ex(s.expr)})")
            self.w(f"compute({ops})")
            return
        ref = s.target
        if any(isinstance(x, A.Triplet) for x in ref.subs):
            raise Unsupported("array-section assignment")
        ops += len(ref.subs)
        ident = self.areg(ref.name)
        self.arr_data.add(ident)
        if self._has_user_call(list(ref.subs) + [s.expr]):
            # user calls charge the clock: keep the interpreter's
            # indices-before-RHS evaluation order with explicit temps
            idx = []
            for ax, x in enumerate(ref.subs):
                self.arr_lo.add((ident, ax))
                t = self.tmp()
                self.w(f"{t} = int({self.ex(x)}) - _l{ax}_{ident}")
                idx.append(t)
            self.w(f"_d_{ident}[{', '.join(idx)}] = {self.ex(s.expr)}")
        else:
            idx = []
            for ax, x in enumerate(ref.subs):
                self.arr_lo.add((ident, ax))
                idx.append(f"int({self.ex(x)}) - _l{ax}_{ident}")
            self.w(f"_d_{ident}[{', '.join(idx)}] = {self.ex(s.expr)}")
        self.w(f"compute({ops})")

    # -- IF (with per-rank-class folding) ----------------------------------

    def emit_if(self, s: A.If) -> None:
        cond_ops = _count_ops(s.cond) or 1
        self.uses.add("guard_tick")
        self.w(f"guard_tick({cond_ops})")
        verdict = self.fold_cond(s.cond)
        if verdict is True:
            return self.suite_inline(s.then_body)
        if verdict is False:
            return self.suite_inline(s.else_body)
        self.w(f"if {self.ex(s.cond)}:")
        self.suite(s.then_body)
        if s.else_body:
            self.w("else:")
            self.suite(s.else_body)

    def fold_cond(self, e: A.Expr) -> Optional[bool]:
        """Three-valued evaluation of a guard over the rank interval
        ``[rlo, rhi]``.  Only pure, charge-free shapes fold (literals,
        rank-identity comparisons, and their boolean combinations), so
        skipping the condition's evaluation is unobservable."""
        if isinstance(e, A.Logical):
            return e.value
        if isinstance(e, A.UnOp) and e.op == ".not.":
            v = self.fold_cond(e.operand)
            return None if v is None else (not v)
        if not isinstance(e, A.BinOp):
            return None
        if e.op in (".and.", ".or."):
            left = self.fold_cond(e.left)
            right = self.fold_cond(e.right)
            if left is None or right is None:
                return None
            return (left and right) if e.op == ".and." else (left or right)
        op = e.op
        if op not in _CMP_FLIP:
            return None
        if self._is_rank_expr(e.left):
            c = _const_int(e.right)
        elif self._is_rank_expr(e.right):
            c = _const_int(e.left)
            op = _CMP_FLIP[op]
        else:
            return None
        if c is None:
            return None
        lo, hi = self.mod.rlo, self.mod.rhi
        if op == "<":
            return True if hi < c else (False if lo >= c else None)
        if op == "<=":
            return True if hi <= c else (False if lo > c else None)
        if op == ">":
            return True if lo > c else (False if hi <= c else None)
        if op == ">=":
            return True if lo >= c else (False if hi < c else None)
        if op == "==":
            if lo == hi == c:
                return True
            return False if (c < lo or c > hi) else None
        # "/="
        if lo == hi == c:
            return False
        return True if (c < lo or c > hi) else None

    def _is_rank_expr(self, e: A.Expr) -> bool:
        if isinstance(e, A.Var) and e.name in self.myvars:
            return True
        return isinstance(e, A.CallExpr) and e.name == "myproc" \
            and not e.args

    # -- loops -------------------------------------------------------------

    def emit_do(self, s: A.Do) -> None:
        self.uses.update(("S", "loop_tick"))
        lo_t, hi_t = self.tmp(), self.tmp()
        self.w(f"{lo_t} = int({self.ex(s.lo)})")
        self.w(f"{hi_t} = int({self.ex(s.hi)})")
        st_lit = _const_int(s.step)
        if st_lit is not None and st_lit != 0:
            st_src = repr(st_lit)
        else:
            st_lit = None
            st_src = self.tmp()
            self.w(f"{st_src} = int({self.ex(s.step)})")
            self.w(f"if {st_src} == 0:")
            msg = f"{self.unit.name}: zero DO step"
            self.w(f"    raise InterpError({msg!r})")
        yb = self.y and self.body_may_block(s.body)
        if not yb and self.mod.vectorize and s.body and all(
            isinstance(b, A.Assign) and isinstance(b.target, A.ArrayRef)
            for b in s.body
        ):
            try:
                plan = _VecPlan(self, s)
            except _VecReject:
                plan = None
            if plan is not None:
                plan.emit(lo_t, hi_t, st_src, st_lit)
                return
        self.emit_do_scalar(s, lo_t, hi_t, st_src, st_lit, yb)

    def emit_do_scalar(self, s: A.Do, lo_t: str, hi_t: str,
                       st_src: str, st_lit: Optional[int],
                       yb: bool) -> None:
        i_t = self.tmp()
        self.w(f"{i_t} = {lo_t}")
        if st_lit is not None:
            cond = f"{i_t} <= {hi_t}" if st_lit > 0 else f"{i_t} >= {hi_t}"
        else:
            cond = (f"({i_t} <= {hi_t}) if {st_src} > 0 "
                    f"else ({i_t} >= {hi_t})")
        self.w(f"while {cond}:")
        self.ind += 1
        self.w(f"S[{s.var!r}] = {i_t}")
        self.w("loop_tick()")
        self.suite_inline(s.body)
        self.w(f"{i_t} += {st_src}")
        self.ind -= 1
        self.w(f"S[{s.var!r}] = {i_t}")

    def emit_dowhile(self, s: A.DoWhile) -> None:
        self.uses.add("loop_tick")
        g_t = self.tmp()
        self.w(f"{g_t} = 0")
        self.w(f"while {self.ex(s.cond)}:")
        self.ind += 1
        self.w(f"{g_t} += 1")
        self.w(f"if {g_t} > 10000000:")
        self.w("    raise InterpError('runaway DO WHILE')")
        self.w("loop_tick()")
        n0 = len(self.lines)
        self.suite_inline(s.body)
        if len(self.lines) == n0:
            pass  # loop_tick line keeps the suite non-empty
        self.ind -= 1

    # -- calls / IO --------------------------------------------------------

    def emit_call(self, s: A.Call) -> None:
        if s.name not in self.mod.unit_names:
            raise Unsupported(f"call of unknown procedure {s.name!r}")
        args_src, actuals_src = self.call_args(list(s.args))
        if self.y and s.name in self.mod.blocking:
            self.has_yield = True
            self.w(f"yield from rt.call_y({s.name!r}, fr, {args_src}, "
                   f"{actuals_src})")
        else:
            self.w(f"rt.call({s.name!r}, fr, {args_src}, {actuals_src})")

    def emit_print(self, s: A.Print) -> None:
        items = ", ".join(self.ex(i) for i in s.items)
        comma = "," if len(s.items) == 1 else ""
        self.w(f"rt.emit_print(({items}{comma}))")

    # -- communication -----------------------------------------------------

    def section_src(self, subs: list[A.Expr]) -> str:
        parts = []
        for sub in subs:
            if isinstance(sub, A.Triplet):
                lo = f"int({self.ex(sub.lo)})" if sub.lo is not None \
                    else "None"
                hi = f"int({self.ex(sub.hi)})" if sub.hi is not None \
                    else "None"
                st = f"int({self.ex(sub.step)})" if sub.step is not None \
                    else "1"
                parts.append(f"({lo}, {hi}, {st})")
            else:
                parts.append(f"int({self.ex(sub)})")
        return "[" + ", ".join(parts) + "]"

    def _origin(self, s: A.Stmt) -> str:
        return Interpreter._comm_origin(s, self.unit)

    def _entry(self, array: str, subs: list[A.Expr]) -> tuple[str, str]:
        ident = self.areg(array)
        self.arr_data.add(ident)
        sid = self.mod.next_sid()
        e_t = self.tmp()
        self.w(f"{e_t} = rt.comm_entry({sid}, _a_{ident}, "
               f"{self.section_src(subs)})")
        return ident, e_t

    def emit_send(self, s: A.Send) -> None:
        self.uses.add("ctx")
        ident, e_t = self._entry(s.array, s.subs)
        p_t = self.tmp()
        self.w(f"{p_t} = {e_t}[0].copy() if {e_t}[0] is not None "
               f"else _d_{ident}[{e_t}[1]]")
        self.w(f"ctx.send(int({self.ex(s.dest)}), {s.tag}, {p_t}, "
               f"{e_t}[2], origin={self._origin(s)!r})")

    def emit_recv(self, s: A.Recv) -> None:
        self.uses.add("ctx")
        ident, e_t = self._entry(s.array, s.subs)
        p_t = self.tmp()
        call = f"ctx.recv(int({self.ex(s.src)}), {s.tag}, " \
               f"origin={self._origin(s)!r})"
        if self.y:
            self.has_yield = True
            self.w(f"{p_t} = yield from {call.replace('ctx.recv(', 'ctx.recv_y(', 1)}")
        else:
            self.w(f"{p_t} = {call}")
        self.w(f"rt.write_entry(_a_{ident}, {e_t}[0], {e_t}[1], {p_t})")

    def emit_bcast(self, s: A.Bcast) -> None:
        self.uses.update(("ctx", "RANK"))
        ident, e_t = self._entry(s.array, s.subs)
        r_t = self.tmp()
        self.w(f"{r_t} = int({self.ex(s.root)})")
        origin = self._origin(s)
        bc = "ctx.broadcast_y" if self.y else "ctx.broadcast"
        pref = "yield from " if self.y else ""
        if self.y:
            self.has_yield = True
        self.w(f"if RANK == {r_t}:")
        self.w(f"    {pref}{bc}({r_t}, {e_t}[0] if {e_t}[0] is not None "
               f"else _d_{ident}[{e_t}[1]], {e_t}[2], origin={origin!r})")
        self.w("else:")
        self.w(f"    {pref}{bc}({r_t}, None, {e_t}[2], "
               f"consume=rt.consumer(_a_{ident}, {e_t}[0], {e_t}[1]), "
               f"origin={origin!r})")

    def emit_sendpack(self, s: A.SendPack) -> None:
        self.uses.add("ctx")
        pl_t, nb_t = self.tmp(), self.tmp()
        self.w(f"{pl_t} = []")
        self.w(f"{nb_t} = 0")
        for array, subs in s.parts:
            ident, e_t = self._entry(array, list(subs))
            self.w(f"{pl_t}.append({e_t}[0].copy() if {e_t}[0] is not None "
                   f"else _d_{ident}[{e_t}[1]])")
            self.w(f"{nb_t} += {e_t}[2]")
        self.w(f"ctx.send(int({self.ex(s.dest)}), {s.tag}, {pl_t}, "
               f"{nb_t}, origin={self._origin(s)!r})")

    def emit_recvpack(self, s: A.RecvPack) -> None:
        self.uses.add("ctx")
        ps_t = self.tmp()
        recv = "ctx.recv_y" if self.y else "ctx.recv"
        pref = "yield from " if self.y else ""
        if self.y:
            self.has_yield = True
        self.w(f"{ps_t} = {pref}{recv}(int({self.ex(s.src)}), {s.tag}, "
               f"origin={self._origin(s)!r})")
        for k, (array, subs) in enumerate(s.parts):
            ident, e_t = self._entry(array, list(subs))
            self.w(f"rt.write_entry(_a_{ident}, {e_t}[0], {e_t}[1], "
                   f"{ps_t}[{k}])")

    def emit_reduce(self, s: A.GlobalReduce) -> None:
        self.uses.update(("ctx", "S"))
        origin = getattr(s, "comment", "") \
            or f"{self.unit.name}:{s.op} {s.var}"
        if self.y:
            self.has_yield = True
            r_t = self.tmp()
            if s.op == "maxloc":
                self.w(f"{r_t} = yield from ctx.allreduce_y("
                       f"(S[{s.var!r}], S[{s.aux!r}]), 'maxloc', 16, "
                       f"origin={origin!r})")
                self.w(f"S[{s.var!r}], S[{s.aux!r}] = {r_t}")
            else:
                self.w(f"{r_t} = yield from ctx.allreduce_y("
                       f"S[{s.var!r}], {s.op!r}, 8, origin={origin!r})")
                self.w(f"S[{s.var!r}] = {r_t}")
            return
        if s.op == "maxloc":
            self.w(f"S[{s.var!r}], S[{s.aux!r}] = ctx.allreduce("
                   f"(S[{s.var!r}], S[{s.aux!r}]), 'maxloc', 16, "
                   f"origin={origin!r})")
        else:
            self.w(f"S[{s.var!r}] = ctx.allreduce(S[{s.var!r}], "
                   f"{s.op!r}, 8, origin={origin!r})")

    def emit_remap(self, s: A.Remap) -> None:
        ident = self.areg(s.array)
        spec = self.mod.specs_const(s.to_specs)
        origin = s.comment or f"{self.unit.name}:remap {s.array}"
        if self.y:
            self.has_yield = True
            self.w(f"yield from rt.remap_y(_a_{ident}, {spec}, "
                   f"{origin!r})")
        else:
            self.w(f"rt.remap(_a_{ident}, {spec}, {origin!r})")

    def emit_mark(self, s: A.MarkDist) -> None:
        ident = self.areg(s.array)
        spec = self.mod.specs_const(s.to_specs)
        self.w(f"rt.mark(_a_{ident}, {spec})")


# --------------------------------------------------------------------------
# loop vectorization (static mirror of repro.interp.vectorize._Plan)
# --------------------------------------------------------------------------


class _VecPlan:
    """Static legality analysis + numpy emission for an affine DO nest.

    The acceptance rules are a faithful (conservative) mirror of
    ``vectorize._Plan``: anything this plan accepts, the interpreter's
    vectorizer accepts with the same block slices, runtime checks, and
    charges — which is what keeps the two paths bit-identical.
    """

    def __init__(self, fn: _FnEmitter, do: A.Do) -> None:
        self.fn = fn
        self.v = do.var
        self.do = do
        self.uses_iota = False
        self.ops_per_iter = 0
        #: array name -> (axis, [offset exprs]) for written arrays
        self.writes: dict[str, tuple[int, list]] = {}
        #: (array name, axis, offset) for refs indexed by the loop var
        self.v_reads: list[tuple[str, int, object]] = []
        #: (array name, subs) for loop-invariant refs
        self.inv_reads: list[tuple[str, tuple]] = []
        #: per-statement compiled shape: (name, ident, axis, off,
        #: invariant-subs, rhs expr)
        self.stmts: list[tuple] = []
        for s in do.body:
            self._plan_stmt(s)
        self._finalize()

    # -- analysis ----------------------------------------------------------

    def _plan_stmt(self, s: A.Assign) -> None:
        target = s.target
        axis, off = self._classify_ref(target)
        if axis is None:
            raise _VecReject  # invariant write
        prev = self.writes.get(target.name)
        if prev is not None and prev[0] != axis:
            raise _VecReject
        if prev is None:
            self.writes[target.name] = (axis, [off])
        else:
            prev[1].append(off)
        self._check_expr(s.expr)
        self.ops_per_iter += _count_ops(s.expr) + 1 + len(target.subs)
        self.stmts.append((target, axis, off, s.expr))

    def _invariant(self, e: A.Expr) -> None:
        """Legality of a loop-invariant subexpression (mirror of
        ``_Plan._checked_invariant``)."""
        for sub in A.walk_exprs(e):
            if isinstance(sub, A.CallExpr) \
                    and sub.name not in _INVARIANT_OK_CALLS:
                raise _VecReject
            if isinstance(sub, A.Triplet):
                raise _VecReject
            if isinstance(sub, A.ArrayRef):
                self.inv_reads.append((sub.name, tuple(sub.subs)))

    def _axis_offset(self, e: A.Expr):
        """The affine form of a subscript in the loop variable:
        returns the offset descriptor or rejects."""
        v = self.v
        if isinstance(e, A.Var) and e.name == v:
            return ("zero",)
        if isinstance(e, A.BinOp) and isinstance(e.left, A.Var) \
                and e.left.name == v and not _mentions(e.right, v):
            if e.op == "+":
                self._invariant(e.right)
                return ("pos", e.right)
            if e.op == "-":
                self._invariant(e.right)
                return ("neg", e.right)
        if isinstance(e, A.BinOp) and e.op == "+" \
                and isinstance(e.right, A.Var) and e.right.name == v \
                and not _mentions(e.left, v):
            self._invariant(e.left)
            return ("pos", e.left)
        raise _VecReject

    def _classify_ref(self, ref: A.ArrayRef):
        """(axis, off) of the one subscript mentioning the loop var;
        (None, None) when the reference is loop-invariant."""
        v = self.v
        axis = off = None
        for ax, sub in enumerate(ref.subs):
            if isinstance(sub, A.Triplet):
                raise _VecReject
            if _mentions(sub, v):
                if axis is not None:
                    raise _VecReject  # two subscripts use the loop var
                axis = ax
                off = self._axis_offset(sub)
            else:
                self._invariant(sub)
        return axis, off

    def _check_expr(self, e: A.Expr) -> None:
        v = self.v
        if not _mentions(e, v):
            self._invariant(e)
            return
        if isinstance(e, A.Var):  # e.name == v
            self.uses_iota = True
            return
        if isinstance(e, A.ArrayRef):
            axis, off = self._classify_ref(e)
            self.v_reads.append((e.name, axis, off))
            return
        if isinstance(e, A.BinOp):
            if e.op not in ("+", "-", "*", "/", "**"):
                raise _VecReject
            self._check_expr(e.left)
            self._check_expr(e.right)
            return
        if isinstance(e, A.UnOp):
            if e.op != "-":
                raise _VecReject
            self._check_expr(e.operand)
            return
        if isinstance(e, A.CallExpr):
            if e.name not in _VEC_CALL_SRC and e.name not in ("min", "max"):
                raise _VecReject
            if e.name in ("min", "max") and len(e.args) < 2:
                raise _VecReject
            for a in e.args:
                self._check_expr(a)
            return
        raise _VecReject

    def _finalize(self) -> None:
        self.checked_v_reads: list[tuple[str, object]] = []
        self.checked_inv_reads: list[tuple[str, A.Expr]] = []
        for name, axis, off in self.v_reads:
            w = self.writes.get(name)
            if w is None:
                continue
            if axis != w[0]:
                raise _VecReject
            self.checked_v_reads.append((name, off))
        for name, subs in self.inv_reads:
            w = self.writes.get(name)
            if w is None:
                continue
            axis = w[0]
            if axis >= len(subs):
                raise _VecReject
            self.checked_inv_reads.append((name, subs[axis]))
        for name in self.writes:
            self.fn.areg(name)

    # -- emission ----------------------------------------------------------

    def _off_src(self, off) -> str:
        if off[0] == "zero":
            return "0"
        src = f"int({self.fn.ex(off[1])})"
        return src if off[0] == "pos" else f"(-{src})"

    def emit(self, lo_t: str, hi_t: str, st_src: str,
             st_lit: Optional[int]) -> None:
        fn = self.fn
        fn.uses.update(("S", "loop_tick", "compute", "ctx", "_trc"))
        n_t, ok_t = fn.tmp(), fn.tmp()
        fn.w(f"{n_t} = ({hi_t} - {lo_t}) // {st_src} + 1")
        fn.w(f"if {n_t} <= 0:")
        fn.w(f"    S[{self.do.var!r}] = {lo_t}")
        fn.w("else:")
        fn.ind += 1
        fn.w(f"{ok_t} = {n_t} >= {MIN_BLOCK}")
        # per-array write offsets + equality constraints
        woff_t: dict[str, str] = {}
        conds: list[str] = []
        fn.w(f"if {ok_t}:")
        fn.ind += 1
        for name, (axis, offs) in self.writes.items():
            t = fn.tmp()
            woff_t[name] = t
            fn.w(f"{t} = {self._off_src(offs[0])}")
            for extra in offs[1:]:
                conds.append(f"{self._off_src(extra)} == {t}")
        for name, off in self.checked_v_reads:
            conds.append(f"{self._off_src(off)} == {woff_t[name]}")
        if conds:
            fn.w(f"{ok_t} = " + " and ".join(conds))
        else:
            fn.w("pass")
        fn.ind -= 1
        # anti-dependence range checks for invariant reads of written
        # arrays (same inclusive window as vectorize.runtime_ok)
        for name, idx in self.checked_inv_reads:
            f_t, l_t = fn.tmp(), fn.tmp()
            fn.w(f"if {ok_t}:")
            fn.ind += 1
            fn.w(f"{f_t} = {lo_t} + {woff_t[name]}")
            fn.w(f"{l_t} = {f_t} + ({n_t} - 1) * {st_src}")
            if st_lit is not None:
                wl, wh = (f_t, l_t) if st_lit > 0 else (l_t, f_t)
                fn.w(f"{ok_t} = not ({wl} <= int({fn.ex(idx)}) <= {wh})")
            else:
                b_t = fn.tmp()
                fn.w(f"{b_t} = int({fn.ex(idx)})")
                fn.w(f"{ok_t} = not (({f_t} <= {b_t} <= {l_t}) "
                     f"if {st_src} > 0 else ({l_t} <= {b_t} <= {f_t}))")
            fn.ind -= 1
        fn.w(f"if not {ok_t}:")
        fn.ind += 1
        fn.emit_do_scalar(self.do, lo_t, hi_t, st_src, st_lit, yb=False)
        fn.ind -= 1
        fn.w("else:")
        fn.ind += 1
        t0_t = fn.tmp()
        fn.w(f"{t0_t} = ctx.clock_estimate() if _trc else 0.0")
        io_t = fn.tmp()
        if self.uses_iota:
            fn.w(f"{io_t} = np.arange({lo_t}, {lo_t} + {n_t} * {st_src}, "
                 f"{st_src})")
        for target, axis, off, expr in self.stmts:
            tgt = self._slice_src(target, axis, off, lo_t, n_t, st_src,
                                  woff_t.get(target.name))
            rhs = self._vec_ex(expr, lo_t, n_t, st_src, io_t)
            fn.w(f"{tgt} = {rhs}")
        fn.w(f"loop_tick({n_t})")
        fn.w(f"compute({n_t} * {self.ops_per_iter})")
        fn.w("if _trc:")
        fn.w(f"    rt.trace_vec({t0_t}, {self.fn.unit.name!r}, "
             f"{self.do.var!r}, {n_t}, {n_t} * {self.ops_per_iter})")
        fn.w(f"S[{self.do.var!r}] = {lo_t} + {n_t} * {st_src}")
        fn.ind -= 2

    def _slice_src(self, ref: A.ArrayRef, axis: int, off, lo_t: str,
                   n_t: str, st_src: str, woff: Optional[str]) -> str:
        """Numpy subscript for a loop-carried reference: ``ax_slice``
        on the loop axis, scalar offsets elsewhere (bounds-checked at
        the block endpoints exactly like ``_block_slices``)."""
        fn = self.fn
        ident = fn.areg(ref.name)
        fn.arr_data.add(ident)
        first = f"({lo_t} + {woff})" if woff is not None else None
        if first is None:
            osrc = self._off_src(off)
            first = lo_t if osrc == "0" else f"({lo_t} + {osrc})"
        last = f"({first} + ({n_t} - 1) * {st_src})"
        parts = []
        for ax, sub in enumerate(ref.subs):
            if ax == axis:
                parts.append(f"ax_slice(_a_{ident}, {ax}, {first}, "
                             f"{last}, {st_src})")
            else:
                parts.append(f"_a_{ident}._offset({ax}, "
                             f"int({fn.ex(sub)}))")
        return f"_d_{ident}[{', '.join(parts)}]"

    def _vec_ex(self, e: A.Expr, lo_t: str, n_t: str, st_src: str,
                io_t: str) -> str:
        if not _mentions(e, self.v):
            return f"({self.fn.ex(e)})"
        if isinstance(e, A.Var):  # the loop variable
            return io_t
        if isinstance(e, A.ArrayRef):
            axis, off = self._classify_ref(e)
            return self._slice_src(e, axis, off, lo_t, n_t, st_src, None)
        if isinstance(e, A.BinOp):
            left = self._vec_ex(e.left, lo_t, n_t, st_src, io_t)
            right = self._vec_ex(e.right, lo_t, n_t, st_src, io_t)
            if e.op == "/":
                return f"_vdiv({left}, {right})"
            return f"({left} {e.op} {right})"
        if isinstance(e, A.UnOp):
            return f"(-{self._vec_ex(e.operand, lo_t, n_t, st_src, io_t)})"
        if isinstance(e, A.CallExpr):
            args = [self._vec_ex(a, lo_t, n_t, st_src, io_t)
                    for a in e.args]
            if e.name in _VEC_CALL_SRC:
                if len(args) != 1:
                    raise _VecReject
                return _VEC_CALL_SRC[e.name].format(args[0])
            nf = "np.minimum" if e.name == "min" else "np.maximum"
            acc = args[0]
            for a in args[1:]:
                acc = f"{nf}({acc}, {a})"
            return acc
        raise _VecReject
