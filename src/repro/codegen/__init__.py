"""JIT node-program code generation.

The compiler's whole premise (paper §5) is that each processor runs an
explicit SPMD *node program*; this package makes that literal.  For a
compiled program we emit real Python modules — one per **rank class**
(edge ranks specialize their boundary guards, interior ranks share one
module) — containing numpy slice assignments for provably-affine loop
nests, scalar loops otherwise, and the compiler-placed message calls,
then ``compile()`` them once and cache the source on disk
(:mod:`repro.codegen.cache`).  Execution stays bit-identical to the
interpreter: same virtual-clock charges in the same order, same
communication schedule, same RunStats.

Any procedure the emitter cannot lower **demotes** to the interpreter's
closures for that procedure only; demotions are reported per
(rank class, variant, procedure, cause) so the driver can trace them
and ``--strict`` can turn them into hard errors.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from ..lang import ast as A
from . import cache as _cache
from .emit import emit_module
from .runtime import NodeRt

__all__ = [
    "CodegenError", "GeneratedModule", "GeneratedProgram", "NodeRt",
    "enabled", "get_generated", "rank_classes", "reset_memory",
    "GEN_COUNTS",
]


class CodegenError(Exception):
    """Raised under ``--strict`` when any procedure demoted."""


def enabled(override: Optional[bool] = None) -> bool:
    """Codegen on/off: explicit argument wins, else ``REPRO_CODEGEN``
    (default on)."""
    if override is not None:
        return override
    return os.environ.get("REPRO_CODEGEN", "1").lower() \
        not in ("0", "false", "no", "off")


def rank_classes(nprocs: int) -> list[tuple[str, int, int]]:
    """Partition ranks into classes sharing one generated module.

    Boundary ranks get their own class so guards like
    ``if (my$p .gt. 0)`` fold away statically; every interior rank
    shares the ``mid`` module."""
    if nprocs <= 1:
        return [("solo", 0, 0)]
    if nprocs == 2:
        return [("lo", 0, 0), ("hi", 1, 1)]
    return [("lo", 0, 0), ("mid", 1, nprocs - 2),
            ("hi", nprocs - 1, nprocs - 1)]


#: generation-activity counters (benches assert warm runs do no work)
GEN_COUNTS = {"generated": 0, "disk": 0, "memory": 0}

#: in-process memo: one GeneratedProgram per (key, nprocs, vectorize)
_memory: dict[str, "GeneratedProgram"] = {}


def reset_memory() -> None:
    """Drop the in-process memo and zero :data:`GEN_COUNTS` (tests)."""
    _memory.clear()
    for k in GEN_COUNTS:
        GEN_COUNTS[k] = 0


class GeneratedModule:
    """One exec'd node-program module for one rank class."""

    __slots__ = ("cls", "source", "units", "units_y", "blocking",
                 "demoted", "demoted_y")

    def __init__(self, cls: str, source: str, ns: dict) -> None:
        self.cls = cls
        self.source = source
        # a poisoned entry that parses but lacks the tables raises
        # KeyError here; the loader treats that as a miss
        self.units = ns["UNITS"]
        self.units_y = ns["UNITS_Y"]
        self.blocking = ns["BLOCKING"]
        self.demoted = ns["DEMOTED"]
        self.demoted_y = ns["DEMOTED_Y"]


class _FallbackModule:
    """Stands in when generation itself failed: every procedure
    demotes, the run proceeds on the interpreter."""

    __slots__ = ("cls", "source", "units", "units_y", "blocking",
                 "demoted", "demoted_y")

    def __init__(self, cls: str, cause: str) -> None:
        self.cls = cls
        self.source = f"# generation failed: {cause}\n"
        self.units = {}
        self.units_y = {}
        self.blocking = frozenset()
        self.demoted = {"*": cause}
        self.demoted_y = {"*": cause}


@dataclass
class GeneratedProgram:
    """All rank-class modules for one (program, nprocs, options)."""

    nprocs: int
    key: str
    vectorize: bool
    #: class name -> (rlo, rhi, module)
    modules: dict[str, tuple[int, int, object]]
    #: (rank class, variant, procedure, cause)
    demotions: list[tuple[str, str, str, str]] = field(default_factory=list)

    def module_for(self, rank: int):
        for rlo, rhi, mod in self.modules.values():
            if rlo <= rank <= rhi:
                return mod
        raise ValueError(f"rank {rank} outside 0..{self.nprocs - 1}")

    def dump(self) -> str:
        """All generated sources, concatenated (``--codegen-dump``)."""
        parts = []
        for cls, (rlo, rhi, mod) in self.modules.items():
            parts.append(f"# {'=' * 66}\n# rank class {cls!r} "
                         f"(ranks {rlo}..{rhi})\n# {'=' * 66}\n")
            parts.append(mod.source)
        return "\n".join(parts)


def _exec_module(cls: str, src: str, stem: str) -> Optional[GeneratedModule]:
    try:
        ns: dict = {}
        exec(compile(src, f"<repro-codegen:{stem}>", "exec"), ns)
        return GeneratedModule(cls, src, ns)
    except Exception:
        return None  # poisoned body: regenerate


def get_generated(
    program: A.Program,
    nprocs: int,
    vectorize: bool,
    strict: bool = False,
) -> tuple[GeneratedProgram, int, int]:
    """Return the generated node program plus (cache hits, misses).

    Resolution per rank class: in-process memo, then disk, then emit
    (storing back to disk).  ``strict`` escalates any demotion to
    :class:`CodegenError`."""
    text = repr(program)  # deterministic content-bearing form
    key = _cache.program_key(text, nprocs, vectorize)
    memo = _memory.get(key)
    if memo is not None:
        GEN_COUNTS["memory"] += len(memo.modules)
        if strict and memo.demotions:
            raise CodegenError(_strict_message(memo))
        return memo, len(memo.modules), 0

    modules: dict[str, tuple[int, int, object]] = {}
    demotions: list[tuple[str, str, str, str]] = []
    hits = misses = 0
    for cls, rlo, rhi in rank_classes(nprocs):
        stem = _cache.entry_stem(key, nprocs, vectorize, cls)
        header = _cache.entry_header(stem)
        mod = None
        src = _cache.load(stem)
        if src is not None:
            mod = _exec_module(cls, src, stem)
        if mod is not None:
            GEN_COUNTS["disk"] += 1
            hits += 1
        else:
            misses += 1
            try:
                src = emit_module(program, nprocs, cls, rlo, rhi,
                                  vectorize, header)
                mod = _exec_module(cls, src, stem)
                if mod is None:
                    raise ValueError("generated module failed to load")
                GEN_COUNTS["generated"] += 1
                _cache.store(stem, src)
            except Exception as ex:  # never fail the run
                mod = _FallbackModule(cls, f"{type(ex).__name__}: {ex}")
        modules[cls] = (rlo, rhi, mod)
        for proc, cause in mod.demoted.items():
            demotions.append((cls, "node", proc, cause))
        for proc, cause in mod.demoted_y.items():
            demotions.append((cls, "event", proc, cause))

    gen = GeneratedProgram(nprocs, key, vectorize, modules, demotions)
    _memory[key] = gen
    if strict and demotions:
        raise CodegenError(_strict_message(gen))
    return gen, hits, misses


def _strict_message(gen: GeneratedProgram) -> str:
    rows = ", ".join(
        f"{proc}[{cls}/{variant}]: {cause}"
        for cls, variant, proc, cause in gen.demotions
    )
    return f"codegen demoted under --strict: {rows}"
