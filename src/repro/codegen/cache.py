"""Disk cache for generated node-program modules.

Layout: one ``.py`` file per (program, options, rank class) under
``$REPRO_CODEGEN_CACHE`` (default ``~/.cache/repro-codegen``)::

    ~/.cache/repro-codegen/
        a3f9…c1-4-vec-lo.py
        a3f9…c1-4-vec-mid.py
        a3f9…c1-4-vec-hi.py

The stem is ``<sha256(program text + nprocs + vectorize + generator
version)>-<nprocs>-<vec|novec>-<class>``.  Every entry's first line is
a header comment repeating that key; :func:`load` refuses any file
whose header does not match, so a tampered, truncated, or
version-stale entry is silently ignored and regenerated.  All disk
failures are soft — the cache is a pure accelerator.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from typing import Optional

#: bump when the generated-code shape changes; stale entries then
#: fail the header check and regenerate
GEN_VERSION = "1"


def cache_dir() -> str:
    env = os.environ.get("REPRO_CODEGEN_CACHE")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-codegen")


def program_key(text: str, nprocs: int, vectorize: bool) -> str:
    """Content hash covering everything the generated source depends
    on besides the rank class."""
    blob = f"{GEN_VERSION}\n{nprocs}\n{vectorize}\n{text}"
    return hashlib.sha256(blob.encode()).hexdigest()


def entry_stem(key: str, nprocs: int, vectorize: bool, cls: str) -> str:
    vec = "vec" if vectorize else "novec"
    return f"{key}-{nprocs}-{vec}-{cls}"


def entry_header(stem: str) -> str:
    return f"# repro-codegen {GEN_VERSION} {stem}"


def entry_path(stem: str) -> str:
    return os.path.join(cache_dir(), stem + ".py")


def load(stem: str) -> Optional[str]:
    """Return the cached source, or None if missing/unreadable/poisoned."""
    try:
        with open(entry_path(stem), "r", encoding="utf-8") as fh:
            src = fh.read()
    except OSError:
        return None
    first = src.split("\n", 1)[0]
    if first != entry_header(stem):
        return None  # tampered or generator-version mismatch
    return src


def store(stem: str, src: str) -> None:
    """Atomically write an entry; failures are swallowed (the cache
    never makes a run fail)."""
    try:
        d = cache_dir()
        os.makedirs(d, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=d, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(src)
            os.replace(tmp, entry_path(stem))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        pass
