"""Decomposition and alignment records.

Fortran D's ``DECOMPOSITION`` declares an abstract index domain, ``ALIGN``
maps array elements onto it, and ``DISTRIBUTE`` maps the decomposition
(and all aligned arrays) onto the machine.  The compiler folds the three
into a per-array :class:`DecompValue` — the distribution pattern of the
array's own dimensions — which is the element carried around by reaching-
decompositions sets (the ``D`` in the paper's ``<D, V>`` pairs).

As in HPF and the paper (§2), every array has an implicit default
decomposition, so ``DISTRIBUTE X(BLOCK)`` directly on an array and
``ALIGN Y(i, j) WITH X(j, i)`` against another array are both supported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..lang import ast as A


@dataclass(frozen=True)
class DecompValue:
    """A concrete decomposition of an array: one DistSpec per array
    dimension (already permuted through any alignment).

    This is the lattice value for reaching decompositions.  ``TOP``
    (represented by the module-level singleton, not a DecompValue) stands
    for "inherited from caller, unknown locally".
    """

    specs: tuple[A.DistSpec, ...]

    @property
    def rank(self) -> int:
        return len(self.specs)

    def distributed_axes(self) -> list[int]:
        return [i for i, s in enumerate(self.specs) if s.kind != "none"]

    def __str__(self) -> str:
        return "(" + ", ".join(str(s) for s in self.specs) + ")"


class _Top:
    """The ⊤ placeholder of §5.2: a decomposition inherited from a
    caller."""

    _instance: Optional["_Top"] = None

    def __new__(cls) -> "_Top":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "TOP"

    def __str__(self) -> str:
        return "⊤"


TOP = _Top()


def align_permutation(
    source_subs: Sequence[str], target_subs: Sequence[str]
) -> list[int]:
    """For ``ALIGN Y(source_subs) WITH D(target_subs)``, return ``perm``
    with ``perm[y_dim] = d_dim`` such that Y's dimension ``y_dim`` is
    aligned with D's dimension ``d_dim``.

    Example: ``ALIGN Y(i, j) WITH X(j, i)`` gives ``[1, 0]``.
    """
    if sorted(source_subs) != sorted(target_subs):
        raise ValueError(
            f"alignment indices mismatch: {source_subs} vs {target_subs}"
        )
    if len(set(source_subs)) != len(source_subs):
        raise ValueError(f"repeated alignment index in {source_subs}")
    return [target_subs.index(s) for s in source_subs]


def permute_specs(
    specs: Sequence[A.DistSpec], perm: Sequence[int]
) -> tuple[A.DistSpec, ...]:
    """Distribution of the aligned array: dimension ``a`` of the array
    gets the spec of decomposition dimension ``perm[a]``."""
    return tuple(specs[perm[a]] for a in range(len(perm)))


@dataclass
class DecompDecl:
    """A DECOMPOSITION declaration seen in a unit (static info)."""

    name: str
    extents: list[int]


@dataclass
class AlignDecl:
    """An ALIGN seen in a unit: array -> (target, permutation)."""

    array: str
    target: str
    perm: list[int]


class DirectiveTable:
    """Accumulates the decomposition/alignment structure of one procedure
    and resolves DISTRIBUTE statements to per-array :class:`DecompValue`.

    The table answers: "when this DISTRIBUTE executes, which arrays
    change decomposition, and to what pattern?"  (Alignment chains —
    Y aligned with X aligned with D — are followed transitively.)
    """

    def __init__(self, arrays: dict[str, int]) -> None:
        # arrays: name -> rank, for the current procedure
        self.arrays = dict(arrays)
        self.decomps: dict[str, DecompDecl] = {}
        self.aligns: dict[str, AlignDecl] = {}

    def add_decomposition(self, stmt: A.Decomposition) -> None:
        extents = []
        for e in stmt.extents:
            if not isinstance(e, A.Num) or not isinstance(e.value, int):
                raise ValueError(
                    f"decomposition {stmt.name}: extent must be constant"
                )
            extents.append(e.value)
        self.decomps[stmt.name] = DecompDecl(stmt.name, extents)

    def add_align(self, stmt: A.Align) -> None:
        perm = align_permutation(stmt.source_subs, stmt.target_subs)
        self.aligns[stmt.array] = AlignDecl(stmt.array, stmt.decomp, perm)

    def resolve_distribute(
        self, stmt: A.Distribute
    ) -> dict[str, DecompValue]:
        """All (array -> DecompValue) bindings produced by executing this
        DISTRIBUTE statement."""
        target = stmt.name
        specs = tuple(stmt.specs)
        out: dict[str, DecompValue] = {}
        if target in self.arrays:
            # direct distribution of an array (implicit decomposition)
            out[target] = DecompValue(specs)
        elif target in self.decomps:
            if len(specs) != len(self.decomps[target].extents):
                raise ValueError(
                    f"distribute {target}: {len(specs)} specs for "
                    f"{len(self.decomps[target].extents)}-d decomposition"
                )
        else:
            raise ValueError(f"distribute of unknown name {target!r}")
        # propagate through alignment chains
        for arr in self.arrays:
            perm = self.chain_perm(arr, target)
            if perm is not None and arr not in out:
                out[arr] = DecompValue(permute_specs(specs, perm))
        return out

    def chain_perm(self, array: str, target: str) -> Optional[list[int]]:
        """Composite permutation aligning ``array`` (possibly through
        intermediate arrays) with ``target``; None when not aligned."""
        seen = set()
        name = array
        perm = list(range(self.arrays.get(array, 0)))
        while name in self.aligns:
            if name in seen:
                raise ValueError(f"alignment cycle through {name!r}")
            seen.add(name)
            al = self.aligns[name]
            perm = [al.perm[p] for p in perm]
            name = al.target
            if name == target:
                return perm
        return None
