"""Distribution functions: BLOCK / CYCLIC / BLOCK_CYCLIC index math.

A :class:`Distribution` is the compiler's *distribution function* for one
array (paper §5.3): it knows, for every dimension, how global indices map
to processors and which global indices each processor owns (the *local
index set*, an RSD).

Multi-dimensional distributions place processors on a grid with one axis
per distributed dimension (the paper's examples distribute a single
dimension, so the grid is usually ``(P,)``), linearized row-major into
processor ranks ``0 .. P-1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..analysis.rsd import EMPTY_RANGE, RSD, Range
from ..lang import ast as A


@dataclass(frozen=True)
class DimDistribution:
    """Distribution of one array dimension.

    Attributes
    ----------
    kind:
        "block" | "cyclic" | "block_cyclic" | "none".
    lo, hi:
        Global (declared) bounds of this dimension.
    nprocs:
        Number of processors assigned along this dimension (1 for
        ``none``).
    block:
        Block size: ``ceil(n / nprocs)`` for block, the user parameter
        for block_cyclic, 1 for cyclic, the full extent for none.
    """

    kind: str
    lo: int
    hi: int
    nprocs: int
    block: int

    @staticmethod
    def make(kind: str, lo: int, hi: int, nprocs: int,
             param: Optional[int] = None) -> "DimDistribution":
        n = hi - lo + 1
        if kind == "none" or nprocs == 1:
            return DimDistribution("none", lo, hi, 1, n)
        if kind == "block":
            return DimDistribution("block", lo, hi, nprocs,
                                   -(-n // nprocs))
        if kind == "cyclic":
            return DimDistribution("cyclic", lo, hi, nprocs, 1)
        if kind == "block_cyclic":
            if not param or param < 1:
                raise ValueError("block_cyclic needs a block size >= 1")
            return DimDistribution("block_cyclic", lo, hi, nprocs, param)
        raise ValueError(f"unknown distribution kind {kind!r}")

    @property
    def distributed(self) -> bool:
        return self.kind != "none"

    def owner_coord(self, g: int) -> int:
        """Grid coordinate of the processor owning global index ``g``."""
        if not (self.lo <= g <= self.hi):
            raise IndexError(f"index {g} outside [{self.lo}:{self.hi}]")
        off = g - self.lo
        if self.kind == "none":
            return 0
        if self.kind == "block":
            return min(off // self.block, self.nprocs - 1)
        if self.kind == "cyclic":
            return off % self.nprocs
        return (off // self.block) % self.nprocs  # block_cyclic

    def local_set(self, coord: int) -> list[Range]:
        """Global indices owned by grid coordinate ``coord`` as ranges.

        block and cyclic give a single range (contiguous / strided);
        block_cyclic gives one range per owned block.
        """
        if not (0 <= coord < self.nprocs):
            raise IndexError(f"coord {coord} outside grid of {self.nprocs}")
        if self.kind == "none":
            return [Range(self.lo, self.hi)]
        if self.kind == "block":
            lo = self.lo + coord * self.block
            hi = min(self.hi, lo + self.block - 1)
            return [Range(lo, hi)] if lo <= hi else [EMPTY_RANGE]
        if self.kind == "cyclic":
            lo = self.lo + coord
            if lo > self.hi:
                return [EMPTY_RANGE]
            return [Range(lo, self.hi, self.nprocs)]
        # block_cyclic: blocks coord, coord+nprocs, ...
        out: list[Range] = []
        b = self.block
        start = self.lo + coord * b
        stride = b * self.nprocs
        while start <= self.hi:
            out.append(Range(start, min(self.hi, start + b - 1)))
            start += stride
        return out or [EMPTY_RANGE]

    def primary_local_range(self, coord: int) -> Range:
        """The single-range local set (block/cyclic/none); raises for
        block_cyclic with multiple blocks."""
        rs = self.local_set(coord)
        if len(rs) != 1:
            raise ValueError("block_cyclic local set is not a single range")
        return rs[0]

    def owner_coord_expr(self, idx: A.Expr) -> A.Expr:
        """AST expression computing ``owner_coord`` of a symbolic index
        (used by generated run-time-resolution and broadcast code)."""
        off = A.sub(idx, A.Num(self.lo))
        if self.kind == "none":
            return A.Num(0)
        if self.kind == "block":
            return A.CallExpr(
                "min",
                (
                    A.BinOp("/", off, A.Num(self.block)),
                    A.Num(self.nprocs - 1),
                ),
            )
        if self.kind == "cyclic":
            return A.CallExpr("mod", (off, A.Num(self.nprocs)))
        return A.CallExpr(
            "mod",
            (A.BinOp("/", off, A.Num(self.block)), A.Num(self.nprocs)),
        )

    def describe(self) -> str:
        if self.kind == "none":
            return ":"
        if self.kind == "block_cyclic":
            return f"block_cyclic({self.block})"
        return self.kind


@dataclass(frozen=True)
class Distribution:
    """Whole-array distribution: one :class:`DimDistribution` per
    dimension plus the processor-grid shape."""

    dims: tuple[DimDistribution, ...]
    nprocs: int

    # -- construction ----------------------------------------------------

    @staticmethod
    def from_specs(
        specs: Sequence[A.DistSpec],
        bounds: Sequence[tuple[int, int]],
        nprocs: int,
    ) -> "Distribution":
        """Build from DISTRIBUTE specs and per-dim global bounds.

        Processors are assigned to the distributed dimensions by
        factoring ``nprocs`` across them (single distributed dim — the
        common case — gets all processors).
        """
        if len(specs) != len(bounds):
            raise ValueError(
                f"{len(specs)} specs for {len(bounds)}-dimensional array"
            )
        dist_axes = [i for i, s in enumerate(specs) if s.kind != "none"]
        grid = factor_grid(nprocs, len(dist_axes))
        dims: list[DimDistribution] = []
        gi = 0
        for i, (spec, (lo, hi)) in enumerate(zip(specs, bounds)):
            if spec.kind == "none":
                dims.append(DimDistribution.make("none", lo, hi, 1))
            else:
                dims.append(
                    DimDistribution.make(spec.kind, lo, hi, grid[gi], spec.param)
                )
                gi += 1
        return Distribution(tuple(dims), nprocs)

    @staticmethod
    def replicated(bounds: Sequence[tuple[int, int]], nprocs: int) -> "Distribution":
        """All dims ``none``: every processor owns the whole array."""
        dims = tuple(
            DimDistribution.make("none", lo, hi, 1) for lo, hi in bounds
        )
        return Distribution(dims, nprocs)

    # -- queries -----------------------------------------------------------

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def specs(self) -> tuple[A.DistSpec, ...]:
        out = []
        for d in self.dims:
            if d.kind == "none":
                out.append(A.DistSpec("none"))
            elif d.kind == "block_cyclic":
                out.append(A.DistSpec("block_cyclic", d.block))
            else:
                out.append(A.DistSpec(d.kind))
        return tuple(out)

    @property
    def is_replicated(self) -> bool:
        cached = self.__dict__.get("_is_replicated")
        if cached is None:
            cached = all(not d.distributed for d in self.dims)
            object.__setattr__(self, "_is_replicated", cached)
        return cached

    def distributed_axes(self) -> list[int]:
        return [i for i, d in enumerate(self.dims) if d.distributed]

    def grid_shape(self) -> tuple[int, ...]:
        return tuple(d.nprocs for d in self.dims if d.distributed)

    def coords_of_rank(self, rank: int) -> tuple[int, ...]:
        """Grid coordinates (one per distributed axis, row-major)."""
        shape = self.grid_shape()
        coords = []
        for extent in reversed(shape):
            coords.append(rank % extent)
            rank //= extent
        return tuple(reversed(coords))

    def rank_of_coords(self, coords: Sequence[int]) -> int:
        shape = self.grid_shape()
        r = 0
        for c, extent in zip(coords, shape):
            r = r * extent + c
        return r

    def owner(self, indices: Sequence[int]) -> int:
        """Processor rank owning the element at global ``indices``.

        Run-time resolution evaluates this once per element per
        processor, so the index math is compiled to a closure on first
        use and cached on the instance (the dataclass is frozen; the
        cache never enters ``__eq__``/``__hash__``, which compare fields
        only).
        """
        fn = self.__dict__.get("_owner_fn")
        if fn is None:
            fn = self._compile_owner()
            object.__setattr__(self, "_owner_fn", fn)
        return fn(indices)

    def _compile_owner(self):
        parts = []  # (axis, per-dim coordinate closure, grid extent)
        for axis, d in enumerate(self.dims):
            if d.distributed:
                parts.append((axis, _coord_closure(d), d.nprocs))
        if not parts:
            return lambda indices: 0
        if len(parts) == 1:
            axis, coord, _ = parts[0]
            return lambda indices: coord(indices[axis])

        def owner(indices: Sequence[int]) -> int:
            r = 0
            for axis, coord, extent in parts:
                r = r * extent + coord(indices[axis])
            return r

        return owner

    def owns(self, rank: int, indices: Sequence[int]) -> bool:
        if self.is_replicated:
            return True
        return self.owner(indices) == rank

    def local_index_set(self, rank: int) -> RSD:
        """The local index set of processor ``rank`` as a single RSD
        (block_cyclic dims use their first owned block extended — callers
        needing exact block_cyclic sets use :meth:`local_index_sets`)."""
        sets = self.local_index_sets(rank)
        if len(sets) == 1:
            return sets[0]
        # summary RSD covering all pieces: per-dim hull
        dims: list[Range] = []
        for axis in range(self.rank):
            los = [s.dims[axis].lo for s in sets]   # type: ignore[union-attr]
            his = [s.dims[axis].hi for s in sets]   # type: ignore[union-attr]
            dims.append(Range(min(los), max(his)))
        return RSD(tuple(dims))

    def local_index_sets(self, rank: int) -> list[RSD]:
        """Exact local index sets (cartesian product of per-dim pieces)."""
        coords = self.coords_of_rank(rank)
        per_dim: list[list[Range]] = []
        ci = 0
        for d in self.dims:
            if d.distributed:
                per_dim.append(d.local_set(coords[ci]))
                ci += 1
            else:
                per_dim.append(d.local_set(0))
        out = [RSD(())]
        for pieces in per_dim:
            out = [
                RSD(prev.dims + (piece,)) for prev in out for piece in pieces
            ]
        return [r for r in out if not r.empty] or [
            RSD(tuple(EMPTY_RANGE for _ in self.dims))
        ]

    def owners_of(self, section: RSD) -> set[int]:
        """Set of processor ranks owning at least one element of a
        *numeric* section."""
        per_axis: list[set[int]] = []
        for d, dim in zip(self.dims, section.dims):
            if not d.distributed:
                continue
            if not isinstance(dim, Range):
                # symbolic: every coordinate may own part of it
                per_axis.append(set(range(d.nprocs)))
                continue
            coords = set()
            if dim.count <= 4 * d.nprocs * max(d.block, 1):
                for g in dim.iter():
                    coords.add(d.owner_coord(g))
            else:
                coords = set(range(d.nprocs))
            per_axis.append(coords)
        ranks = {0} if not per_axis else set()
        if per_axis:
            import itertools

            for combo in itertools.product(*per_axis):
                ranks.add(self.rank_of_coords(combo))
        return ranks

    def same_mapping(self, other: "Distribution") -> bool:
        """True when the two distributions place every element on the
        same processor (used to skip no-op remaps)."""
        return self.dims == other.dims and self.nprocs == other.nprocs

    def describe(self) -> str:
        return "(" + ", ".join(d.describe() for d in self.dims) + ")"

    def __str__(self) -> str:
        return self.describe()


def _coord_closure(d: DimDistribution):
    """Branch-free per-call coordinate function for one distributed dim
    (same math and bounds errors as :meth:`DimDistribution.owner_coord`,
    with the kind dispatch done once)."""
    lo, hi, P, blk = d.lo, d.hi, d.nprocs, d.block
    if d.kind == "block":
        last = P - 1

        def coord(g: int) -> int:
            if g < lo or g > hi:
                raise IndexError(f"index {g} outside [{lo}:{hi}]")
            q = (g - lo) // blk
            return q if q < last else last

    elif d.kind == "cyclic":
        def coord(g: int) -> int:
            if g < lo or g > hi:
                raise IndexError(f"index {g} outside [{lo}:{hi}]")
            return (g - lo) % P

    else:  # block_cyclic
        def coord(g: int) -> int:
            if g < lo or g > hi:
                raise IndexError(f"index {g} outside [{lo}:{hi}]")
            return ((g - lo) // blk) % P

    return coord


def factor_grid(nprocs: int, naxes: int) -> tuple[int, ...]:
    """Factor ``nprocs`` into a near-balanced grid over ``naxes`` axes.

    ``naxes == 0`` gives the empty grid; ``naxes == 1`` gives ``(P,)``.
    """
    if naxes == 0:
        return ()
    if naxes == 1:
        return (nprocs,)
    # greedy: repeatedly split off the largest factor <= nprocs**(1/axes)
    extents = []
    remaining = nprocs
    for axis in range(naxes - 1):
        target = round(remaining ** (1.0 / (naxes - axis)))
        f = 1
        for cand in range(target, 0, -1):
            if remaining % cand == 0:
                f = cand
                break
        extents.append(f)
        remaining //= f
    extents.append(remaining)
    return tuple(extents)
