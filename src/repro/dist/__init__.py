"""Data decomposition and distribution index math."""

from .decomposition import (
    TOP,
    AlignDecl,
    DecompDecl,
    DecompValue,
    DirectiveTable,
    align_permutation,
    permute_specs,
)
from .distribution import DimDistribution, Distribution, factor_grid

__all__ = [
    "TOP",
    "DecompValue",
    "DecompDecl",
    "AlignDecl",
    "DirectiveTable",
    "align_permutation",
    "permute_specs",
    "DimDistribution",
    "Distribution",
    "factor_grid",
]
