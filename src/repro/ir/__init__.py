"""Intermediate representation: control-flow graphs."""

from .cfg import CFG, Node

__all__ = ["CFG", "Node"]
