"""Control-flow graph construction from the structured AST.

The dialect has structured control flow only (DO / IF / DO WHILE — no
GOTO), so the CFG is built by a simple recursive translation.  Nodes are
either a single statement or one of the synthetic markers ``entry`` /
``exit`` / ``loop-head``.  Data-flow analyses (reaching decompositions,
live decompositions, reaching definitions, live variables) run on this
graph with a standard worklist solver (:mod:`repro.analysis.dataflow`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..lang import ast as A


@dataclass
class Node:
    """One CFG node.

    ``kind`` is "entry", "exit", "stmt", or "loop-head"; ``stmt`` is the
    underlying statement for "stmt" and "loop-head" (the Do itself).
    """

    id: int
    kind: str
    stmt: Optional[A.Stmt] = None
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.kind}#{self.id}>"


class CFG:
    """Control-flow graph of one procedure body."""

    def __init__(self) -> None:
        self.nodes: list[Node] = []
        self.entry = self._new("entry")
        self.exit = self._new("exit")

    def _new(self, kind: str, stmt: Optional[A.Stmt] = None) -> Node:
        n = Node(len(self.nodes), kind, stmt)
        self.nodes.append(n)
        return n

    def add_edge(self, a: Node, b: Node) -> None:
        if b.id not in a.succs:
            a.succs.append(b.id)
            b.preds.append(a.id)

    def node(self, nid: int) -> Node:
        return self.nodes[nid]

    def stmt_nodes(self) -> Iterator[Node]:
        for n in self.nodes:
            if n.stmt is not None:
                yield n

    def node_of(self, stmt: A.Stmt) -> Node:
        for n in self.nodes:
            if n.stmt is stmt:
                return n
        raise KeyError(f"statement not in CFG: {stmt!r}")

    # -- construction -----------------------------------------------------

    @staticmethod
    def build(body: list[A.Stmt]) -> "CFG":
        cfg = CFG()
        last = cfg._lower_block(body, cfg.entry)
        cfg.add_edge(last, cfg.exit)
        # RETURN/STOP statements also reach exit (handled in _lower_block)
        return cfg

    def _lower_block(self, body: list[A.Stmt], pred: Node) -> Node:
        """Lower a statement list; return the node control falls out of."""
        cur = pred
        for s in body:
            cur = self._lower_stmt(s, cur)
        return cur

    def _lower_stmt(self, s: A.Stmt, pred: Node) -> Node:
        if isinstance(s, A.If):
            head = self._new("stmt", s)
            self.add_edge(pred, head)
            t_end = self._lower_block(s.then_body, head)
            join = self._new("join")
            self.add_edge(t_end, join)
            if s.else_body:
                e_end = self._lower_block(s.else_body, head)
                self.add_edge(e_end, join)
            else:
                self.add_edge(head, join)
            return join
        if isinstance(s, (A.Do, A.DoWhile)):
            head = self._new("loop-head", s)
            self.add_edge(pred, head)
            body_end = self._lower_block(s.body, head)
            self.add_edge(body_end, head)  # back edge
            after = self._new("join")
            self.add_edge(head, after)  # zero-trip / loop exit
            return after
        if isinstance(s, (A.Return, A.Stop)):
            n = self._new("stmt", s)
            self.add_edge(pred, n)
            self.add_edge(n, self.exit)
            # control does not fall through; dead node keeps lowering simple
            dead = self._new("join")
            return dead
        n = self._new("stmt", s)
        self.add_edge(pred, n)
        return n
