"""Profile-guided distribution auto-tuner (``fdc --autotune``).

The paper's compiler *chooses* communication for a given data layout;
this package closes the remaining loop and chooses the layout itself.
A traced baseline run yields the critical path and communication hot
spots (:func:`repro.obs.objective_summary`); those prune a search over
per-decomposition plans — BLOCK / CYCLIC / BLOCK_CYCLIC(k) per hot
DISTRIBUTE target plus a processor-count sweep — whose candidates are
scored on the event-backend simulator, in parallel across the compile
service's worker pool, with content-addressed per-procedure summary
reuse and a crash-safe evaluation memo keyed
``sha256(program ‖ options ‖ plan)``.

Layers::

    plan.py      Plan (+ apply/describe/cli_flags) and plan_key
    evaluate.py  the single shared compile+simulate probe
    memo.py      crash-safe evaluation memo (EvalMemo)
    space.py     search-space construction and pruning
    search.py    the staged search (autotune) + report rendering

See ``docs/autotune.md``.
"""

from .evaluate import COST_MODELS, evaluate_plan, make_eval_compiler
from .memo import EvalMemo, default_memo_dir
from .plan import MEMO_VERSION, Plan, plan_key
from .search import EvalRecord, TuneOutcome, autotune, \
    render_tune_report
from .space import TuneSpace, build_space, initial_moves

__all__ = [
    "COST_MODELS",
    "EvalMemo",
    "EvalRecord",
    "MEMO_VERSION",
    "Plan",
    "TuneOutcome",
    "TuneSpace",
    "autotune",
    "build_space",
    "default_memo_dir",
    "evaluate_plan",
    "initial_moves",
    "make_eval_compiler",
    "plan_key",
    "render_tune_report",
]
