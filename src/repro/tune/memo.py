"""Crash-safe plan-evaluation memo.

Maps :func:`~repro.tune.plan.plan_key` digests to their metrics dicts so
repeated tuning runs (and sibling searches over the same program) never
re-simulate a plan.  Disk discipline follows the repo's other stores
(``codegen/cache.py``, ``service/store.py``): entries are JSON files
published atomically (mkstemp + ``os.replace``), self-described by a
header line naming the format version and their own key; every read or
write failure is soft — corrupt, truncated, stale-version, or foreign
files count as misses and are dropped, and an unwritable directory
degrades the memo to memory-only rather than failing the search.

The directory comes from (first match wins): the explicit ``directory``
argument, ``REPRO_TUNE_CACHE``, or ``~/.cache/repro-tune``; an empty
``REPRO_TUNE_CACHE`` disables the disk tier.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Optional

from .plan import MEMO_VERSION


def default_memo_dir() -> Optional[str]:
    if "REPRO_TUNE_CACHE" in os.environ:
        return os.environ["REPRO_TUNE_CACHE"] or None
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-tune")


class EvalMemo:
    """Two-tier (memory + optional disk) evaluation memo."""

    def __init__(self, directory: Optional[str] = None,
                 use_default_dir: bool = True) -> None:
        if directory is None and use_default_dir:
            directory = default_memo_dir()
        # an explicit empty string means "no disk tier"
        self.directory = directory or None
        self.memory: dict[str, dict] = {}
        self.degraded = False
        self.counters = {"hits": 0, "misses": 0, "disk_hits": 0,
                         "stores": 0, "corrupt": 0, "degraded": 0}

    # -- paths --------------------------------------------------------------

    def _path(self, key: str) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, f"eval-{key}.json")

    def _header(self, key: str) -> str:
        return f"# repro-tune-eval {MEMO_VERSION} eval-{key}.json\n"

    # -- access -------------------------------------------------------------

    def load(self, key: str) -> Optional[dict]:
        hit = self.memory.get(key)
        if hit is not None:
            self.counters["hits"] += 1
            return hit
        if self.directory is not None and not self.degraded:
            hit = self._disk_load(key)
            if hit is not None:
                self.memory[key] = hit
                self.counters["hits"] += 1
                self.counters["disk_hits"] += 1
                return hit
        self.counters["misses"] += 1
        return None

    def store(self, key: str, metrics: dict) -> None:
        self.memory[key] = metrics
        self.counters["stores"] += 1
        if self.directory is not None and not self.degraded:
            self._disk_store(key, metrics)

    def stats(self) -> dict:
        return dict(self.counters)

    # -- disk tier ----------------------------------------------------------

    def _disk_load(self, key: str) -> Optional[dict]:
        path = self._path(key)
        header = self._header(key)
        try:
            with open(path, "r") as fh:
                if fh.readline() != header:
                    self.counters["corrupt"] += 1
                    self._discard(path)
                    return None
                obj = json.load(fh)
        except FileNotFoundError:
            return None
        except Exception:
            self.counters["corrupt"] += 1
            self._discard(path)
            return None
        if not isinstance(obj, dict):
            self.counters["corrupt"] += 1
            self._discard(path)
            return None
        return obj

    def _disk_store(self, key: str, metrics: dict) -> None:
        path = self._path(key)
        try:
            os.makedirs(self.directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as fh:
                    fh.write(self._header(key))
                    json.dump(metrics, fh, sort_keys=True)
                os.replace(tmp, path)
            except BaseException:
                self._discard(tmp)
                raise
        except (OSError, TypeError, ValueError):
            # unwritable directory or unserializable payload:
            # memory-only from here on
            self.counters["degraded"] += 1
            self.degraded = True

    @staticmethod
    def _discard(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass
