"""Single-plan evaluation: compile + simulate, returning plain metrics.

This is the one definition of "evaluate a plan" — the serial sweep, the
worker-pool ``evaluate`` op, and the base-plan profiling pass all call
:func:`evaluate_plan`, so parallel and serial searches are guaranteed to
score candidates identically.

Evaluation always pins the **event-driven** scheduler backend (fastest
and deterministic — the tuner's objective is simulated virtual time,
which is scheduler-invariant anyway) and runs through the interpreter
(``codegen=False``): virtual time is bit-identical to the codegen path,
and skipping per-plan module generation keeps each probe cheap.
Compilation goes through an incremental
:class:`~repro.service.compiler.ServiceCompiler`, so sibling plans only
recompile the procedures whose distribution actually changed (the
summary store's options fingerprint is plan-invariant; see
:func:`~repro.service.store.store_opts_fingerprint`).
"""

from __future__ import annotations

from typing import Optional

from ..core.options import Options
from ..machine import FAST_NETWORK, FREE, IPSC860

#: cost models by CLI name (mirrors ``fdc --cost``)
COST_MODELS = {"ipsc860": IPSC860, "fast": FAST_NETWORK, "free": FREE}


def make_eval_compiler(store_dir: Optional[str] = None):
    """A fresh incremental compiler over a (possibly disk-backed)
    summary store — disk-backed stores share per-procedure summaries
    across worker processes."""
    from ..service.compiler import ServiceCompiler
    from ..service.store import SummaryStore

    return ServiceCompiler(store=SummaryStore(directory=store_dir))


def evaluate_plan(compiler, source: str, opts: Options,
                  scheduler: str = "event", cost: str = "ipsc860",
                  trace: bool = False) -> dict:
    """Compile *opts* (a plan already applied) and run it on the
    simulated machine; returns a JSON-ready metrics dict.

    With ``trace=True`` the run is traced and the dict additionally
    carries ``objective`` (:func:`~repro.obs.objective_summary` — the
    pruning signal) and ``comm_sites`` (the compile report's
    (procedure, array, kind) communication sites) — the extra fields the
    search's base-plan pass needs and candidate probes skip.
    """
    cost_model = COST_MODELS[cost] if isinstance(cost, str) else cost
    cp, cstats = compiler.compile(source, opts)
    res = cp.run(cost=cost_model, scheduler=scheduler,
                 trace=True if trace else False, codegen=False)
    sd = res.stats.as_dict()
    metrics = {
        "time_us": sd["time_us"],
        "messages": sd["messages"],
        "bytes": sd["bytes"],
        "collectives": sd["collectives"],
        "collective_bytes": sd["collective_bytes"],
        "remaps": sd["remaps"],
        "remap_bytes": sd["remap_bytes"],
        "load_imbalance": sd["load_imbalance"],
        "wall_s": sd["wall_s"],
        "compile": {
            "procs": cstats["procs"],
            "reused": cstats["reused"],
            "compiled": cstats["compiled"],
        },
    }
    if trace and res.trace is not None:
        from ..obs import objective_summary

        metrics["objective"] = objective_summary(res.trace, res.stats)
        metrics["comm_sites"] = sorted(
            {tuple(site) for site in cp.report.comm_sites}
        )
    return metrics
