"""Candidate distribution plans and their content-addressed keys.

A :class:`Plan` is one point in the tuner's search space: a processor
count plus per-array distribution overrides
(:class:`~repro.core.model.DistOverride`).  Applying a plan to a base
:class:`~repro.core.options.Options` layers its overrides over any the
user already passed (later wins per array, matching repeated
``--distribute`` flags), so a tuned plan is always expressible as plain
CLI flags — :meth:`Plan.cli_flags` prints exactly those.

:func:`plan_key` is the evaluation-memo key from the issue's contract:
``sha256(program ‖ options ‖ plan)`` — here the program source digest
and the *applied* options tuple (which embeds the plan), plus the
evaluation backend and cost model, under a format version.  Two tuning
runs over the same source and options therefore share every evaluation.
"""

from __future__ import annotations

import hashlib
from dataclasses import astuple, dataclass, field, replace

from ..core.model import DistOverride
from ..core.options import Options

#: bump when the metrics payload or key recipe changes; old memo
#: entries then miss and regenerate
MEMO_VERSION = "1"


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


@dataclass(frozen=True)
class Plan:
    """One candidate: a processor count + distribution overrides."""

    nprocs: int
    overrides: tuple[DistOverride, ...] = ()
    #: how the search produced this plan (report text only)
    label: str = field(default="", compare=False)

    def apply(self, opts: Options) -> Options:
        """The base options with this plan layered on (plan overrides
        win per array, like a later ``--distribute`` flag)."""
        by = {ov.array: ov for ov in opts.distribute}
        for ov in self.overrides:
            by[ov.array] = ov
        dist = tuple(by[name] for name in sorted(by))
        return replace(opts, nprocs=self.nprocs, distribute=dist)

    def describe(self) -> str:
        parts = [f"P={self.nprocs}"]
        parts.extend(ov.describe() for ov in self.overrides)
        return " ".join(parts)

    def cli_flags(self) -> list[str]:
        """The ``fdc`` flags that reproduce this plan."""
        flags = ["--nprocs", str(self.nprocs)]
        for ov in self.overrides:
            flags.extend(["--distribute", ov.describe()])
        return flags


def plan_key(source: str, opts: Options, plan: Plan,
             scheduler: str = "event", cost: str = "ipsc860") -> str:
    """Content address of one evaluation: program ‖ options ‖ plan
    (via the applied options, which embed the plan) ‖ backend ‖ cost,
    all under :data:`MEMO_VERSION`."""
    applied = plan.apply(opts)
    return _digest("|".join([
        MEMO_VERSION,
        _digest(source),
        repr(astuple(applied)),
        scheduler,
        str(cost),
    ]))
