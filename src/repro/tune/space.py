"""Search-space construction and profile-guided pruning.

The tuner does not enumerate the full cross product of (array × kind ×
block size × processor count) — the paper's own profile data says most
of that space is dead.  Instead:

* **Targets** are the DISTRIBUTE statement targets (arrays or
  decompositions).  An array that communicates shows up in the compile
  report's ``comm_sites``; following its ALIGN chain maps it back to the
  DISTRIBUTE target the override must name.  Targets with *no*
  communication anywhere keep their defaults — changing a layout nobody
  exchanges data over can only add remaps.
* **Kind moves** are generated only when the traced base run says
  communication matters at all (``comm_share`` of the critical path ≥
  :data:`MIN_COMM_SHARE`); a compute-bound program gets a processor
  sweep only.
* **Block-cyclic sweeps** (k ∈ :data:`BLOCK_SIZES`) run only for
  targets where plain ``cyclic`` already beat the as-written layout —
  block_cyclic interpolates between block and cyclic, so if cyclic
  loses there is nothing between to find.
* **Combination plans** (stage 3) compose the best per-coordinate moves
  and are only emitted when at least two coordinates improved
  independently.

Everything is deterministic: targets are ordered by communication-site
count (descending, then name) and candidate lists are generated in a
fixed order, so equal budgets explore equal spaces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.model import DistOverride
from ..core.options import Options
from ..lang import ast as A
from ..lang.parser import parse
from .plan import Plan

#: processor counts the sweep tries (the base count is skipped)
NPROCS_CANDIDATES = (2, 4, 8, 16, 32)

#: block sizes for the block_cyclic refinement sweep
BLOCK_SIZES = (2, 4, 8)

#: minimum communication share of the critical path before layout
#: (kind) moves are generated at all
MIN_COMM_SHARE = 0.02

#: distribution kinds tried as whole-array moves
KIND_MOVES = ("block", "cyclic")


@dataclass
class TuneSpace:
    """What the program offers the tuner."""

    #: DISTRIBUTE targets that communicate, hottest first
    hot_targets: list[str]
    #: every DISTRIBUTE target -> set of kinds its statements use
    current_kinds: dict[str, set] = field(default_factory=dict)
    #: base (as-written) processor count
    nprocs0: int = 4


def _align_map(prog: A.Program) -> dict[str, str]:
    """array -> ALIGN target (decomposition or carrier array)."""
    out: dict[str, str] = {}
    for unit in prog.units:
        for s in A.walk_stmts(unit.body):
            if isinstance(s, A.Align):
                out[s.array] = s.decomp
    return out


def _resolve_target(name: str, align: dict[str, str],
                    targets: set[str]) -> str:
    """Follow the ALIGN chain from a communicated array to the
    DISTRIBUTE target an override must name."""
    seen = set()
    while name not in targets and name in align and name not in seen:
        seen.add(name)
        name = align[name]
    return name


def build_space(source: str, base_metrics: dict,
                opts: Options) -> TuneSpace:
    """Read the program's DISTRIBUTE/ALIGN structure and the base run's
    ``comm_sites`` into a :class:`TuneSpace`."""
    prog = parse(source)
    current_kinds: dict[str, set] = {}
    for unit in prog.units:
        for s in A.walk_stmts(unit.body):
            if isinstance(s, A.Distribute):
                kinds = current_kinds.setdefault(s.name, set())
                kinds.update(
                    sp.kind for sp in s.specs if sp.kind != "none"
                )
    targets = set(current_kinds)
    align = _align_map(prog)
    site_count: dict[str, int] = {}
    for _proc, array, _kind in base_metrics.get("comm_sites", ()):
        t = _resolve_target(array, align, targets)
        if t in targets:
            site_count[t] = site_count.get(t, 0) + 1
    hot = sorted(site_count, key=lambda t: (-site_count[t], t))
    return TuneSpace(hot_targets=hot, current_kinds=current_kinds,
                     nprocs0=opts.nprocs)


def _kind_move(space: TuneSpace, target: str, kind: str,
               param=None) -> Plan:
    ov = DistOverride(target, ((kind, param),))
    return Plan(space.nprocs0, (ov,), label=f"kind:{target}")


def initial_moves(space: TuneSpace, objective: dict) -> list[Plan]:
    """Stage-1 single-coordinate moves: the processor sweep, plus (when
    communication matters) one kind move per hot target per kind it
    does not already use everywhere."""
    plans: list[Plan] = []
    for p in NPROCS_CANDIDATES:
        if p != space.nprocs0:
            plans.append(Plan(p, (), label="nprocs"))
    if objective.get("comm_share", 1.0) >= MIN_COMM_SHARE:
        for target in space.hot_targets:
            for kind in KIND_MOVES:
                if space.current_kinds.get(target) == {kind}:
                    continue
                plans.append(_kind_move(space, target, kind))
    return plans


def refine_moves(space: TuneSpace, base_time: float,
                 stage1: list[tuple[Plan, dict]]) -> list[Plan]:
    """Stage-2 moves from stage-1 outcomes: block_cyclic k-sweeps where
    cyclic won, evaluated at the winning processor count."""
    best_p = _best_nprocs(space, base_time, stage1)
    plans: list[Plan] = []
    for target in _cyclic_winners(space, base_time, stage1):
        for k in BLOCK_SIZES:
            ov = DistOverride(target, (("block_cyclic", k),))
            plans.append(Plan(best_p, (ov,), label=f"bcyc:{target}"))
    return plans


def combine_moves(space: TuneSpace, base_time: float,
                  results: list[tuple[Plan, dict]]) -> list[Plan]:
    """Stage-3 combination: the best improving override per target plus
    the best processor count, composed — only when at least two
    coordinates improved independently (otherwise stage 1/2 already
    evaluated the composition)."""
    best_p = _best_nprocs(space, base_time, results)
    best_ov: dict[str, tuple[DistOverride, float]] = {}
    for plan, metrics in results:
        if len(plan.overrides) != 1 or "time_us" not in metrics:
            continue
        t = metrics["time_us"]
        if t >= base_time:
            continue
        ov = plan.overrides[0]
        cur = best_ov.get(ov.array)
        if cur is None or t < cur[1]:
            best_ov[ov.array] = (ov, t)
    coords = len(best_ov) + (1 if best_p != space.nprocs0 else 0)
    if coords < 2:
        return []
    ovs = tuple(best_ov[a][0] for a in sorted(best_ov))
    return [Plan(best_p, ovs, label="combo")]


def _best_nprocs(space: TuneSpace, base_time: float,
                 results: list[tuple[Plan, dict]]) -> int:
    best_p, best_t = space.nprocs0, base_time
    for plan, metrics in results:
        if plan.overrides or "time_us" not in metrics:
            continue
        if metrics["time_us"] < best_t:
            best_p, best_t = plan.nprocs, metrics["time_us"]
    return best_p


def _cyclic_winners(space: TuneSpace, base_time: float,
                    stage1: list[tuple[Plan, dict]]) -> list[str]:
    winners = []
    for plan, metrics in stage1:
        if len(plan.overrides) != 1 or "time_us" not in metrics:
            continue
        ov = plan.overrides[0]
        if ov.specs == (("cyclic", None),) \
                and metrics["time_us"] < base_time:
            winners.append(ov.array)
    return sorted(set(winners))
