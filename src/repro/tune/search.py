"""The auto-tuner: profile-guided, budget-bounded, parallel plan search.

``autotune`` closes the paper's feedback loop: compile the program as
written, run it traced on the event-backend simulator, and use the
critical path + communication hot spots to decide *which* layout knobs
are worth turning (see :mod:`.space`).  Candidates are then scored in
up to three budget-bounded stages — single-coordinate moves, block-
cyclic refinement where cyclic won, and a final composition — each
stage seeded by the measurements of the one before.

Evaluation cost is attacked three ways:

* **parallelism** — candidate batches fan out over the compile
  service's supervised :class:`~repro.service.pool.WorkerPool`
  (``workers`` processes; any pool failure falls back to the serial
  sweep, which scores identically);
* **summary reuse** — every evaluation compiles through an incremental
  :class:`~repro.service.compiler.ServiceCompiler` whose store keys are
  plan-invariant, so sibling plans recompile only the procedures whose
  distribution actually changed;
* **memoization** — each (program ‖ options ‖ plan) evaluation is
  remembered in the crash-safe :class:`~repro.tune.memo.EvalMemo`, so
  re-runs and overlapping searches skip simulation entirely.

The search is deterministic for a given program, options, and budget:
plan order is fixed, and parallel and serial sweeps score candidates
with the same :func:`~repro.tune.evaluate.evaluate_plan`.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Optional

from ..core.options import Options
from .evaluate import evaluate_plan, make_eval_compiler
from .memo import EvalMemo
from .plan import MEMO_VERSION, Plan, plan_key
from .space import build_space, combine_moves, initial_moves, \
    refine_moves


@dataclass
class EvalRecord:
    """One scored candidate."""

    plan: Plan
    metrics: dict
    cached: bool = False

    @property
    def ok(self) -> bool:
        return "time_us" in self.metrics

    @property
    def time_us(self) -> float:
        return self.metrics["time_us"]

    def as_dict(self) -> dict:
        return {
            "plan": self.plan.describe(),
            "nprocs": self.plan.nprocs,
            "flags": self.plan.cli_flags(),
            "label": self.plan.label,
            "cached": self.cached,
            "metrics": self.metrics,
        }


@dataclass
class TuneOutcome:
    """Everything a tuning run learned."""

    base: EvalRecord
    best: Plan
    best_metrics: dict
    records: list[EvalRecord] = field(default_factory=list)
    budget: int = 0
    workers: int = 0
    scheduler: str = "event"
    cost: str = "ipsc860"
    evaluated: int = 0
    memo_hits: int = 0
    wall_s: float = 0.0

    @property
    def predicted_speedup(self) -> float:
        t = self.best_metrics.get("time_us", 0.0)
        if t <= 0:
            return 1.0
        return self.base.time_us / t

    @property
    def plans_per_s(self) -> float:
        if self.wall_s <= 0:
            return 0.0
        return (self.evaluated + self.memo_hits) / self.wall_s

    def as_dict(self) -> dict:
        return {
            "version": MEMO_VERSION,
            "budget": self.budget,
            "workers": self.workers,
            "scheduler": self.scheduler,
            "cost": self.cost,
            "base": self.base.as_dict(),
            "best": {
                "plan": self.best.describe(),
                "nprocs": self.best.nprocs,
                "flags": self.best.cli_flags(),
                "metrics": self.best_metrics,
            },
            "predicted_speedup": self.predicted_speedup,
            "evaluated": self.evaluated,
            "memo_hits": self.memo_hits,
            "wall_s": self.wall_s,
            "plans_per_s": self.plans_per_s,
            "plans": [r.as_dict() for r in self.records],
        }


def _resolve_workers(workers: Optional[int]) -> int:
    if workers is None:
        return min(4, os.cpu_count() or 1)
    return max(0, workers)


class _Evaluator:
    """Scores plan batches — across the worker pool when one is
    requested and usable, in-process otherwise; both paths call the
    same :func:`evaluate_plan`."""

    def __init__(self, source: str, opts: Options, scheduler: str,
                 cost: str, workers: int, compiler) -> None:
        self.source = source
        self.opts = opts
        self.scheduler = scheduler
        self.cost = cost
        self.workers = workers
        self.compiler = compiler        # in-process fallback/serial
        self.pool = None
        self.store_dir = None
        if workers >= 2:
            from ..service.pool import WorkerPool

            self.store_dir = tempfile.mkdtemp(prefix="repro-tune-")
            self.pool = WorkerPool(size=workers, job_timeout_s=300.0)

    def close(self) -> None:
        if self.pool is not None:
            self.pool.close()
        if self.store_dir is not None:
            shutil.rmtree(self.store_dir, ignore_errors=True)

    def __call__(self, plans: list[Plan]) -> list[dict]:
        if not plans:
            return []
        applied = [p.apply(self.opts) for p in plans]
        if self.pool is not None:
            from ..service.protocol import ServiceError

            try:
                return self.pool.evaluate_plans(
                    self.source, applied, scheduler=self.scheduler,
                    cost=self.cost, store_dir=self.store_dir,
                )
            except ServiceError:
                pass  # degrade to the identical serial sweep
        out = []
        for o in applied:
            try:
                out.append(evaluate_plan(
                    self.compiler, self.source, o,
                    scheduler=self.scheduler, cost=self.cost,
                ))
            except Exception as e:
                out.append({"error": f"{type(e).__name__}: {e}"})
        return out


def autotune(source: str, opts: Optional[Options] = None,
             budget: int = 32, workers: Optional[int] = None,
             memo_dir: Optional[str] = None, scheduler: str = "event",
             cost: str = "ipsc860") -> TuneOutcome:
    """Search distribution plans for *source* under *opts*; returns the
    :class:`TuneOutcome` whose ``best`` plan (possibly the as-written
    one) minimizes simulated virtual time.

    *budget* caps actual simulator evaluations (memo hits are free);
    *workers* sets the evaluation pool size (None = min(4, cpus),
    0/1 = serial); *memo_dir* overrides the evaluation memo directory
    (default: ``REPRO_TUNE_CACHE`` or ``~/.cache/repro-tune``).
    """
    if budget < 1:
        raise ValueError("autotune budget must be >= 1")
    opts = opts or Options()
    workers = _resolve_workers(workers)
    memo = EvalMemo(memo_dir)
    t0 = time.perf_counter()

    compiler = make_eval_compiler()
    # stage 0: the as-written plan, traced — the baseline objective and
    # the pruning signal (comm share, hot communication sites)
    base_plan = Plan(opts.nprocs, (), label="as-written")
    base_metrics = evaluate_plan(compiler, source, base_plan.apply(opts),
                                 scheduler=scheduler, cost=cost,
                                 trace=True)
    base = EvalRecord(base_plan, base_metrics)
    left = budget - 1

    space = build_space(source, base_metrics, opts)
    objective = base_metrics.get("objective", {})
    evaluator = _Evaluator(source, opts, scheduler, cost, workers,
                           compiler)
    records: list[EvalRecord] = []
    seen = {base_plan}
    evaluated = 1
    memo_hits = 0

    def run_stage(plans: list[Plan]) -> list[tuple[Plan, dict]]:
        nonlocal left, evaluated, memo_hits
        fresh: list[Plan] = []
        keys: dict[Plan, str] = {}
        stage: list[tuple[Plan, dict]] = []
        for p in plans:
            if p in seen:
                continue
            seen.add(p)
            keys[p] = plan_key(source, opts, p, scheduler, cost)
            hit = memo.load(keys[p])
            if hit is not None:
                memo_hits += 1
                records.append(EvalRecord(p, hit, cached=True))
                stage.append((p, hit))
            elif left > 0:
                fresh.append(p)
                left -= 1
        for p, metrics in zip(fresh, evaluator(fresh)):
            evaluated += 1
            if "error" not in metrics:
                memo.store(keys[p], metrics)
            records.append(EvalRecord(p, metrics))
            stage.append((p, metrics))
        return stage

    try:
        stage1 = run_stage(initial_moves(space, objective))
        stage2 = run_stage(
            refine_moves(space, base.time_us, stage1)
        )
        run_stage(
            combine_moves(space, base.time_us, stage1 + stage2)
        )
    finally:
        evaluator.close()

    best = base
    for rec in records:
        if rec.ok and rec.time_us < best.time_us:
            best = rec
    return TuneOutcome(
        base=base,
        best=best.plan,
        best_metrics=best.metrics,
        records=records,
        budget=budget,
        workers=workers,
        scheduler=scheduler,
        cost=cost,
        evaluated=evaluated,
        memo_hits=memo_hits,
        wall_s=time.perf_counter() - t0,
    )


def render_tune_report(outcome: TuneOutcome, max_plans: int = 12) -> str:
    """The ``fdc --autotune`` report."""
    o = outcome
    lines = [
        f"autotune: {o.evaluated} plan(s) simulated, "
        f"{o.memo_hits} memo hit(s) in {o.wall_s:.2f}s "
        f"({o.plans_per_s:.1f} plans/s, "
        + (f"{o.workers} workers)" if o.workers >= 2 else "serial)"),
        f"  as-written   {o.base.plan.describe():<32} "
        f"{o.base.time_us:>12.2f} us",
    ]
    if o.best == o.base.plan:
        lines.append("  best: the as-written plan — no candidate beat it")
    else:
        lines.append(
            f"  best         {o.best.describe():<32} "
            f"{o.best_metrics['time_us']:>12.2f} us  "
            f"(predicted speedup {o.predicted_speedup:.2f}x)"
        )
        lines.append("  apply with:  " + " ".join(o.best.cli_flags()))
    ranked = sorted((r for r in o.records if r.ok),
                    key=lambda r: (r.time_us, r.plan.describe()))
    if ranked:
        lines.append("  candidates:")
        for r in ranked[:max_plans]:
            mark = " (memo)" if r.cached else ""
            lines.append(
                f"    {r.time_us:>12.2f} us  {r.plan.describe()}{mark}"
            )
        if len(ranked) > max_plans:
            lines.append(f"    ... {len(ranked) - max_plans} more")
    failed = [r for r in o.records if not r.ok]
    for r in failed:
        lines.append(
            f"    infeasible: {r.plan.describe()} "
            f"({r.metrics.get('error', '?')})"
        )
    return "\n".join(lines)
