"""ADI-style phase computation — the §6 motivation for dynamic data
decomposition: "phases of a computation may require different data
decompositions to reduce data movement or load imbalance".

Each time step sweeps along rows (wants ``(block, :)``) and then along
columns (wants ``(:, block)``).  The phase procedures redistribute the
array on entry; with delayed instantiation plus the §6 optimizations the
compiler places exactly two transposing remaps per time step (and none
when a phase's distribution already matches).
"""

from __future__ import annotations


def adi_source(n: int = 64, steps: int = 3) -> str:
    return f"""
program adi
real a({n},{n})
parameter (n = {n})
distribute a(block, :)
do t = 1, {steps}
  call rowsweep(a, n)
  call colsweep(a, n)
enddo
end

subroutine rowsweep(a, n)
real a(n,n)
integer n
distribute a(block, :)
do i = 1, n
  do j = 2, n
    a(i, j) = a(i, j) + 0.5 * a(i, j - 1)
  enddo
enddo
end

subroutine colsweep(a, n)
real a(n,n)
integer n
distribute a(:, block)
do j = 1, n
  do i = 2, n
    a(i, j) = a(i, j) + 0.5 * a(i - 1, j)
  enddo
enddo
end
"""
