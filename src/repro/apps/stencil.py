"""Stencil/relaxation workloads — the data-parallel computations the
paper's introduction motivates (nearest-neighbour communication whose
vectorization across procedure boundaries is the bread-and-butter win).
"""

from __future__ import annotations


def stencil1d_source(n: int = 256, steps: int = 8, shift: int = 1) -> str:
    """1-D relaxation: each time step calls a smoothing procedure; the
    shift communication must vectorize in the caller, once per step."""
    return f"""
program relax
real x({n}), y({n})
parameter (n = {n})
align y(i) with x(i)
distribute x(block)
do t = 1, {steps}
  call smooth(x, y, n)
  call copyback(x, y, n)
enddo
end

subroutine smooth(x, y, n)
real x(n), y(n)
integer n
do i = 2, n - 1
  y(i) = 0.5 * x(i) + 0.25 * x(i - 1) + 0.25 * x(i + 1)
enddo
end

subroutine copyback(x, y, n)
real x(n), y(n)
integer n
do i = 2, n - 1
  x(i) = y(i)
enddo
end
"""


def stencil2d_source(n: int = 64, steps: int = 4) -> str:
    """2-D row-block Jacobi sweep through a procedure: north/south
    neighbour rows communicate, vectorized over whole rows."""
    return f"""
program jacobi
real a({n},{n}), b({n},{n})
parameter (n = {n})
align b(i, j) with a(i, j)
distribute a(block, :)
do t = 1, {steps}
  call sweep(a, b, n)
  call copy2(a, b, n)
enddo
end

subroutine sweep(a, b, n)
real a(n,n), b(n,n)
integer n
do j = 2, n - 1
  do i = 2, n - 1
    b(i, j) = 0.25 * (a(i - 1, j) + a(i + 1, j) + a(i, j - 1) + a(i, j + 1))
  enddo
enddo
end

subroutine copy2(a, b, n)
real a(n,n), b(n,n)
integer n
do j = 2, n - 1
  do i = 2, n - 1
    a(i, j) = b(i, j)
  enddo
enddo
end
"""
