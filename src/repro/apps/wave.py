"""1-D wave equation (leapfrog) — a multi-array stencil workload.

Two state arrays advance together each time step, reading the same
neighbour strips: the aggregation optimization (§5.4) packs both
arrays' boundary strips into one message per neighbour per step.
"""

from __future__ import annotations


def wave_source(n: int = 128, steps: int = 8, c2: float = 0.25) -> str:
    """Leapfrog u_next = 2u - u_prev + c2 * (u(i-1) - 2u(i) + u(i+1)),
    factored into procedures the way application codes are."""
    return f"""
program wave
real u({n}), uprev({n}), unew({n})
parameter (n = {n})
align uprev(i) with u(i)
align unew(i) with u(i)
distribute u(block)
call setup(u, uprev, n)
do t = 1, {steps}
  call advance(u, uprev, unew, n)
  call rotate(u, uprev, unew, n)
enddo
end

subroutine setup(u, uprev, n)
real u(n), uprev(n)
integer n
do i = 1, n
  u(i) = f(i * 1.0)
  uprev(i) = u(i)
enddo
end

subroutine advance(u, uprev, unew, n)
real u(n), uprev(n), unew(n)
integer n
do i = 2, n - 1
  unew(i) = 2.0 * u(i) - uprev(i) + {c2} * (u(i - 1) - 2.0 * u(i) + u(i + 1))
enddo
end

subroutine rotate(u, uprev, unew, n)
real u(n), uprev(n), unew(n)
integer n
do i = 2, n - 1
  uprev(i) = u(i)
  u(i) = unew(i)
enddo
end
"""
