"""The §9 case study: ``dgefa`` — LINPACK LU factorization.

The paper's empirical evaluation compiles ``dgefa`` (the LINPACK
right-looking LU factorization, whose inner kernels are the BLAS-1 calls
``idamax``/``dscal``/``daxpy`` invoked from nested loops) and shows that
interprocedural optimization is *crucial*: with run-time resolution or
without cross-procedure message vectorization the program is orders of
magnitude slower than the interprocedurally optimized version, which
approaches hand-written node code.

Our Fortran D source keeps the call structure that makes the problem
interesting — the BLAS operations are separate procedures called inside
the ``k``/``j`` elimination loops — while staying in the whole-array-
passing subset (the column index is passed explicitly rather than by
passing ``a(k+1, j)`` slices; the loop/ownership structure, message
pattern and operation counts are identical to LINPACK's).  The §9
benchmarks use the unpivoted variant (as most distributed-memory dgefa
studies of the period did: pivoting does not change the communication
pattern being measured); :func:`dgefa_pivot_source` provides the full
partially-pivoted algorithm, compiled with a broadcast-then-replicated
pivot search and an all-local distributed row swap.

Expected compiled shape (column-cyclic distribution over P processors)::

    do k = 1, n-1
      if (owner(col k) == my$p) call dscal(a, n, k)   ! scale pivot column
      broadcast a(k+1:n, k) from owner(col k)          ! one bcast per k
      do j = k+1+pmod(my$p-k, P), n, P                 ! owned columns only
        call daxpy(a, n, k, j)                         ! local update
      enddo
    enddo
"""

from __future__ import annotations

import numpy as np


def dgefa_source(n: int = 64) -> str:
    """Fortran D dgefa with column-cyclic distribution."""
    return f"""
program main
real a({n},{n})
parameter (n = {n})
distribute a(:, cyclic)
call dgefa(a, n)
end

subroutine dgefa(a, n)
real a(n,n)
integer n, k, j
do k = 1, n - 1
  call dscal(a, n, k)
  do j = k + 1, n
    call daxpy(a, n, k, j)
  enddo
enddo
end

subroutine dscal(a, n, k)
real a(n,n)
integer n, k, i
do i = k + 1, n
  a(i, k) = a(i, k) / a(k, k)
enddo
end

subroutine daxpy(a, n, k, j)
real a(n,n)
integer n, k, j, i
do i = k + 1, n
  a(i, j) = a(i, j) - a(k, j) * a(i, k)
enddo
end
"""


def make_dgefa_init(n: int):
    """Deterministic, diagonally dominant initializer (LU without
    pivoting requires nonzero pivots; dominance keeps it well
    conditioned)."""

    def init(name: str, indices: tuple[int, ...]) -> float:
        if len(indices) != 2:
            return 0.0  # vectors (right-hand sides) start zeroed
        i, j = indices
        base = 1.0 + ((i * 31 + j * 17) % 97) / 97.0
        if i == j:
            base += 2.0 * n
        return base

    return init


def dgefa_pivot_source(n: int = 64) -> str:
    """dgefa *with partial pivoting* — the full LINPACK algorithm.

    Under column-cyclic layout the pivot column is broadcast once per
    step (hoisted out of the search loop by dependence analysis); every
    node then runs the same argmax, so the pivot row index needs no
    extra communication.  The row swap runs over distributed columns
    with an aligned auxiliary row (a scalar temporary would serialize
    it)."""
    return f"""
program main
real a({n},{n}), swp({n})
parameter (n = {n})
distribute a(:, cyclic)
distribute swp(cyclic)
call pivgefa(a, swp, n)
end

subroutine pivgefa(a, swp, n)
real a(n,n), swp(n)
integer n, k, j, l
do k = 1, n - 1
  big = 0.0
  l = k
  do i = k, n
    if (abs(a(i, k)) > big) then
      big = abs(a(i, k))
      l = i
    endif
  enddo
  call rowswap(a, swp, n, k, l)
  call dscal(a, n, k)
  do j = k + 1, n
    call daxpy(a, n, k, j)
  enddo
enddo
end

subroutine rowswap(a, swp, n, k, l)
real a(n,n), swp(n)
integer n, k, l, j
do j = 1, n
  swp(j) = a(k, j)
enddo
do j = 1, n
  a(k, j) = a(l, j)
enddo
do j = 1, n
  a(l, j) = swp(j)
enddo
end

subroutine dscal(a, n, k)
real a(n,n)
integer n, k, i
do i = k + 1, n
  a(i, k) = a(i, k) / a(k, k)
enddo
end

subroutine daxpy(a, n, k, j)
real a(n,n)
integer n, k, j, i
do i = k + 1, n
  a(i, j) = a(i, j) - a(k, j) * a(i, k)
enddo
end
"""


def dgefa_pivot_reference(a: np.ndarray) -> tuple[np.ndarray, list[int]]:
    """Sequential LU with partial pivoting matching the Fortran
    operation-for-operation (ties resolve to the first maximum, as the
    strict > comparison does)."""
    a = np.array(a, dtype=np.float64, copy=True)
    n = a.shape[0]
    pivots: list[int] = []
    for k in range(n - 1):
        # strict-> semantics: first index attaining the maximum
        col = np.abs(a[k:, k])
        l = k + int(np.argmax(col))
        pivots.append(l)
        if l != k:
            a[[k, l], :] = a[[l, k], :]
        a[k + 1:, k] /= a[k, k]
        a[k + 1:, k + 1:] -= np.outer(a[k + 1:, k], a[k, k + 1:])
    return a, pivots


def dgefa_dgesl_source(n: int = 64) -> str:
    """LINPACK pair: factor (dgefa) then solve (dgesl, forward and back
    substitution) — the full workflow the benchmark suite times.

    With column-cyclic layout the solves walk columns: at step k the
    owner of column k updates x(k); the column's segment scales the
    remaining right-hand side on every processor, so the compiler must
    broadcast x's pivot element and keep the daxpy-style updates local.
    For the whole-array subset we store the right-hand side replicated
    (a common choice for LINPACK node solvers) and let the reduction
    and broadcast machinery handle the rest.
    """
    return f"""
program main
real a({n},{n}), b({n})
parameter (n = {n})
distribute a(:, cyclic)
call dgefa(a, n)
call dgesl(a, b, n)
end

subroutine dgefa(a, n)
real a(n,n)
integer n, k, j
do k = 1, n - 1
  call dscal(a, n, k)
  do j = k + 1, n
    call daxpy(a, n, k, j)
  enddo
enddo
end

subroutine dscal(a, n, k)
real a(n,n)
integer n, k, i
do i = k + 1, n
  a(i, k) = a(i, k) / a(k, k)
enddo
end

subroutine daxpy(a, n, k, j)
real a(n,n)
integer n, k, j, i
do i = k + 1, n
  a(i, j) = a(i, j) - a(k, j) * a(i, k)
enddo
end

subroutine dgesl(a, b, n)
real a(n,n), b(n)
integer n, k, i
do i = 1, n
  b(i) = i * 1.0
enddo
do k = 1, n - 1
  call forward(a, b, n, k)
enddo
do k = n, 1, -1
  call backward(a, b, n, k)
enddo
end

subroutine forward(a, b, n, k)
real a(n,n), b(n)
integer n, k, i
do i = k + 1, n
  b(i) = b(i) - a(i, k) * b(k)
enddo
end

subroutine backward(a, b, n, k)
real a(n,n), b(n)
integer n, k, i
b(k) = b(k) / a(k, k)
do i = 1, k - 1
  b(i) = b(i) - a(i, k) * b(k)
enddo
end
"""


def dgesl_reference(lu: np.ndarray) -> np.ndarray:
    """Sequential forward/back substitution matching the Fortran."""
    n = lu.shape[0]
    b = np.arange(1, n + 1, dtype=np.float64)
    for k in range(n - 1):
        b[k + 1:] -= lu[k + 1:, k] * b[k]
    for k in range(n - 1, -1, -1):
        b[k] /= lu[k, k]
        b[:k] -= lu[:k, k] * b[k]
    return b


def dgefa_reference_lu(a: np.ndarray) -> np.ndarray:
    """Sequential right-looking LU (no pivoting) in NumPy, matching the
    Fortran source operation-for-operation."""
    a = np.array(a, dtype=np.float64, copy=True)
    n = a.shape[0]
    for k in range(n - 1):
        a[k + 1:, k] /= a[k, k]
        a[k + 1:, k + 1:] -= np.outer(a[k + 1:, k], a[k, k + 1:])
    return a


def handcoded_dgefa_spmd(ctx, n: int, init_fn) -> np.ndarray:
    """Hand-written SPMD node program for column-cyclic dgefa on the
    simulated machine — the performance target compiled code should
    approach (§9's hand-coded comparison).

    Returns this node's copy of the matrix (its owned columns valid).
    """
    P = ctx.nprocs
    me = ctx.rank
    a = np.empty((n, n), dtype=np.float64)
    for i in range(n):
        for j in range(n):
            a[i, j] = init_fn("a", (i + 1, j + 1))
    elem = 8
    for k in range(n - 1):
        owner = k % P  # column k+1 in Fortran indexing -> (k+1-1) % P
        m = n - k - 1
        if me == owner:
            ctx.compute(m)  # the dscal divides
            a[k + 1:, k] /= a[k, k]
            ctx.broadcast(owner, a[k + 1:, k].copy(), m * elem)
        else:
            a[k + 1:, k] = ctx.broadcast(owner, None, m * elem)
        # update owned columns j in k+1..n-1 (0-based), j % P == me
        start = k + 1 + ((me - (k + 1)) % P)
        cols = range(start, n, P)
        ncols = len(range(start, n, P))
        ctx.compute(2.0 * m * ncols)
        for j in cols:
            a[k + 1:, j] -= a[k, j] * a[k + 1:, k]
    return a
