"""Fortran D application sources: the paper's worked examples and the
evaluation workloads (dgefa, stencils, ADI)."""

from .adi import adi_source
from .cg import cg_source
from .dgefa import (
    dgefa_dgesl_source,
    dgefa_pivot_reference,
    dgefa_pivot_source,
    dgefa_reference_lu,
    dgefa_source,
    dgesl_reference,
    handcoded_dgefa_spmd,
    make_dgefa_init,
)
from .paper_figures import (
    FIG1,
    FIG4,
    FIG15,
    fig1_source,
    fig4_source,
    fig15_source,
)
from .stencil import stencil1d_source, stencil2d_source
from .wave import wave_source

__all__ = [
    "FIG1",
    "FIG4",
    "FIG15",
    "fig1_source",
    "fig4_source",
    "fig15_source",
    "dgefa_source",
    "dgefa_dgesl_source",
    "dgefa_pivot_source",
    "dgefa_pivot_reference",
    "dgefa_reference_lu",
    "dgesl_reference",
    "handcoded_dgefa_spmd",
    "make_dgefa_init",
    "stencil1d_source",
    "stencil2d_source",
    "wave_source",
    "adi_source",
    "cg_source",
]
