"""The paper's worked examples as Fortran D sources (Figures 1, 4, 15).

These are the exact programs the paper compiles by hand in its figures;
the test suite and benchmark harness compile them with this
implementation and check that the generated code has the paper's shape
(message counts, bounds reduction, remap counts) and that execution
matches the sequential semantics.
"""

from __future__ import annotations

FIG1 = """
program p1
real x(100)
parameter (n$proc = 4)
distribute x(block)
do i = 1, 95
s1: x(i) = f(x(i + 5))
enddo
call f1(x)
end

subroutine f1(x)
real x(100)
do i = 1, 95
  x(i) = f(x(i + 5))
enddo
end
"""


FIG4 = """
program p1
real x(100,100), y(100,100)
parameter (n$proc = 4)
align y(i, j) with x(j, i)
distribute x(block, :)
do i = 1, 100
s1: call f1(x, i)
enddo
do j = 1, 100
s2: call f1(y, j)
enddo
end

subroutine f1(z, i)
real z(100,100)
s3: call f2(z, i)
end

subroutine f2(z, i)
real z(100,100)
do k = 1, 95
  z(k, i) = f(z(k+5, i))
enddo
end
"""


#: Figure 15 with the main program shaped as in Figure 16: two calls to
#: the redistributing F1 inside a time loop, then F2 (which kills X)
#: after the loop.
FIG15 = """
program p1
real x(100)
parameter (t = 10)
distribute x(block)
do k = 1, t
s1: call f1(x)
s2: call f1(x)
enddo
call f2(x)
do i = 1, 100
  x(i) = x(i) + 1.0
enddo
end

subroutine f1(x)
real x(100)
distribute x(cyclic)
do i = 1, 100
  x(i) = f(x(i))
enddo
end

subroutine f2(x)
real x(100)
do i = 1, 100
  x(i) = i * 0.5
enddo
end
"""


def fig1_source(n: int = 100, shift: int = 5) -> str:
    """Parameterized Figure 1 (1-D block shift through a call)."""
    return f"""
program p1
real x({n})
distribute x(block)
do i = 1, {n - shift}
  x(i) = f(x(i + {shift}))
enddo
call f1(x)
end

subroutine f1(x)
real x({n})
do i = 1, {n - shift}
  x(i) = f(x(i + {shift}))
enddo
end
"""


def fig4_source(n: int = 100, shift: int = 5) -> str:
    """Parameterized Figure 4 (2-D row/col clones, call in loop)."""
    return f"""
program p1
real x({n},{n}), y({n},{n})
align y(i, j) with x(j, i)
distribute x(block, :)
do i = 1, {n}
  call f1(x, i)
enddo
do j = 1, {n}
  call f1(y, j)
enddo
end

subroutine f1(z, i)
real z({n},{n})
call f2(z, i)
end

subroutine f2(z, i)
real z({n},{n})
do k = 1, {n - shift}
  z(k, i) = f(z(k+{shift}, i))
enddo
end
"""


def fig15_source(n: int = 100, t: int = 10) -> str:
    """Parameterized Figure 15/16 (dynamic redistribution in a loop)."""
    return f"""
program p1
real x({n})
distribute x(block)
do k = 1, {t}
s1: call f1(x)
s2: call f1(x)
enddo
call f2(x)
do i = 1, {n}
  x(i) = x(i) + 1.0
enddo
end

subroutine f1(x)
real x({n})
distribute x(cyclic)
do i = 1, {n}
  x(i) = f(x(i))
enddo
end

subroutine f2(x)
real x({n})
do i = 1, {n}
  x(i) = i * 0.5
enddo
end
"""
