"""Conjugate-gradient solver on a 1-D Laplacian — the "everything at
once" application: shift communication (the tridiagonal matvec),
reduction idioms (dot products), and replicated scalar control, all
factored into BLAS-style procedures.

The system is ``A = tridiag(-1, 2+eps, -1)`` (symmetric positive
definite) with right-hand side chosen so the exact solution is known;
the program runs a fixed number of CG iterations and stores the final
residual norm.
"""

from __future__ import annotations


def cg_source(n: int = 64, iters: int = 10, eps: float = 0.05) -> str:
    diag = 2.0 + eps
    return f"""
program cg
real x({n}), r({n}), p({n}), ap({n})
parameter (n = {n})
align r(i) with x(i)
align p(i) with x(i)
align ap(i) with x(i)
distribute x(block)
call setup(x, r, p, n)
rsold = 0.0
do i = 1, n
  rsold = rsold + r(i) * r(i)
enddo
do t = 1, {iters}
  call matvec(ap, p, n)
  pap = 0.0
  do i = 1, n
    pap = pap + p(i) * ap(i)
  enddo
  alpha = rsold / pap
  call update(x, r, p, ap, alpha, n)
  rsnew = 0.0
  do i = 1, n
    rsnew = rsnew + r(i) * r(i)
  enddo
  beta = rsnew / rsold
  call newdir(p, r, beta, n)
  rsold = rsnew
enddo
resid = sqrt(rsold)
end

subroutine setup(x, r, p, n)
real x(n), r(n), p(n)
integer n
do i = 1, n
  x(i) = 0.0
  r(i) = f(i * 1.0)
  p(i) = r(i)
enddo
end

subroutine matvec(ap, p, n)
real ap(n), p(n)
integer n
ap(1) = {diag} * p(1) - p(2)
ap(n) = {diag} * p(n) - p(n - 1)
do i = 2, n - 1
  ap(i) = {diag} * p(i) - p(i - 1) - p(i + 1)
enddo
end

subroutine update(x, r, p, ap, alpha, n)
real x(n), r(n), p(n), ap(n)
real alpha
integer n
do i = 1, n
  x(i) = x(i) + alpha * p(i)
  r(i) = r(i) - alpha * ap(i)
enddo
end

subroutine newdir(p, r, beta, n)
real p(n), r(n)
real beta
integer n
do i = 1, n
  p(i) = r(i) + beta * p(i)
enddo
end
"""
