"""repro — Interprocedural Compilation of Fortran D for MIMD
Distributed-Memory Machines (Hall, Hiranandani, Kennedy, Tseng; SC'92).

A from-scratch reproduction: a Fortran D front end, the interprocedural
compilation pipeline (reaching decompositions, cloning, delayed
instantiation of partition/communication/remapping, overlap estimation,
recompilation analysis), and a simulated MIMD distributed-memory machine
that executes the generated SPMD node programs.

Quickstart::

    from repro import compile_program, Options, Mode

    cp = compile_program(FORTRAN_D_SOURCE, Options(nprocs=4))
    print(cp.text())              # the generated node program
    result = cp.run()             # execute on the simulated machine
    print(result.stats.summary())
    global_x = result.gathered("x")
"""

from .core import (
    CompiledProgram,
    CompileError,
    CompileReport,
    DynOpt,
    Mode,
    Options,
    RecompilationManager,
    compile_program,
)
from .interp import SPMDResult, run_sequential, run_spmd
from .lang import parse, program_str
from .machine import FAST_NETWORK, FREE, IPSC860, CostModel, Machine
from .obs import Tracer, profile_report, write_chrome_trace

__version__ = "0.1.0"

__all__ = [
    "compile_program",
    "CompiledProgram",
    "CompileReport",
    "CompileError",
    "Options",
    "Mode",
    "DynOpt",
    "RecompilationManager",
    "parse",
    "program_str",
    "run_sequential",
    "run_spmd",
    "SPMDResult",
    "Machine",
    "CostModel",
    "IPSC860",
    "FAST_NETWORK",
    "FREE",
    "Tracer",
    "write_chrome_trace",
    "profile_report",
    "__version__",
]
