"""Event-driven scheduler backend: rank state machine + calendar heap.

The cooperative backend (:mod:`repro.machine.scheduler`) already runs
exactly one rank at a time, but it still pays one OS thread per rank
and two ``threading.Event`` operations per context switch — about a
millisecond of wall clock per simulated rank before the node program
does any work, which caps experiments at toy P.  This backend removes
the threads entirely:

* rank state is a structure of arrays — a numpy ``float64`` clock
  vector and an ``int8`` state-code vector, plus a plain list of
  pending-op descriptors — instead of per-rank objects with dicts;
* the run queue is a calendar: a binary heap of ``(virtual clock,
  rank)`` entries.  A rank is pushed exactly when it becomes READY and
  popped exactly once, so the heap never holds stale entries and the
  pop order is provably identical to the cooperative scheduler's
  min-scan (a blocked or ready rank's clock is frozen until it runs);
* node programs are Python **generator coroutines**: they ``yield``
  only at a genuine blocking point — a receive with an empty queue, a
  collective they are not the last to enter — and a context switch is
  one ``gen.send(None)``.  The interpreter compiles a yielding node
  program when this backend is selected
  (:meth:`repro.interp.interpreter.Interpreter.run_events`); plain
  callable node programs are carried on a thread-backed fiber adapter
  (:class:`_FiberCoroutine`) with identical semantics.

Virtual-time arithmetic, fault injection, statistics, trace events, and
the error surface are shared with or copied verbatim from the
cooperative backend, so results are bit-identical across ``coop``,
``threads``, and ``event`` (``tests/test_scheduler_differential.py``
enforces it).  Deadlock is a native state here too — the heap is empty
while some rank is still blocked — and produces the same
:class:`~repro.machine.deadlock.DeadlockReport` reason strings.

Select with ``Machine(scheduler="event")``, ``REPRO_SCHEDULER=event``,
or ``fdc --scheduler event``.
"""

from __future__ import annotations

import heapq
import threading
import time
from typing import Any, Callable, Generator, Optional

import numpy as np

from .deadlock import (
    BLOCKED_COLLECTIVE,
    BLOCKED_RECV,
    FAILED,
    FINISHED,
    RUNNING,
    DeadlockReport,
    build_report,
)
from .machine import ProcContext
from .network import (
    AbortError,
    DeadlockError,
    SimulationError,
    resolve_timeout,
)
from .scheduler import READY, CoopCollectives, CoopNetwork

#: dispatches between wall-clock deadline probes in the event loop —
#: small enough that a ping-pong livelock dies within a fraction of a
#: second of the deadline, large enough that time.monotonic() never
#: shows up in profiles
_CHECK_EVERY = 256

#: int8 state codes for the structure-of-arrays rank state
S_READY = 0
S_RUNNING = 1
S_BLOCKED_RECV = 2
S_BLOCKED_COLL = 3
S_FINISHED = 4
S_FAILED = 5

#: code -> the deadlock module's string states (report parity)
_STATE_NAMES = {
    S_READY: READY,
    S_RUNNING: RUNNING,
    S_BLOCKED_RECV: BLOCKED_RECV,
    S_BLOCKED_COLL: BLOCKED_COLLECTIVE,
    S_FINISHED: FINISHED,
    S_FAILED: FAILED,
}


class EventScheduler:
    """The event loop: SoA rank state, the calendar heap, dispatch.

    State-transition methods mirror :class:`CoopScheduler`'s interface
    (``fail`` / ``failure_error`` / ``block_recv`` / ``unblock_recv`` /
    ``block_collective`` / ``release_collective`` / ``finish``) so
    :class:`EventNetwork` and :class:`EventCollectives` can reuse the
    cooperative implementations unchanged — the one difference is that
    blocking here *registers* the state and returns; the caller's
    generator then yields, and :meth:`run_ranks` resumes it when the
    rank is pushed back onto the heap.
    """

    def __init__(self, nprocs: int, timeout_s: Optional[float] = None,
                 tracer: Any = None, metrics: Any = None) -> None:
        self.nprocs = nprocs
        self.timeout_s = resolve_timeout(timeout_s)
        self.tracer = tracer
        self.metrics = metrics
        #: structure-of-arrays rank state
        self.clocks = np.zeros(nprocs, dtype=np.float64)
        self.states = np.full(nprocs, S_READY, dtype=np.int8)
        #: pending-op descriptor per rank: the awaited (src, tag) key or
        #: the collective label, None while runnable
        self._detail: list[object] = [None] * nprocs
        self._heap: list[tuple[float, int]] = []
        self.report: Optional[DeadlockReport] = None
        self.failed = False
        self.network: Optional["EventNetwork"] = None  # set by Machine
        self.dispatches = 0
        self.switches = 0

    # -- failure surface (identical to CoopScheduler) ----------------------

    def fail(self) -> None:
        """A rank errored: blocked ranks become dispatchable and raise
        when resumed (sequential, deterministic teardown)."""
        if self.failed:
            return
        self.failed = True
        self._push_blocked()

    def failure_error(self, fallback: SimulationError) -> SimulationError:
        """The error a torn-down rank raises: the deadlock diagnosis if
        one was declared, the secondary abort otherwise."""
        if self.report is not None:
            return DeadlockError(
                f"deadlock: {self.report.reason}\n{self.report.describe()}",
                self.report,
            )
        return fallback

    def _push_blocked(self) -> None:
        """Teardown: every blocked rank re-enters the calendar so its
        coroutine is resumed (and raises) in deterministic order."""
        for r in range(self.nprocs):
            if self.states[r] in (S_BLOCKED_RECV, S_BLOCKED_COLL):
                heapq.heappush(self._heap, (float(self.clocks[r]), r))

    def _snapshot(self) -> DeadlockReport:
        pending = self.network.pending_summary if self.network else None
        states = [_STATE_NAMES[int(s)] for s in self.states]
        clocks = [float(c) for c in self.clocks]
        return build_report(states, self._detail, clocks,
                            pending_of=pending)

    def _declare_deadlock(self) -> None:
        """The heap ran empty with ranks still blocked: the event-loop
        native deadlock state.  Declared once, with the same report the
        other backends build."""
        if self.failed or self.report is not None:
            return
        if not any(int(s) in (S_BLOCKED_RECV, S_BLOCKED_COLL)
                   for s in self.states):
            return  # everyone finished: normal termination
        self.report = self._snapshot()
        self.failed = True
        self._push_blocked()

    # -- state transitions (called by EventNetwork / EventCollectives) ----

    def block_recv(self, rank: int, key: tuple[int, int],
                   clock: float) -> None:
        """Register the blocked state; the caller's generator yields."""
        self.states[rank] = S_BLOCKED_RECV
        self._detail[rank] = key
        self.clocks[rank] = clock
        if self.metrics is not None:
            self.metrics.block_recv.inc()
        if self.tracer is not None:
            self.tracer.rank_event(
                rank, "sched.block", clock, why="recv",
                src=key[0], tag=key[1],
            )

    def block_collective(self, rank: int, label: str, clock: float) -> None:
        self.states[rank] = S_BLOCKED_COLL
        self._detail[rank] = label
        self.clocks[rank] = clock
        if self.metrics is not None:
            self.metrics.block_coll.inc()
        if self.tracer is not None:
            self.tracer.rank_event(
                rank, "sched.block", clock, why="collective", label=label,
            )

    def unblock_recv(self, dst: int, key: tuple[int, int]) -> None:
        """A send matched *dst*'s awaited key: back onto the calendar."""
        if self.states[dst] == S_BLOCKED_RECV and self._detail[dst] == key:
            self.states[dst] = S_READY
            self._detail[dst] = None
            heapq.heappush(self._heap, (float(self.clocks[dst]), dst))
            if self.tracer is not None:
                self.tracer.rank_event(
                    dst, "sched.unblock", float(self.clocks[dst]),
                    why="recv", src=key[0], tag=key[1],
                )

    def release_collective(self) -> None:
        """The last participant arrived: all waiters re-enter the
        calendar (batched delivery — one heap push per waiter, no
        thread wakeups)."""
        for r in range(self.nprocs):
            if self.states[r] == S_BLOCKED_COLL:
                self.states[r] = S_READY
                self._detail[r] = None
                heapq.heappush(self._heap, (float(self.clocks[r]), r))
                if self.tracer is not None:
                    self.tracer.rank_event(
                        r, "sched.unblock", float(self.clocks[r]),
                        why="collective",
                    )

    def finish(self, rank: int, clock: float, failed: bool = False) -> None:
        """Rank left its node program (called from the runner's
        ``finally``); the loop pops the next entry, and a deadlock this
        finish exposes is declared when the heap runs dry."""
        self.states[rank] = S_FAILED if failed else S_FINISHED
        self._detail[rank] = None
        self.clocks[rank] = clock

    def _teardown(self, coros: list[Any]) -> None:
        """Resume every live coroutine once so it observes the failure
        and exits — the same drain a declared deadlock gets from the
        main loop, run eagerly here so fiber-carried node programs
        (whose yields park a real thread) don't outlive the raise.
        Every live rank sits at a yield inside a communication op and
        raises on the resume; the loop is bounded defensively anyway."""
        self.fail()
        for _ in range(4 * self.nprocs):
            r = self._pop_runnable()
            if r is None:
                return
            self.states[r] = S_RUNNING
            try:
                coros[r].send(None)
            except StopIteration:
                continue
            except Exception:  # pragma: no cover - defensive
                continue
            # yielded again before observing the failure: one more pass
            heapq.heappush(self._heap, (float(self.clocks[r]), r))

    # -- the event loop ----------------------------------------------------

    def _pop_runnable(self) -> Optional[int]:
        heap = self._heap
        states = self.states
        failed = self.failed
        while heap:
            _t, r = heapq.heappop(heap)
            s = states[r]
            if s == S_READY or (
                failed and s in (S_BLOCKED_RECV, S_BLOCKED_COLL)
            ):
                return r
            # stale teardown entry (rank finished meanwhile): skip
        return None

    def run_ranks(self, coros: list[Any]) -> None:
        """Drive every rank coroutine to completion.

        ``coros[r].send(None)`` resumes rank *r* until it blocks
        (returns) or finishes (raises StopIteration — the runner
        wrapper has already recorded results/errors and called
        :meth:`finish` by then).
        """
        heap = self._heap
        for r in range(self.nprocs):
            heapq.heappush(heap, (0.0, r))
        tracer = self.tracer
        # Wall-clock safety net (REPRO_SIM_TIMEOUT): the calendar loop
        # runs on the calling thread, so a runaway program that keeps
        # generating events forever — e.g. one rank ping-ponging
        # messages while another stays blocked — would never hit the
        # per-park timeouts the coop/threads backends enforce.  Check
        # the deadline periodically (every _CHECK_EVERY dispatches:
        # cheap relative to one gen.send) and tear the run down with
        # the same DeadlockError surface the other backends raise.
        deadline = time.monotonic() + self.timeout_s
        unchecked = 0
        while True:
            r = self._pop_runnable()
            if r is None:
                self._declare_deadlock()  # refills the heap on deadlock
                if not heap:
                    break
                continue
            unchecked += 1
            if unchecked >= _CHECK_EVERY:
                unchecked = 0
                if time.monotonic() > deadline:
                    # snapshot the rank states *before* teardown mutates
                    # them: the report feeds the postmortem bundle
                    if self.report is None:
                        self.report = self._snapshot()
                    self._teardown(coros)
                    raise DeadlockError(
                        f"deadlock: wall-clock timeout: event loop "
                        f"still dispatching after {self.timeout_s:.1f}s "
                        f"({self.dispatches} dispatches; runaway node "
                        f"program or REPRO_SIM_TIMEOUT too low)",
                        self.report,
                    )
            self.dispatches += 1
            self.states[r] = S_RUNNING
            if tracer is not None:
                tracer.rank_event(r, "sched.dispatch", float(self.clocks[r]))
            try:
                coros[r].send(None)
            except StopIteration:
                continue
            self.switches += 1
            if self.states[r] == S_RUNNING:  # pragma: no cover - defensive
                raise SimulationError(
                    f"rank {r} yielded without blocking"
                )


class EventNetwork(CoopNetwork):
    """Point-to-point network for the event backend.

    ``send`` is inherited unchanged from :class:`CoopNetwork` — it is
    non-blocking (enqueue + ready the receiver), and the scheduler
    interface it drives is identical.  The receive side is split:
    :meth:`try_recv` performs the non-blocking match, and the blocking
    loop (retry / register-blocked / yield) lives in
    :meth:`EventProcContext.recv_y` where it can suspend.
    """

    def recv(self, dst: int, src: int, tag: int, now: float,
             origin: Optional[str] = None) -> tuple[Any, float]:
        raise SimulationError(  # pragma: no cover - defensive
            "EventNetwork.recv cannot block inline; "
            "use EventProcContext.recv / recv_y"
        )

    def try_recv(self, dst: int, src: int, tag: int, now: float,
                 origin: Optional[str] = None
                 ) -> Optional[tuple[Any, float]]:
        """Non-blocking matched receive: ``(payload, new clock)`` when a
        message is deliverable, None otherwise.  Clock arithmetic and
        the trace event are verbatim from the cooperative backend."""
        if not (0 <= src < self.nprocs):
            raise SimulationError(f"recv from invalid processor {src}")
        key = (src, tag)
        queues = self._queues[dst]
        q = queues.get(key)
        if not q:
            return None
        m = q.popleft()
        if not q:
            del queues[key]
        arrive = max(now, m.available_at)
        t = arrive + self.cost.recv_cost(m.nbytes)
        if self.metrics is not None:
            self.metrics.recv_blocked.observe(
                max(0.0, m.available_at - now)
            )
        if self.tracer is not None:
            self.tracer.rank_event(
                dst, "net.recv", now, dur=t - now, src=m.src,
                tag=tag, bytes=m.nbytes, sent_at=m.sent_at,
                avail=m.available_at,
                wait=max(0.0, m.available_at - now),
                origin=origin or m.origin,
            )
        return m.payload, t


class EventCollectives(CoopCollectives):
    """Single-rendezvous collectives as generators.

    Slot bookkeeping, completion closures, virtual-time arithmetic, and
    trace events are inherited from :class:`CoopCollectives`; only the
    blocking mechanics differ — a non-last arrival registers its
    blocked state and ``yield``s instead of parking a fiber.  The
    shared result fields keep the same overwrite-safety argument: the
    next collective cannot complete until every rank has re-entered it,
    i.e. has already read the previous result.
    """

    def _rendezvous_y(self, rank: int, label: str, now: float,
                      complete: Callable[[], Any]
                      ) -> Generator[None, None, None]:
        if self.sched.failed:
            raise self.sched.failure_error(AbortError(
                f"processor {rank} aborted inside collective {label!r} "
                f"(a peer failed or deadlocked)"
            ))
        self._clocks[rank] = now
        self._arrived += 1
        if self._arrived == self.nprocs:
            self._arrived = 0
            self._maxclock = max(self._clocks)
            if self.tracer is not None:
                self._maxrank = min(
                    r for r in range(self.nprocs)
                    if self._clocks[r] == self._maxclock
                )
            self._result = complete()
            self.sched.release_collective()
        else:
            self.sched.block_collective(rank, label, now)
            yield
            if self.sched.failed:
                raise self.sched.failure_error(AbortError(
                    f"processor {rank} aborted inside collective "
                    f"{label!r} (a peer failed or deadlocked)"
                ))

    def broadcast_y(self, rank: int, root: int, payload: Any, nbytes: int,
                    now: float, consume: Any = None,
                    origin: Optional[str] = None
                    ) -> Generator[None, None, tuple[Any, float]]:
        complete = self._begin_bcast(rank, root, payload, nbytes, consume)
        yield from self._rendezvous_y(rank, "bcast", now, complete)
        if self.metrics is not None:
            self._observe_coll(now)
        t = self._maxclock + self.topo.collective_cost(
            self.cost, self.nprocs, nbytes
        )
        if self.tracer is not None:
            self._trace_coll(rank, "bcast", now, t, nbytes, origin)
        return self._result, t

    def allreduce_y(self, rank: int, value: Any, op: str, nbytes: int,
                    now: float, origin: Optional[str] = None
                    ) -> Generator[None, None, tuple[Any, float]]:
        complete = self._begin_reduce(rank, value, op, nbytes)
        yield from self._rendezvous_y(rank, "reduce", now, complete)
        if self.metrics is not None:
            self._observe_coll(now)
        t = self._maxclock + 2 * self.topo.collective_cost(
            self.cost, self.nprocs, nbytes
        )
        if self.tracer is not None:
            self._trace_coll(rank, "reduce", now, t, nbytes, origin)
        return self._result, t

    def barrier_y(self, rank: int, now: float,
                  origin: Optional[str] = None
                  ) -> Generator[None, None, float]:
        yield from self._rendezvous_y(rank, "barrier", now, lambda: None)
        if self.metrics is not None:
            self._observe_coll(now)
        t = self._maxclock + self.topo.barrier_cost(self.cost, self.nprocs)
        if self.tracer is not None:
            self._trace_coll(rank, "barrier", now, t, 0, origin)
        return t

    def exchange_y(self, rank: int, outgoing: dict[int, Any],
                   nbytes_out: int, now: float,
                   origin: Optional[str] = None
                   ) -> Generator[None, None, tuple[dict[int, Any], float]]:
        complete = self._begin_exchange(rank, outgoing, nbytes_out)
        yield from self._rendezvous_y(rank, "exchange", now, complete)
        if self.metrics is not None:
            self._observe_coll(now)
        incoming = self._incoming_of(rank)
        t = self._maxclock + self.topo.collective_cost(
            self.cost, self.nprocs, max(nbytes_out, 1)
        )
        if self.tracer is not None:
            self._trace_coll(rank, "exchange", now, t, nbytes_out, origin)
            per_pair = nbytes_out / max(1, len(outgoing))
            for dst in sorted(outgoing):
                self.tracer.rank_event(
                    rank, "net.exchange", now, dst=dst, bytes=per_pair,
                    origin=origin,
                )
        return incoming, t


def is_event_coroutine(fn: Any) -> bool:
    """Should *fn* be driven as a rank coroutine (vs a fiber)?

    True for generator functions and for callables marked with an
    ``event_coroutine`` attribute — the tag lets non-generator
    wrappers (e.g. around generated node programs) opt in explicitly.
    """
    import inspect

    return bool(
        getattr(fn, "event_coroutine", False)
        or inspect.isgeneratorfunction(fn)
    )


class _FiberCoroutine:
    """Thread-backed coroutine adapter for plain-callable node programs.

    Presents the generator protocol the event loop drives
    (``send(None)`` resumes until the next blocking point or
    completion, raising StopIteration at the end) on top of a daemon
    thread, so node programs written as ordinary callables — tests,
    hand-written experiments — run under the event backend unchanged.
    Only one side runs at any moment: ``send`` wakes the fiber and
    waits for it to park or finish, exactly the coop backend's handoff
    discipline, so no other synchronization is needed.
    """

    def __init__(self, body: Callable[[], None], name: str,
                 timeout_s: float) -> None:
        self._body = body
        self._timeout = timeout_s
        self._resume = threading.Event()
        self._parked = threading.Event()
        self._done = False
        self._exc: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._main, name=name, daemon=True
        )
        self._started = False

    def _main(self) -> None:
        try:
            self._body()
        except BaseException as e:  # pragma: no cover - runner catches all
            self._exc = e
        finally:
            self._done = True
            self._parked.set()

    def park(self) -> None:
        """Called on the fiber thread (via ``EventProcContext._drive``)
        at a blocking point: hand control back to the event loop."""
        self._parked.set()
        if not self._resume.wait(timeout=self._timeout):
            # wall-clock safety net, mirroring CoopScheduler._park: only
            # fires if the event loop died without tearing us down
            raise DeadlockError(
                f"deadlock: wall-clock timeout: fiber "
                f"{self._thread.name} waited {self._timeout:.1f}s "
                f"for the event loop to resume it"
            )
        self._resume.clear()

    def send(self, value: None) -> None:
        """Resume the fiber until it parks or finishes."""
        if self._done:
            raise StopIteration
        if not self._started:
            self._started = True
            self._thread.start()
        else:
            self._resume.set()
        if not self._parked.wait(timeout=self._timeout + 10.0):
            raise SimulationError(  # pragma: no cover - defensive
                f"fiber {self._thread.name} neither parked nor finished"
            )
        self._parked.clear()
        if self._done:
            if self._exc is not None:  # pragma: no cover - defensive
                raise self._exc
            raise StopIteration


class EventProcContext(ProcContext):
    """Node-processor context for the event backend.

    Adds generator twins of the blocking communication ops
    (``recv_y`` / ``broadcast_y`` / ``allreduce_y`` / ``barrier_y`` /
    ``exchange_y``) that ``yield`` while blocked — the interpreter's
    event compile path drives them with ``yield from``.  The plain
    blocking methods remain available for fiber-carried callable node
    programs: they drive the same generators, parking the fiber at
    each yield, so both program styles share one implementation of the
    virtual-time arithmetic.
    """

    def __init__(self, rank: int, machine: Any) -> None:
        super().__init__(rank, machine)
        #: set by Machine._run when this rank runs on a _FiberCoroutine
        self._fiber: Optional[_FiberCoroutine] = None

    # -- generator communication ops ---------------------------------------

    def recv_y(self, src: int, tag: int, origin: Optional[str] = None
               ) -> Generator[None, None, Any]:
        self._maybe_crash()
        net = self.machine.network
        sched = self.machine._sched
        rank = self.rank
        now = self.clock
        while True:
            got = net.try_recv(rank, src, tag, now, origin=origin)
            if got is not None:
                payload, t = got
                self.clock = t
                return payload
            if sched.failed:
                raise sched.failure_error(AbortError(
                    f"processor {rank} aborted while waiting for "
                    f"(src={src}, tag={tag})"
                ))
            sched.block_recv(rank, (src, tag), now)
            yield
            if sched.failed:
                raise sched.failure_error(AbortError(
                    f"processor {rank} aborted while waiting for "
                    f"(src={src}, tag={tag})"
                ))

    def broadcast_y(self, root: int, payload: Any, nbytes: int,
                    consume: Any = None, origin: Optional[str] = None
                    ) -> Generator[None, None, Any]:
        self._maybe_crash()
        data, t = yield from self.machine.collectives.broadcast_y(
            self.rank, root, payload, nbytes, self.clock, consume=consume,
            origin=origin
        )
        self.clock = t
        return data

    def allreduce_y(self, value: Any, op: str, nbytes: int = 8,
                    origin: Optional[str] = None
                    ) -> Generator[None, None, Any]:
        self._maybe_crash()
        result, t = yield from self.machine.collectives.allreduce_y(
            self.rank, value, op, nbytes, self.clock, origin=origin
        )
        self.clock = t
        return result

    def barrier_y(self, origin: Optional[str] = None
                  ) -> Generator[None, None, None]:
        self._maybe_crash()
        self.clock = yield from self.machine.collectives.barrier_y(
            self.rank, self.clock, origin=origin
        )

    def exchange_y(self, outgoing: dict[int, Any], nbytes_out: int,
                   origin: Optional[str] = None
                   ) -> Generator[None, None, dict[int, Any]]:
        self._maybe_crash()
        incoming, t = yield from self.machine.collectives.exchange_y(
            self.rank, outgoing, nbytes_out, self.clock, origin=origin
        )
        self.clock = t
        return incoming

    # -- plain blocking ops (fiber-carried callable programs) --------------

    def _drive(self, gen: Generator[None, None, Any]) -> Any:
        """Run a communication generator to completion, parking the
        fiber at every yield.  Off-fiber (e.g. a helper probing a
        context after the run) only non-blocking completion is legal."""
        fiber = self._fiber
        try:
            while True:
                gen.send(None)
                if fiber is None:
                    gen.close()
                    raise SimulationError(
                        f"processor {self.rank}: blocking operation "
                        f"outside the event loop"
                    )
                try:
                    fiber.park()
                except BaseException:
                    gen.close()
                    raise
        except StopIteration as stop:
            return stop.value

    def recv(self, src: int, tag: int, origin: Optional[str] = None) -> Any:
        return self._drive(self.recv_y(src, tag, origin=origin))

    def broadcast(self, root: int, payload: Any, nbytes: int,
                  consume: Any = None, origin: Optional[str] = None) -> Any:
        return self._drive(self.broadcast_y(
            root, payload, nbytes, consume=consume, origin=origin
        ))

    def allreduce(self, value: Any, op: str, nbytes: int = 8,
                  origin: Optional[str] = None) -> Any:
        return self._drive(self.allreduce_y(value, op, nbytes, origin=origin))

    def barrier(self, origin: Optional[str] = None) -> None:
        return self._drive(self.barrier_y(origin=origin))

    def exchange(self, outgoing: dict[int, Any], nbytes_out: int,
                 origin: Optional[str] = None) -> dict[int, Any]:
        return self._drive(self.exchange_y(
            outgoing, nbytes_out, origin=origin
        ))
