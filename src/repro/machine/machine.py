"""The simulated MIMD distributed-memory machine.

A :class:`Machine` runs one Python thread per node processor.  Each node
sees a :class:`ProcContext` — its rank, virtual clock, and communication
primitives — and runs the same node program (SPMD).  Exceptions on any
node abort the whole run and are re-raised on the caller's thread.
"""

from __future__ import annotations

import threading
import traceback
from typing import Any, Callable

from .costmodel import CostModel, IPSC860
from .network import CollectiveContext, Network, SimulationError
from .stats import RunStats


class ProcContext:
    """One node processor: rank, virtual clock, and communication ops.

    Compute charges (``compute``/``loop_tick``/``guard_tick``) are
    *batched*: they accumulate exact integer counters and convert to
    virtual time only when the clock is observed (a communication call,
    a direct ``ctx.clock`` read, end of run).  Between observation
    points only the counter totals matter, so the scalar interpreter
    path (one ``compute`` per statement instance) and the vectorized
    block path (one ``compute`` per loop nest) produce bit-identical
    clocks, work counts, and guard statistics.  Batching also removes a
    stats-lock acquisition per guard — a measurable win for run-time
    resolution, which executes one guard per array element.
    """

    def __init__(self, rank: int, machine: "Machine") -> None:
        self.rank = rank
        self.machine = machine
        self._clock = 0.0  # virtual µs (flushed)
        self._work = 0.0   # scalar operations executed (flushed)
        self.cost = machine.cost
        # pending (unflushed) charges — exact counts, not times
        self._ops = 0        # compute ops
        self._loops = 0      # loop iterations
        self._guard_ops = 0  # guard condition ops
        self._guards = 0     # guard evaluations (for RunStats)

    @property
    def nprocs(self) -> int:
        return self.machine.nprocs

    @property
    def stats(self) -> RunStats:
        return self.machine.stats

    # -- virtual clock -------------------------------------------------------

    def _flush(self) -> None:
        """Convert pending charges to time in a fixed order (the order is
        part of the bit-for-bit contract between execution paths)."""
        if self._ops:
            self._clock += self._ops * self.cost.flop
            self._work += self._ops
            self._ops = 0
        if self._loops:
            self._clock += self._loops * self.cost.loop_overhead
            self._loops = 0
        if self._guard_ops:
            self._clock += self._guard_ops * self.cost.flop
            self._guard_ops = 0
        if self._guards:
            self.stats.record_guards(self._guards)
            self._guards = 0

    @property
    def clock(self) -> float:
        self._flush()
        return self._clock

    @clock.setter
    def clock(self, value: float) -> None:
        self._flush()
        self._clock = value

    @property
    def work(self) -> float:
        self._flush()
        return self._work

    # -- computation --------------------------------------------------------

    def compute(self, ops: float) -> None:
        """Charge *ops* scalar operations (batched)."""
        self._ops += ops

    def loop_tick(self, iters: int = 1) -> None:
        self._loops += iters

    def guard_tick(self, ops: float = 1.0, count: int = 1) -> None:
        self._guard_ops += ops
        self._guards += count

    # -- point-to-point ------------------------------------------------------

    def send(self, dst: int, tag: int, payload: Any, nbytes: int) -> None:
        self.clock = self.machine.network.send(
            self.rank, dst, tag, payload, nbytes, self.clock
        )

    def recv(self, src: int, tag: int) -> Any:
        payload, self.clock = self.machine.network.recv(
            self.rank, src, tag, self.clock
        )
        return payload

    # -- collectives ----------------------------------------------------------

    def broadcast(self, root: int, payload: Any, nbytes: int,
                  consume: Any = None) -> Any:
        data, self.clock = self.machine.collectives.broadcast(
            self.rank, root, payload, nbytes, self.clock, consume=consume
        )
        return data

    def allreduce(self, value: Any, op: str, nbytes: int = 8) -> Any:
        result, self.clock = self.machine.collectives.allreduce(
            self.rank, value, op, nbytes, self.clock
        )
        return result

    def barrier(self) -> None:
        self.clock = self.machine.collectives.barrier(self.rank, self.clock)

    def exchange(self, outgoing: dict[int, Any], nbytes_out: int) -> dict[int, Any]:
        incoming, self.clock = self.machine.collectives.exchange(
            self.rank, outgoing, nbytes_out, self.clock
        )
        return incoming


class Machine:
    """P simulated node processors plus network and collectives."""

    def __init__(
        self,
        nprocs: int,
        cost: CostModel = IPSC860,
        timeout_s: float = 60.0,
    ) -> None:
        if nprocs < 1:
            raise ValueError("need at least one processor")
        self.nprocs = nprocs
        self.cost = cost
        self.stats = RunStats(nprocs=nprocs)
        self.network = Network(nprocs, cost, self.stats, timeout_s)
        self.collectives = CollectiveContext(
            nprocs, cost, self.stats, timeout_s
        )

    def run(self, node_program: Callable[[ProcContext], Any]) -> list[Any]:
        """Run *node_program* on every node; returns per-rank results.

        The first exception raised on any node aborts the run and is
        re-raised here with the failing rank noted.
        """
        contexts = [ProcContext(r, self) for r in range(self.nprocs)]
        results: list[Any] = [None] * self.nprocs
        errors: list[tuple[int, BaseException, str]] = []
        lock = threading.Lock()

        def runner(ctx: ProcContext) -> None:
            try:
                results[ctx.rank] = node_program(ctx)
            except BaseException as e:  # noqa: BLE001 - reported to caller
                with lock:
                    errors.append((ctx.rank, e, traceback.format_exc()))
                self.network.fail()
                # break the collective barrier so peers don't hang
                try:
                    self.collectives._barrier.abort()
                except Exception:
                    pass
            finally:
                self.stats.record_proc_time(ctx.rank, ctx.clock)
                self.stats.record_proc_work(ctx.rank, ctx.work)

        if self.nprocs == 1:
            runner(contexts[0])
        else:
            threads = [
                threading.Thread(
                    target=runner, args=(c,), name=f"node-{c.rank}",
                    daemon=True,
                )
                for c in contexts
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        if errors:
            rank, exc, tb = errors[0]
            if isinstance(exc, SimulationError):
                raise SimulationError(f"[node {rank}] {exc}") from exc
            raise SimulationError(
                f"node {rank} failed: {exc}\n{tb}"
            ) from exc
        return results
