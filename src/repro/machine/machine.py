"""The simulated MIMD distributed-memory machine.

A :class:`Machine` runs one Python thread per node processor.  Each node
sees a :class:`ProcContext` — its rank, virtual clock, and communication
primitives — and runs the same node program (SPMD).  Exceptions on any
node abort the whole run and are re-raised on the caller's thread.
"""

from __future__ import annotations

import threading
import traceback
from typing import Any, Callable

from .costmodel import CostModel, IPSC860
from .network import CollectiveContext, Network, SimulationError
from .stats import RunStats


class ProcContext:
    """One node processor: rank, virtual clock, and communication ops."""

    def __init__(self, rank: int, machine: "Machine") -> None:
        self.rank = rank
        self.machine = machine
        self.clock = 0.0  # virtual µs
        self.work = 0.0   # scalar operations executed (compute only)
        self.cost = machine.cost

    @property
    def nprocs(self) -> int:
        return self.machine.nprocs

    @property
    def stats(self) -> RunStats:
        return self.machine.stats

    # -- computation --------------------------------------------------------

    def compute(self, ops: float) -> None:
        """Advance the clock by *ops* scalar operations."""
        self.clock += ops * self.cost.flop
        self.work += ops

    def loop_tick(self, iters: int = 1) -> None:
        self.clock += iters * self.cost.loop_overhead

    def guard_tick(self, ops: float = 1.0) -> None:
        self.clock += ops * self.cost.flop
        self.stats.record_guards()

    # -- point-to-point ------------------------------------------------------

    def send(self, dst: int, tag: int, payload: Any, nbytes: int) -> None:
        self.clock = self.machine.network.send(
            self.rank, dst, tag, payload, nbytes, self.clock
        )

    def recv(self, src: int, tag: int) -> Any:
        payload, self.clock = self.machine.network.recv(
            self.rank, src, tag, self.clock
        )
        return payload

    # -- collectives ----------------------------------------------------------

    def broadcast(self, root: int, payload: Any, nbytes: int) -> Any:
        data, self.clock = self.machine.collectives.broadcast(
            self.rank, root, payload, nbytes, self.clock
        )
        return data

    def allreduce(self, value: Any, op: str, nbytes: int = 8) -> Any:
        result, self.clock = self.machine.collectives.allreduce(
            self.rank, value, op, nbytes, self.clock
        )
        return result

    def barrier(self) -> None:
        self.clock = self.machine.collectives.barrier(self.rank, self.clock)

    def exchange(self, outgoing: dict[int, Any], nbytes_out: int) -> dict[int, Any]:
        incoming, self.clock = self.machine.collectives.exchange(
            self.rank, outgoing, nbytes_out, self.clock
        )
        return incoming


class Machine:
    """P simulated node processors plus network and collectives."""

    def __init__(
        self,
        nprocs: int,
        cost: CostModel = IPSC860,
        timeout_s: float = 60.0,
    ) -> None:
        if nprocs < 1:
            raise ValueError("need at least one processor")
        self.nprocs = nprocs
        self.cost = cost
        self.stats = RunStats(nprocs=nprocs)
        self.network = Network(nprocs, cost, self.stats, timeout_s)
        self.collectives = CollectiveContext(
            nprocs, cost, self.stats, timeout_s
        )

    def run(self, node_program: Callable[[ProcContext], Any]) -> list[Any]:
        """Run *node_program* on every node; returns per-rank results.

        The first exception raised on any node aborts the run and is
        re-raised here with the failing rank noted.
        """
        contexts = [ProcContext(r, self) for r in range(self.nprocs)]
        results: list[Any] = [None] * self.nprocs
        errors: list[tuple[int, BaseException, str]] = []
        lock = threading.Lock()

        def runner(ctx: ProcContext) -> None:
            try:
                results[ctx.rank] = node_program(ctx)
            except BaseException as e:  # noqa: BLE001 - reported to caller
                with lock:
                    errors.append((ctx.rank, e, traceback.format_exc()))
                self.network.fail()
                # break the collective barrier so peers don't hang
                try:
                    self.collectives._barrier.abort()
                except Exception:
                    pass
            finally:
                self.stats.record_proc_time(ctx.rank, ctx.clock)
                self.stats.record_proc_work(ctx.rank, ctx.work)

        if self.nprocs == 1:
            runner(contexts[0])
        else:
            threads = [
                threading.Thread(
                    target=runner, args=(c,), name=f"node-{c.rank}",
                    daemon=True,
                )
                for c in contexts
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        if errors:
            rank, exc, tb = errors[0]
            if isinstance(exc, SimulationError):
                raise SimulationError(f"[node {rank}] {exc}") from exc
            raise SimulationError(
                f"node {rank} failed: {exc}\n{tb}"
            ) from exc
        return results
