"""The simulated MIMD distributed-memory machine.

A :class:`Machine` runs the same node program (SPMD) on every simulated
processor; each node sees a :class:`ProcContext` — its rank, virtual
clock, and communication primitives.  The default backend is the
cooperative run-to-block scheduler (:mod:`repro.machine.scheduler`);
``scheduler="threads"`` selects the free-running thread-per-rank oracle.
Exceptions on any node abort the whole run: the remaining ranks are
signalled and raise at their next network operation, every node thread
is joined with a bound, and the *first* failure by virtual time is
re-raised on the caller's thread (secondary teardown aborts never shadow
the primary error).

Resilience hooks:

* ``faults=`` — a :class:`~repro.machine.faults.FaultPlan` injecting
  deterministic delay jitter, drops-with-retransmit, per-rank compute
  slowdowns, and crash-at-clock faults (``REPRO_FAULTS`` when unset);
* ``timeout_s=`` — the wall-clock safety-net timeout
  (``REPRO_SIM_TIMEOUT`` when unset; deadlocks are normally detected
  instantly by the wait-for graph, long before this fires).
"""

from __future__ import annotations

import threading
import time
import traceback
from typing import Any, Callable, Optional

from .costmodel import CostModel, IPSC860
from .deadlock import DeadlockDetector, DeadlockReport
from .faults import FaultPlan
from .network import (
    AbortError,
    CollectiveContext,
    Network,
    SimulationError,
)
from .scheduler import (
    CoopCollectives,
    CoopNetwork,
    CoopScheduler,
    resolve_scheduler,
)
from .stats import RunStats
from .topology import Topology, resolve_topology
from ..obs import resolve_trace
from ..obs.flightrec import (
    FlightRecorder,
    dump_postmortem,
    flightrec_capacity,
)
from ..obs.metrics import SimMetrics, resolve_metrics


class ProcContext:
    """One node processor: rank, virtual clock, and communication ops.

    Compute charges (``compute``/``loop_tick``/``guard_tick``) are
    *batched*: they accumulate exact integer counters and convert to
    virtual time only when the clock is observed (a communication call,
    a direct ``ctx.clock`` read, end of run).  Between observation
    points only the counter totals matter, so the scalar interpreter
    path (one ``compute`` per statement instance) and the vectorized
    block path (one ``compute`` per loop nest) produce bit-identical
    clocks, work counts, and guard statistics.  Batching also removes a
    stats-lock acquisition per guard — a measurable win for run-time
    resolution, which executes one guard per array element.
    """

    def __init__(self, rank: int, machine: "Machine") -> None:
        self.rank = rank
        self.machine = machine
        self._clock = 0.0  # virtual µs (flushed)
        self._work = 0.0   # scalar operations executed (flushed)
        self.cost = machine.cost
        # pending (unflushed) charges — exact counts, not times
        self._ops = 0        # compute ops
        self._loops = 0      # loop iterations
        self._guard_ops = 0  # guard condition ops
        self._guards = 0     # guard evaluations (for RunStats)
        # fault-injection state for this rank
        f = machine.faults
        self._slow = f.rank_slowdown(rank) if f is not None else 1.0
        self._crash_at = f.crash_clock(rank) if f is not None else None

    @property
    def nprocs(self) -> int:
        return self.machine.nprocs

    @property
    def stats(self) -> RunStats:
        return self.machine.stats

    # -- virtual clock -------------------------------------------------------

    def _flush(self) -> None:
        """Convert pending charges to time in a fixed order (the order is
        part of the bit-for-bit contract between execution paths)."""
        if self._ops:
            self._clock += self._ops * self.cost.flop * self._slow
            self._work += self._ops
            self._ops = 0
        if self._loops:
            self._clock += self._loops * self.cost.loop_overhead * self._slow
            self._loops = 0
        if self._guard_ops:
            self._clock += self._guard_ops * self.cost.flop * self._slow
            self._guard_ops = 0
        if self._guards:
            self.stats.record_guards(self._guards)
            self._guards = 0

    def _maybe_crash(self) -> None:
        """Injected crash-at-clock fault, checked at communication
        points (so a crash surfaces within one virtual exchange)."""
        if self._crash_at is None:
            return
        self._flush()
        if self._clock >= self._crash_at:
            at = self._crash_at
            self._crash_at = None
            raise SimulationError(
                f"injected crash: rank {self.rank} failed at virtual "
                f"clock {self._clock:.3f} µs (crash scheduled at {at:g})"
            )

    def clock_estimate(self) -> float:
        """The clock a flush *would* produce, without performing one.

        Trace instrumentation must use this instead of ``clock``: an
        actual flush at a trace point would change the floating-point
        summation order of the batched charges and perturb the
        simulation, breaking the traced-vs-untraced bit-identity
        contract.  Mirrors the additive order of :meth:`_flush`.
        """
        t = self._clock
        if self._ops:
            t += self._ops * self.cost.flop * self._slow
        if self._loops:
            t += self._loops * self.cost.loop_overhead * self._slow
        if self._guard_ops:
            t += self._guard_ops * self.cost.flop * self._slow
        return t

    @property
    def tracer(self):
        return self.machine.tracer

    @property
    def clock(self) -> float:
        self._flush()
        return self._clock

    @clock.setter
    def clock(self, value: float) -> None:
        self._flush()
        self._clock = value

    @property
    def work(self) -> float:
        self._flush()
        return self._work

    # -- computation --------------------------------------------------------

    def compute(self, ops: float) -> None:
        """Charge *ops* scalar operations (batched)."""
        self._ops += ops

    def loop_tick(self, iters: int = 1) -> None:
        self._loops += iters

    def guard_tick(self, ops: float = 1.0, count: int = 1) -> None:
        self._guard_ops += ops
        self._guards += count

    # -- point-to-point ------------------------------------------------------

    def send(self, dst: int, tag: int, payload: Any, nbytes: int,
             origin: Optional[str] = None) -> None:
        self._maybe_crash()
        self.clock = self.machine.network.send(
            self.rank, dst, tag, payload, nbytes, self.clock, origin=origin
        )

    def recv(self, src: int, tag: int, origin: Optional[str] = None) -> Any:
        self._maybe_crash()
        payload, self.clock = self.machine.network.recv(
            self.rank, src, tag, self.clock, origin=origin
        )
        return payload

    # -- collectives ----------------------------------------------------------

    def broadcast(self, root: int, payload: Any, nbytes: int,
                  consume: Any = None, origin: Optional[str] = None) -> Any:
        self._maybe_crash()
        data, self.clock = self.machine.collectives.broadcast(
            self.rank, root, payload, nbytes, self.clock, consume=consume,
            origin=origin
        )
        return data

    def allreduce(self, value: Any, op: str, nbytes: int = 8,
                  origin: Optional[str] = None) -> Any:
        self._maybe_crash()
        result, self.clock = self.machine.collectives.allreduce(
            self.rank, value, op, nbytes, self.clock, origin=origin
        )
        return result

    def barrier(self, origin: Optional[str] = None) -> None:
        self._maybe_crash()
        self.clock = self.machine.collectives.barrier(
            self.rank, self.clock, origin=origin
        )

    def exchange(self, outgoing: dict[int, Any], nbytes_out: int,
                 origin: Optional[str] = None) -> dict[int, Any]:
        self._maybe_crash()
        incoming, self.clock = self.machine.collectives.exchange(
            self.rank, outgoing, nbytes_out, self.clock, origin=origin
        )
        return incoming


class Machine:
    """P simulated node processors plus network and collectives.

    Three interchangeable backends drive the node programs (selected via
    ``scheduler=`` / ``REPRO_SCHEDULER``, default ``coop``):

    * ``coop`` — the cooperative run-to-block scheduler
      (:mod:`repro.machine.scheduler`): one rank executes at a time,
      dispatched in deterministic (virtual time, rank) order, with no
      locks and single-rendezvous collectives;
    * ``event`` — the event-driven rank state machine
      (:mod:`repro.machine.event`): the same dispatch order driven by a
      calendar heap over generator coroutines, scaling to thousands of
      ranks;
    * ``threads`` — the free-running thread-per-rank oracle.

    Results, virtual clocks, and message/byte statistics are
    bit-identical across backends (virtual time is dataflow-determined;
    ``tests/test_scheduler_differential.py`` enforces it).

    The interconnect defaults to the uniform linear cost model; pass
    ``topology=`` (a name like ``"hypercube"`` / ``"torus2d:contention"``
    or a :class:`~repro.machine.topology.Topology` instance, or set
    ``REPRO_TOPOLOGY``) for hop-aware latencies, topology-shaped
    collective trees, and optional deterministic link contention.
    """

    def __init__(
        self,
        nprocs: int,
        cost: CostModel = IPSC860,
        timeout_s: Optional[float] = None,
        faults: Optional[FaultPlan] = None,
        scheduler: Optional[str] = None,
        trace: Any = None,
        topology: Any = None,
        metrics: Any = None,
    ) -> None:
        if nprocs < 1:
            raise ValueError("need at least one processor")
        self.nprocs = nprocs
        self.cost = cost
        self.faults = faults if faults is not None else FaultPlan.from_env()
        self.scheduler = resolve_scheduler(scheduler)
        self.topology: Topology = resolve_topology(topology, nprocs)
        if self.topology.contention and self.scheduler == "threads":
            # link-contention arrival times depend on send order; the
            # free-running thread backend has no deterministic one
            raise ValueError(
                "link contention requires a deterministic scheduler "
                "(coop or event), not threads"
            )
        self.stats = RunStats(nprocs=nprocs, scheduler=self.scheduler,
                              topology=self.topology.describe())
        #: the tracer the caller asked for (None for untraced runs —
        #: SPMDResult.trace mirrors this, never the flight recorder)
        self.user_tracer = resolve_trace(trace)
        self.tracer = self.user_tracer
        self.flightrec: Optional[FlightRecorder] = None
        if self.tracer is None and trace is not False:
            # always-on flight recorder: a bounded ring of recent
            # events per rank, so a run that dies leaves a postmortem
            # even though nobody requested a trace (REPRO_FLIGHTREC=0
            # disables, a number resizes the rings)
            cap = flightrec_capacity()
            if cap > 0:
                self.flightrec = FlightRecorder(nprocs, capacity=cap)
                self.tracer = self.flightrec
        self.metrics = resolve_metrics(metrics)
        self.sim_metrics: Optional[SimMetrics] = (
            None if self.metrics is None
            else SimMetrics(self.metrics, backend=self.scheduler,
                            topology=self.topology.describe())
        )
        if self.tracer is not None:
            self.tracer.ensure_ranks(nprocs)
            self.tracer.meta.update(
                nprocs=nprocs, scheduler=self.scheduler, cost=str(cost),
            )
            if not self.topology.is_uniform:
                self.tracer.meta["topology"] = self.topology.describe()
            if self.faults is not None:
                self.tracer.meta["faults"] = str(self.faults)
        if self.scheduler == "coop":
            self.detector = None
            self._sched = CoopScheduler(nprocs, timeout_s,
                                        tracer=self.tracer,
                                        metrics=self.sim_metrics)
            self.network = CoopNetwork(
                nprocs, cost, self.stats, timeout_s,
                faults=self.faults, scheduler=self._sched,
                tracer=self.tracer, topology=self.topology,
                metrics=self.sim_metrics,
            )
            self.collectives = CoopCollectives(
                nprocs, cost, self.stats, self._sched, tracer=self.tracer,
                topology=self.topology, metrics=self.sim_metrics,
            )
            self._sched.network = self.network
        elif self.scheduler == "event":
            from .event import (
                EventCollectives,
                EventNetwork,
                EventScheduler,
            )

            self.detector = None
            self._sched = EventScheduler(nprocs, timeout_s,
                                         tracer=self.tracer,
                                         metrics=self.sim_metrics)
            self.network = EventNetwork(
                nprocs, cost, self.stats, timeout_s,
                faults=self.faults, scheduler=self._sched,
                tracer=self.tracer, topology=self.topology,
                metrics=self.sim_metrics,
            )
            self.collectives = EventCollectives(
                nprocs, cost, self.stats, self._sched, tracer=self.tracer,
                topology=self.topology, metrics=self.sim_metrics,
            )
            self._sched.network = self.network
        else:
            self._sched = None
            self.detector = DeadlockDetector(nprocs)
            self.network = Network(
                nprocs, cost, self.stats, timeout_s,
                faults=self.faults, detector=self.detector,
                tracer=self.tracer, topology=self.topology,
                metrics=self.sim_metrics,
            )
            self.collectives = CollectiveContext(
                nprocs, cost, self.stats, timeout_s,
                detector=self.detector, network=self.network,
                tracer=self.tracer, topology=self.topology,
                metrics=self.sim_metrics,
            )
            self.detector.attach(self.network, self._declare_failure)

    def _declare_failure(self, report: DeadlockReport) -> None:
        """Deadlock declared: wake every blocked rank so the run tears
        down (they raise DeadlockError/AbortError at their wait)."""
        self.network.fail()
        self.collectives.abort()

    @property
    def deadlock_report(self) -> Optional[DeadlockReport]:
        if self._sched is not None:
            return self._sched.report
        return self.detector.report

    def run(self, node_program: Callable[[ProcContext], Any]) -> list[Any]:
        """Run *node_program* on every node; returns per-rank results.

        *node_program* is either one callable shared by every rank or a
        sequence of per-rank callables (e.g. generated node programs,
        which differ per rank class).  On failure the remaining ranks
        are aborted at their next network operation, all node threads
        are joined with a bound, and the first error *by virtual time*
        is re-raised (teardown aborts are only raised when no primary
        error exists).
        """
        t0 = time.perf_counter()
        failure: Optional[BaseException] = None
        try:
            return self._run(node_program)
        except SimulationError as e:
            failure = e
            raise
        finally:
            sched = self._sched
            self.stats.record_run(
                self.scheduler, time.perf_counter() - t0,
                dispatches=sched.dispatches if sched else self.nprocs,
                switches=sched.switches if sched else 0,
            )
            if self.sim_metrics is not None:
                self.sim_metrics.record_run(self.stats,
                                            failed=failure is not None)
                self.stats.record_metrics(self.metrics.snapshot())
            if failure is not None:
                # postmortem bundle (REPRO_POSTMORTEM_DIR; best-effort,
                # never masks the error being raised)
                dump_postmortem(
                    "simulation-error",
                    error=failure,
                    report=getattr(failure, "report", None)
                    or self.deadlock_report,
                    stats=self.stats,
                    recorder=self.tracer,
                    metrics=self.metrics,
                    extra={
                        "nprocs": self.nprocs,
                        "scheduler": self.scheduler,
                        "topology": self.topology.describe(),
                    },
                )

    def _run(self, node_program: Callable[[ProcContext], Any]) -> list[Any]:
        if self.scheduler == "event":
            from .event import EventProcContext

            ctx_cls: Any = EventProcContext
        else:
            ctx_cls = ProcContext
        contexts = [ctx_cls(r, self) for r in range(self.nprocs)]
        if isinstance(node_program, (list, tuple)):
            if len(node_program) != self.nprocs:
                raise ValueError(
                    f"need {self.nprocs} node programs, "
                    f"got {len(node_program)}"
                )
            programs = list(node_program)
        else:
            programs = [node_program] * self.nprocs
        results: list[Any] = [None] * self.nprocs
        #: (secondary, clock, rank, exc, tb) per failed rank
        errors: list[tuple[bool, float, int, BaseException, str]] = []
        lock = threading.Lock()

        def runner(ctx: ProcContext) -> None:
            failed = False
            try:
                results[ctx.rank] = programs[ctx.rank](ctx)
            except BaseException as e:  # noqa: BLE001 - reported to caller
                failed = True
                secondary = isinstance(e, AbortError)
                with lock:
                    errors.append(
                        (secondary, ctx.clock, ctx.rank, e,
                         traceback.format_exc())
                    )
                self.network.fail()
                # break the collective barrier so peers don't hang
                self.collectives.abort()
            finally:
                self.stats.record_proc_time(ctx.rank, ctx.clock)
                self.stats.record_proc_work(ctx.rank, ctx.work)
                # a finished/failed rank may leave peers unwakeable:
                # both backends declare that deadlock immediately (the
                # coop scheduler also hands the CPU onward here)
                if self._sched is not None:
                    self._sched.finish(ctx.rank, ctx.clock, failed=failed)
                else:
                    self.detector.finish(ctx.rank, ctx.clock, failed=failed)

        leaked: list[str] = []
        if self.scheduler == "event":
            self._run_events(programs, contexts, results, errors, lock,
                             runner)
        elif self.nprocs == 1:
            runner(contexts[0])
        elif self._sched is not None:
            leaked = self._sched.run_fibers(
                [lambda c=c: runner(c) for c in contexts]
            )
        else:
            threads = [
                threading.Thread(
                    target=runner, args=(c,), name=f"node-{c.rank}",
                    daemon=True,
                )
                for c in contexts
            ]
            for t in threads:
                t.start()
            # bounded join: every rank either finishes, or raises at its
            # next network operation once a failure is declared
            deadline = time.monotonic() + self.network.timeout_s + 10.0
            for t in threads:
                t.join(timeout=max(0.1, deadline - time.monotonic()))
            leaked = [t.name for t in threads if t.is_alive()]
            if leaked:  # pragma: no cover - defensive: should not happen
                self.network.fail()
                self.collectives.abort()
                for t in threads:
                    t.join(timeout=1.0)
                leaked = [t.name for t in threads if t.is_alive()]
        if leaked and not errors:  # pragma: no cover - defensive
            raise SimulationError(
                f"node threads failed to terminate: {leaked}"
            )
        return self._raise_or_results(errors, results)

    def _run_events(
        self,
        programs: list[Callable[[ProcContext], Any]],
        contexts: list[ProcContext],
        results: list[Any],
        errors: list[tuple[bool, float, int, BaseException, str]],
        lock: threading.Lock,
        runner: Callable[[ProcContext], None],
    ) -> None:
        """Drive the run on the event backend.  Generator node programs
        (the interpreter's event compile path, generated modules' event
        variants, or any generator function) become rank coroutines
        directly; plain callables are carried on thread-backed fibers
        with identical semantics."""
        from .event import _FiberCoroutine, is_event_coroutine

        sched = self._sched
        if is_event_coroutine(programs[0]):
            def runner_gen(ctx: ProcContext):
                failed = False
                try:
                    results[ctx.rank] = yield from programs[ctx.rank](ctx)
                except BaseException as e:  # noqa: BLE001 - see runner
                    failed = True
                    secondary = isinstance(e, AbortError)
                    with lock:
                        errors.append(
                            (secondary, ctx.clock, ctx.rank, e,
                             traceback.format_exc())
                        )
                    self.network.fail()
                    self.collectives.abort()
                finally:
                    self.stats.record_proc_time(ctx.rank, ctx.clock)
                    self.stats.record_proc_work(ctx.rank, ctx.work)
                    sched.finish(ctx.rank, ctx.clock, failed=failed)

            coros: list[Any] = [runner_gen(c) for c in contexts]
        else:
            coros = []
            for c in contexts:
                fiber = _FiberCoroutine(
                    (lambda c=c: runner(c)), name=f"node-{c.rank}",
                    timeout_s=self.network.timeout_s,
                )
                c._fiber = fiber
                coros.append(fiber)
        sched.run_ranks(coros)

    def _raise_or_results(
        self,
        errors: list[tuple[bool, float, int, BaseException, str]],
        results: list[Any],
    ) -> list[Any]:
        if errors:
            # primary failures (real errors, deadlock declarations)
            # outrank secondary teardown aborts; ties break on virtual
            # time then rank, so the report is deterministic
            errors.sort(key=lambda e: (e[0], e[1], e[2]))
            _secondary, _clock, rank, exc, tb = errors[0]
            report = getattr(exc, "report", None)
            if isinstance(exc, SimulationError):
                err = SimulationError(f"[node {rank}] {exc}")
                err.report = report
                raise err from exc
            err = SimulationError(f"node {rank} failed: {exc}\n{tb}")
            err.report = report
            raise err from exc
        return results
