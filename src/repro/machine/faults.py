"""Deterministic fault injection for the simulated machine.

A :class:`FaultPlan` perturbs a run without breaking its semantics:

* **delay jitter** — a fraction of messages arrive later (extra virtual
  latency on ``available_at``);
* **drops with retransmit** — a transmission attempt may be lost; the
  (modeled) reliable transport retransmits after an exponentially
  backed-off virtual timeout, so the message still arrives, just later;
* **per-rank slowdowns** — a rank's compute charges cost more virtual
  time (load imbalance / a slow node);
* **crash-at-clock** — a rank dies with a :class:`SimulationError` the
  first time its virtual clock reaches the given time at a
  communication point.

Everything is a pure function of the plan's seed and the *identity* of
the event (message ``(src, dst, tag)`` plus its per-key sequence
number), never of thread scheduling or wall time.  Two runs of the same
program under the same plan therefore inject byte-for-byte the same
faults, and — because delays and retransmits only move virtual arrival
times — results and message/byte counts stay bit-identical to the
fault-free run.  Only virtual clocks (and crashes, which abort the run)
may differ.

A plan comes from the API (``Machine(faults=FaultPlan(...))``), the CLI
(``--faults SPEC --fault-seed N``) or the environment (``REPRO_FAULTS``
/ ``REPRO_FAULT_SEED``).  The spec grammar is comma-separated clauses::

    delay=P:MAXUS     jitter: probability P, up to MAXUS extra µs
    drop=P            per-transmission drop probability
    retry=US          base retransmit timeout in virtual µs (default 200)
    slow=RANK:F       rank RANK computes F times slower
    crash=RANK@CLOCK  rank RANK crashes at virtual clock CLOCK µs

e.g. ``REPRO_FAULTS="delay=0.5:80,drop=0.1,slow=1:2.0"``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

_MASK = (1 << 64) - 1


def _u01(seed: int, *vals: int) -> float:
    """Deterministic uniform [0, 1) from a seed and integer event
    identity (splitmix64-style finalizer; no global RNG state)."""
    x = (seed * 0x9E3779B97F4A7C15) & _MASK
    for v in vals:
        x = ((x ^ (v & _MASK)) * 0x100000001B3) & _MASK
        x ^= x >> 33
    x = (x + 0x9E3779B97F4A7C15) & _MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
    x ^= x >> 31
    return x / 2.0**64


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, reproducible schedule of injected faults."""

    seed: int = 0
    #: probability that a message gets extra latency, and its maximum
    delay_prob: float = 0.0
    delay_max_us: float = 0.0
    #: per-transmission-attempt drop probability (retransmitted)
    drop_prob: float = 0.0
    #: base virtual retransmit timeout; attempt k backs off by 2**k
    retry_timeout_us: float = 200.0
    #: hard cap on retransmissions of one message
    max_retries: int = 8
    #: rank -> compute slowdown factor (>= 1.0 slows the rank down)
    slowdown: dict[int, float] = field(default_factory=dict)
    #: rank -> virtual clock (µs) at which the rank crashes
    crash_at: dict[int, float] = field(default_factory=dict)

    # -- queries -----------------------------------------------------------

    @property
    def affects_messages(self) -> bool:
        return self.delay_prob > 0.0 or self.drop_prob > 0.0

    def message_faults(
        self, src: int, dst: int, tag: int, seq: int
    ) -> tuple[float, int]:
        """Extra virtual latency and retransmit count for the *seq*-th
        message on the ``(src, dst, tag)`` stream."""
        extra = 0.0
        retries = 0
        if self.delay_prob > 0.0:
            if _u01(self.seed, 1, src, dst, tag, seq) < self.delay_prob:
                extra += _u01(self.seed, 2, src, dst, tag, seq) \
                    * self.delay_max_us
        if self.drop_prob > 0.0:
            while retries < self.max_retries and _u01(
                self.seed, 3, src, dst, tag, seq, retries
            ) < self.drop_prob:
                extra += self.retry_timeout_us * (2 ** retries)
                retries += 1
        return extra, retries

    def rank_slowdown(self, rank: int) -> float:
        return self.slowdown.get(rank, 1.0)

    def crash_clock(self, rank: int):
        return self.crash_at.get(rank)

    # -- construction ------------------------------------------------------

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Build a plan from the clause grammar documented above."""
        kw: dict = {"seed": seed, "slowdown": {}, "crash_at": {}}
        for clause in spec.split(","):
            clause = clause.strip()
            if not clause:
                continue
            try:
                key, _, val = clause.partition("=")
                key = key.strip()
                if key == "delay":
                    p, _, m = val.partition(":")
                    kw["delay_prob"] = float(p)
                    kw["delay_max_us"] = float(m) if m else 100.0
                elif key == "drop":
                    kw["drop_prob"] = float(val)
                elif key == "retry":
                    kw["retry_timeout_us"] = float(val)
                elif key == "slow":
                    r, _, f = val.partition(":")
                    kw["slowdown"][int(r)] = float(f)
                elif key == "crash":
                    r, _, t = val.partition("@")
                    kw["crash_at"][int(r)] = float(t)
                else:
                    raise ValueError(f"unknown fault clause {key!r}")
            except (ValueError, TypeError) as e:
                raise ValueError(
                    f"bad fault spec clause {clause!r}: {e}"
                ) from None
        return cls(**kw)

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        """Plan described by ``REPRO_FAULTS`` (None when unset/empty)."""
        spec = os.environ.get("REPRO_FAULTS", "").strip()
        if not spec:
            return None
        seed = int(os.environ.get("REPRO_FAULT_SEED", "0"))
        return cls.parse(spec, seed)
