"""Execution statistics collected by the machine simulator.

Message counts and byte volumes are exact; times follow the
:class:`~repro.machine.costmodel.CostModel`.  These are the quantities the
benchmark harness reports for every reproduced table/figure.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field


@dataclass
class RunStats:
    """Aggregate statistics of one SPMD run."""

    nprocs: int = 1
    messages: int = 0            # point-to-point messages
    bytes: int = 0               # point-to-point payload bytes
    collectives: int = 0         # broadcast/reduce operations
    collective_bytes: int = 0
    remaps: int = 0              # physical remap operations
    remap_bytes: int = 0
    flops: float = 0.0           # scalar operations executed (all procs)
    guards: int = 0              # guard (IF) evaluations executed
    #: injected-fault bookkeeping (never part of messages/bytes: faults
    #: move virtual arrival times, they do not create protocol traffic)
    faulted_messages: int = 0    # messages that were delayed or dropped
    retransmits: int = 0         # retransmission attempts simulated
    proc_times: dict[int, float] = field(default_factory=dict)  # µs
    #: scalar operations executed per processor (pure compute work,
    #: excluding waiting -- exposes load imbalance that collective
    #: synchronization hides in the clocks)
    proc_work: dict[int, float] = field(default_factory=dict)
    #: scheduler-backend bookkeeping (host-side observability; never
    #: part of the simulated quantities above)
    scheduler: str = ""          # backend that produced this run
    topology: str = "uniform"    # interconnect topology (+":contention")
    host_cpus: int = field(default_factory=lambda: os.cpu_count() or 1)
    wall_s: float = 0.0          # host wall clock of Machine.run
    dispatches: int = 0          # rank dispatches (coop/event) / starts
    switches: int = 0            # context switches (coop/event only)
    #: interpreter communication-schedule cache (resolved sections
    #: memoized per CommAction per rank)
    comm_cache_hits: int = 0
    comm_cache_misses: int = 0
    #: generated-node-program cache (one entry per rank class) and
    #: per-procedure demotions to the interpreter
    codegen_cache_hits: int = 0
    codegen_cache_misses: int = 0
    codegen_demotions: int = 0
    #: metrics-registry snapshot stamped by the machine at end of run
    #: (None unless metrics were enabled — REPRO_METRICS / metrics=);
    #: the same schema the daemon's ``metrics`` op and the benchmark
    #: payloads carry
    metrics: dict | None = None

    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    # -- recording (thread-safe) ------------------------------------------

    def record_message(self, nbytes: int) -> None:
        with self._lock:
            self.messages += 1
            self.bytes += nbytes

    def record_collective(self, nbytes: int) -> None:
        with self._lock:
            self.collectives += 1
            self.collective_bytes += nbytes

    def record_remap(self, nbytes: int, count: int = 1) -> None:
        """Remap traffic: *nbytes* of redistribution payload and *count*
        remap operations.  Ranks report their own outgoing volume with
        ``count=0`` (summed over ranks that equals the total data
        moved); rank 0 counts the operation itself."""
        with self._lock:
            self.remaps += count
            self.remap_bytes += nbytes

    def record_exchange(self, nmsgs: int, nbytes: int) -> None:
        """All-to-all personalized exchange traffic (the remap runtime):
        *nmsgs* pairwise transfers carrying *nbytes* total payload.  They
        count as point-to-point traffic — a remap is physically a bundle
        of sends — so remap data motion is visible in ``messages`` and
        ``bytes`` like every other transfer."""
        with self._lock:
            self.messages += nmsgs
            self.bytes += nbytes

    def record_fault(self, retransmits: int = 0) -> None:
        """One message perturbed by the fault plan (delay jitter and/or
        *retransmits* dropped transmission attempts)."""
        with self._lock:
            self.faulted_messages += 1
            self.retransmits += retransmits

    def record_flops(self, n: float) -> None:
        with self._lock:
            self.flops += n

    def record_guards(self, n: int = 1) -> None:
        with self._lock:
            self.guards += n

    def record_proc_time(self, rank: int, t: float) -> None:
        with self._lock:
            self.proc_times[rank] = t

    def record_proc_work(self, rank: int, ops: float) -> None:
        with self._lock:
            self.proc_work[rank] = ops

    def record_run(self, scheduler: str, wall_s: float,
                   dispatches: int = 0, switches: int = 0) -> None:
        """Backend bookkeeping for one completed ``Machine.run``."""
        with self._lock:
            self.scheduler = scheduler
            self.wall_s = wall_s
            self.dispatches += dispatches
            self.switches += switches

    def record_comm_cache(self, hits: int, misses: int) -> None:
        """One rank's communication-schedule cache counters."""
        with self._lock:
            self.comm_cache_hits += hits
            self.comm_cache_misses += misses

    def record_metrics(self, snapshot: dict | None) -> None:
        """Attach the run's metrics snapshot (taken by the machine
        after the final bulk fold, so it reflects this run)."""
        with self._lock:
            self.metrics = snapshot

    def record_codegen(self, hits: int, misses: int,
                       demotions: int) -> None:
        """Generated-module cache counters for this run (a hit means a
        rank-class module came from the in-process memo or disk; a miss
        means it was generated) plus the demotion count."""
        with self._lock:
            self.codegen_cache_hits += hits
            self.codegen_cache_misses += misses
            self.codegen_demotions += demotions

    # -- reporting ---------------------------------------------------------

    @property
    def time_us(self) -> float:
        """Simulated makespan (max over processor virtual clocks)."""
        return max(self.proc_times.values(), default=0.0)

    @property
    def time_ms(self) -> float:
        return self.time_us / 1000.0

    @property
    def load_imbalance(self) -> float:
        """max/mean per-processor compute work (1.0 = perfectly
        balanced)."""
        if not self.proc_work:
            return 1.0
        vals = list(self.proc_work.values())
        mean = sum(vals) / len(vals)
        if mean <= 0:
            return 1.0
        return max(vals) / mean

    @property
    def total_messages(self) -> int:
        """Point-to-point plus collective operations."""
        return self.messages + self.collectives

    @property
    def total_bytes(self) -> int:
        """All payload bytes moved.  Remap traffic is already part of
        ``bytes`` (the exchange records it as point-to-point transfers);
        ``remap_bytes`` remains the per-category breakdown."""
        return self.bytes + self.collective_bytes

    def as_dict(self) -> dict:
        """JSON-ready snapshot of every recorded field plus the derived
        quantities (consumed by ``fdc --stats-json`` and the benchmark
        harness).  Taken under the lock so concurrent recorders never
        produce a torn snapshot."""
        from ..core.driver import compile_cache_stats  # deferred: cycle

        cc = compile_cache_stats()
        with self._lock:
            time_us = max(self.proc_times.values(), default=0.0)
            work = list(self.proc_work.values())
            mean = sum(work) / len(work) if work else 0.0
            imbalance = max(work) / mean if work and mean > 0 else 1.0
            return {
                "nprocs": self.nprocs,
                "messages": self.messages,
                "bytes": self.bytes,
                "collectives": self.collectives,
                "collective_bytes": self.collective_bytes,
                "remaps": self.remaps,
                "remap_bytes": self.remap_bytes,
                "flops": self.flops,
                "guards": self.guards,
                "faulted_messages": self.faulted_messages,
                "retransmits": self.retransmits,
                "proc_times": {
                    str(r): self.proc_times[r]
                    for r in sorted(self.proc_times)
                },
                "proc_work": {
                    str(r): self.proc_work[r]
                    for r in sorted(self.proc_work)
                },
                "scheduler": self.scheduler,
                "topology": self.topology,
                "host_cpus": self.host_cpus,
                "wall_s": self.wall_s,
                "dispatches": self.dispatches,
                "switches": self.switches,
                "comm_cache_hits": self.comm_cache_hits,
                "comm_cache_misses": self.comm_cache_misses,
                "codegen_cache_hits": self.codegen_cache_hits,
                "codegen_cache_misses": self.codegen_cache_misses,
                "codegen_demotions": self.codegen_demotions,
                "compile_cache_hits": cc["hits"],
                "compile_cache_misses": cc["misses"],
                "metrics": self.metrics,
                "time_us": time_us,
                "time_ms": time_us / 1000.0,
                "load_imbalance": imbalance,
                "total_messages": self.messages + self.collectives,
                "total_bytes": self.bytes + self.collective_bytes,
            }

    def summary(self) -> str:
        return (
            f"P={self.nprocs}  time={self.time_ms:.3f} ms  "
            f"msgs={self.messages}  bytes={self.bytes}  "
            f"colls={self.collectives}  remaps={self.remaps}  "
            f"guards={self.guards}"
        )

    def sched_summary(self) -> str:
        """Host-side scheduler line (``fdc --report``): which backend
        ran, how long it took on the host, and how hard the dispatch
        and comm-schedule-cache machinery worked."""
        return (
            f"scheduler={self.scheduler or '?'}  "
            f"topology={self.topology or 'uniform'}  "
            f"wall={self.wall_s:.3f} s  "
            f"dispatches={self.dispatches}  switches={self.switches}  "
            f"comm-cache={self.comm_cache_hits}/"
            f"{self.comm_cache_hits + self.comm_cache_misses} hits  "
            f"codegen={self.codegen_cache_hits}/"
            f"{self.codegen_cache_hits + self.codegen_cache_misses} hits"
            f" {self.codegen_demotions} demoted"
        )
