"""Message-passing network with virtual-time semantics.

Point-to-point messages carry a payload plus the virtual time at which
they become available at the receiver (sender clock at send + latency +
bandwidth term).  A blocking receive matches on ``(src, tag)`` and
advances the receiver's clock to ``max(own clock, arrival time)``.

Threads provide the concurrency (one per simulated node); a condition
variable per destination wakes blocked receivers.  Deadlocks (e.g. a
miscompiled program receiving a message nobody sends) surface as a
:class:`SimulationError` after a wall-clock timeout rather than a hang.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any

from .costmodel import CostModel
from .stats import RunStats


class SimulationError(Exception):
    """Deadlock or protocol error inside the simulated machine."""


@dataclass
class _Message:
    src: int
    tag: int
    payload: Any
    nbytes: int
    available_at: float  # virtual µs


class Network:
    """The interconnect shared by all node processors.

    Each destination keeps its in-flight messages in a dict keyed on
    ``(src, tag)`` with a FIFO deque per key, so a matched receive is an
    O(1) dict probe instead of a linear scan of everything queued.  A
    blocked receiver advertises the key it waits for; senders only
    notify when they deliver that exact key, so heavy cross-traffic (the
    run-time-resolution element messages) no longer wakes every blocked
    receiver once per unrelated message.
    """

    def __init__(
        self,
        nprocs: int,
        cost: CostModel,
        stats: RunStats,
        timeout_s: float = 60.0,
    ) -> None:
        self.nprocs = nprocs
        self.cost = cost
        self.stats = stats
        self.timeout_s = timeout_s
        self._queues: list[dict[tuple[int, int], deque[_Message]]] = [
            {} for _ in range(nprocs)
        ]
        self._conds = [threading.Condition() for _ in range(nprocs)]
        self._waiting: list[tuple[int, int] | None] = [None] * nprocs
        self._failed = threading.Event()

    def fail(self) -> None:
        """Wake all blocked receivers after an error elsewhere."""
        self._failed.set()
        for c in self._conds:
            with c:
                c.notify_all()

    def send(
        self, src: int, dst: int, tag: int, payload: Any, nbytes: int,
        now: float,
    ) -> float:
        """Deliver a message; returns the sender's clock after the send."""
        if not (0 <= dst < self.nprocs):
            raise SimulationError(f"send to invalid processor {dst}")
        if dst == src:
            raise SimulationError(f"processor {src} sending to itself")
        sender_after = now + self.cost.send_cost(nbytes)
        msg = _Message(src, tag, payload, nbytes,
                       now + self.cost.transfer_time(nbytes))
        key = (src, tag)
        cond = self._conds[dst]
        with cond:
            q = self._queues[dst].get(key)
            if q is None:
                q = self._queues[dst][key] = deque()
            q.append(msg)
            if self._waiting[dst] == key:
                cond.notify_all()
        self.stats.record_message(nbytes)
        return sender_after

    def recv(self, dst: int, src: int, tag: int, now: float) -> tuple[Any, float]:
        """Blocking matched receive; returns (payload, new clock)."""
        if not (0 <= src < self.nprocs):
            raise SimulationError(f"recv from invalid processor {src}")
        key = (src, tag)
        cond = self._conds[dst]
        with cond:
            queues = self._queues[dst]
            while True:
                q = queues.get(key)
                if q:
                    m = q.popleft()
                    if not q:
                        del queues[key]
                    arrive = max(now, m.available_at)
                    return m.payload, arrive + self.cost.recv_cost(m.nbytes)
                if self._failed.is_set():
                    raise SimulationError(
                        f"processor {dst} aborted while waiting for "
                        f"(src={src}, tag={tag})"
                    )
                self._waiting[dst] = key
                try:
                    arrived = cond.wait(timeout=self.timeout_s)
                finally:
                    self._waiting[dst] = None
                if not arrived:
                    self.fail()
                    raise SimulationError(
                        f"deadlock: processor {dst} waited for message "
                        f"(src={src}, tag={tag}) that never arrived"
                    )

    def pending(self, dst: int) -> int:
        with self._conds[dst]:
            return sum(len(q) for q in self._queues[dst].values())


class CollectiveContext:
    """Rendezvous helper for collectives (broadcast / reduce / barrier).

    SPMD programs execute collectives in the same order on every node, so
    a reusable barrier plus a shared slot per phase suffices.  Virtual
    time: all participants synchronize at ``max(clocks)`` then pay the
    tree cost.
    """

    def __init__(self, nprocs: int, cost: CostModel, stats: RunStats,
                 timeout_s: float = 60.0) -> None:
        self.nprocs = nprocs
        self.cost = cost
        self.stats = stats
        self.timeout_s = timeout_s
        self._barrier = threading.Barrier(nprocs)
        self._lock = threading.Lock()
        self._slots: dict[str, Any] = {}
        self._clocks: list[float] = [0.0] * nprocs

    def _sync(self) -> None:
        try:
            self._barrier.wait(timeout=self.timeout_s)
        except threading.BrokenBarrierError as e:  # pragma: no cover
            raise SimulationError(
                "collective barrier broken (a node died or deadlocked)"
            ) from e

    def broadcast(self, rank: int, root: int, payload: Any, nbytes: int,
                  now: float, consume: Any = None) -> tuple[Any, float]:
        """All nodes call; returns (payload, new clock).

        When *consume* is given (a callable taking the broadcast data)
        it runs *before* the final rendezvous, so the root may pass a
        zero-copy view of its own array as *payload*: every consumer has
        copied the data out before any participant — the root included —
        can run on and mutate the source.
        """
        self._clocks[rank] = now
        if rank == root:
            with self._lock:
                self._slots["bcast"] = payload
        self._sync()
        data = self._slots["bcast"]
        t = max(self._clocks) + self.cost.collective_cost(self.nprocs, nbytes)
        if consume is not None:
            consume(data)
        self._sync()
        if rank == root:
            self.stats.record_collective(nbytes)
            with self._lock:
                self._slots.pop("bcast", None)
        self._sync()
        return data, t

    def allreduce(self, rank: int, value: Any, op: str, nbytes: int,
                  now: float) -> tuple[Any, float]:
        """Combining all-reduce; op in {"sum", "max", "min", "maxloc"}.

        Contributions combine in rank order — NOT thread arrival order —
        so floating-point reductions are deterministic and repeated runs
        (scalar or vectorized execution alike) agree bit-for-bit.
        """
        self._clocks[rank] = now
        with self._lock:
            self._slots.setdefault("reduce", {})[rank] = value
        self._sync()
        table = self._slots["reduce"]
        values = [table[r] for r in range(self.nprocs)]
        if op == "sum":
            result = sum(values)
        elif op == "max":
            result = max(values)
        elif op == "min":
            result = min(values)
        elif op == "maxloc":
            # values are (magnitude, index) pairs; ties break to the
            # smallest index for determinism
            result = max(values, key=lambda p: (p[0], -p[1]))
        else:
            raise SimulationError(f"unknown reduction {op!r}")
        t = max(self._clocks) + 2 * self.cost.collective_cost(
            self.nprocs, nbytes
        )
        self._sync()
        if rank == 0:
            self.stats.record_collective(nbytes * self.nprocs)
            with self._lock:
                self._slots.pop("reduce", None)
        self._sync()
        return result, t

    def barrier(self, rank: int, now: float) -> float:
        self._clocks[rank] = now
        self._sync()
        t = max(self._clocks) + self.cost.barrier_cost(self.nprocs)
        self._sync()
        return t

    def exchange(self, rank: int, outgoing: dict[int, Any], nbytes_out: int,
                 now: float) -> tuple[dict[int, Any], float]:
        """All-to-all personalized exchange (used by the remap runtime):
        each node contributes {dst: payload}; receives {src: payload}.

        The pairwise transfers are real traffic: rank 0 records them
        once into the point-to-point message/byte counts (one message
        per (src, dst) pair with a payload, all contributed bytes).
        """
        self._clocks[rank] = now
        with self._lock:
            table = self._slots.setdefault("exchange", {})
            table[rank] = (outgoing, nbytes_out)
        self._sync()
        table = self._slots["exchange"]
        incoming = {
            src: msgs[rank]
            for src, (msgs, _nb) in table.items()
            if rank in msgs
        }
        t = max(self._clocks) + self.cost.collective_cost(
            self.nprocs, max(nbytes_out, 1)
        )
        self._sync()
        if rank == 0:
            nmsgs = sum(len(msgs) for msgs, _nb in table.values())
            nbytes = sum(nb for _msgs, nb in table.values())
            if nmsgs:
                self.stats.record_exchange(nmsgs, nbytes)
            with self._lock:
                self._slots.pop("exchange", None)
        self._sync()
        return incoming, t
