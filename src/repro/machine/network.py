"""Message-passing network with virtual-time semantics.

Point-to-point messages carry a payload plus the virtual time at which
they become available at the receiver (sender clock at send + latency +
bandwidth term).  A blocking receive matches on ``(src, tag)`` and
advances the receiver's clock to ``max(own clock, arrival time)``.

Threads provide the concurrency (one per simulated node); a condition
variable per destination wakes blocked receivers.  Deadlocks (e.g. a
miscompiled program receiving a message nobody sends) surface as a
:class:`SimulationError` after a wall-clock timeout rather than a hang.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any

from .costmodel import CostModel
from .stats import RunStats


class SimulationError(Exception):
    """Deadlock or protocol error inside the simulated machine."""


@dataclass
class _Message:
    src: int
    tag: int
    payload: Any
    nbytes: int
    available_at: float  # virtual µs


class Network:
    """The interconnect shared by all node processors."""

    def __init__(
        self,
        nprocs: int,
        cost: CostModel,
        stats: RunStats,
        timeout_s: float = 60.0,
    ) -> None:
        self.nprocs = nprocs
        self.cost = cost
        self.stats = stats
        self.timeout_s = timeout_s
        self._queues: list[deque[_Message]] = [deque() for _ in range(nprocs)]
        self._conds = [threading.Condition() for _ in range(nprocs)]
        self._failed = threading.Event()

    def fail(self) -> None:
        """Wake all blocked receivers after an error elsewhere."""
        self._failed.set()
        for c in self._conds:
            with c:
                c.notify_all()

    def send(
        self, src: int, dst: int, tag: int, payload: Any, nbytes: int,
        now: float,
    ) -> float:
        """Deliver a message; returns the sender's clock after the send."""
        if not (0 <= dst < self.nprocs):
            raise SimulationError(f"send to invalid processor {dst}")
        if dst == src:
            raise SimulationError(f"processor {src} sending to itself")
        sender_after = now + self.cost.send_cost(nbytes)
        msg = _Message(src, tag, payload, nbytes,
                       now + self.cost.transfer_time(nbytes))
        cond = self._conds[dst]
        with cond:
            self._queues[dst].append(msg)
            cond.notify_all()
        self.stats.record_message(nbytes)
        return sender_after

    def recv(self, dst: int, src: int, tag: int, now: float) -> tuple[Any, float]:
        """Blocking matched receive; returns (payload, new clock)."""
        if not (0 <= src < self.nprocs):
            raise SimulationError(f"recv from invalid processor {src}")
        cond = self._conds[dst]
        with cond:
            while True:
                q = self._queues[dst]
                for i, m in enumerate(q):
                    if m.src == src and m.tag == tag:
                        del q[i]
                        arrive = max(now, m.available_at)
                        return m.payload, arrive + self.cost.recv_cost(m.nbytes)
                if self._failed.is_set():
                    raise SimulationError(
                        f"processor {dst} aborted while waiting for "
                        f"(src={src}, tag={tag})"
                    )
                if not cond.wait(timeout=self.timeout_s):
                    self.fail()
                    raise SimulationError(
                        f"deadlock: processor {dst} waited for message "
                        f"(src={src}, tag={tag}) that never arrived"
                    )

    def pending(self, dst: int) -> int:
        with self._conds[dst]:
            return len(self._queues[dst])


class CollectiveContext:
    """Rendezvous helper for collectives (broadcast / reduce / barrier).

    SPMD programs execute collectives in the same order on every node, so
    a reusable barrier plus a shared slot per phase suffices.  Virtual
    time: all participants synchronize at ``max(clocks)`` then pay the
    tree cost.
    """

    def __init__(self, nprocs: int, cost: CostModel, stats: RunStats,
                 timeout_s: float = 60.0) -> None:
        self.nprocs = nprocs
        self.cost = cost
        self.stats = stats
        self.timeout_s = timeout_s
        self._barrier = threading.Barrier(nprocs)
        self._lock = threading.Lock()
        self._slots: dict[str, Any] = {}
        self._clocks: list[float] = [0.0] * nprocs

    def _sync(self) -> None:
        try:
            self._barrier.wait(timeout=self.timeout_s)
        except threading.BrokenBarrierError as e:  # pragma: no cover
            raise SimulationError(
                "collective barrier broken (a node died or deadlocked)"
            ) from e

    def broadcast(self, rank: int, root: int, payload: Any, nbytes: int,
                  now: float) -> tuple[Any, float]:
        """All nodes call; returns (payload, new clock)."""
        self._clocks[rank] = now
        if rank == root:
            with self._lock:
                self._slots["bcast"] = payload
        self._sync()
        data = self._slots["bcast"]
        t = max(self._clocks) + self.cost.collective_cost(self.nprocs, nbytes)
        self._sync()
        if rank == root:
            self.stats.record_collective(nbytes)
            with self._lock:
                self._slots.pop("bcast", None)
        self._sync()
        return data, t

    def allreduce(self, rank: int, value: Any, op: str, nbytes: int,
                  now: float) -> tuple[Any, float]:
        """Combining all-reduce; op in {"sum", "max", "min", "maxloc"}."""
        self._clocks[rank] = now
        with self._lock:
            self._slots.setdefault("reduce", []).append(value)
        self._sync()
        values = self._slots["reduce"]
        if op == "sum":
            result = sum(values)
        elif op == "max":
            result = max(values)
        elif op == "min":
            result = min(values)
        elif op == "maxloc":
            # values are (magnitude, index) pairs; ties break to the
            # smallest index for determinism
            result = max(values, key=lambda p: (p[0], -p[1]))
        else:
            raise SimulationError(f"unknown reduction {op!r}")
        t = max(self._clocks) + 2 * self.cost.collective_cost(
            self.nprocs, nbytes
        )
        self._sync()
        if rank == 0:
            self.stats.record_collective(nbytes * self.nprocs)
            with self._lock:
                self._slots.pop("reduce", None)
        self._sync()
        return result, t

    def barrier(self, rank: int, now: float) -> float:
        self._clocks[rank] = now
        self._sync()
        t = max(self._clocks) + self.cost.barrier_cost(self.nprocs)
        self._sync()
        return t

    def exchange(self, rank: int, outgoing: dict[int, Any], nbytes_out: int,
                 now: float) -> tuple[dict[int, Any], float]:
        """All-to-all personalized exchange (used by the remap runtime):
        each node contributes {dst: payload}; receives {src: payload}."""
        self._clocks[rank] = now
        with self._lock:
            table = self._slots.setdefault("exchange", {})
            table[rank] = outgoing
        self._sync()
        table = self._slots["exchange"]
        incoming = {
            src: msgs[rank]
            for src, msgs in table.items()
            if rank in msgs
        }
        nmsgs = sum(1 for msgs in table.values() for d in msgs)
        total_bytes = nbytes_out  # per-proc accounting below
        t = max(self._clocks) + self.cost.collective_cost(
            self.nprocs, max(total_bytes, 1)
        )
        self._sync()
        if rank == 0:
            with self._lock:
                self._slots.pop("exchange", None)
        self._sync()
        return incoming, t
