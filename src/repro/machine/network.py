"""Message-passing network with virtual-time semantics.

Point-to-point messages carry a payload plus the virtual time at which
they become available at the receiver (sender clock at send + latency +
bandwidth term).  A blocking receive matches on ``(src, tag)`` and
advances the receiver's clock to ``max(own clock, arrival time)``.

Threads provide the concurrency (one per simulated node); a condition
variable per destination wakes blocked receivers.  Deadlocks (e.g. a
miscompiled program receiving a message nobody sends) are detected
*instantly* by the wait-for bookkeeping in
:mod:`repro.machine.deadlock`: the moment every live rank is blocked
with no in-flight message matching any awaited key, a
:class:`DeadlockError` carrying a structured
:class:`~repro.machine.deadlock.DeadlockReport` is raised.  A
wall-clock timeout (``REPRO_SIM_TIMEOUT``, default 60 s) remains as a
safety net only.

A :class:`~repro.machine.faults.FaultPlan` may inject per-message delay
jitter and drops-with-retransmit; both only move virtual arrival times
(delivery itself is reliable), so results and message/byte counts are
unchanged by construction.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Optional

from .costmodel import CostModel
from .deadlock import DeadlockDetector, DeadlockReport
from .faults import FaultPlan
from .stats import RunStats
from .topology import LinkClock, Topology, UniformTopology

DEFAULT_TIMEOUT_S = 60.0


def resolve_timeout(timeout_s: Optional[float]) -> float:
    """Explicit value, else ``REPRO_SIM_TIMEOUT``, else 60 s."""
    if timeout_s is not None:
        return timeout_s
    env = os.environ.get("REPRO_SIM_TIMEOUT", "").strip()
    if env:
        try:
            return float(env)
        except ValueError:
            pass
    return DEFAULT_TIMEOUT_S


class SimulationError(Exception):
    """Deadlock or protocol error inside the simulated machine."""

    report: Optional[DeadlockReport] = None


class DeadlockError(SimulationError):
    """Deadlock detected; ``report`` carries the structured diagnosis."""

    def __init__(self, msg: str, report: Optional[DeadlockReport] = None):
        super().__init__(msg)
        self.report = report


class AbortError(SimulationError):
    """Secondary failure: this rank was torn down because another rank
    failed first (the primary error is re-raised by ``Machine.run``)."""


def combine_reduction(op: str, values: list) -> Any:
    """Combine allreduce contributions, already ordered by rank — NOT by
    thread arrival order — so floating-point reductions are
    deterministic.  Shared by both scheduler backends."""
    if op == "sum":
        return sum(values)
    if op == "max":
        return max(values)
    if op == "min":
        return min(values)
    if op == "maxloc":
        # values are (magnitude, index) pairs; ties break to the
        # smallest index for determinism
        return max(values, key=lambda p: (p[0], -p[1]))
    raise SimulationError(f"unknown reduction {op!r}")


def arrival_time(
    topo: Topology, links: Optional[LinkClock], cost: CostModel,
    src: int, dst: int, nbytes: int, now: float,
) -> float:
    """Virtual time a message posted at *now* becomes available at
    *dst*.  Shared by all three network implementations: with link
    contention enabled the message's head is routed over the topology's
    link path (serializing against earlier traffic), otherwise the
    closed-form latency applies."""
    if links is not None:
        return links.traverse(
            topo.link_path(src, dst), now + cost.alpha,
            cost.beta * nbytes, cost.hop,
        )
    return now + topo.transfer_time(cost, nbytes, src, dst)


@dataclass
class _Message:
    src: int
    tag: int
    payload: Any
    nbytes: int
    available_at: float  # virtual µs
    #: sender's clock when the send was posted (trace provenance: the
    #: critical-path walk jumps to the sender at this time)
    sent_at: float = 0.0
    #: source-program statement that emitted the send, when tracing
    origin: Optional[str] = None


class Network:
    """The interconnect shared by all node processors.

    Each destination keeps its in-flight messages in a dict keyed on
    ``(src, tag)`` with a FIFO deque per key, so a matched receive is an
    O(1) dict probe instead of a linear scan of everything queued.  A
    blocked receiver advertises the key it waits for; senders only
    notify when they deliver that exact key, so heavy cross-traffic (the
    run-time-resolution element messages) no longer wakes every blocked
    receiver once per unrelated message.
    """

    def __init__(
        self,
        nprocs: int,
        cost: CostModel,
        stats: RunStats,
        timeout_s: Optional[float] = None,
        faults: Optional[FaultPlan] = None,
        detector: Optional[DeadlockDetector] = None,
        tracer: Any = None,
        topology: Optional[Topology] = None,
        metrics: Any = None,
    ) -> None:
        self.nprocs = nprocs
        self.cost = cost
        self.stats = stats
        self.timeout_s = resolve_timeout(timeout_s)
        self.faults = faults
        self.detector = detector
        self.tracer = tracer
        self.metrics = metrics
        self.topo = topology if topology is not None \
            else UniformTopology(nprocs)
        self._links = LinkClock() if self.topo.contention else None
        self._queues: list[dict[tuple[int, int], deque[_Message]]] = [
            {} for _ in range(nprocs)
        ]
        self._conds = [threading.Condition() for _ in range(nprocs)]
        self._waiting: list[tuple[int, int] | None] = [None] * nprocs
        self._failed = threading.Event()
        #: per-(src, dst, tag) sequence numbers for deterministic fault
        #: identity.  Only thread *src* sends on a given key, so plain
        #: dict updates are race-free under the GIL.
        self._seq: dict[tuple[int, int, int], int] = {}

    # -- failure propagation ------------------------------------------------

    def fail(self) -> None:
        """Wake all blocked receivers after an error elsewhere."""
        self._failed.set()
        for c in self._conds:
            with c:
                c.notify_all()

    def failing(self) -> bool:
        return self._failed.is_set()

    def _failure_error(self, dst: int, src: int, tag: int) -> SimulationError:
        """The error a torn-down rank raises: the deadlock diagnosis if
        one was declared, a secondary abort otherwise."""
        rep = self.detector.report if self.detector is not None else None
        if rep is not None:
            return DeadlockError(
                f"deadlock: {rep.reason}\n{rep.describe()}", rep
            )
        return AbortError(
            f"processor {dst} aborted while waiting for "
            f"(src={src}, tag={tag})"
        )

    # -- traffic -------------------------------------------------------------

    def _arrival(self, src: int, dst: int, nbytes: int,
                 now: float) -> float:
        return arrival_time(self.topo, self._links, self.cost,
                            src, dst, nbytes, now)

    def send(
        self, src: int, dst: int, tag: int, payload: Any, nbytes: int,
        now: float, origin: Optional[str] = None,
    ) -> float:
        """Deliver a message; returns the sender's clock after the send."""
        if self._failed.is_set():
            raise AbortError(
                f"processor {src} aborted before send to {dst}"
            )
        if not (0 <= dst < self.nprocs):
            raise SimulationError(f"send to invalid processor {dst}")
        if dst == src:
            raise SimulationError(f"processor {src} sending to itself")
        sender_after = now + self.cost.send_cost(nbytes)
        available = self._arrival(src, dst, nbytes, now)
        if self.faults is not None and self.faults.affects_messages:
            seqkey = (src, dst, tag)
            seq = self._seq.get(seqkey, 0)
            self._seq[seqkey] = seq + 1
            extra, retries = self.faults.message_faults(src, dst, tag, seq)
            if extra or retries:
                available += extra
                self.stats.record_fault(retries)
                if self.tracer is not None:
                    self.tracer.rank_event(
                        src, "fault", now, dst=dst, tag=tag,
                        delay=extra, retries=retries,
                    )
        if self.tracer is not None:
            if self.topo.is_uniform:
                self.tracer.rank_event(
                    src, "net.send", now, dst=dst, tag=tag, bytes=nbytes,
                    avail=available, origin=origin,
                )
            else:
                self.tracer.rank_event(
                    src, "net.send", now, dst=dst, tag=tag, bytes=nbytes,
                    avail=available, origin=origin,
                    hops=self.topo.hops(src, dst),
                )
        msg = _Message(src, tag, payload, nbytes, available,
                       sent_at=now, origin=origin)
        key = (src, tag)
        cond = self._conds[dst]
        with cond:
            q = self._queues[dst].get(key)
            if q is None:
                q = self._queues[dst][key] = deque()
            q.append(msg)
            if self._waiting[dst] == key:
                cond.notify_all()
        self.stats.record_message(nbytes)
        return sender_after

    def recv(self, dst: int, src: int, tag: int, now: float,
             origin: Optional[str] = None) -> tuple[Any, float]:
        """Blocking matched receive; returns (payload, new clock)."""
        if not (0 <= src < self.nprocs):
            raise SimulationError(f"recv from invalid processor {src}")
        key = (src, tag)
        cond = self._conds[dst]
        deadline = time.monotonic() + self.timeout_s
        while True:
            with cond:
                queues = self._queues[dst]
                q = queues.get(key)
                if q:
                    m = q.popleft()
                    if not q:
                        del queues[key]
                    arrive = max(now, m.available_at)
                    t = arrive + self.cost.recv_cost(m.nbytes)
                    if self.metrics is not None:
                        self.metrics.recv_blocked.observe(
                            max(0.0, m.available_at - now)
                        )
                    if self.tracer is not None:
                        self.tracer.rank_event(
                            dst, "net.recv", now, dur=t - now, src=m.src,
                            tag=tag, bytes=m.nbytes, sent_at=m.sent_at,
                            avail=m.available_at,
                            wait=max(0.0, m.available_at - now),
                            origin=origin or m.origin,
                        )
                    return m.payload, t
                if self._failed.is_set():
                    raise self._failure_error(dst, src, tag)
                self._waiting[dst] = key
            # Register the blocked state *outside* the condition lock
            # (lock order is always detector -> queue, never reversed).
            # This raises DeadlockError right here when this rank's
            # transition completes a deadlock.
            try:
                if self.metrics is not None:
                    self.metrics.block_recv.inc()
                if self.detector is not None:
                    self.detector.block_recv(dst, key, now)
                remaining = deadline - time.monotonic()
                with cond:
                    if not self._queues[dst].get(key) \
                            and not self._failed.is_set():
                        arrived = cond.wait(timeout=max(0.0, remaining))
                    else:
                        arrived = True
            finally:
                if self.detector is not None:
                    self.detector.unblock(dst)
                with cond:
                    self._waiting[dst] = None
            if not arrived:
                # wall-clock safety net: something is blocked in a way
                # the wait-for graph cannot see (should not happen)
                self.fail()
                reason = (
                    f"wall-clock timeout: processor {dst} waited "
                    f"{self.timeout_s:.1f}s for message (src={src}, "
                    f"tag={tag}) that never arrived"
                )
                rep = self.detector.snapshot(reason) \
                    if self.detector is not None else None
                raise DeadlockError(f"deadlock: {reason}", rep)

    # -- introspection -------------------------------------------------------

    def pending(self, dst: int) -> int:
        with self._conds[dst]:
            return sum(len(q) for q in self._queues[dst].values())

    def has_pending(self, dst: int, key: tuple[int, int]) -> bool:
        """True when an undelivered message matches *key* at *dst*."""
        with self._conds[dst]:
            return bool(self._queues[dst].get(key))

    def pending_summary(
        self, dst: int
    ) -> list[tuple[tuple[int, int], int]]:
        """[(key, count)] of undelivered messages queued at *dst*."""
        with self._conds[dst]:
            return sorted(
                (key, len(q)) for key, q in self._queues[dst].items() if q
            )


class CollectiveContext:
    """Rendezvous helper for collectives (broadcast / reduce / barrier).

    SPMD programs execute collectives in the same order on every node,
    so a reusable barrier plus a shared slot per phase suffices.
    Virtual time: all participants synchronize at ``max(clocks)`` then
    pay the tree cost.

    Each operation costs exactly **one** rendezvous: participants
    deposit their contributions, and the barrier's action callback —
    which runs in exactly one thread, before any waiter is released —
    performs the whole completion (``max(clocks)``, the rank-ordered
    reduction / broadcast consumption / exchange snapshot, the stats,
    the slot cleanup) into shared result fields.  Those fields are
    overwrite-safe without further locking because the *next* trip
    cannot happen until every rank has re-entered the barrier, i.e.
    has already read the previous result.
    """

    def __init__(self, nprocs: int, cost: CostModel, stats: RunStats,
                 timeout_s: Optional[float] = None,
                 detector: Optional[DeadlockDetector] = None,
                 network: Optional[Network] = None,
                 tracer: Any = None,
                 topology: Optional[Topology] = None,
                 metrics: Any = None) -> None:
        self.nprocs = nprocs
        self.cost = cost
        self.stats = stats
        self.timeout_s = resolve_timeout(timeout_s)
        self.detector = detector
        self.network = network
        self.tracer = tracer
        self.metrics = metrics
        self.topo = topology if topology is not None \
            else UniformTopology(nprocs)
        self._barrier = threading.Barrier(nprocs, action=self._trip)
        self._lock = threading.Lock()
        self._slots: dict[str, Any] = {}
        self._clocks: list[float] = [0.0] * nprocs
        #: the op-specific completion; every participant of an operation
        #: assigns an equivalent closure, so the racy writes are benign
        self._complete: Any = None
        self._result: Any = None
        self._maxclock = 0.0
        #: straggler rank (trace-only) — computed in the barrier action,
        #: overwrite-safe like ``_result`` (the next trip cannot happen
        #: until every rank has re-entered, i.e. has read this one)
        self._maxrank = 0

    def _trip(self) -> None:
        """Barrier action: runs once, before any waiter resumes.  The
        detector release comes first so a rank finishing right after the
        rendezvous cannot observe stale blocked states and cry
        deadlock."""
        if self.detector is not None:
            self.detector.release_collective()
        self._maxclock = max(self._clocks)
        if self.tracer is not None:
            self._maxrank = min(
                r for r in range(self.nprocs)
                if self._clocks[r] == self._maxclock
            )
        fn, self._complete = self._complete, None
        self._result = fn() if fn is not None else None

    def _trace_coll(self, rank: int, label: str, now: float, t: float,
                    nbytes: int = 0, origin: Optional[str] = None) -> None:
        """Record one participant's rendezvous span (after _sync, so
        ``_maxclock``/``_maxrank`` describe *this* operation)."""
        self.tracer.rank_event(
            rank, "coll", now, dur=t - now, label=label, bytes=nbytes,
            maxclock=self._maxclock, maxrank=self._maxrank, origin=origin,
        )

    def abort(self) -> None:
        """Break the rendezvous so collective waiters unblock."""
        try:
            self._barrier.abort()
        except Exception:  # pragma: no cover - abort never raises today
            pass

    def _failure_error(self, rank: int, label: str) -> SimulationError:
        rep = None
        if self.detector is not None:
            rep = self.detector.report
        if rep is not None:
            return DeadlockError(
                f"deadlock: {rep.reason}\n{rep.describe()}", rep
            )
        return AbortError(
            f"processor {rank} aborted inside collective {label!r} "
            f"(a peer failed or deadlocked)"
        )

    def _observe_coll(self, now: float) -> None:
        """Record this participant's rendezvous wait (virtual time spent
        blocked until the straggler arrived)."""
        self.metrics.coll_blocked.observe(max(0.0, self._maxclock - now))

    def _sync(self, rank: int, label: str) -> None:
        if self.network is not None and self.network.failing():
            raise self._failure_error(rank, label)
        try:
            if self.metrics is not None:
                self.metrics.block_coll.inc()
            if self.detector is not None:
                self.detector.block_collective(
                    rank, label, self._clocks[rank]
                )
            try:
                self._barrier.wait(timeout=self.timeout_s)
            finally:
                if self.detector is not None:
                    self.detector.unblock(rank)
        except threading.BrokenBarrierError:
            raise self._failure_error(rank, label) from None

    def broadcast(self, rank: int, root: int, payload: Any, nbytes: int,
                  now: float, consume: Any = None,
                  origin: Optional[str] = None) -> tuple[Any, float]:
        """All nodes call; returns (payload, new clock).

        When *consume* is given (a callable taking the broadcast data)
        it runs inside the barrier action, before any participant
        resumes, so the root may pass a zero-copy view of its own array
        as *payload*: every consumer has copied the data out before any
        participant — the root included — can run on and mutate the
        source.
        """
        self._clocks[rank] = now
        with self._lock:
            slot = self._slots.setdefault("bcast", {"consume": []})
            if rank == root:
                slot["data"] = payload
                slot["nbytes"] = nbytes
            if consume is not None:
                slot["consume"].append(consume)
        self._complete = self._finish_bcast
        self._sync(rank, "bcast")
        if self.metrics is not None:
            self._observe_coll(now)
        t = self._maxclock + self.topo.collective_cost(
            self.cost, self.nprocs, nbytes
        )
        if self.tracer is not None:
            self._trace_coll(rank, "bcast", now, t, nbytes, origin)
        return self._result, t

    def _finish_bcast(self) -> Any:
        with self._lock:
            slot = self._slots.pop("bcast")
        data = slot["data"]
        for fn in slot["consume"]:
            fn(data)
        self.stats.record_collective(slot["nbytes"])
        return data

    def allreduce(self, rank: int, value: Any, op: str, nbytes: int,
                  now: float,
                  origin: Optional[str] = None) -> tuple[Any, float]:
        """Combining all-reduce; op in {"sum", "max", "min", "maxloc"}.

        Contributions combine in rank order — NOT thread arrival order —
        so floating-point reductions are deterministic and repeated runs
        (scalar or vectorized execution alike) agree bit-for-bit.
        """
        self._clocks[rank] = now
        with self._lock:
            slot = self._slots.setdefault(
                "reduce", {"values": {}, "op": op, "nbytes": nbytes}
            )
            slot["values"][rank] = value
        self._complete = self._finish_reduce
        self._sync(rank, "reduce")
        if self.metrics is not None:
            self._observe_coll(now)
        t = self._maxclock + 2 * self.topo.collective_cost(
            self.cost, self.nprocs, nbytes
        )
        if self.tracer is not None:
            self._trace_coll(rank, "reduce", now, t, nbytes, origin)
        return self._result, t

    def _finish_reduce(self) -> Any:
        with self._lock:
            slot = self._slots.pop("reduce")
        values = [slot["values"][r] for r in range(self.nprocs)]
        result = combine_reduction(slot["op"], values)
        self.stats.record_collective(slot["nbytes"] * self.nprocs)
        return result

    def barrier(self, rank: int, now: float,
                origin: Optional[str] = None) -> float:
        self._clocks[rank] = now
        self._sync(rank, "barrier")
        if self.metrics is not None:
            self._observe_coll(now)
        t = self._maxclock + self.topo.barrier_cost(self.cost, self.nprocs)
        if self.tracer is not None:
            self._trace_coll(rank, "barrier", now, t, 0, origin)
        return t

    def exchange(self, rank: int, outgoing: dict[int, Any], nbytes_out: int,
                 now: float,
                 origin: Optional[str] = None) -> tuple[dict[int, Any], float]:
        """All-to-all personalized exchange (used by the remap runtime):
        each node contributes {dst: payload}; receives {src: payload}.

        The pairwise transfers are real traffic, recorded once into the
        point-to-point message/byte counts (one message per (src, dst)
        pair with a payload, all contributed bytes).
        """
        self._clocks[rank] = now
        with self._lock:
            self._slots.setdefault("exchange", {})[rank] = \
                (outgoing, nbytes_out)
        self._complete = self._finish_exchange
        self._sync(rank, "exchange")
        if self.metrics is not None:
            self._observe_coll(now)
        table = self._result
        incoming = {
            src: msgs[rank]
            for src, (msgs, _nb) in table.items()
            if rank in msgs
        }
        t = self._maxclock + self.topo.collective_cost(
            self.cost, self.nprocs, max(nbytes_out, 1)
        )
        if self.tracer is not None:
            self._trace_coll(rank, "exchange", now, t, nbytes_out, origin)
            per_pair = nbytes_out / max(1, len(outgoing))
            for dst in sorted(outgoing):
                self.tracer.rank_event(
                    rank, "net.exchange", now, dst=dst, bytes=per_pair,
                    origin=origin,
                )
        return incoming, t

    def _finish_exchange(self) -> Any:
        with self._lock:
            table = self._slots.pop("exchange")
        nmsgs = sum(len(msgs) for msgs, _nb in table.values())
        nbytes = sum(nb for _msgs, nb in table.values())
        if nmsgs:
            self.stats.record_exchange(nmsgs, nbytes)
        return table
