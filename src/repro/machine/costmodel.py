"""Communication / computation cost model.

The authors evaluated on an Intel iPSC/860 hypercube.  We model node
programs with the standard linear model: a message of ``b`` bytes costs
the sender ``alpha`` (startup/latency) and arrives ``alpha + b * beta``
after the send; collectives pay a ``ceil(log2 P)``-stage tree.

Default constants approximate the iPSC/860 (startup ~100 µs, ~2.8 MB/s
sustained bandwidth, a few MFLOPS of compiled node code).  Absolute
numbers are not the point — the paper's conclusions rest on message
*counts* and *volumes*, which the simulator measures exactly; the time
model preserves orderings and rough ratios.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def tree_stages(nprocs: int) -> int:
    """Stages of a binomial spanning tree over *nprocs* ranks.

    A single rank needs no tree at all (0 stages) — the degenerate
    case the earlier ``max(1, ceil(log2 max(P, 2)))`` formula got
    wrong by charging a single-rank collective one full stage.
    """
    if nprocs <= 1:
        return 0
    return max(1, math.ceil(math.log2(nprocs)))


@dataclass(frozen=True)
class CostModel:
    """All times in microseconds."""

    alpha: float = 100.0          # message startup (each message)
    beta: float = 0.36            # per byte transfer time (~2.8 MB/s)
    flop: float = 0.15            # one floating-point/scalar operation
    loop_overhead: float = 0.10   # per executed loop iteration
    copy: float = 0.01            # per byte local pack/unpack
    element_bytes: int = 8        # REAL*8 elements
    #: per-link latency beyond the first hop (non-uniform topologies;
    #: the uniform model never charges it)
    hop: float = 5.0

    def send_cost(self, nbytes: int) -> float:
        """Time the sender is busy."""
        return self.alpha + self.copy * nbytes

    def transfer_time(self, nbytes: int) -> float:
        """Send-start to data-available-at-receiver latency (one hop;
        topology-aware routing is layered on by
        :meth:`~repro.machine.topology.Topology.transfer_time`)."""
        return self.alpha + self.beta * nbytes

    def recv_cost(self, nbytes: int) -> float:
        """Receiver-side unpack time once the message is available."""
        return self.copy * nbytes

    def collective_cost(self, nprocs: int, nbytes: int) -> float:
        """Tree broadcast/reduce: log2(P) stages of alpha + b*beta
        (0 stages when P == 1: a single rank needs no communication)."""
        return tree_stages(nprocs) * (self.alpha + self.beta * nbytes)

    def barrier_cost(self, nprocs: int) -> float:
        return tree_stages(nprocs) * self.alpha


#: iPSC/860-flavoured default model.
IPSC860 = CostModel()

#: A "fast network" variant for sensitivity studies (ablation benches).
FAST_NETWORK = CostModel(alpha=10.0, beta=0.036, hop=0.5)

#: Zero-cost model: pure counting (useful in unit tests).
FREE = CostModel(alpha=0.0, beta=0.0, flop=0.0, loop_overhead=0.0,
                 copy=0.0, hop=0.0)
