"""Instant deadlock detection over a wait-for graph of blocked ranks.

The previous strategy — a wall-clock timeout on every blocked receive —
made a miscompiled program cost a minute of silence before failing.
This module detects the deadlock the moment it becomes true: every rank
still alive is blocked (on a matched receive or inside a collective),
no blocked receive can be satisfied by an in-flight (or retransmittable)
message, and at least one rank is waiting for something that can no
longer happen.

Ranks register their state transitions (running / blocked on recv /
blocked in collective / finished / failed) with the
:class:`DeadlockDetector`.  Registration happens *outside* the network
condition variables, so lock ordering is always detector -> queue lock
and never the reverse.  The decisive check is performed by whichever
thread makes the final transition into a fully-blocked state; a
deadlock yields a structured :class:`DeadlockReport` carried on the
raised :class:`DeadlockError`.

The wall-clock timeout remains as a safety net (configurable via
``REPRO_SIM_TIMEOUT`` / ``Machine(timeout_s=...)``), but every ordinary
deadlock — a receive nobody matches, mismatched barrier membership, a
tag mismatch — is reported immediately.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from .network import Network

#: rank states tracked by the detector
RUNNING = "running"
BLOCKED_RECV = "blocked-recv"
BLOCKED_COLLECTIVE = "blocked-collective"
FINISHED = "finished"
FAILED = "failed"


@dataclass
class RankWait:
    """One rank's state at the moment a deadlock was declared."""

    rank: int
    state: str
    #: for ``blocked-recv``: the awaited ``(src, tag)``; for
    #: ``blocked-collective``: the collective label (e.g. "barrier")
    awaiting: object = None
    clock: float = 0.0

    def describe(self) -> str:
        if self.state == BLOCKED_RECV:
            src, tag = self.awaiting
            what = f"recv(src={src}, tag={tag})"
        elif self.state == BLOCKED_COLLECTIVE:
            what = f"collective({self.awaiting})"
        else:
            what = self.state
        return f"rank {self.rank}: {what} at clock {self.clock:.3f} µs"


@dataclass
class DeadlockReport:
    """Structured diagnosis attached to a deadlock's SimulationError."""

    waits: list[RankWait] = field(default_factory=list)
    #: per-rank pending queue summary: rank -> [((src, tag), count)]
    pending: dict[int, list[tuple[tuple[int, int], int]]] = field(
        default_factory=dict
    )
    reason: str = ""

    @property
    def blocked_ranks(self) -> list[int]:
        return [w.rank for w in self.waits
                if w.state in (BLOCKED_RECV, BLOCKED_COLLECTIVE)]

    @property
    def awaited(self) -> dict[int, object]:
        """rank -> awaited (src, tag) key or collective label."""
        return {w.rank: w.awaiting for w in self.waits
                if w.state in (BLOCKED_RECV, BLOCKED_COLLECTIVE)}

    def describe(self) -> str:
        lines = [self.reason or "deadlock among blocked ranks"]
        for w in self.waits:
            lines.append("  " + w.describe())
        for rank, keys in sorted(self.pending.items()):
            if keys:
                summary = ", ".join(
                    f"(src={s}, tag={t})x{n}" for (s, t), n in keys
                )
                lines.append(f"  rank {rank} pending: {summary}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.describe()


def build_report(states, details, clocks, pending_of=None) -> DeadlockReport:
    """Assemble a :class:`DeadlockReport` from per-rank state arrays.

    Shared by the thread-backend :class:`DeadlockDetector` and the
    cooperative scheduler so both produce byte-identical diagnoses: the
    same ``waits`` snapshot, the same ``pending`` summaries (*pending_of*
    maps a rank to its queued-but-unmatched keys) and the same one-line
    ``reason`` strings.
    """
    rep = DeadlockReport()
    nprocs = len(states)
    for r in range(nprocs):
        rep.waits.append(RankWait(r, states[r], details[r], clocks[r]))
    if pending_of is not None:
        for r in range(nprocs):
            keys = pending_of(r)
            if keys:
                rep.pending[r] = keys
    blocked = [r for r, s in enumerate(states)
               if s in (BLOCKED_RECV, BLOCKED_COLLECTIVE)]
    gone = [r for r, s in enumerate(states) if s in (FINISHED, FAILED)]
    recv_waiters = [r for r in blocked if states[r] == BLOCKED_RECV]
    if recv_waiters:
        keys = ", ".join(
            f"rank {r} <- (src={details[r][0]}, "
            f"tag={details[r][1]})" for r in recv_waiters
        )
        rep.reason = (
            f"every live rank is blocked and no in-flight message "
            f"matches any awaited key ({keys})"
        )
    else:
        rep.reason = (
            f"ranks {blocked} wait in a collective that ranks "
            f"{gone} already left"
        )
    return rep


class DeadlockDetector:
    """Tracks rank states and declares deadlock at the instant the last
    live rank blocks with nothing able to wake any waiter."""

    def __init__(self, nprocs: int) -> None:
        self.nprocs = nprocs
        self._lock = threading.Lock()
        self._state = [RUNNING] * nprocs
        self._detail: list[object] = [None] * nprocs
        self._clock = [0.0] * nprocs
        self.report: Optional[DeadlockReport] = None
        self.network: Optional["Network"] = None
        self._declare_cb = None  # set by Machine: aborts the run

    def attach(self, network: "Network", declare_cb) -> None:
        self.network = network
        self._declare_cb = declare_cb

    # -- transitions -------------------------------------------------------

    def block_recv(self, rank: int, key: tuple[int, int],
                   clock: float) -> None:
        """Rank blocks on a matched receive.  Raises DeadlockError on
        this thread when this transition completes a deadlock."""
        self._transition(rank, BLOCKED_RECV, key, clock, raise_here=True)

    def block_collective(self, rank: int, label: str, clock: float) -> None:
        """Rank blocks inside a collective rendezvous."""
        self._transition(rank, BLOCKED_COLLECTIVE, label, clock,
                         raise_here=True)

    def unblock(self, rank: int) -> None:
        with self._lock:
            self._state[rank] = RUNNING
            self._detail[rank] = None

    def release_collective(self) -> None:
        """The collective barrier tripped: every rank waiting in it is
        logically running again.  Called from the barrier's action
        callback — which runs *before* any waiter is released — so a
        rank that finishes immediately afterwards can never observe a
        stale blocked-collective state and declare a false deadlock."""
        with self._lock:
            for r, s in enumerate(self._state):
                if s == BLOCKED_COLLECTIVE:
                    self._state[r] = RUNNING
                    self._detail[r] = None

    def finish(self, rank: int, clock: float, failed: bool = False) -> None:
        """Rank left its node program (cleanly or with an error).  Never
        raises — called from ``finally`` blocks — but still declares the
        deadlock it may have caused (peers wake and raise)."""
        self._transition(rank, FAILED if failed else FINISHED, None, clock,
                         raise_here=False)

    # -- the check ---------------------------------------------------------

    def _transition(self, rank, state, detail, clock, raise_here) -> None:
        with self._lock:
            self._state[rank] = state
            self._detail[rank] = detail
            self._clock[rank] = clock
            rep = self._check_locked()
        if rep is not None:
            if self._declare_cb is not None:
                self._declare_cb(rep)
            if raise_here:
                from .network import DeadlockError

                raise DeadlockError(
                    f"deadlock: {rep.reason}\n{rep.describe()}", rep
                )

    def _check_locked(self) -> Optional[DeadlockReport]:
        if self.report is not None:
            return None  # already declared
        net = self.network
        if net is None or net.failing():
            return None
        if any(s == RUNNING for s in self._state):
            return None
        blocked = [r for r, s in enumerate(self._state)
                   if s in (BLOCKED_RECV, BLOCKED_COLLECTIVE)]
        if not blocked:
            return None  # everyone finished: normal termination
        gone = [r for r, s in enumerate(self._state)
                if s in (FINISHED, FAILED)]
        # all live ranks inside the collective rendezvous and nobody
        # missing: the barrier is about to trip — a transient state of
        # the final arrival, not a deadlock
        if not gone and all(
            self._state[r] == BLOCKED_COLLECTIVE for r in blocked
        ):
            return None
        # a blocked receive with a matching in-flight message will be
        # woken (drops only delay virtual arrival, never delivery)
        recv_waiters = [r for r in blocked
                        if self._state[r] == BLOCKED_RECV]
        for r in recv_waiters:
            if net.has_pending(r, self._detail[r]):
                return None
        # collectives-only deadlock requires a missing participant;
        # with no receive waiter and no finished rank we returned above
        rep = build_report(self._state, self._detail, self._clock,
                           pending_of=net.pending_summary)
        self.report = rep
        return rep

    def _snapshot_locked(self) -> DeadlockReport:
        rep = DeadlockReport()
        for r in range(self.nprocs):
            rep.waits.append(RankWait(
                r, self._state[r], self._detail[r], self._clock[r]
            ))
        if self.network is not None:
            for r in range(self.nprocs):
                keys = self.network.pending_summary(r)
                if keys:
                    rep.pending[r] = keys
        return rep

    def snapshot(self, reason: str) -> DeadlockReport:
        """Best-effort report for the wall-clock timeout fallback."""
        with self._lock:
            if self.report is not None:
                return self.report
            rep = self._snapshot_locked()
            rep.reason = reason
            self.report = rep
            return rep
