"""Simulated MIMD distributed-memory machine."""

from .costmodel import FAST_NETWORK, FREE, IPSC860, CostModel
from .deadlock import DeadlockDetector, DeadlockReport, RankWait
from .faults import FaultPlan
from .machine import Machine, ProcContext
from .network import DeadlockError, Network, SimulationError
from .scheduler import (
    SCHEDULERS,
    CoopCollectives,
    CoopNetwork,
    CoopScheduler,
    resolve_scheduler,
)
from .stats import RunStats

__all__ = [
    "SCHEDULERS",
    "CoopCollectives",
    "CoopNetwork",
    "CoopScheduler",
    "resolve_scheduler",
    "CostModel",
    "IPSC860",
    "FAST_NETWORK",
    "FREE",
    "Machine",
    "ProcContext",
    "Network",
    "SimulationError",
    "DeadlockError",
    "DeadlockReport",
    "DeadlockDetector",
    "RankWait",
    "FaultPlan",
    "RunStats",
]
