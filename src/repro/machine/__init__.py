"""Simulated MIMD distributed-memory machine."""

from .costmodel import FAST_NETWORK, FREE, IPSC860, CostModel, tree_stages
from .deadlock import DeadlockDetector, DeadlockReport, RankWait
from .event import (
    EventCollectives,
    EventNetwork,
    EventProcContext,
    EventScheduler,
)
from .faults import FaultPlan
from .machine import Machine, ProcContext
from .network import DeadlockError, Network, SimulationError
from .scheduler import (
    SCHEDULERS,
    CoopCollectives,
    CoopNetwork,
    CoopScheduler,
    resolve_scheduler,
)
from .stats import RunStats
from .topology import (
    TOPOLOGIES,
    FatTreeTopology,
    HypercubeTopology,
    LinkClock,
    Mesh2DTopology,
    Topology,
    Torus2DTopology,
    UniformTopology,
    resolve_topology,
)

__all__ = [
    "SCHEDULERS",
    "CoopCollectives",
    "CoopNetwork",
    "CoopScheduler",
    "EventCollectives",
    "EventNetwork",
    "EventProcContext",
    "EventScheduler",
    "resolve_scheduler",
    "CostModel",
    "IPSC860",
    "FAST_NETWORK",
    "FREE",
    "tree_stages",
    "Machine",
    "ProcContext",
    "Network",
    "SimulationError",
    "DeadlockError",
    "DeadlockReport",
    "DeadlockDetector",
    "RankWait",
    "FaultPlan",
    "RunStats",
    "TOPOLOGIES",
    "Topology",
    "UniformTopology",
    "HypercubeTopology",
    "Mesh2DTopology",
    "Torus2DTopology",
    "FatTreeTopology",
    "LinkClock",
    "resolve_topology",
]
