"""Simulated MIMD distributed-memory machine."""

from .costmodel import FAST_NETWORK, FREE, IPSC860, CostModel
from .machine import Machine, ProcContext
from .network import Network, SimulationError
from .stats import RunStats

__all__ = [
    "CostModel",
    "IPSC860",
    "FAST_NETWORK",
    "FREE",
    "Machine",
    "ProcContext",
    "Network",
    "SimulationError",
    "RunStats",
]
