"""Interconnect topologies: hop counts, routes, and collective trees.

The original cost model charged every message the same uniform
``alpha + bytes*beta`` regardless of which pair of ranks exchanged it,
and every collective a flat ``ceil(log2 P)``-stage tree.  Real MIMD
distributed-memory machines are not uniform: the paper's Intel
iPSC/860 is a hypercube, its successors were meshes, tori, and
fat-trees, and on all of them both the per-message latency (hop count)
and the shape of a good collective tree depend on the network
structure.

A :class:`Topology` captures exactly that design space:

* ``hops(src, dst)`` — path length in links between two ranks;
* ``link_path(src, dst)`` — the directed links the message traverses
  (used for link-contention serialization and the ``fdc --profile``
  per-link traffic report);
* ``transfer_time(cost, nbytes, src, dst)`` — send-start to
  data-available latency: ``alpha + (hops-1)*hop + bytes*beta``.
  The first hop is covered by ``alpha`` (message startup includes
  injection), additional hops each pay ``CostModel.hop``;
* ``collective_cost(cost, P, nbytes)`` / ``barrier_cost(cost, P)`` —
  topology-aware spanning-tree collectives replacing the flat
  ``ceil(log2 P)`` formula (a hypercube pays nearest-neighbor stages;
  recursive doubling on a mesh pays the stage partner's distance);
* optional **link contention**: when constructed with
  ``contention=True``, each directed link serializes the transfer
  times of the messages crossing it, so congested links stretch
  virtual arrival times deterministically.

:class:`UniformTopology` preserves the original model bit for bit and
remains the default.  Select a topology with ``Machine(topology=...)``
(a name or an instance), the ``REPRO_TOPOLOGY`` environment variable,
or ``fdc --topology``; names take an optional ``:flags`` suffix, e.g.
``"torus2d:contention"``.
"""

from __future__ import annotations

import math
import os
from typing import TYPE_CHECKING, Iterable, Optional, Union

from .costmodel import tree_stages

if TYPE_CHECKING:  # pragma: no cover
    from .costmodel import CostModel

#: a directed link: (node, node) where a node is a rank int or a
#: switch label tuple like ("sw", level, index) for indirect networks
Link = tuple


class Topology:
    """Interface + shared arithmetic for interconnect topologies."""

    #: registry name ("uniform", "hypercube", ...)
    name = "?"

    def __init__(self, nprocs: int, contention: bool = False) -> None:
        self.nprocs = nprocs
        self.contention = contention

    # -- structure -----------------------------------------------------

    def hops(self, src: int, dst: int) -> int:
        """Number of links between *src* and *dst* (>= 1 when distinct)."""
        raise NotImplementedError

    def link_path(self, src: int, dst: int) -> list[Link]:
        """Directed links a message traverses, in order."""
        raise NotImplementedError

    # -- timing --------------------------------------------------------

    def transfer_time(self, cost: "CostModel", nbytes: int,
                      src: int, dst: int) -> float:
        """Send-start to data-available-at-receiver latency."""
        extra = self.hops(src, dst) - 1
        if extra <= 0:
            return cost.transfer_time(nbytes)
        return cost.transfer_time(nbytes) + extra * cost.hop

    def collective_cost(self, cost: "CostModel", nprocs: int,
                        nbytes: int) -> float:
        """Spanning-tree broadcast/reduce over *nprocs* ranks."""
        return tree_stages(nprocs) * (cost.alpha + cost.beta * nbytes)

    def barrier_cost(self, cost: "CostModel", nprocs: int) -> float:
        return tree_stages(nprocs) * cost.alpha

    # -- misc ----------------------------------------------------------

    @property
    def is_uniform(self) -> bool:
        return isinstance(self, UniformTopology)

    def describe(self) -> str:
        return self.name + (":contention" if self.contention else "")

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"{type(self).__name__}(P={self.nprocs}, {self.describe()})"


class UniformTopology(Topology):
    """The original model: every pair one hop apart, flat log2 trees.

    Bit-identical to the pre-topology cost model (``transfer_time``
    delegates straight to the :class:`CostModel` linear formula).
    """

    name = "uniform"

    def hops(self, src: int, dst: int) -> int:
        return 1 if src != dst else 0

    def link_path(self, src: int, dst: int) -> list[Link]:
        return [(src, dst)] if src != dst else []

    def transfer_time(self, cost: "CostModel", nbytes: int,
                      src: int, dst: int) -> float:
        return cost.transfer_time(nbytes)


class HypercubeTopology(Topology):
    """The paper's iPSC/860: ranks are corners of a d-cube.

    Dimension-ordered (e-cube) routing: the path flips differing
    address bits lowest-first; the hop count is the Hamming distance.
    Collectives pay exactly ``d`` nearest-neighbor stages — the
    dimension-exchange algorithm — so their cost matches the flat tree
    on power-of-two P.
    """

    name = "hypercube"

    def __init__(self, nprocs: int, contention: bool = False) -> None:
        super().__init__(nprocs, contention)
        self.dim = tree_stages(nprocs)

    def hops(self, src: int, dst: int) -> int:
        return (src ^ dst).bit_count()

    def link_path(self, src: int, dst: int) -> list[Link]:
        path: list[Link] = []
        here = src
        diff = src ^ dst
        bit = 1
        while diff:
            if diff & 1:
                nxt = here ^ bit
                path.append((here, nxt))
                here = nxt
            diff >>= 1
            bit <<= 1
        return path

    def collective_cost(self, cost: "CostModel", nprocs: int,
                        nbytes: int) -> float:
        # dimension exchange: every stage partner is one hop away
        return tree_stages(nprocs) * (cost.alpha + cost.beta * nbytes)


def _grid_shape(nprocs: int) -> tuple[int, int]:
    """Near-square factorization of *nprocs* (rows <= cols)."""
    r = int(math.isqrt(nprocs))
    while r > 1 and nprocs % r:
        r -= 1
    return r, nprocs // max(r, 1)


class Mesh2DTopology(Topology):
    """2D mesh with X-then-Y dimension-ordered routing."""

    name = "mesh2d"
    _wrap = False

    def __init__(self, nprocs: int, contention: bool = False,
                 shape: Optional[tuple[int, int]] = None) -> None:
        super().__init__(nprocs, contention)
        if shape is None:
            shape = _grid_shape(nprocs)
        if shape[0] * shape[1] != nprocs:
            raise ValueError(
                f"mesh shape {shape} does not tile {nprocs} ranks"
            )
        self.rows, self.cols = shape

    def _rc(self, rank: int) -> tuple[int, int]:
        return divmod(rank, self.cols)

    def _axis_steps(self, a: int, b: int, n: int) -> list[int]:
        """Unit steps from coordinate *a* to *b* along an axis of *n*
        nodes (shortest wrap direction on the torus variant)."""
        if a == b:
            return []
        fwd = (b - a) % n
        back = (a - b) % n
        if self._wrap and back < fwd:
            return [-1] * back
        if self._wrap and fwd <= back:
            return [1] * fwd
        return [1] * (b - a) if b > a else [-1] * (a - b)

    def hops(self, src: int, dst: int) -> int:
        (r0, c0), (r1, c1) = self._rc(src), self._rc(dst)
        return (len(self._axis_steps(c0, c1, self.cols))
                + len(self._axis_steps(r0, r1, self.rows)))

    def link_path(self, src: int, dst: int) -> list[Link]:
        (r0, c0), (r1, c1) = self._rc(src), self._rc(dst)
        path: list[Link] = []
        r, c = r0, c0
        for step in self._axis_steps(c0, c1, self.cols):
            nc = (c + step) % self.cols
            path.append((r * self.cols + c, r * self.cols + nc))
            c = nc
        for step in self._axis_steps(r0, r1, self.rows):
            nr = (r + step) % self.rows
            path.append((r * self.cols + c, nr * self.cols + c))
            r = nr
        return path

    def _axis_stage_cost(self, cost: "CostModel", n: int,
                         nbytes: int) -> float:
        """Recursive doubling along one axis: stage k's partner sits
        ``2^k`` nodes away (wrap-aware on the torus)."""
        total = 0.0
        k = 1
        while k < n:
            dist = min(k, n - k) if self._wrap else k
            total += (cost.alpha + max(0, dist - 1) * cost.hop
                      + cost.beta * nbytes)
            k <<= 1
        return total

    def collective_cost(self, cost: "CostModel", nprocs: int,
                        nbytes: int) -> float:
        if nprocs <= 1:
            return 0.0
        return (self._axis_stage_cost(cost, self.cols, nbytes)
                + self._axis_stage_cost(cost, self.rows, nbytes))

    def barrier_cost(self, cost: "CostModel", nprocs: int) -> float:
        return self.collective_cost(cost, nprocs, 0)


class Torus2DTopology(Mesh2DTopology):
    """2D torus: the mesh with wraparound links (shortest direction)."""

    name = "torus2d"
    _wrap = True


class FatTreeTopology(Topology):
    """k-ary fat-tree: ranks are leaves under radix-*k* switches.

    A message climbs to the lowest common ancestor switch and descends,
    so ``hops = 2 * (levels above the LCA)``.  Switch nodes appear in
    link paths as ``("sw", level, index)`` labels (level 1 is the leaf
    switch row).  Collectives use the binomial tree, each stage bounded
    by the worst-case leaf-to-leaf distance actually used.
    """

    name = "fattree"

    def __init__(self, nprocs: int, contention: bool = False,
                 radix: int = 4) -> None:
        super().__init__(nprocs, contention)
        if radix < 2:
            raise ValueError("fat-tree radix must be >= 2")
        self.radix = radix
        self.levels = 1
        while radix ** self.levels < nprocs:
            self.levels += 1

    def _lca_level(self, src: int, dst: int) -> int:
        """Levels above the leaves of the lowest common ancestor."""
        lvl = 1
        a, b = src // self.radix, dst // self.radix
        while a != b:
            a //= self.radix
            b //= self.radix
            lvl += 1
        return lvl

    def hops(self, src: int, dst: int) -> int:
        if src == dst:
            return 0
        return 2 * self._lca_level(src, dst)

    def link_path(self, src: int, dst: int) -> list[Link]:
        if src == dst:
            return []
        lca = self._lca_level(src, dst)
        path: list[Link] = []
        up: object = src
        idx = src
        for lvl in range(1, lca + 1):
            idx //= self.radix
            sw = ("sw", lvl, idx)
            path.append((up, sw))
            up = sw
        down: list[Link] = []
        node: object = dst
        idx = dst
        for lvl in range(1, lca + 1):
            idx //= self.radix
            sw = ("sw", lvl, idx)
            down.append((sw, node))
            node = sw
        path.extend(reversed(down))
        return path

    def collective_cost(self, cost: "CostModel", nprocs: int,
                        nbytes: int) -> float:
        stages = tree_stages(nprocs)
        if not stages:
            return 0.0
        # stage k's partner is 2^k leaves away; distance through the
        # tree grows with the level of the common ancestor
        total = 0.0
        k = 1
        while k < nprocs:
            lca = 1
            span = self.radix
            while span < k + 1:
                span *= self.radix
                lca += 1
            dist = 2 * lca
            total += (cost.alpha + max(0, dist - 1) * cost.hop
                      + cost.beta * nbytes)
            k <<= 1
        return total

    def barrier_cost(self, cost: "CostModel", nprocs: int) -> float:
        return self.collective_cost(cost, nprocs, 0)


class LinkClock:
    """Per-directed-link occupancy for contention serialization.

    Cut-through switching: each link remembers when it next becomes
    free (virtual µs).  The message head leaves the source at *start*,
    pays ``hop_time`` per link beyond the first, and is delayed at any
    link still busy with an earlier message; each link is then occupied
    for the message's wire time from the moment the head clears it.
    With no queueing the arrival time equals the contention-free
    estimate exactly; congestion stretches it by the queueing delays.
    Updates are deterministic because both deterministic backends
    (coop, event) issue sends in identical (clock, rank) order.
    """

    def __init__(self) -> None:
        self._free: dict[Link, float] = {}

    def traverse(self, path: Iterable[Link], start: float,
                 wire_time: float, hop_time: float = 0.0) -> float:
        """Route one message's head over *path*; returns the virtual
        time the full message is available at the destination."""
        t = start
        free = self._free
        first = True
        for link in path:
            if not first:
                t += hop_time
            t = max(t, free.get(link, 0.0))
            free[link] = t + wire_time
            first = False
        return t + wire_time


#: registry of selectable topologies
TOPOLOGIES: dict[str, type[Topology]] = {
    UniformTopology.name: UniformTopology,
    HypercubeTopology.name: HypercubeTopology,
    Mesh2DTopology.name: Mesh2DTopology,
    Torus2DTopology.name: Torus2DTopology,
    FatTreeTopology.name: FatTreeTopology,
}


def resolve_topology(
    topology: Union[None, str, Topology], nprocs: int
) -> Topology:
    """Normalize a ``topology=`` argument.

    An instance passes through (its ``nprocs`` must match); a name
    (optionally ``name:contention``) is looked up in the registry;
    ``None`` defers to ``REPRO_TOPOLOGY`` and defaults to uniform.
    """
    if isinstance(topology, Topology):
        if topology.nprocs != nprocs:
            raise ValueError(
                f"topology built for P={topology.nprocs}, "
                f"machine has P={nprocs}"
            )
        return topology
    name = topology
    if name is None:
        name = os.environ.get("REPRO_TOPOLOGY", "").strip().lower() or \
            "uniform"
    name = name.strip().lower()
    contention = False
    if ":" in name:
        name, _, flags = name.partition(":")
        for flag in filter(None, flags.split(",")):
            if flag == "contention":
                contention = True
            else:
                raise ValueError(f"unknown topology flag {flag!r}")
    cls = TOPOLOGIES.get(name)
    if cls is None:
        raise ValueError(
            f"unknown topology {name!r} "
            f"(choose from {sorted(TOPOLOGIES)})"
        )
    return cls(nprocs, contention=contention)
