"""Cooperative run-to-block scheduler: the zero-contention backend.

The thread backend (:mod:`repro.machine.network`) gives every simulated
rank a free-running OS thread and pays for it in GIL contention, lock
traffic, and ``threading.Barrier`` rendezvous.  None of that concurrency
is *semantically* necessary: virtual time is dataflow-determined (a
receive completes at ``max(own clock, sender arrival)``, a collective at
``max(clocks) + tree cost``), so any dispatch order that respects the
blocking structure produces bit-identical results.

This module exploits that.  Exactly **one** rank executes at any moment:
a rank runs until it blocks at a network operation — a receive with an
empty queue, or a collective it is not the last to enter — and only then
does the scheduler hand the CPU to the next runnable rank, chosen
deterministically by smallest ``(virtual clock, rank)``.  Consequences:

* no locks or condition variables anywhere in the data path — plain
  dicts and lists, because there is never a second runner to race with;
* a collective completes in a **single rendezvous**: the last arrival
  computes ``max(clocks)``, runs the completion (rank-ordered reduction,
  broadcast consumption, exchange table snapshot) and marks every
  participant runnable, then simply keeps running;
* deadlock is a native scheduler state — "no rank runnable while some
  rank is blocked" — declared at the instant it becomes true and
  reported through the same :class:`DeadlockReport` (identical
  ``reason`` strings) as the thread backend's wait-for graph;
* fault plans work unchanged: every ``FaultPlan`` decision is a pure
  function of message identity and virtual time, never of scheduling.

Ranks are carried on daemon threads used purely as coroutine frames
(plain generators cannot suspend across the interpreter's call stack),
but only one is ever logically runnable; a context switch is one
``Event.set`` plus one ``Event.wait``.

All backends accept either one node program shared by every rank or a
per-rank list (``Machine.run``); generated node programs
(:mod:`repro.codegen`) use the latter since rank classes get distinct
modules.  Select the backend with
``Machine(scheduler="coop"|"threads"|"event")``,
``REPRO_SCHEDULER`` in the environment, or ``fdc --scheduler``; ``coop``
is the default, ``threads`` is retained as a differential oracle
(see ``tests/test_scheduler_differential.py``), and ``event`` is the
heap-driven backend in :mod:`repro.machine.event` that scales to
thousands of ranks.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import Any, Callable, Optional

from .costmodel import CostModel
from .deadlock import (
    BLOCKED_COLLECTIVE,
    BLOCKED_RECV,
    FAILED,
    FINISHED,
    RUNNING,
    DeadlockReport,
    build_report,
)
from .faults import FaultPlan
from .network import (
    AbortError,
    DeadlockError,
    SimulationError,
    _Message,
    arrival_time,
    combine_reduction,
    resolve_timeout,
)
from .stats import RunStats
from .topology import LinkClock, Topology, UniformTopology

#: runnable but waiting for the CPU (a delivered message or a completed
#: collective made the rank dispatchable again)
READY = "ready"

SCHEDULERS = ("coop", "threads", "event")


def resolve_scheduler(name: Optional[str]) -> str:
    """Explicit value, else ``REPRO_SCHEDULER``, else ``"coop"``."""
    if name is None:
        name = os.environ.get("REPRO_SCHEDULER", "").strip().lower() or "coop"
    if name not in SCHEDULERS:
        raise ValueError(
            f"unknown scheduler {name!r} (choose from {SCHEDULERS})"
        )
    return name


class CoopScheduler:
    """Dispatch core: rank states, the run queue, and fiber handoff.

    Fibers hand off the CPU explicitly: the yielding fiber picks the
    next runnable rank (smallest ``(clock, rank)``), sets that fiber's
    event, and waits on its own.  Because at most one fiber is logically
    running, none of the state here needs a lock; the event pair
    provides the necessary happens-before edges between fibers.
    """

    def __init__(self, nprocs: int, timeout_s: Optional[float] = None,
                 tracer: Any = None, metrics: Any = None) -> None:
        self.nprocs = nprocs
        self.timeout_s = resolve_timeout(timeout_s)
        self.tracer = tracer
        self.metrics = metrics
        self._state = [READY] * nprocs
        self._detail: list[object] = [None] * nprocs
        self._clock = [0.0] * nprocs
        self._events = [threading.Event() for _ in range(nprocs)]
        self.report: Optional[DeadlockReport] = None
        self.failed = False
        self.network: Optional["CoopNetwork"] = None  # set by Machine
        self.dispatches = 0
        self.switches = 0

    # -- dispatch ----------------------------------------------------------

    def _next_runnable(self) -> Optional[int]:
        """Deterministic pick: smallest (virtual clock, rank).  After a
        failure, blocked fibers are dispatchable too — they wake only to
        raise, which is how teardown stays sequential."""
        best = None
        best_key = None
        for r in range(self.nprocs):
            s = self._state[r]
            if s == READY or (
                self.failed and s in (BLOCKED_RECV, BLOCKED_COLLECTIVE)
            ):
                key = (self._clock[r], r)
                if best_key is None or key < best_key:
                    best, best_key = r, key
        return best

    def _dispatch_next(self) -> bool:
        nxt = self._next_runnable()
        if nxt is None:
            return False
        self.dispatches += 1
        if self._state[nxt] == READY:
            self._state[nxt] = RUNNING
        if self.tracer is not None:
            self.tracer.rank_event(nxt, "sched.dispatch", self._clock[nxt])
        self._events[nxt].set()
        return True

    def _park(self, rank: int) -> None:
        """Yield the CPU; return when redispatched.  Declares deadlock
        when nobody (including us) can run."""
        ev = self._events[rank]
        ev.clear()
        if not self._dispatch_next():
            self._declare_deadlock()
            ev.set()  # resume immediately; caller raises on self.failed
        self.switches += 1
        if not ev.wait(timeout=self.timeout_s):
            # wall-clock safety net: with exact blocking bookkeeping this
            # only fires if a sibling fiber is stuck in non-simulated code
            self.failed = True
            reason = (
                f"wall-clock timeout: processor {rank} waited "
                f"{self.timeout_s:.1f}s for the scheduler to redispatch it"
            )
            if self.report is None:
                rep = self._snapshot()
                rep.reason = reason
                self.report = rep
            raise DeadlockError(f"deadlock: {reason}", self.report)

    def _snapshot(self) -> DeadlockReport:
        pending = self.network.pending_summary if self.network else None
        return build_report(self._state, self._detail, self._clock,
                            pending_of=pending)

    def _declare_deadlock(self) -> None:
        if self.failed or self.report is not None:
            return
        if not any(s in (BLOCKED_RECV, BLOCKED_COLLECTIVE)
                   for s in self._state):
            return  # everyone finished: normal termination
        self.report = self._snapshot()
        self.failed = True

    # -- state transitions (called by CoopNetwork / CoopCollectives) -------

    def fail(self) -> None:
        """A rank errored: blocked fibers become dispatchable and raise
        when they get the CPU (sequential, deterministic teardown)."""
        self.failed = True

    def failure_error(self, fallback: SimulationError) -> SimulationError:
        """The error a torn-down rank raises: the deadlock diagnosis if
        one was declared, the secondary abort otherwise."""
        if self.report is not None:
            return DeadlockError(
                f"deadlock: {self.report.reason}\n{self.report.describe()}",
                self.report,
            )
        return fallback

    def block_recv(self, rank: int, key: tuple[int, int],
                   clock: float) -> None:
        """Rank blocks on a matched receive; returns when the message is
        deliverable, raises when the run failed meanwhile."""
        self._state[rank] = BLOCKED_RECV
        self._detail[rank] = key
        self._clock[rank] = clock
        if self.metrics is not None:
            self.metrics.block_recv.inc()
        if self.tracer is not None:
            self.tracer.rank_event(
                rank, "sched.block", clock, why="recv",
                src=key[0], tag=key[1],
            )
        self._park(rank)
        if self.failed:
            self._state[rank] = RUNNING
            src, tag = key
            raise self.failure_error(AbortError(
                f"processor {rank} aborted while waiting for "
                f"(src={src}, tag={tag})"
            ))
        self._detail[rank] = None

    def block_collective(self, rank: int, label: str, clock: float) -> None:
        """Rank waits for the rest of a collective; the last arrival
        releases everyone (see CoopCollectives._rendezvous)."""
        self._state[rank] = BLOCKED_COLLECTIVE
        self._detail[rank] = label
        self._clock[rank] = clock
        if self.metrics is not None:
            self.metrics.block_coll.inc()
        if self.tracer is not None:
            self.tracer.rank_event(
                rank, "sched.block", clock, why="collective", label=label,
            )
        self._park(rank)
        if self.failed:
            self._state[rank] = RUNNING
            raise self.failure_error(AbortError(
                f"processor {rank} aborted inside collective {label!r} "
                f"(a peer failed or deadlocked)"
            ))
        self._detail[rank] = None

    def unblock_recv(self, dst: int, key: tuple[int, int]) -> None:
        """A send matched *dst*'s awaited key: make it dispatchable (it
        gets the CPU only when the current fiber next blocks)."""
        if self._state[dst] == BLOCKED_RECV and self._detail[dst] == key:
            self._state[dst] = READY
            if self.tracer is not None:
                self.tracer.rank_event(
                    dst, "sched.unblock", self._clock[dst], why="recv",
                    src=key[0], tag=key[1],
                )

    def release_collective(self) -> None:
        """The last participant arrived: every collective waiter is
        runnable again."""
        for r, s in enumerate(self._state):
            if s == BLOCKED_COLLECTIVE:
                self._state[r] = READY
                if self.tracer is not None:
                    self.tracer.rank_event(
                        r, "sched.unblock", self._clock[r],
                        why="collective",
                    )

    def finish(self, rank: int, clock: float, failed: bool = False) -> None:
        """Rank left its node program; hand the CPU onward.  Never
        raises (called from ``finally``); a deadlock this finish exposes
        is declared here and raised by the woken peers."""
        self._state[rank] = FAILED if failed else FINISHED
        self._detail[rank] = None
        self._clock[rank] = clock
        if not self._dispatch_next():
            self._declare_deadlock()
            if self.failed:
                self._dispatch_next()  # wake a blocked fiber to tear down

    # -- fiber lifecycle ---------------------------------------------------

    def _fiber_main(self, rank: int, body: Callable[[], None]) -> None:
        ev = self._events[rank]
        while not ev.wait(timeout=self.timeout_s):
            if self.failed:  # pragma: no cover - defensive
                return       # torn down before ever being dispatched
        body()

    def run_fibers(self, bodies: list[Callable[[], None]]) -> list[str]:
        """Run one fiber per rank to completion; returns leaked names
        (empty in every non-pathological run)."""
        threads = [
            threading.Thread(
                target=self._fiber_main, args=(r, bodies[r]),
                name=f"node-{r}", daemon=True,
            )
            for r in range(self.nprocs)
        ]
        for t in threads:
            t.start()
        self._dispatch_next()  # kick rank 0 (all clocks are 0)
        deadline = time.monotonic() + self.timeout_s + 10.0
        for t in threads:
            t.join(timeout=max(0.1, deadline - time.monotonic()))
        leaked = [t.name for t in threads if t.is_alive()]
        if leaked:  # pragma: no cover - defensive: should not happen
            self.failed = True
            for ev in self._events:
                ev.set()
            for t in threads:
                t.join(timeout=1.0)
            leaked = [t.name for t in threads if t.is_alive()]
        return leaked


class CoopNetwork:
    """Point-to-point interconnect for the cooperative scheduler.

    Same virtual-time semantics, fault injection, and error surface as
    :class:`~repro.machine.network.Network`, minus every lock and
    condition variable: only one rank executes at a time, so plain dicts
    suffice and a matched receive with a queued message costs a dict
    probe and a ``deque.popleft``.
    """

    def __init__(
        self,
        nprocs: int,
        cost: CostModel,
        stats: RunStats,
        timeout_s: Optional[float] = None,
        faults: Optional[FaultPlan] = None,
        scheduler: Optional[CoopScheduler] = None,
        tracer: Any = None,
        topology: Optional[Topology] = None,
        metrics: Any = None,
    ) -> None:
        self.nprocs = nprocs
        self.cost = cost
        self.stats = stats
        self.timeout_s = resolve_timeout(timeout_s)
        self.faults = faults
        self.sched = scheduler
        self.tracer = tracer
        self.metrics = metrics
        self.topo = topology if topology is not None \
            else UniformTopology(nprocs)
        self._links = LinkClock() if self.topo.contention else None
        self._queues: list[dict[tuple[int, int], deque[_Message]]] = [
            {} for _ in range(nprocs)
        ]
        self._seq: dict[tuple[int, int, int], int] = {}

    # -- failure propagation ----------------------------------------------

    def fail(self) -> None:
        self.sched.fail()

    def failing(self) -> bool:
        return self.sched.failed

    # -- traffic -----------------------------------------------------------

    def send(
        self, src: int, dst: int, tag: int, payload: Any, nbytes: int,
        now: float, origin: Optional[str] = None,
    ) -> float:
        """Deliver a message; returns the sender's clock after the send."""
        if self.sched.failed:
            raise self.sched.failure_error(AbortError(
                f"processor {src} aborted before send to {dst}"
            ))
        if not (0 <= dst < self.nprocs):
            raise SimulationError(f"send to invalid processor {dst}")
        if dst == src:
            raise SimulationError(f"processor {src} sending to itself")
        sender_after = now + self.cost.send_cost(nbytes)
        available = arrival_time(self.topo, self._links, self.cost,
                                 src, dst, nbytes, now)
        if self.faults is not None and self.faults.affects_messages:
            seqkey = (src, dst, tag)
            seq = self._seq.get(seqkey, 0)
            self._seq[seqkey] = seq + 1
            extra, retries = self.faults.message_faults(src, dst, tag, seq)
            if extra or retries:
                available += extra
                self.stats.record_fault(retries)
                if self.tracer is not None:
                    self.tracer.rank_event(
                        src, "fault", now, dst=dst, tag=tag,
                        delay=extra, retries=retries,
                    )
        if self.tracer is not None:
            if self.topo.is_uniform:
                self.tracer.rank_event(
                    src, "net.send", now, dst=dst, tag=tag, bytes=nbytes,
                    avail=available, origin=origin,
                )
            else:
                self.tracer.rank_event(
                    src, "net.send", now, dst=dst, tag=tag, bytes=nbytes,
                    avail=available, origin=origin,
                    hops=self.topo.hops(src, dst),
                )
        key = (src, tag)
        q = self._queues[dst].get(key)
        if q is None:
            q = self._queues[dst][key] = deque()
        q.append(_Message(src, tag, payload, nbytes, available,
                          sent_at=now, origin=origin))
        self.sched.unblock_recv(dst, key)
        self.stats.record_message(nbytes)
        return sender_after

    def recv(self, dst: int, src: int, tag: int, now: float,
             origin: Optional[str] = None) -> tuple[Any, float]:
        """Blocking matched receive; returns (payload, new clock)."""
        if not (0 <= src < self.nprocs):
            raise SimulationError(f"recv from invalid processor {src}")
        key = (src, tag)
        queues = self._queues[dst]
        while True:
            q = queues.get(key)
            if q:
                m = q.popleft()
                if not q:
                    del queues[key]
                arrive = max(now, m.available_at)
                t = arrive + self.cost.recv_cost(m.nbytes)
                if self.metrics is not None:
                    self.metrics.recv_blocked.observe(
                        max(0.0, m.available_at - now))
                if self.tracer is not None:
                    self.tracer.rank_event(
                        dst, "net.recv", now, dur=t - now, src=m.src,
                        tag=tag, bytes=m.nbytes, sent_at=m.sent_at,
                        avail=m.available_at,
                        wait=max(0.0, m.available_at - now),
                        origin=origin or m.origin,
                    )
                return m.payload, t
            if self.sched.failed:
                raise self.sched.failure_error(AbortError(
                    f"processor {dst} aborted while waiting for "
                    f"(src={src}, tag={tag})"
                ))
            # yields the CPU; raises when the run fails while we wait,
            # returns when the message is deliverable
            self.sched.block_recv(dst, key, now)

    # -- introspection -----------------------------------------------------

    def pending(self, dst: int) -> int:
        return sum(len(q) for q in self._queues[dst].values())

    def has_pending(self, dst: int, key: tuple[int, int]) -> bool:
        return bool(self._queues[dst].get(key))

    def pending_summary(
        self, dst: int
    ) -> list[tuple[tuple[int, int], int]]:
        return sorted(
            (key, len(q)) for key, q in self._queues[dst].items() if q
        )


class CoopCollectives:
    """Single-rendezvous collectives for the cooperative scheduler.

    Every participant deposits its contribution and parks; the last
    arrival runs the completion — ``max(clocks)``, the rank-ordered
    reduction / broadcast consumption / exchange snapshot, the stats —
    marks everyone runnable, and keeps going.  The shared result slots
    are overwrite-safe without synchronization: the *next* collective
    cannot complete until every rank has re-entered it, which means
    every rank has already read the previous result.
    """

    def __init__(self, nprocs: int, cost: CostModel, stats: RunStats,
                 scheduler: CoopScheduler, tracer: Any = None,
                 topology: Optional[Topology] = None,
                 metrics: Any = None) -> None:
        self.nprocs = nprocs
        self.cost = cost
        self.stats = stats
        self.sched = scheduler
        self.tracer = tracer
        self.metrics = metrics
        self.topo = topology if topology is not None \
            else UniformTopology(nprocs)
        self._slots: dict[str, Any] = {}
        self._clocks = [0.0] * nprocs
        self._arrived = 0
        self._maxclock = 0.0
        #: straggler rank (trace-only), overwrite-safe like ``_result``
        self._maxrank = 0
        self._result: Any = None

    def abort(self) -> None:
        """Teardown is driven entirely by the scheduler."""

    def _rendezvous(self, rank: int, label: str, now: float,
                    complete: Callable[[], Any]) -> None:
        if self.sched.failed:
            raise self.sched.failure_error(AbortError(
                f"processor {rank} aborted inside collective {label!r} "
                f"(a peer failed or deadlocked)"
            ))
        self._clocks[rank] = now
        self._arrived += 1
        if self._arrived == self.nprocs:
            self._arrived = 0
            self._maxclock = max(self._clocks)
            if self.tracer is not None:
                self._maxrank = min(
                    r for r in range(self.nprocs)
                    if self._clocks[r] == self._maxclock
                )
            self._result = complete()
            self.sched.release_collective()
        else:
            self.sched.block_collective(rank, label, now)

    def _observe_coll(self, now: float) -> None:
        """Metrics: virtual µs this participant waited for the
        rendezvous to complete (call after ``_rendezvous`` returns)."""
        self.metrics.coll_blocked.observe(max(0.0, self._maxclock - now))

    def _trace_coll(self, rank: int, label: str, now: float, t: float,
                    nbytes: int = 0, origin: Optional[str] = None) -> None:
        """Record one participant's rendezvous span (after _rendezvous
        returns, so ``_maxclock``/``_maxrank`` describe *this* op)."""
        self.tracer.rank_event(
            rank, "coll", now, dur=t - now, label=label, bytes=nbytes,
            maxclock=self._maxclock, maxrank=self._maxrank, origin=origin,
        )

    # -- shared slot/completion builders (also used by the event
    # -- backend's generator variants in repro.machine.event) --------------

    def _begin_bcast(self, rank: int, root: int, payload: Any, nbytes: int,
                     consume: Any) -> Callable[[], Any]:
        slot = self._slots.setdefault("bcast", {"consume": []})
        if rank == root:
            slot["data"] = payload
            slot["nbytes"] = nbytes
        if consume is not None:
            slot["consume"].append(consume)

        def complete() -> Any:
            s = self._slots.pop("bcast")
            data = s["data"]
            for fn in s["consume"]:
                fn(data)
            self.stats.record_collective(s["nbytes"])
            return data

        return complete

    def _begin_reduce(self, rank: int, value: Any, op: str,
                      nbytes: int) -> Callable[[], Any]:
        self._slots.setdefault("reduce", {})[rank] = value

        def complete() -> Any:
            table = self._slots.pop("reduce")
            values = [table[r] for r in range(self.nprocs)]
            result = combine_reduction(op, values)
            self.stats.record_collective(nbytes * self.nprocs)
            return result

        return complete

    def _begin_exchange(self, rank: int, outgoing: dict[int, Any],
                        nbytes_out: int) -> Callable[[], Any]:
        self._slots.setdefault("exchange", {})[rank] = (outgoing, nbytes_out)

        def complete() -> Any:
            table = self._slots.pop("exchange")
            nmsgs = sum(len(msgs) for msgs, _nb in table.values())
            nbytes = sum(nb for _msgs, nb in table.values())
            if nmsgs:
                self.stats.record_exchange(nmsgs, nbytes)
            return table

        return complete

    def _incoming_of(self, rank: int) -> dict[int, Any]:
        """Extract *rank*'s incoming payloads from an exchange result."""
        table = self._result
        return {
            src: msgs[rank]
            for src, (msgs, _nb) in table.items()
            if rank in msgs
        }

    def broadcast(self, rank: int, root: int, payload: Any, nbytes: int,
                  now: float, consume: Any = None,
                  origin: Optional[str] = None) -> tuple[Any, float]:
        """All nodes call; returns (payload, new clock).

        *consume* callbacks all run inside the completion, before any
        participant resumes — so the root may pass a zero-copy view of
        its own array and still mutate it freely afterwards.
        """
        complete = self._begin_bcast(rank, root, payload, nbytes, consume)
        self._rendezvous(rank, "bcast", now, complete)
        if self.metrics is not None:
            self._observe_coll(now)
        t = self._maxclock + self.topo.collective_cost(
            self.cost, self.nprocs, nbytes
        )
        if self.tracer is not None:
            self._trace_coll(rank, "bcast", now, t, nbytes, origin)
        return self._result, t

    def allreduce(self, rank: int, value: Any, op: str, nbytes: int,
                  now: float,
                  origin: Optional[str] = None) -> tuple[Any, float]:
        """Combining all-reduce, rank-ordered for determinism."""
        complete = self._begin_reduce(rank, value, op, nbytes)
        self._rendezvous(rank, "reduce", now, complete)
        if self.metrics is not None:
            self._observe_coll(now)
        t = self._maxclock + 2 * self.topo.collective_cost(
            self.cost, self.nprocs, nbytes
        )
        if self.tracer is not None:
            self._trace_coll(rank, "reduce", now, t, nbytes, origin)
        return self._result, t

    def barrier(self, rank: int, now: float,
                origin: Optional[str] = None) -> float:
        self._rendezvous(rank, "barrier", now, lambda: None)
        if self.metrics is not None:
            self._observe_coll(now)
        t = self._maxclock + self.topo.barrier_cost(self.cost, self.nprocs)
        if self.tracer is not None:
            self._trace_coll(rank, "barrier", now, t, 0, origin)
        return t

    def exchange(self, rank: int, outgoing: dict[int, Any], nbytes_out: int,
                 now: float,
                 origin: Optional[str] = None) -> tuple[dict[int, Any], float]:
        """All-to-all personalized exchange (the remap runtime)."""
        complete = self._begin_exchange(rank, outgoing, nbytes_out)
        self._rendezvous(rank, "exchange", now, complete)
        if self.metrics is not None:
            self._observe_coll(now)
        incoming = self._incoming_of(rank)
        t = self._maxclock + self.topo.collective_cost(
            self.cost, self.nprocs, max(nbytes_out, 1)
        )
        if self.tracer is not None:
            self._trace_coll(rank, "exchange", now, t, nbytes_out, origin)
            per_pair = nbytes_out / max(1, len(outgoing))
            for dst in sorted(outgoing):
                self.tracer.rank_event(
                    rank, "net.exchange", now, dst=dst, bytes=per_pair,
                    origin=origin,
                )
        return incoming, t
