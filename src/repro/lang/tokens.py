"""Token definitions for the Fortran D dialect accepted by the front end.

The language is a line-oriented free-form Fortran 77 subset extended with
the Fortran D data-placement statements (``DECOMPOSITION``, ``ALIGN``,
``DISTRIBUTE``).  Identifiers may contain ``$`` because the compiler's own
generated names (``my$p``, ``ub$1``, ``F1$row``) follow the convention used
in the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokKind(enum.Enum):
    """Lexical category of a token."""

    IDENT = "ident"
    INT = "int"
    REAL = "real"
    STRING = "string"
    OP = "op"            # + - * / ** = ( ) , : < > <= >= == /= etc.
    KEYWORD = "keyword"
    NEWLINE = "newline"
    EOF = "eof"


#: Reserved words recognized by the parser.  Fortran is case-insensitive;
#: the lexer lowercases identifiers before the keyword check.
KEYWORDS = frozenset(
    {
        "program",
        "subroutine",
        "function",
        "end",
        "enddo",
        "endif",
        "do",
        "if",
        "then",
        "else",
        "elseif",
        "call",
        "return",
        "stop",
        "continue",
        "real",
        "integer",
        "logical",
        "double",
        "precision",
        "parameter",
        "dimension",
        "common",
        "external",
        "intrinsic",
        "decomposition",
        "align",
        "distribute",
        "with",
        "while",
        "print",
        "goto",
    }
)

#: Multi-character operators, longest first so the lexer can use greedy
#: matching.
MULTI_OPS = (
    "**",
    "==",
    "/=",
    "<=",
    ">=",
    "//",
)

SINGLE_OPS = "+-*/=(),:<>"

#: Fortran dotted operators mapped to their canonical spelling.
DOT_OPS = {
    ".eq.": "==",
    ".ne.": "/=",
    ".lt.": "<",
    ".le.": "<=",
    ".gt.": ">",
    ".ge.": ">=",
    ".and.": ".and.",
    ".or.": ".or.",
    ".not.": ".not.",
    ".true.": ".true.",
    ".false.": ".false.",
}


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes
    ----------
    kind:
        Lexical category.
    text:
        Canonical text (identifiers and keywords are lowercased).
    line:
        1-based source line, for diagnostics.
    col:
        1-based source column of the first character.
    """

    kind: TokKind
    text: str
    line: int
    col: int

    def is_kw(self, word: str) -> bool:
        """Return True when this token is the keyword *word*."""
        return self.kind is TokKind.KEYWORD and self.text == word

    def is_op(self, op: str) -> bool:
        """Return True when this token is the operator *op*."""
        return self.kind is TokKind.OP and self.text == op

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind.value}({self.text!r})@{self.line}:{self.col}"
