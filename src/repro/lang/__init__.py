"""Fortran D dialect front end: lexer, parser, AST, pretty printer."""

from . import ast
from .lexer import LexError, tokenize
from .parser import ParseError, Parser, parse
from .printer import expr_str, procedure_str, program_str, stmt_lines

__all__ = [
    "ast",
    "tokenize",
    "LexError",
    "parse",
    "Parser",
    "ParseError",
    "expr_str",
    "stmt_lines",
    "procedure_str",
    "program_str",
]
