"""Lexer for the Fortran D dialect.

The lexer is line-oriented: statement boundaries are newlines (there is no
fixed-form column handling; sources in this repository are free-form).
Comment lines start with ``!``, ``c``/``C`` in column one followed by a
space, or ``*`` in column one.  Inline ``!`` comments are stripped.
"""

from __future__ import annotations

from .tokens import DOT_OPS, KEYWORDS, MULTI_OPS, SINGLE_OPS, TokKind, Token


class LexError(Exception):
    """Raised on malformed input."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"lex error at {line}:{col}: {message}")
        self.line = line
        self.col = col


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch in "_$"


def _is_comment_line(stripped: str, raw: str) -> bool:
    # free-form dialect: `!` anywhere-leading and `*` in column one.
    # (Fixed-form `c` comment lines are NOT supported: they are ambiguous
    # with assignments to a variable named c.)
    if stripped.startswith("!"):
        return True
    if raw[:1] == "*" and (len(raw) == 1 or raw[1].isspace()):
        return True
    return False


def tokenize(source: str) -> list[Token]:
    """Tokenize *source*, returning a list ending with an EOF token.

    Consecutive physical lines joined by a trailing ``&`` are treated as a
    single logical line.  Blank and comment lines produce no tokens.
    """
    tokens: list[Token] = []
    lines = source.split("\n")
    lineno = 0
    pending: str | None = None
    pending_line = 0
    for raw in lines:
        lineno += 1
        stripped = raw.strip()
        if not stripped or _is_comment_line(stripped, raw):
            continue
        # strip inline comments (! not inside a string literal)
        line = _strip_inline_comment(raw)
        if pending is not None:
            line = pending + line
            start_line = pending_line
            pending = None
        else:
            start_line = lineno
        if line.rstrip().endswith("&"):
            pending = line.rstrip()[:-1]
            pending_line = start_line
            continue
        _lex_line(line, start_line, tokens)
        tokens.append(Token(TokKind.NEWLINE, "\n", start_line, len(line) + 1))
    if pending is not None:
        raise LexError("dangling continuation '&'", pending_line, 1)
    tokens.append(Token(TokKind.EOF, "", lineno + 1, 1))
    return tokens


def _strip_inline_comment(line: str) -> str:
    in_str = False
    for i, ch in enumerate(line):
        if ch == "'":
            in_str = not in_str
        elif ch == "!" and not in_str:
            return line[:i]
    return line


def _lex_line(line: str, lineno: int, out: list[Token]) -> None:
    i = 0
    n = len(line)
    while i < n:
        ch = line[i]
        col = i + 1
        if ch.isspace():
            i += 1
            continue
        if _is_ident_start(ch):
            j = i + 1
            while j < n and _is_ident_char(line[j]):
                j += 1
            word = line[i:j].lower()
            kind = TokKind.KEYWORD if word in KEYWORDS else TokKind.IDENT
            out.append(Token(kind, word, lineno, col))
            i = j
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and line[i + 1].isdigit()):
            i = _lex_number(line, i, lineno, out)
            continue
        if ch == ".":
            matched = False
            for dot, canon in DOT_OPS.items():
                if line[i : i + len(dot)].lower() == dot:
                    out.append(Token(TokKind.OP, canon, lineno, col))
                    i += len(dot)
                    matched = True
                    break
            if matched:
                continue
            raise LexError(f"unexpected '.'", lineno, col)
        if ch == "'":
            j = line.find("'", i + 1)
            if j < 0:
                raise LexError("unterminated string literal", lineno, col)
            out.append(Token(TokKind.STRING, line[i + 1 : j], lineno, col))
            i = j + 1
            continue
        matched = False
        for op in MULTI_OPS:
            if line.startswith(op, i):
                out.append(Token(TokKind.OP, op, lineno, col))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in SINGLE_OPS:
            out.append(Token(TokKind.OP, ch, lineno, col))
            i += 1
            continue
        raise LexError(f"unexpected character {ch!r}", lineno, col)


def _lex_number(line: str, i: int, lineno: int, out: list[Token]) -> int:
    """Lex an integer or real literal starting at index *i*; return the
    index one past the literal."""
    n = len(line)
    col = i + 1
    j = i
    while j < n and line[j].isdigit():
        j += 1
    is_real = False
    # A '.' begins a fractional part only if not the start of a dotted
    # operator such as `1.eq.` -- check that what follows isn't a letter
    # sequence ending in '.'.
    if j < n and line[j] == "." and not _looks_like_dot_op(line, j):
        is_real = True
        j += 1
        while j < n and line[j].isdigit():
            j += 1
    if j < n and line[j] in "eEdD":
        k = j + 1
        if k < n and line[k] in "+-":
            k += 1
        if k < n and line[k].isdigit():
            is_real = True
            j = k
            while j < n and line[j].isdigit():
                j += 1
    text = line[i:j].lower().replace("d", "e")
    kind = TokKind.REAL if is_real else TokKind.INT
    out.append(Token(kind, text, lineno, col))
    return j


def _looks_like_dot_op(line: str, dot: int) -> bool:
    for op in DOT_OPS:
        if line[dot : dot + len(op)].lower() == op:
            return True
    return False
