"""Pretty-printer: AST back to Fortran D / SPMD node-program text.

The output style follows the paper's figures: lowercase keywords,
two-space indentation inside loops and branches, and explicit ``send`` /
``recv`` pseudo-statements for the generated communication.
"""

from __future__ import annotations

from . import ast as A

_INDENT = "  "


def expr_str(e: A.Expr) -> str:
    """Render an expression."""
    if isinstance(e, A.Num):
        return str(e.value)
    if isinstance(e, A.Logical):
        return ".true." if e.value else ".false."
    if isinstance(e, A.Str):
        return f"'{e.value}'"
    if isinstance(e, A.Var):
        return e.name
    if isinstance(e, A.ArrayRef):
        return f"{e.name}({', '.join(expr_str(s) for s in e.subs)})"
    if isinstance(e, A.CallExpr):
        return f"{e.name}({', '.join(expr_str(a) for a in e.args)})"
    if isinstance(e, A.Triplet):
        lo = expr_str(e.lo) if e.lo is not None else ""
        hi = expr_str(e.hi) if e.hi is not None else ""
        s = f"{lo}:{hi}"
        if e.step is not None:
            s += f":{expr_str(e.step)}"
        return s
    if isinstance(e, A.BinOp):
        return f"{_paren(e.left, e)} {e.op} {_paren(e.right, e, right=True)}"
    if isinstance(e, A.UnOp):
        return f"{e.op}{_paren(e.operand, e)}"
    raise TypeError(f"expr_str: unhandled {type(e).__name__}")


_PREC = {
    ".or.": 1, ".and.": 2,
    "==": 3, "/=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
    "+": 4, "-": 4, "*": 5, "/": 5, "**": 6,
}


def _prec_of(e: A.Expr) -> int:
    if isinstance(e, A.BinOp):
        return _PREC[e.op]
    if isinstance(e, A.UnOp):
        return 7
    return 99


def _paren(child: A.Expr, parent: A.BinOp | A.UnOp, right: bool = False) -> str:
    s = expr_str(child)
    if isinstance(parent, A.UnOp):
        need = _prec_of(child) < 7
    else:
        pp = _PREC[parent.op]
        cp = _prec_of(child)
        if cp < pp:
            need = True
        elif cp == pp:
            # exact AST round-trip: the parser is left-associative for
            # everything except **, so a same-precedence child on the
            # non-associating side needs parentheses
            need = (not right) if parent.op == "**" else right
        else:
            need = False
    return f"({s})" if need else s


def _section_str(array: str, subs: list[A.Expr]) -> str:
    return f"{array}({', '.join(expr_str(s) for s in subs)})"


def stmt_lines(s: A.Stmt, depth: int = 0) -> list[str]:
    """Render a statement (recursively) as indented lines."""
    pad = _INDENT * depth
    tag = ""
    label = getattr(s, "label", None)
    if label:
        tag = f"{label}: "

    if isinstance(s, A.Assign):
        return [f"{pad}{tag}{expr_str(s.target)} = {expr_str(s.expr)}"]
    if isinstance(s, A.If):
        lines = [f"{pad}if ({expr_str(s.cond)}) then"]
        for st in s.then_body:
            lines += stmt_lines(st, depth + 1)
        if s.else_body:
            lines.append(f"{pad}else")
            for st in s.else_body:
                lines += stmt_lines(st, depth + 1)
        lines.append(f"{pad}endif")
        return lines
    if isinstance(s, A.Do):
        hdr = f"{pad}do {s.var} = {expr_str(s.lo)}, {expr_str(s.hi)}"
        if s.step != A.ONE:
            hdr += f", {expr_str(s.step)}"
        lines = [hdr]
        for st in s.body:
            lines += stmt_lines(st, depth + 1)
        lines.append(f"{pad}enddo")
        return lines
    if isinstance(s, A.DoWhile):
        lines = [f"{pad}do while ({expr_str(s.cond)})"]
        for st in s.body:
            lines += stmt_lines(st, depth + 1)
        lines.append(f"{pad}enddo")
        return lines
    if isinstance(s, A.Call):
        args = ", ".join(expr_str(a) for a in s.args)
        return [f"{pad}{tag}call {s.name}({args})"]
    if isinstance(s, A.Return):
        return [f"{pad}return"]
    if isinstance(s, A.Stop):
        return [f"{pad}stop"]
    if isinstance(s, A.Continue):
        return [f"{pad}continue"]
    if isinstance(s, A.Print):
        return [f"{pad}print *, {', '.join(expr_str(i) for i in s.items)}"]
    if isinstance(s, A.Decomposition):
        ext = ", ".join(expr_str(e) for e in s.extents)
        return [f"{pad}decomposition {s.name}({ext})"]
    if isinstance(s, A.Align):
        src = ", ".join(s.source_subs)
        dst = ", ".join(s.target_subs)
        return [f"{pad}align {s.array}({src}) with {s.decomp}({dst})"]
    if isinstance(s, A.Distribute):
        specs = ", ".join(str(sp) for sp in s.specs)
        return [f"{pad}distribute {s.name}({specs})"]
    if isinstance(s, A.SetMyProc):
        return [f"{pad}{s.var} = myproc()"]
    if isinstance(s, A.Send):
        c = f"  ! {s.comment}" if s.comment else ""
        return [f"{pad}send {_section_str(s.array, s.subs)} to {expr_str(s.dest)}{c}"]
    if isinstance(s, A.Recv):
        c = f"  ! {s.comment}" if s.comment else ""
        return [f"{pad}recv {_section_str(s.array, s.subs)} from {expr_str(s.src)}{c}"]
    if isinstance(s, A.SendPack):
        c = f"  ! {s.comment}" if s.comment else ""
        secs = " + ".join(_section_str(a, subs) for a, subs in s.parts)
        return [f"{pad}send {secs} to {expr_str(s.dest)}{c}"]
    if isinstance(s, A.RecvPack):
        c = f"  ! {s.comment}" if s.comment else ""
        secs = " + ".join(_section_str(a, subs) for a, subs in s.parts)
        return [f"{pad}recv {secs} from {expr_str(s.src)}{c}"]
    if isinstance(s, A.Bcast):
        c = f"  ! {s.comment}" if s.comment else ""
        return [f"{pad}broadcast {_section_str(s.array, s.subs)} from {expr_str(s.root)}{c}"]
    if isinstance(s, A.GlobalReduce):
        aux = f", {s.aux}" if s.aux else ""
        return [f"{pad}global_{s.op}({s.var}{aux})"]
    if isinstance(s, A.Remap):
        specs = ", ".join(str(sp) for sp in s.to_specs)
        c = f"  ! {s.comment}" if s.comment else ""
        return [f"{pad}remap {s.array} to ({specs}){c}"]
    if isinstance(s, A.MarkDist):
        specs = ", ".join(str(sp) for sp in s.to_specs)
        return [f"{pad}mark {s.array} as ({specs})"]
    raise TypeError(f"stmt_lines: unhandled {type(s).__name__}")


def procedure_str(p: A.Procedure) -> str:
    """Render a full program unit."""
    lines: list[str] = []
    if p.kind == "program":
        lines.append(f"program {p.name}")
    elif p.kind == "subroutine":
        args = ", ".join(p.formals)
        lines.append(f"subroutine {p.name}({args})")
    else:
        args = ", ".join(p.formals)
        lines.append(f"{p.result_type} function {p.name}({args})")
    for d in p.decls:
        if d.dims:
            dims = ", ".join(
                expr_str(hi) if lo == A.ONE else f"{expr_str(lo)}:{expr_str(hi)}"
                for lo, hi in d.dims
            )
            lines.append(f"{_INDENT}{d.type} {d.name}({dims})")
        else:
            lines.append(f"{_INDENT}{d.type} {d.name}")
    if p.commons:
        lines.append(f"{_INDENT}common /blk/ {', '.join(p.commons)}")
    for q in p.params:
        lines.append(f"{_INDENT}parameter ({q.name} = {expr_str(q.value)})")
    for s in p.body:
        lines += stmt_lines(s, 1)
    lines.append("end")
    return "\n".join(lines)


def program_str(prog: A.Program) -> str:
    """Render a whole program."""
    return "\n\n".join(procedure_str(u) for u in prog.units) + "\n"
