"""Recursive-descent parser for the Fortran D dialect.

Grammar (statement level, simplified)::

    program      := unit+
    unit         := ("program" NAME | "subroutine" NAME [formals]
                     | type "function" NAME formals) NL
                    spec* stmt* "end" NL
    spec         := type decl-list | "parameter" "(" ... ")"
                  | "decomposition" NAME "(" extents ")"
                  | "align" ... | "distribute" ...
    stmt         := assign | if | do | call | return | stop | print | ...

Specification statements (declarations, PARAMETER, Fortran D static
directives) may be interleaved with executable statements; Fortran D
ALIGN/DISTRIBUTE are *executable* so they stay in the body, while type
declarations and PARAMETER go to the unit header.
"""

from __future__ import annotations

from . import ast as A
from .lexer import tokenize
from .tokens import TokKind, Token


class ParseError(Exception):
    def __init__(self, message: str, tok: Token) -> None:
        super().__init__(f"parse error at {tok.line}:{tok.col}: {message} (got {tok})")
        self.token = tok


_TYPE_WORDS = {"real", "integer", "logical", "double"}

#: Binary operator precedence, tighter binds higher.
_PREC = {
    ".or.": 1,
    ".and.": 2,
    "==": 3,
    "/=": 3,
    "<": 3,
    "<=": 3,
    ">": 3,
    ">=": 3,
    "+": 4,
    "-": 4,
    "*": 5,
    "/": 5,
    "**": 6,
}


class Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.toks = tokens
        self.pos = 0

    # -- token helpers ------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        return self.toks[min(self.pos + ahead, len(self.toks) - 1)]

    def next(self) -> Token:
        t = self.toks[self.pos]
        if t.kind is not TokKind.EOF:
            self.pos += 1
        return t

    def accept_op(self, op: str) -> bool:
        if self.peek().is_op(op):
            self.next()
            return True
        return False

    def accept_kw(self, word: str) -> bool:
        if self.peek().is_kw(word):
            self.next()
            return True
        return False

    def expect_op(self, op: str) -> Token:
        t = self.next()
        if not t.is_op(op):
            raise ParseError(f"expected {op!r}", t)
        return t

    def expect_kw(self, word: str) -> Token:
        t = self.next()
        if not t.is_kw(word):
            raise ParseError(f"expected keyword {word!r}", t)
        return t

    def expect_ident(self) -> str:
        t = self.next()
        if t.kind is not TokKind.IDENT:
            raise ParseError("expected identifier", t)
        return t.text

    def expect_nl(self) -> None:
        t = self.next()
        if t.kind not in (TokKind.NEWLINE, TokKind.EOF):
            raise ParseError("expected end of statement", t)

    def skip_newlines(self) -> None:
        while self.peek().kind is TokKind.NEWLINE:
            self.next()

    # -- program structure ---------------------------------------------

    def parse_program(self) -> A.Program:
        units: list[A.Procedure] = []
        self.skip_newlines()
        while self.peek().kind is not TokKind.EOF:
            units.append(self.parse_unit())
            self.skip_newlines()
        if not units:
            raise ParseError("empty program", self.peek())
        return A.Program(units)

    def parse_unit(self) -> A.Procedure:
        t = self.peek()
        result_type = None
        if t.is_kw("program"):
            self.next()
            kind = "program"
            name = self.expect_ident()
            formals: list[str] = []
        elif t.is_kw("subroutine"):
            self.next()
            kind = "subroutine"
            name = self.expect_ident()
            formals = self.parse_formals()
        elif t.kind is TokKind.KEYWORD and t.text in _TYPE_WORDS:
            # `<type> function name(args)`
            result_type = self.parse_type_word()
            self.expect_kw("function")
            kind = "function"
            name = self.expect_ident()
            formals = self.parse_formals()
        elif t.is_kw("function"):
            self.next()
            kind = "function"
            result_type = "real"
            name = self.expect_ident()
            formals = self.parse_formals()
        else:
            raise ParseError("expected PROGRAM/SUBROUTINE/FUNCTION", t)
        self.expect_nl()

        proc = A.Procedure(kind, name, formals, [], [], [], result_type)
        proc.body = self.parse_body(proc, end_words=("end",))
        self.expect_kw("end")
        if self.peek().kind is not TokKind.EOF:
            self.expect_nl()
        return proc

    def parse_formals(self) -> list[str]:
        if not self.accept_op("("):
            return []
        formals = []
        if not self.peek().is_op(")"):
            formals.append(self.expect_ident())
            while self.accept_op(","):
                formals.append(self.expect_ident())
        self.expect_op(")")
        return formals

    def parse_type_word(self) -> str:
        t = self.next()
        if t.text == "double":
            self.expect_kw("precision")
            return "real"
        if t.text not in _TYPE_WORDS:
            raise ParseError("expected type", t)
        return t.text

    # -- statement bodies -----------------------------------------------

    def parse_body(self, proc: A.Procedure, end_words: tuple[str, ...]) -> list[A.Stmt]:
        body: list[A.Stmt] = []
        while True:
            self.skip_newlines()
            t = self.peek()
            if t.kind is TokKind.EOF:
                raise ParseError(f"expected one of {end_words}", t)
            if t.kind is TokKind.KEYWORD and t.text in end_words:
                return body
            # `else` / `elseif` terminate a then-branch
            if t.kind is TokKind.KEYWORD and t.text in ("else", "elseif") and "endif" in end_words:
                return body
            stmt = self.parse_statement(proc)
            if stmt is not None:
                body.append(stmt)

    def parse_statement(self, proc: A.Procedure) -> A.Stmt | None:
        t = self.peek()
        # optional statement label of the form `S1:` (as in the paper's
        # figures) applied to the statement that follows
        if t.kind is TokKind.IDENT and self.peek(1).is_op(":"):
            label = t.text
            self.next()
            self.next()
            stmt = self.parse_statement(proc)
            if stmt is not None and hasattr(stmt, "label"):
                stmt.label = label
            return stmt
        if t.kind is TokKind.KEYWORD:
            word = t.text
            if word in _TYPE_WORDS:
                self.parse_declaration(proc)
                return None
            if word == "dimension":
                self.parse_dimension(proc)
                return None
            if word == "parameter":
                self.parse_parameter(proc)
                return None
            if word in ("external", "intrinsic"):
                # accepted and ignored
                while self.peek().kind not in (TokKind.NEWLINE, TokKind.EOF):
                    self.next()
                self.expect_nl()
                return None
            if word == "common":
                self.parse_common(proc)
                return None
            if word == "decomposition":
                return self.parse_decomposition()
            if word == "align":
                return self.parse_align()
            if word == "distribute":
                return self.parse_distribute()
            if word == "do":
                return self.parse_do(proc)
            if word == "if":
                return self.parse_if(proc)
            if word == "call":
                return self.parse_call()
            if word == "return":
                self.next()
                self.expect_nl()
                return A.Return()
            if word == "stop":
                self.next()
                self.expect_nl()
                return A.Stop()
            if word == "continue":
                self.next()
                self.expect_nl()
                return A.Continue()
            if word == "print":
                return self.parse_print()
            raise ParseError(f"unexpected keyword {word!r}", t)
        if t.kind is TokKind.IDENT:
            return self.parse_assign()
        if t.kind is TokKind.NEWLINE:
            self.next()
            return None
        raise ParseError("expected statement", t)

    # -- specification statements ----------------------------------------

    def parse_declaration(self, proc: A.Procedure) -> None:
        typ = self.parse_type_word()
        if self.peek().is_kw("function"):
            raise ParseError("FUNCTION not allowed here", self.peek())
        while True:
            name = self.expect_ident()
            dims: list[tuple[A.Expr, A.Expr]] = []
            if self.accept_op("("):
                dims.append(self.parse_dim_bound())
                while self.accept_op(","):
                    dims.append(self.parse_dim_bound())
                self.expect_op(")")
            proc.decls.append(A.Decl(typ, name, dims))
            if not self.accept_op(","):
                break
        self.expect_nl()

    def parse_dim_bound(self) -> tuple[A.Expr, A.Expr]:
        first = self.parse_expr()
        if self.accept_op(":"):
            hi = self.parse_expr()
            return (first, hi)
        return (A.ONE, first)

    def parse_dimension(self, proc: A.Procedure) -> None:
        self.expect_kw("dimension")
        while True:
            name = self.expect_ident()
            self.expect_op("(")
            dims = [self.parse_dim_bound()]
            while self.accept_op(","):
                dims.append(self.parse_dim_bound())
            self.expect_op(")")
            existing = proc.decl(name)
            if existing is not None:
                existing.dims = dims
            else:
                proc.decls.append(A.Decl("real", name, dims))
            if not self.accept_op(","):
                break
        self.expect_nl()

    def parse_common(self, proc: A.Procedure) -> None:
        """``common /blk/ a, b`` — the block name only groups; identity
        of a global is its variable name."""
        self.expect_kw("common")
        if self.accept_op("/"):
            self.expect_ident()  # block name (grouping only)
            self.expect_op("/")
        while True:
            name = self.expect_ident()
            if name not in proc.commons:
                proc.commons.append(name)
            if not self.accept_op(","):
                break
        self.expect_nl()

    def parse_parameter(self, proc: A.Procedure) -> None:
        self.expect_kw("parameter")
        self.expect_op("(")
        while True:
            name = self.expect_ident()
            self.expect_op("=")
            value = self.parse_expr()
            proc.params.append(A.Param(name, value))
            if not self.accept_op(","):
                break
        self.expect_op(")")
        self.expect_nl()

    # -- Fortran D statements ----------------------------------------------

    def parse_decomposition(self) -> A.Decomposition:
        self.expect_kw("decomposition")
        name = self.expect_ident()
        self.expect_op("(")
        extents = [self.parse_expr()]
        while self.accept_op(","):
            extents.append(self.parse_expr())
        self.expect_op(")")
        self.expect_nl()
        return A.Decomposition(name, extents)

    def parse_align(self) -> A.Align:
        self.expect_kw("align")
        array = self.expect_ident()
        source_subs = self.parse_index_names()
        self.expect_kw("with")
        decomp = self.expect_ident()
        target_subs = self.parse_index_names()
        self.expect_nl()
        return A.Align(array, source_subs, decomp, target_subs)

    def parse_index_names(self) -> list[str]:
        names: list[str] = []
        if self.accept_op("("):
            names.append(self.expect_ident())
            while self.accept_op(","):
                names.append(self.expect_ident())
            self.expect_op(")")
        return names

    def parse_distribute(self) -> A.Distribute:
        self.expect_kw("distribute")
        name = self.expect_ident()
        self.expect_op("(")
        specs = [self.parse_dist_spec()]
        while self.accept_op(","):
            specs.append(self.parse_dist_spec())
        self.expect_op(")")
        self.expect_nl()
        return A.Distribute(name, specs)

    def parse_dist_spec(self) -> A.DistSpec:
        t = self.peek()
        if t.is_op(":"):
            self.next()
            return A.DistSpec("none")
        word = self.expect_ident()
        if word == "block":
            return A.DistSpec("block")
        if word == "cyclic":
            return A.DistSpec("cyclic")
        if word == "block_cyclic":
            self.expect_op("(")
            size_tok = self.next()
            if size_tok.kind is not TokKind.INT:
                raise ParseError("expected block size", size_tok)
            self.expect_op(")")
            return A.DistSpec("block_cyclic", int(size_tok.text))
        raise ParseError(f"unknown distribution {word!r}", t)

    # -- executable statements ----------------------------------------------

    def parse_do(self, proc: A.Procedure) -> A.Stmt:
        self.expect_kw("do")
        if self.peek().is_kw("while"):
            self.next()
            self.expect_op("(")
            cond = self.parse_expr()
            self.expect_op(")")
            self.expect_nl()
            body = self.parse_body(proc, end_words=("enddo",))
            self.expect_kw("enddo")
            self.expect_nl()
            return A.DoWhile(cond, body)
        var = self.expect_ident()
        self.expect_op("=")
        lo = self.parse_expr()
        self.expect_op(",")
        hi = self.parse_expr()
        step: A.Expr = A.ONE
        if self.accept_op(","):
            step = self.parse_expr()
        self.expect_nl()
        body = self.parse_body(proc, end_words=("enddo",))
        self.expect_kw("enddo")
        self.expect_nl()
        return A.Do(var, lo, hi, step, body)

    def parse_if(self, proc: A.Procedure) -> A.If:
        self.expect_kw("if")
        self.expect_op("(")
        cond = self.parse_expr()
        self.expect_op(")")
        if self.accept_kw("then"):
            self.expect_nl()
            then_body = self.parse_body(proc, end_words=("endif",))
            else_body: list[A.Stmt] = []
            if self.accept_kw("elseif"):
                # parse `elseif (cond) then ...` as a nested If in else branch
                self.pos -= 1
                self.toks[self.pos] = Token(TokKind.KEYWORD, "if",
                                            self.peek().line, self.peek().col)
                else_body = [self.parse_if(proc)]
                return A.If(cond, then_body, else_body)
            if self.accept_kw("else"):
                self.expect_nl()
                else_body = self.parse_body(proc, end_words=("endif",))
            self.expect_kw("endif")
            self.expect_nl()
            return A.If(cond, then_body, else_body)
        # single-statement logical IF
        stmt = self.parse_statement(proc)
        if stmt is None:
            raise ParseError("expected statement after logical IF", self.peek())
        return A.If(cond, [stmt], [])

    def parse_call(self) -> A.Call:
        self.expect_kw("call")
        name = self.expect_ident()
        args: list[A.Expr] = []
        if self.accept_op("("):
            if not self.peek().is_op(")"):
                args.append(self.parse_expr())
                while self.accept_op(","):
                    args.append(self.parse_expr())
            self.expect_op(")")
        self.expect_nl()
        return A.Call(name, args)

    def parse_print(self) -> A.Print:
        self.expect_kw("print")
        self.expect_op("*")
        items: list[A.Expr] = []
        while self.accept_op(","):
            items.append(self.parse_expr())
        self.expect_nl()
        return A.Print(items)

    def parse_assign(self) -> A.Assign:
        name = self.expect_ident()
        target: A.Var | A.ArrayRef
        if self.accept_op("("):
            subs = [self.parse_subscript()]
            while self.accept_op(","):
                subs.append(self.parse_subscript())
            self.expect_op(")")
            target = A.ArrayRef(name, tuple(subs))
        else:
            target = A.Var(name)
        self.expect_op("=")
        expr = self.parse_expr()
        self.expect_nl()
        return A.Assign(target, expr)

    # -- expressions ---------------------------------------------------------

    def parse_subscript(self) -> A.Expr:
        """A subscript: an expression or a triplet ``lo:hi[:step]``."""
        if self.peek().is_op(":"):
            self.next()
            return A.Triplet(None, None)
        lo = self.parse_expr()
        if self.accept_op(":"):
            hi = self.parse_expr()
            step = None
            if self.accept_op(":"):
                step = self.parse_expr()
            return A.Triplet(lo, hi, step)
        return lo

    def parse_expr(self, min_prec: int = 1) -> A.Expr:
        left = self.parse_unary()
        while True:
            t = self.peek()
            if t.kind is not TokKind.OP or t.text not in _PREC:
                return left
            prec = _PREC[t.text]
            if prec < min_prec:
                return left
            op = t.text
            self.next()
            # ** is right-associative
            right = self.parse_expr(prec if op == "**" else prec + 1)
            left = A.BinOp(op, left, right)

    def parse_unary(self) -> A.Expr:
        t = self.peek()
        if t.is_op("-"):
            self.next()
            return A.UnOp("-", self.parse_unary())
        if t.is_op("+"):
            self.next()
            return self.parse_unary()
        if t.is_op(".not."):
            self.next()
            return A.UnOp(".not.", self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> A.Expr:
        t = self.next()
        if t.kind is TokKind.INT:
            return A.Num(int(t.text))
        if t.kind is TokKind.REAL:
            return A.Num(float(t.text))
        if t.kind is TokKind.STRING:
            return A.Str(t.text)
        if t.is_op(".true."):
            return A.Logical(True)
        if t.is_op(".false."):
            return A.Logical(False)
        if t.is_op("("):
            e = self.parse_expr()
            self.expect_op(")")
            return e
        if t.kind is TokKind.IDENT:
            if self.peek().is_op("("):
                self.next()
                args: list[A.Expr] = []
                if not self.peek().is_op(")"):
                    args.append(self.parse_subscript())
                    while self.accept_op(","):
                        args.append(self.parse_subscript())
                self.expect_op(")")
                # ArrayRef vs function call is resolved during semantic
                # analysis; the parser emits ArrayRef for both, and the
                # resolver rewrites non-array names to CallExpr.
                return A.ArrayRef(t.text, tuple(args))
            return A.Var(t.text)
        raise ParseError("expected expression", t)


def parse(source: str) -> A.Program:
    """Parse Fortran D *source* text into a Program AST."""
    prog = Parser(tokenize(source)).parse_program()
    _resolve_calls(prog)
    return prog


#: Names always treated as function calls (intrinsics + user math funcs).
INTRINSICS = frozenset(
    {
        "min", "max", "mod", "abs", "sqrt", "float", "int", "sign",
        "myproc", "owner", "f", "g", "nint", "dble", "exp", "pmod",
    }
)


def _resolve_calls(prog: A.Program) -> None:
    """Rewrite ``ArrayRef`` nodes whose name is not a declared array into
    ``CallExpr`` (intrinsic or user function call)."""
    func_names = {u.name for u in prog.units if u.kind == "function"}

    def fix(e: A.Expr, arrays: set[str]) -> A.Expr:
        if isinstance(e, A.ArrayRef):
            subs = tuple(fix(s, arrays) for s in e.subs)
            if e.name in arrays:
                return A.ArrayRef(e.name, subs)
            return A.CallExpr(e.name, subs)
        if isinstance(e, A.BinOp):
            return A.BinOp(e.op, fix(e.left, arrays), fix(e.right, arrays))
        if isinstance(e, A.UnOp):
            return A.UnOp(e.op, fix(e.operand, arrays))
        if isinstance(e, A.CallExpr):
            return A.CallExpr(e.name, tuple(fix(a, arrays) for a in e.args))
        if isinstance(e, A.Triplet):
            return A.Triplet(
                fix(e.lo, arrays) if e.lo is not None else None,
                fix(e.hi, arrays) if e.hi is not None else None,
                fix(e.step, arrays) if e.step is not None else None,
            )
        return e

    def fix_body(body: list[A.Stmt], arrays: set[str]) -> None:
        for s in body:
            if isinstance(s, A.Assign):
                if isinstance(s.target, A.ArrayRef):
                    s.target = A.ArrayRef(
                        s.target.name, tuple(fix(x, arrays) for x in s.target.subs)
                    )
                s.expr = fix(s.expr, arrays)
            elif isinstance(s, A.If):
                s.cond = fix(s.cond, arrays)
            elif isinstance(s, A.Do):
                s.lo, s.hi, s.step = (
                    fix(s.lo, arrays), fix(s.hi, arrays), fix(s.step, arrays)
                )
            elif isinstance(s, A.DoWhile):
                s.cond = fix(s.cond, arrays)
            elif isinstance(s, A.Call):
                s.args = [fix(a, arrays) for a in s.args]
            elif isinstance(s, A.Print):
                s.items = [fix(a, arrays) for a in s.items]
            for blk in A.child_blocks(s):
                fix_body(blk, arrays)

    for unit in prog.units:
        arrays = {d.name for d in unit.decls if d.is_array}
        arrays -= func_names
        fix_body(unit.body, arrays)
