"""Vectorized block execution of compiled loop nests (the fast path).

The closure interpreter dispatches one Python closure per array element,
which bounds how large a problem the simulator can afford.  This module
recognizes innermost ``DO`` loops whose bodies are straight-line affine
array assignments and compiles them to whole-section numpy expressions:
one slice assignment per statement per block instead of one closure call
per element.

Legality (checked at closure-compile time, with residual conditions
checked per block at run time; any failure falls back to the scalar
closure path for that block):

* the body is a non-empty sequence of ``Assign`` statements to array
  elements — no calls, no communication, no control flow, no scalar
  assignments;
* every subscript is ``c``, ``i``, ``i ± c`` or a loop-invariant
  expression, where ``i`` is the loop variable and ``c`` is loop
  invariant; the loop variable appears in exactly one subscript
  position of each reference that uses it;
* right-hand sides use only literals, loop-invariant scalars, the loop
  variable, array references as above, ``+ - * / **`` and unary minus,
  and elementwise-safe intrinsics (``f g abs sqrt min max``) — any
  loop-invariant subexpression without user-function calls is permitted
  wholesale (it is evaluated once per block);
* for every array *written* in the block, all writes share one loop
  axis and (checked at run time) one offset ``w``; every read of that
  array carrying the loop variable sits on the same axis with offset
  ``r == w``, and every loop-invariant read of it indexes outside the
  written range.  Under these rules each iteration touches a distinct
  element and statement order is preserved elementwise, so block
  execution is observationally identical to the sequential loop.

Accounting: the block charges ``loop_tick(n)`` and ``compute(n * ops)``
with the *exact* per-iteration operation counts of the scalar path.
:class:`~repro.machine.machine.ProcContext` batches charges as integer
counters and converts them to virtual time only at observation points,
so clocks, per-processor work, and guard counts are bit-identical
between the scalar and vectorized paths.

``REPRO_VECTORIZE=0`` in the environment forces the scalar path
everywhere (every result stays cross-checkable); the ``vectorize``
keyword of the run helpers overrides the environment per run.
"""

from __future__ import annotations

import os
from typing import Callable, Optional

import numpy as np

from ..lang import ast as A
from ..runtime.intrinsics import PURE_INTRINSICS, f_func, g_func

#: below this trip count the closure path is cheaper than slice setup
MIN_BLOCK = 4


def enabled(override: Optional[bool] = None) -> bool:
    """The effective vectorization switch: explicit *override* if given,
    else the ``REPRO_VECTORIZE`` environment flag (default on)."""
    if override is not None:
        return bool(override)
    return os.environ.get("REPRO_VECTORIZE", "1").lower() not in (
        "0", "false", "no", "off"
    )


class _Reject(Exception):
    """Internal: the loop is not vectorizable."""


class _Block:
    """One runtime instance of a vectorized loop: bounds, trip count,
    and the lazily built index vector."""

    __slots__ = ("lo", "st", "n", "_iota")

    def __init__(self, lo: int, st: int, n: int) -> None:
        self.lo = lo
        self.st = st
        self.n = n
        self._iota = None

    def iota(self) -> np.ndarray:
        if self._iota is None:
            self._iota = np.arange(
                self.lo, self.lo + self.n * self.st, self.st
            )
        return self._iota


def _mentions(e: A.Expr, v: str) -> bool:
    return any(
        isinstance(x, A.Var) and x.name == v for x in A.walk_exprs(e)
    )


def _is_int(x) -> bool:
    if isinstance(x, np.ndarray):
        return x.dtype.kind in "iu"
    return isinstance(x, (int, np.integer)) and not isinstance(x, bool)


def _fortran_div(a, b):
    """Elementwise mirror of the scalar interpreter's ``/``: Fortran
    truncating division when both operands are integral, IEEE division
    otherwise."""
    if _is_int(a) and _is_int(b):
        q = np.abs(a) // np.abs(b)
        return np.where((a >= 0) == (b >= 0), q, -q)
    return a / b


def _fold_minimum(args):
    out = args[0]
    for a in args[1:]:
        out = np.minimum(out, a)
    return out


def _fold_maximum(args):
    out = args[0]
    for a in args[1:]:
        out = np.maximum(out, a)
    return out


#: intrinsics whose numpy application is bit-identical to the scalar
#: interpreter's per-element application (``exp`` is excluded: numpy's
#: SIMD exp is not guaranteed identical to libm's)
_VEC_INTRINSICS: dict[str, Callable] = {
    "f": lambda args: f_func(args[0]),
    "g": lambda args: g_func(args[0]),
    "abs": lambda args: np.abs(args[0]),
    "sqrt": lambda args: np.sqrt(args[0]),
    "min": _fold_minimum,
    "max": _fold_maximum,
}

#: calls that are pure and cost-free in the scalar path, hence safe
#: inside once-per-block invariant subexpressions
_INVARIANT_OK_CALLS = set(PURE_INTRINSICS) | {"myproc", "owner"}


class _Plan:
    """Compile-time analysis and code generation for one DO loop."""

    def __init__(self, do: A.Do, unit, interp) -> None:
        self.do = do
        self.unit = unit
        self.interp = interp
        self.v = do.var
        # legality bookkeeping
        self.writes: dict[str, tuple[int, list]] = {}  # name -> (axis, [off_fn])
        self.v_reads: list[tuple[str, int, Callable]] = []
        self.inv_reads: list[tuple[str, list[A.Expr]]] = []
        self.execs: list[Callable] = []
        self.ops_per_iter = 0

        from .interpreter import _count_ops

        for s in do.body:
            if not (isinstance(s, A.Assign)
                    and isinstance(s.target, A.ArrayRef)):
                raise _Reject
            target = self._compile_target(s.target)
            rhs = self._compile_expr(s.expr)
            self.execs.append(self._make_exec(target, rhs))
            self.ops_per_iter += (
                _count_ops(s.expr) + 1 + len(s.target.subs)
            )
        self._finalize_legality()

    # -- subscript helpers -------------------------------------------------

    def _invariant_fn(self, e: A.Expr) -> Callable:
        return self.interp._compile_expr(e, self.unit)

    def _checked_invariant(self, e: A.Expr) -> Callable:
        """Compile a loop-invariant expression that the block evaluates
        once (the scalar path evaluates it per iteration, but invariance
        makes the values equal).  User-function calls are rejected —
        they carry per-call cost accounting and may have effects — and
        array reads inside it are recorded so the runtime disjointness
        check sees them."""
        for sub in A.walk_exprs(e):
            if isinstance(sub, A.CallExpr) \
                    and sub.name not in _INVARIANT_OK_CALLS:
                raise _Reject
            if isinstance(sub, A.Triplet):
                raise _Reject
            if isinstance(sub, A.ArrayRef):
                self.inv_reads.append((sub.name, list(sub.subs)))
        return self._invariant_fn(e)

    def _axis_offset(self, e: A.Expr) -> Callable:
        """Offset function for a subscript of the form ``i``/``i±c``/
        ``c+i`` (``c`` loop invariant)."""
        v = self.v
        if isinstance(e, A.Var) and e.name == v:
            return lambda fr: 0
        if isinstance(e, A.BinOp) and e.op in ("+", "-"):
            left_v = isinstance(e.left, A.Var) and e.left.name == v
            right_v = isinstance(e.right, A.Var) and e.right.name == v
            if left_v and not _mentions(e.right, v):
                off = self._checked_invariant(e.right)
                if e.op == "+":
                    return lambda fr: int(off(fr))
                return lambda fr: -int(off(fr))
            if e.op == "+" and right_v and not _mentions(e.left, v):
                off = self._checked_invariant(e.left)
                return lambda fr: int(off(fr))
        raise _Reject

    def _classify_ref(self, ref: A.ArrayRef):
        """Split a reference's subscripts into the loop axis (at most
        one, affine in the loop variable) and invariant index fns."""
        axis = None
        off_fn = None
        sub_items: list[Optional[Callable]] = []
        for pos, s in enumerate(ref.subs):
            if isinstance(s, A.Triplet):
                raise _Reject
            if _mentions(s, self.v):
                if axis is not None:
                    raise _Reject
                axis = pos
                off_fn = self._axis_offset(s)
                sub_items.append(None)
            else:
                sub_items.append(self._checked_invariant(s))
        return axis, off_fn, sub_items

    def _compile_target(self, t: A.ArrayRef):
        axis, off_fn, sub_items = self._classify_ref(t)
        if axis is None:
            raise _Reject  # loop-invariant write: a cross-iteration race
        prev = self.writes.get(t.name)
        if prev is None:
            self.writes[t.name] = (axis, [off_fn])
        else:
            if prev[0] != axis:
                raise _Reject
            prev[1].append(off_fn)
        return t.name, axis, off_fn, sub_items

    # -- expression compilation --------------------------------------------

    def _compile_expr(self, e: A.Expr) -> Callable:
        """Compile *e* to ``fn(frame, block) -> scalar | ndarray`` with
        values bit-identical to the scalar path's per-element results."""
        if not _mentions(e, self.v):
            return self._compile_invariant(e)
        if isinstance(e, A.Var):  # the loop variable itself
            return lambda fr, blk: blk.iota()
        if isinstance(e, A.ArrayRef):
            return self._compile_read(e)
        if isinstance(e, A.BinOp):
            lf = self._compile_expr(e.left)
            rf = self._compile_expr(e.right)
            op = e.op
            if op == "+":
                return lambda fr, blk: lf(fr, blk) + rf(fr, blk)
            if op == "-":
                return lambda fr, blk: lf(fr, blk) - rf(fr, blk)
            if op == "*":
                return lambda fr, blk: lf(fr, blk) * rf(fr, blk)
            if op == "/":
                return lambda fr, blk: _fortran_div(lf(fr, blk), rf(fr, blk))
            if op == "**":
                return lambda fr, blk: lf(fr, blk) ** rf(fr, blk)
            raise _Reject  # comparisons / logicals: not in affine assigns
        if isinstance(e, A.UnOp) and e.op == "-":
            of = self._compile_expr(e.operand)
            return lambda fr, blk: -of(fr, blk)
        if isinstance(e, A.CallExpr):
            impl = _VEC_INTRINSICS.get(e.name)
            if impl is None:
                raise _Reject  # user functions: per-call cost + effects
            arg_fns = [self._compile_expr(a) for a in e.args]
            return lambda fr, blk: impl([f(fr, blk) for f in arg_fns])
        raise _Reject

    def _compile_invariant(self, e: A.Expr) -> Callable:
        """A loop-invariant subexpression: evaluated once per block via
        the scalar expression compiler."""
        fn = self._checked_invariant(e)
        return lambda fr, blk: fn(fr)

    def _compile_read(self, ref: A.ArrayRef) -> Callable:
        axis, off_fn, sub_items = self._classify_ref(ref)
        # axis is not None here: _mentions(ref, v) held and all subs of
        # an invariant ref would have been taken by _compile_invariant
        name = ref.name
        self.v_reads.append((name, axis, off_fn))

        def read(fr, blk):
            arr = fr.arrays[name]
            sl = _block_slices(arr, blk, axis, int(off_fn(fr)),
                               sub_items, fr)
            return arr.data[sl]

        return read

    def _make_exec(self, target, rhs_fn) -> Callable:
        name, axis, off_fn, sub_items = target

        def exec_stmt(fr, blk):
            arr = fr.arrays[name]
            sl = _block_slices(arr, blk, axis, int(off_fn(fr)),
                               sub_items, fr)
            arr.data[sl] = rhs_fn(fr, blk)

        return exec_stmt

    # -- legality -----------------------------------------------------------

    def _finalize_legality(self) -> None:
        # reads carrying the loop variable must sit on the write axis of
        # any array the block writes (offset equality checked per block)
        self._checked_v_reads = []
        for name, axis, off_fn in self.v_reads:
            w = self.writes.get(name)
            if w is None:
                continue
            if axis != w[0]:
                raise _Reject
            self._checked_v_reads.append((name, off_fn))
        # invariant reads of written arrays need their index on the
        # write axis for the runtime range check
        self._checked_inv_reads = []
        for name, subs in self.inv_reads:
            w = self.writes.get(name)
            if w is None:
                continue
            axis = w[0]
            if axis >= len(subs):
                raise _Reject
            self._checked_inv_reads.append(
                (name, self._invariant_fn(subs[axis]))
            )

    def runtime_ok(self, fr, lo: int, st: int, n: int) -> bool:
        """Per-block residual legality: common write offsets, read
        offsets equal to write offsets, invariant reads outside the
        written index range."""
        woff = {}
        for name, (axis, off_fns) in self.writes.items():
            w = int(off_fns[0](fr))
            for f in off_fns[1:]:
                if int(f(fr)) != w:
                    return False
            woff[name] = w
        for name, off_fn in self._checked_v_reads:
            if int(off_fn(fr)) != woff[name]:
                return False
        for name, idx_fn in self._checked_inv_reads:
            first = lo + woff[name]
            last = first + (n - 1) * st
            w_lo, w_hi = (first, last) if st > 0 else (last, first)
            if w_lo <= int(idx_fn(fr)) <= w_hi:
                return False
        return True


def _block_slices(arr, blk: _Block, axis: int, off: int,
                  sub_items, fr) -> tuple:
    """Global-index block section -> numpy index tuple (bounds-checked
    at the block endpoints, like the scalar path checks each element)."""
    out = []
    for pos, item in enumerate(sub_items):
        if pos == axis:
            first = blk.lo + off
            last = first + (blk.n - 1) * blk.st
            o_first = arr._offset(pos, first)
            o_last = arr._offset(pos, last)
            stop = o_last + (1 if blk.st > 0 else -1)
            out.append(slice(o_first, stop if stop >= 0 else None, blk.st))
        else:
            out.append(arr._offset(pos, int(item(fr))))
    return tuple(out)


def try_vectorize(do: A.Do, unit, interp, scalar_fallback) -> Optional[Callable]:
    """Attempt to compile *do* to a vectorized block executor.  Returns
    a statement function or ``None`` when the loop is not vectorizable;
    the returned function itself falls back to *scalar_fallback* for
    blocks that fail the residual runtime checks or are too small to
    win."""
    if not do.body:
        return None
    try:
        plan = _Plan(do, unit, interp)
    except _Reject:
        return None

    from .interpreter import InterpError

    ctx = interp.ctx
    var = do.var
    lo_fn = interp._compile_expr(do.lo, unit)
    hi_fn = interp._compile_expr(do.hi, unit)
    st_fn = interp._compile_expr(do.step, unit)
    ops_per_iter = plan.ops_per_iter
    unit_name = unit.name

    def run_do_vec(fr):
        lo = int(lo_fn(fr))
        hi = int(hi_fn(fr))
        st = int(st_fn(fr))
        if st == 0:
            raise InterpError(f"{unit_name}: zero DO step")
        n = (hi - lo) // st + 1
        if n <= 0:
            fr.scalars[var] = lo
            return
        if n < MIN_BLOCK or not plan.runtime_ok(fr, lo, st, n):
            scalar_fallback(fr)
            return
        tracer = ctx.tracer if ctx is not None else None
        t0 = ctx.clock_estimate() if tracer is not None else 0.0
        blk = _Block(lo, st, n)
        for exec_stmt in plan.execs:
            exec_stmt(fr, blk)
        if ctx is not None:
            ctx.loop_tick(n)
            ctx.compute(n * ops_per_iter)
        if tracer is not None:
            # virtual span of the block's charges, previewed without
            # flushing (a flush here would perturb the simulation)
            tracer.rank_event(
                ctx.rank, "interp.vec", t0, dur=ctx.clock_estimate() - t0,
                unit=unit_name, var=var, n=n, ops=n * ops_per_iter,
            )
        fr.scalars[var] = lo + n * st

    return run_do_vec
