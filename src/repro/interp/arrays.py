"""Distributed array objects for the node interpreter.

Node programs execute in *global index space*: every node allocates the
full array, but only its owned partition (plus sections delivered by
receives/broadcasts) holds valid data.  Ownership never appears here —
the compiled program's reduced loop bounds and guards enforce it; the
array object just stores data, bounds, and the current distribution
(which remapping updates and ``owner()`` queries at run time).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from ..dist import Distribution

SubsValue = Union[int, tuple]  # int index or (lo, hi, step) triple


class FArray:
    """A Fortran array on one node."""

    __slots__ = ("name", "bounds", "data", "dist", "dtype")

    def __init__(
        self,
        name: str,
        bounds: Sequence[tuple[int, int]],
        dtype: str = "real",
        dist: Optional[Distribution] = None,
        fill: float = 0.0,
    ) -> None:
        self.name = name
        self.bounds = [(int(lo), int(hi)) for lo, hi in bounds]
        shape = tuple(hi - lo + 1 for lo, hi in self.bounds)
        np_dtype = np.float64 if dtype == "real" else np.int64
        self.dtype = dtype
        self.data = np.full(shape, fill, dtype=np_dtype)
        self.dist = dist

    @property
    def rank(self) -> int:
        return len(self.bounds)

    @property
    def element_bytes(self) -> int:
        return int(self.data.itemsize)

    # -- element access ------------------------------------------------------

    def _offset(self, axis: int, g: int) -> int:
        lo, hi = self.bounds[axis]
        if not (lo <= g <= hi):
            raise IndexError(
                f"{self.name}: index {g} outside [{lo}:{hi}] in dim {axis + 1}"
            )
        return g - lo

    def get(self, indices: Sequence[int]):
        pos = tuple(self._offset(a, g) for a, g in enumerate(indices))
        return self.data[pos]

    def set(self, indices: Sequence[int], value) -> None:
        pos = tuple(self._offset(a, g) for a, g in enumerate(indices))
        self.data[pos] = value

    # -- section access -------------------------------------------------------

    def _slices(self, subs: Sequence[SubsValue]) -> tuple:
        out = []
        for axis, s in enumerate(subs):
            if isinstance(s, tuple):
                lo, hi, step = s
                if hi < lo:
                    # empty section (e.g. the boundary strip of a
                    # processor whose block is empty): no bounds check —
                    # the endpoints may lie outside the array
                    out.append(slice(0, 0, max(int(step), 1)))
                    continue
                o = self._offset(axis, lo)
                e = self._offset(axis, hi)
                out.append(slice(o, e + 1, step))
            else:
                out.append(self._offset(axis, int(s)))
        return tuple(out)

    def read_section(
        self, subs: Sequence[SubsValue], copy: bool = True
    ) -> np.ndarray:
        """The section described by *subs* (ints or ``(lo, hi, step)``
        triples, inclusive global bounds).

        By default a contiguous copy — the safe payload for messages
        whose consumption the sender cannot wait for.  ``copy=False``
        returns a zero-copy view; callers must guarantee the array is
        not mutated before every consumer has copied the data out (the
        broadcast collective's ``consume`` rendezvous provides exactly
        that guarantee).
        """
        view = self.data[self._slices(subs)]
        return view.copy() if copy else view

    def write_section(self, subs: Sequence[SubsValue], payload) -> None:
        slices = self._slices(subs)
        if not any(isinstance(x, slice) for x in slices):
            self.data[slices] = payload  # single element
            return
        view = self.data[slices]
        payload = np.asarray(payload)
        if payload.shape != view.shape:
            payload = payload.reshape(view.shape)
        view[...] = payload

    @staticmethod
    def section_count(subs: Sequence[SubsValue]) -> int:
        n = 1
        for s in subs:
            if isinstance(s, tuple):
                lo, hi, step = s
                n *= 0 if hi < lo else (hi - lo) // step + 1
        return n

    def section_bytes(self, subs: Sequence[SubsValue]) -> int:
        return self.section_count(subs) * self.element_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        b = ",".join(f"{lo}:{hi}" for lo, hi in self.bounds)
        d = f" dist={self.dist}" if self.dist else ""
        return f"<FArray {self.name}({b}){d}>"
