"""Closure-compiling interpreter for Fortran D / SPMD node programs.

One interpreter instance executes one program on one node (or
sequentially when ``ctx is None``).  Each procedure body is compiled once
into a tree of Python closures — roughly 5-10x faster than naive
re-dispatching tree walking, which matters for the dgefa benchmark
sweeps.

Semantics notes
---------------
* Fortran implicit typing: undeclared scalars starting with ``i``-``n``
  are INTEGER, others REAL.
* Array formals bind by reference (the caller's :class:`FArray` object);
  scalar formals copy in, and copy out when the actual is a variable.
* Functions return through assignment to the function name.
* The Fortran D directives are executable no-ops here: data placement is
  the *compiler's* concern; compiled node programs contain explicit
  Send/Recv/Bcast/Remap statements instead.
* All nodes initialize arrays with the same deterministic pattern, so a
  compiled program's owned regions can be compared element-for-element
  against a sequential run of the original program.
"""

from __future__ import annotations

import os
from typing import Callable, Generator, Optional

import numpy as np

from ..dist import Distribution
from ..lang import ast as A
from ..lang.printer import expr_str
from ..machine.machine import Machine, ProcContext
from ..machine.costmodel import CostModel, IPSC860
from ..runtime.intrinsics import PURE_INTRINSICS
from ..runtime.remap import mark_array, remap_array, remap_array_y
from .arrays import FArray


def comm_cache_enabled(flag: Optional[bool] = None) -> bool:
    """Communication-schedule caching: on unless ``REPRO_COMM_CACHE=0``."""
    if flag is not None:
        return flag
    return os.environ.get("REPRO_COMM_CACHE", "").strip().lower() not in (
        "0", "false", "no", "off"
    )


class InterpError(Exception):
    """Semantic error during execution."""


class _Return(Exception):
    pass


class _Stop(Exception):
    pass


class Frame:
    """Activation record of one procedure instance."""

    __slots__ = ("scalars", "arrays", "unit")

    def __init__(self, unit: str) -> None:
        self.unit = unit
        self.scalars: dict[str, float | int] = {}
        self.arrays: dict[str, FArray] = {}


def default_init(name: str, indices: tuple[int, ...]) -> float:
    """Deterministic array initializer shared by sequential and SPMD
    runs (values stay O(1) under repeated F applications)."""
    h = 0
    for k in indices:
        h = (h * 31 + k * 17) % 1013
    return 1.0 + (h % 97) / 97.0


ExprFn = Callable[[Frame], object]
StmtFn = Callable[[Frame], None]
#: one compiled statement on a blocking path: ``(is_generator, fn)`` —
#: generator closures are entered with ``yield from``, plain closures
#: are called directly (they can never suspend)
Seg = tuple[bool, Callable]

#: statements that can suspend the executing rank (the matching Send
#: side is asynchronous and never blocks)
_BLOCKING_STMTS = (A.Recv, A.RecvPack, A.Bcast, A.GlobalReduce, A.Remap)


def _count_ops(e: A.Expr) -> int:
    n = 0
    for sub in A.walk_exprs(e):
        if isinstance(sub, (A.BinOp, A.UnOp, A.CallExpr)):
            n += 1
    return n


def find_blocking_units(program: A.Program) -> set[str]:
    """Procedures that may suspend: those containing a blocking
    statement, transitively closed over CALL / function-call edges.
    Shared by the event-backend compilation here and by the node-program
    code generator (``repro.codegen``), which must place its yields at
    exactly the same procedures."""
    direct: set[str] = set()
    calls: dict[str, set[str]] = {}
    unit_names = {u.name for u in program.units}
    for u in program.units:
        callees: set[str] = set()
        for s in A.walk_stmts(u.body):
            if isinstance(s, _BLOCKING_STMTS):
                direct.add(u.name)
            if isinstance(s, A.Call):
                callees.add(s.name)
            for e in A.stmt_exprs(s):
                for sub in A.walk_exprs(e):
                    if isinstance(sub, A.CallExpr) \
                            and sub.name in unit_names:
                        callees.add(sub.name)
        calls[u.name] = callees
    blocking = set(direct)
    changed = True
    while changed:
        changed = False
        for name, callees in calls.items():
            if name not in blocking and callees & blocking:
                blocking.add(name)
                changed = True
    return blocking


class Interpreter:
    """Compiles and executes one program for one node."""

    def __init__(
        self,
        program: A.Program,
        ctx: Optional[ProcContext] = None,
        initial_dists: Optional[dict[tuple[str, str], Distribution]] = None,
        init_fn: Callable[[str, tuple[int, ...]], float] = default_init,
        init_main_arrays: bool = True,
        vectorize: Optional[bool] = None,
    ) -> None:
        from .vectorize import enabled as _vec_enabled

        self.program = program
        self.ctx = ctx
        self.initial_dists = initial_dists or {}
        self.init_fn = init_fn
        self.init_main_arrays = init_main_arrays
        self.vectorize = _vec_enabled(vectorize)
        self.comm_cache = comm_cache_enabled()
        self.comm_cache_hits = 0
        self.comm_cache_misses = 0
        self.tracer = ctx.tracer if ctx is not None else None
        self.prints: list[str] = []
        self._compiled: dict[str, list[StmtFn]] = {}
        #: event-backend compilation: per-unit segment lists and the set
        #: of procedures that may suspend (built lazily by run_events)
        self._compiled_y: dict[str, list[Seg]] = {}
        self._blocking: Optional[set[str]] = None
        self._param_env: dict[str, dict[str, float | int]] = {}
        for unit in program.units:
            self._param_env[unit.name] = self._eval_params(unit)
        # COMMON arrays: one storage per node, visible in every frame
        self._common_store: dict[str, FArray] = {}
        self._build_commons()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(self) -> Frame:
        """Execute the main program; returns its final frame."""
        main = self.program.main
        frame = self._make_frame(main, [], None)
        try:
            self._exec_unit(main, frame)
        except _Stop:
            pass
        return frame

    def run_events(self) -> "Generator[None, None, Frame]":
        """Generator twin of :meth:`run` for the event-driven backend.

        Yields exactly at the points where the rank genuinely suspends
        (a RECV with no matching message, a non-last collective
        arrival); the :class:`~repro.machine.event.EventScheduler`
        resumes the generator when the wait is satisfied.  Statements
        that cannot suspend run through the same compiled closures as
        :meth:`run`, so clock charges — and therefore virtual times —
        are bit-identical to the cooperative backend.
        """
        if self.ctx is None:
            raise InterpError("run_events requires a machine context")
        if self._blocking is None:
            self._blocking = self._find_blocking_units()
        main = self.program.main
        frame = self._make_frame(main, [], None)
        try:
            yield from self._exec_unit_y(main, frame)
        except _Stop:
            pass
        return frame

    # ------------------------------------------------------------------
    # frames and declarations
    # ------------------------------------------------------------------

    def _eval_params(self, unit: A.Procedure) -> dict[str, float | int]:
        from ..analysis.symbolics import eval_const

        env: dict[str, float | int] = {}
        for p in unit.params:
            v = eval_const(p.value, env)
            if v is None:
                raise InterpError(
                    f"{unit.name}: PARAMETER {p.name} is not constant"
                )
            env[p.name] = v
        return env

    def _build_commons(self) -> None:
        try:
            decls = self.program.common_decls()
        except ValueError as e:
            raise InterpError(str(e)) from e
        if not decls:
            return
        main = self.program.main
        env = dict(self._param_env[main.name])
        for name, d in decls.items():
            bounds = []
            for lo_e, hi_e in d.dims:
                lo = self._const_bound(lo_e, env, main, name)
                hi = self._const_bound(hi_e, env, main, name)
                bounds.append((lo, hi))
            dist = self.initial_dists.get((main.name, name))
            arr = FArray(name, bounds, d.type, dist)
            if self.init_main_arrays:
                self._fill(arr)
            self._common_store[name] = arr

    def _scalar_type(self, unit: A.Procedure, name: str) -> str:
        d = unit.decl(name)
        if d is not None:
            return d.type
        return "integer" if name[0] in "ijklmn" else "real"

    def _make_frame(
        self,
        unit: A.Procedure,
        args: list[object],
        caller_frame: Optional[Frame],
    ) -> Frame:
        frame = Frame(unit.name)
        frame.scalars.update(self._param_env[unit.name])
        # COMMON arrays are visible everywhere (callers may place
        # communication for globals their callees access)
        frame.arrays.update(self._common_store)
        # bind formals
        for formal, value in zip(unit.formals, args):
            if isinstance(value, FArray):
                frame.arrays[formal] = value
            else:
                frame.scalars[formal] = value
        # allocate local (non-formal) arrays
        env = dict(frame.scalars)
        for d in unit.decls:
            if not d.is_array or d.name in frame.arrays:
                continue
            bounds = []
            for lo_e, hi_e in d.dims:
                lo = self._const_bound(lo_e, env, unit, d.name)
                hi = self._const_bound(hi_e, env, unit, d.name)
                bounds.append((lo, hi))
            dist = self.initial_dists.get((unit.name, d.name))
            arr = FArray(d.name, bounds, d.type, dist)
            if unit.kind == "program" and self.init_main_arrays:
                self._fill(arr)
            frame.arrays[d.name] = arr
        return frame

    def _const_bound(self, e, env, unit, name) -> int:
        from ..analysis.symbolics import eval_int

        v = eval_int(e, env)
        if v is None:
            raise InterpError(
                f"{unit.name}: bound {expr_str(e)} of array {name} not "
                f"computable at entry"
            )
        return v

    def _fill(self, arr: FArray) -> None:
        if self.init_fn is default_init:
            # vectorized twin of default_init: every rank fills its
            # (global-size) arrays at startup, so the per-element
            # Python loop is O(N) per rank — O(N·P) per run — and
            # dominates wall time at P >= 1024.  The hash is a small
            # modular fold over the index tuple, so broadcasting one
            # axis at a time reproduces it bit for bit.
            shape = arr.data.shape
            h = np.zeros(shape, dtype=np.int64)
            for axis, (lo, _hi) in enumerate(arr.bounds):
                g = np.arange(lo, lo + shape[axis], dtype=np.int64)
                g = g.reshape(
                    [-1 if a == axis else 1 for a in range(len(shape))]
                )
                h = (h * 31 + g * 17) % 1013
            arr.data[...] = 1.0 + (h % 97) / 97.0
            return
        it = np.nditer(arr.data, flags=["multi_index"], op_flags=["writeonly"])
        los = [lo for lo, _ in arr.bounds]
        for cell in it:
            g = tuple(o + l for o, l in zip(it.multi_index, los))
            cell[...] = self.init_fn(arr.name, g)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _exec_unit(self, unit: A.Procedure, frame: Frame) -> None:
        code = self._compiled.get(unit.name)
        if code is None:
            code = [self._compile_stmt(s, unit) for s in unit.body]
            self._compiled[unit.name] = code
        try:
            for fn in code:
                fn(frame)
        except _Return:
            pass

    def _call_procedure(
        self, name: str, arg_exprs: list[A.Expr], frame: Frame,
        compiled_args: list[ExprFn],
    ) -> Frame:
        unit = self.program.unit(name)
        args: list[object] = []
        for e, fn in zip(arg_exprs, compiled_args):
            if isinstance(e, A.Var) and e.name in frame.arrays:
                args.append(frame.arrays[e.name])
            else:
                args.append(fn(frame))
        callee_frame = self._make_frame(unit, args, frame)
        if self.ctx is not None:
            self.ctx.compute(3 + len(args))  # call overhead
        self._exec_unit(unit, callee_frame)
        # copy-out for scalar var actuals
        for formal, e in zip(unit.formals, arg_exprs):
            if isinstance(e, A.Var) and e.name not in frame.arrays:
                if formal in callee_frame.scalars:
                    frame.scalars[e.name] = callee_frame.scalars[formal]
        return callee_frame

    def _exec_unit_y(
        self, unit: A.Procedure, frame: Frame
    ) -> Generator[None, None, None]:
        """Generator twin of :meth:`_exec_unit` (event backend)."""
        segs = self._compiled_y.get(unit.name)
        if segs is None:
            segs = self._compile_block_y(unit.body, unit)
            self._compiled_y[unit.name] = segs
        try:
            for is_gen, fn in segs:
                if is_gen:
                    yield from fn(frame)
                else:
                    fn(frame)
        except _Return:
            pass

    def _call_procedure_y(
        self, name: str, arg_exprs: list[A.Expr], frame: Frame,
        compiled_args: list[ExprFn],
    ) -> Generator[None, None, Frame]:
        """Generator twin of :meth:`_call_procedure`: identical binding,
        call-overhead charge, and scalar copy-out; the callee body may
        suspend."""
        unit = self.program.unit(name)
        args: list[object] = []
        for e, fn in zip(arg_exprs, compiled_args):
            if isinstance(e, A.Var) and e.name in frame.arrays:
                args.append(frame.arrays[e.name])
            else:
                args.append(fn(frame))
        callee_frame = self._make_frame(unit, args, frame)
        if self.ctx is not None:
            self.ctx.compute(3 + len(args))  # call overhead
        yield from self._exec_unit_y(unit, callee_frame)
        # copy-out for scalar var actuals
        for formal, e in zip(unit.formals, arg_exprs):
            if isinstance(e, A.Var) and e.name not in frame.arrays:
                if formal in callee_frame.scalars:
                    frame.scalars[e.name] = callee_frame.scalars[formal]
        return callee_frame

    # ------------------------------------------------------------------
    # expression compilation
    # ------------------------------------------------------------------

    def _compile_expr(self, e: A.Expr, unit: A.Procedure) -> ExprFn:
        if isinstance(e, A.Num):
            v = e.value
            return lambda fr: v
        if isinstance(e, A.Logical):
            v = e.value
            return lambda fr: v
        if isinstance(e, A.Str):
            v = e.value
            return lambda fr: v
        if isinstance(e, A.Var):
            name = e.name
            const = self._param_env[unit.name].get(name)
            if const is not None and unit.decl(name) is None:
                return lambda fr: fr.scalars.get(name, const)

            def read_var(fr: Frame, name=name):
                try:
                    return fr.scalars[name]
                except KeyError:
                    if name in fr.arrays:
                        raise InterpError(
                            f"{fr.unit}: whole-array reference "
                            f"{name!r} in scalar context"
                        ) from None
                    raise InterpError(
                        f"{fr.unit}: read of undefined scalar {name!r}"
                    ) from None

            return read_var
        if isinstance(e, A.ArrayRef):
            name = e.name
            sub_fns = [self._compile_expr(s, unit) for s in e.subs]

            def read_elem(fr: Frame):
                arr = fr.arrays[name]
                idx = [int(f(fr)) for f in sub_fns]
                return arr.get(idx)

            return read_elem
        if isinstance(e, A.BinOp):
            fused = self._fuse_owner_guard(e, unit)
            if fused is not None:
                return fused
            lf = self._compile_expr(e.left, unit)
            rf = self._compile_expr(e.right, unit)
            return _binop_fn(e.op, lf, rf)
        if isinstance(e, A.UnOp):
            of = self._compile_expr(e.operand, unit)
            if e.op == "-":
                return lambda fr: -of(fr)
            if e.op == ".not.":
                return lambda fr: not of(fr)
            raise InterpError(f"unknown unary op {e.op}")
        if isinstance(e, A.CallExpr):
            return self._compile_call_expr(e, unit)
        if isinstance(e, A.Triplet):
            raise InterpError("triplet outside communication statement")
        raise InterpError(f"cannot compile expression {e!r}")

    def _fuse_owner_guard(
        self, e: A.BinOp, unit: A.Procedure
    ) -> Optional[ExprFn]:
        """Fused closures for the run-time-resolution guard shapes
        ``v == owner(ref)`` / ``v /= owner(ref)`` and conjunctions of
        two of them.  These conditions run once per array element per
        processor, so collapsing the generic lambda tree to one closure
        is a measurable win.  Purely an evaluation-speed specialization:
        operation counts and results match the generic path exactly."""
        if e.op == ".and.":
            lf = self._fuse_owner_guard(e.left, unit) \
                if isinstance(e.left, A.BinOp) else None
            rf = self._fuse_owner_guard(e.right, unit) \
                if isinstance(e.right, A.BinOp) else None
            if lf is not None and rf is not None:
                return lambda fr: lf(fr) and rf(fr)
            return None
        if e.op not in ("==", "/="):
            return None
        sides = (e.left, e.right)
        call = next((x for x in sides if isinstance(x, A.CallExpr)
                     and x.name == "owner"), None)
        var = next((x for x in sides if isinstance(x, A.Var)), None)
        if call is None or var is None:
            return None
        owner_fn = self._compile_call_expr(call, unit)
        var_fn = self._compile_expr(var, unit)
        want = e.op == "=="

        def cmp_owner(fr: Frame) -> bool:
            return (var_fn(fr) == owner_fn(fr)) == want

        return cmp_owner

    def _compile_call_expr(self, e: A.CallExpr, unit: A.Procedure) -> ExprFn:
        name = e.name
        if name == "myproc":
            ctx = self.ctx
            return lambda fr: (ctx.rank if ctx is not None else 0)
        if name == "owner":
            if len(e.args) != 1 or not isinstance(e.args[0], A.ArrayRef):
                raise InterpError("owner() takes one array element")
            ref = e.args[0]
            sub_fns = [self._compile_expr(s, unit) for s in ref.subs]
            arr_name = ref.name
            # run-time resolution evaluates owner() once per element per
            # processor: specialize the common arities
            if len(sub_fns) == 1:
                s0 = sub_fns[0]

                def owner_fn(fr: Frame):
                    dist = fr.arrays[arr_name].dist
                    if dist is None or dist.is_replicated:
                        return 0
                    return dist.owner((int(s0(fr)),))
            elif len(sub_fns) == 2:
                s0, s1 = sub_fns

                def owner_fn(fr: Frame):
                    dist = fr.arrays[arr_name].dist
                    if dist is None or dist.is_replicated:
                        return 0
                    return dist.owner((int(s0(fr)), int(s1(fr))))
            else:
                def owner_fn(fr: Frame):
                    dist = fr.arrays[arr_name].dist
                    if dist is None or dist.is_replicated:
                        return 0
                    return dist.owner([int(f(fr)) for f in sub_fns])

            return owner_fn
        if name in PURE_INTRINSICS:
            fn = PURE_INTRINSICS[name]
            arg_fns = [self._compile_expr(a, unit) for a in e.args]
            if len(arg_fns) == 1:
                a0 = arg_fns[0]
                return lambda fr: fn(a0(fr))
            if len(arg_fns) == 2:
                a0, a1 = arg_fns
                return lambda fr: fn(a0(fr), a1(fr))
            return lambda fr: fn(*[f(fr) for f in arg_fns])
        # user function
        try:
            callee = self.program.unit(name)
        except KeyError:
            raise InterpError(
                f"{unit.name}: call of unknown function {name!r}"
            ) from None
        if callee.kind != "function":
            raise InterpError(f"{name} is not a function")
        arg_exprs = list(e.args)
        arg_fns = [self._compile_expr(a, unit) for a in e.args]

        def call_fn(fr: Frame):
            callee_frame = self._call_procedure(name, arg_exprs, fr, arg_fns)
            try:
                return callee_frame.scalars[name]
            except KeyError:
                raise InterpError(
                    f"function {name} returned no value"
                ) from None

        return call_fn

    # ------------------------------------------------------------------
    # statement compilation
    # ------------------------------------------------------------------

    def _compile_block(
        self, body: list[A.Stmt], unit: A.Procedure
    ) -> list[StmtFn]:
        return [self._compile_stmt(s, unit) for s in body]

    def _compile_stmt(self, s: A.Stmt, unit: A.Procedure) -> StmtFn:
        ctx = self.ctx
        if isinstance(s, A.Assign):
            expr_fn = self._compile_expr(s.expr, unit)
            ops = _count_ops(s.expr) + 1
            if isinstance(s.target, A.Var):
                name = s.target.name
                typ = self._scalar_type(unit, name)
                cast = int if typ == "integer" else float
                if ctx is None:
                    def assign_scalar(fr: Frame):
                        fr.scalars[name] = cast(expr_fn(fr))
                else:
                    def assign_scalar(fr: Frame):
                        fr.scalars[name] = cast(expr_fn(fr))
                        ctx.compute(ops)
                return assign_scalar
            name = s.target.name
            sub_fns = [self._compile_expr(x, unit) for x in s.target.subs]
            ops += len(sub_fns)
            if ctx is None:
                def assign_elem(fr: Frame):
                    arr = fr.arrays[name]
                    idx = [int(f(fr)) for f in sub_fns]
                    arr.set(idx, expr_fn(fr))
            else:
                def assign_elem(fr: Frame):
                    arr = fr.arrays[name]
                    idx = [int(f(fr)) for f in sub_fns]
                    arr.set(idx, expr_fn(fr))
                    ctx.compute(ops)
            return assign_elem
        if isinstance(s, A.If):
            cond_fn = self._compile_expr(s.cond, unit)
            cond_ops = _count_ops(s.cond) or 1
            then_code = self._compile_block(s.then_body, unit)
            else_code = self._compile_block(s.else_body, unit)

            if ctx is None:
                def run_if(fr: Frame):
                    branch = then_code if cond_fn(fr) else else_code
                    for fn in branch:
                        fn(fr)
            else:
                # run-time resolution executes one guard per element:
                # bind the tick method once instead of testing ctx and
                # resolving the attribute on every evaluation
                guard_tick = ctx.guard_tick

                def run_if(fr: Frame):
                    guard_tick(cond_ops)
                    branch = then_code if cond_fn(fr) else else_code
                    for fn in branch:
                        fn(fr)

            return run_if
        if isinstance(s, A.Do):
            var = s.var
            lo_fn = self._compile_expr(s.lo, unit)
            hi_fn = self._compile_expr(s.hi, unit)
            st_fn = self._compile_expr(s.step, unit)
            body_code = self._compile_block(s.body, unit)

            # bind the tick method once per compiled loop rather than
            # testing ctx and resolving the attribute every iteration
            loop_tick = None if ctx is None else ctx.loop_tick

            def run_do(fr: Frame):
                lo = int(lo_fn(fr))
                hi = int(hi_fn(fr))
                st = int(st_fn(fr))
                if st == 0:
                    raise InterpError(f"{unit.name}: zero DO step")
                scal = fr.scalars
                i = lo
                if st > 0:
                    while i <= hi:
                        scal[var] = i
                        if loop_tick is not None:
                            loop_tick()
                        for fn in body_code:
                            fn(fr)
                        i += st
                else:
                    while i >= hi:
                        scal[var] = i
                        if loop_tick is not None:
                            loop_tick()
                        for fn in body_code:
                            fn(fr)
                        i += st
                scal[var] = i

            if self.vectorize:
                from .vectorize import try_vectorize

                vec = try_vectorize(s, unit, self, run_do)
                if vec is not None:
                    return vec
            return run_do
        if isinstance(s, A.DoWhile):
            cond_fn = self._compile_expr(s.cond, unit)
            body_code = self._compile_block(s.body, unit)

            def run_while(fr: Frame):
                guard = 0
                while cond_fn(fr):
                    guard += 1
                    if guard > 10_000_000:
                        raise InterpError("runaway DO WHILE")
                    if ctx is not None:
                        ctx.loop_tick()
                    for fn in body_code:
                        fn(fr)

            return run_while
        if isinstance(s, A.Call):
            name = s.name
            arg_exprs = list(s.args)
            arg_fns = [self._compile_expr(a, unit) for a in s.args]

            def run_call(fr: Frame):
                self._call_procedure(name, arg_exprs, fr, arg_fns)

            return run_call
        if isinstance(s, A.Return):
            def run_return(fr: Frame):
                raise _Return()

            return run_return
        if isinstance(s, A.Stop):
            def run_stop(fr: Frame):
                raise _Stop()

            return run_stop
        if isinstance(s, A.Continue):
            return lambda fr: None
        if isinstance(s, A.Print):
            item_fns = [self._compile_expr(i, unit) for i in s.items]

            def run_print(fr: Frame):
                parts = []
                for fn in item_fns:
                    v = fn(fr)
                    parts.append(f"{v:.6g}" if isinstance(v, float) else str(v))
                rank = self.ctx.rank if self.ctx is not None else 0
                self.prints.append(f"[{rank}] " + " ".join(parts))

            return run_print
        if isinstance(s, (A.Decomposition, A.Align, A.Distribute)):
            # declarative placement: consumed by the compiler; executable
            # no-op in direct interpretation (sequential reference runs)
            return lambda fr: None
        if isinstance(s, A.SetMyProc):
            var = s.var

            def run_setmyproc(fr: Frame):
                fr.scalars[var] = self.ctx.rank if self.ctx is not None else 0

            return run_setmyproc
        if isinstance(s, (A.Send, A.Recv, A.Bcast)):
            return self._compile_comm(s, unit)
        if isinstance(s, (A.SendPack, A.RecvPack)):
            return self._compile_pack(s, unit)
        if isinstance(s, A.GlobalReduce):
            return self._compile_reduce(s, unit)
        if isinstance(s, A.Remap):
            return self._compile_remap(s, unit)
        if isinstance(s, A.MarkDist):
            specs = list(s.to_specs)
            name = s.array

            def run_mark(fr: Frame):
                arr = fr.arrays[name]
                nprocs = self.ctx.nprocs if self.ctx is not None else 1
                mark_array(arr, Distribution.from_specs(specs, arr.bounds, nprocs))

            return run_mark
        raise InterpError(f"cannot compile statement {type(s).__name__}")

    # -- event-backend (yielding) compilation --------------------------------
    #
    # The event scheduler runs each rank as a generator coroutine that
    # yields only at genuine suspension points.  Compiling every
    # statement as a generator would slow the common (non-blocking)
    # path dramatically, so compilation is split: a fixpoint over the
    # call graph marks the procedures that can suspend, and only
    # statements on a blocking path become generator closures — all
    # other statements reuse the exact closures of the plain path,
    # grouped into straight-line segments.

    def _find_blocking_units(self) -> set[str]:
        """Procedures that may suspend: those containing a blocking
        statement, transitively closed over CALL / function-call
        edges."""
        direct: set[str] = set()
        calls: dict[str, set[str]] = {}
        unit_names = {u.name for u in self.program.units}
        for u in self.program.units:
            callees: set[str] = set()
            for s in A.walk_stmts(u.body):
                if isinstance(s, _BLOCKING_STMTS):
                    direct.add(u.name)
                if isinstance(s, A.Call):
                    callees.add(s.name)
                for e in A.stmt_exprs(s):
                    for sub in A.walk_exprs(e):
                        if isinstance(sub, A.CallExpr) \
                                and sub.name in unit_names:
                            callees.add(sub.name)
            calls[u.name] = callees
        blocking = set(direct)
        changed = True
        while changed:
            changed = False
            for name, callees in calls.items():
                if name not in blocking and callees & blocking:
                    blocking.add(name)
                    changed = True
        return blocking

    def _check_no_blocking_exprs(self, s: A.Stmt, unit: A.Procedure) -> None:
        """The event backend cannot suspend in expression position (a
        generator cannot yield from inside ``_compile_expr`` closures);
        compiled node programs never place communication there, so this
        is a compile-time error, not a silent wrong answer."""
        for e in A.stmt_exprs(s):
            for sub in A.walk_exprs(e):
                if isinstance(sub, A.CallExpr) and sub.name in self._blocking:
                    raise InterpError(
                        f"{unit.name}: function {sub.name!r} communicates; "
                        f"the event backend cannot suspend inside an "
                        f"expression — restructure as a CALL statement"
                    )

    def _stmt_may_block(self, s: A.Stmt, unit: A.Procedure) -> bool:
        self._check_no_blocking_exprs(s, unit)
        if isinstance(s, _BLOCKING_STMTS):
            return True
        if isinstance(s, A.Call):
            return s.name in self._blocking
        return any(
            self._stmt_may_block(c, unit)
            for blk in A.child_blocks(s) for c in blk
        )

    def _compile_block_y(
        self, body: list[A.Stmt], unit: A.Procedure
    ) -> list[Seg]:
        """Compile *body* into segments: runs of non-blocking statements
        collapse to one plain closure (the fast path stays the fast
        path); blocking statements become generator closures."""
        segs: list[Seg] = []
        plain: list[StmtFn] = []

        def flush() -> None:
            if not plain:
                return
            if len(plain) == 1:
                segs.append((False, plain[0]))
            else:
                fns = tuple(plain)

                def run_plain(fr: Frame, fns=fns) -> None:
                    for fn in fns:
                        fn(fr)

                segs.append((False, run_plain))
            plain.clear()

        for s in body:
            if self._stmt_may_block(s, unit):
                flush()
                segs.append((True, self._compile_stmt_y(s, unit)))
            else:
                plain.append(self._compile_stmt(s, unit))
        flush()
        return segs

    def _compile_stmt_y(self, s: A.Stmt, unit: A.Procedure) -> Callable:
        """Generator closure for one statement on a blocking path.
        Charge ordering mirrors :meth:`_compile_stmt` exactly — the two
        paths must produce bit-identical virtual clocks."""
        ctx = self.ctx
        if isinstance(s, A.If):
            cond_fn = self._compile_expr(s.cond, unit)
            cond_ops = _count_ops(s.cond) or 1
            then_segs = self._compile_block_y(s.then_body, unit)
            else_segs = self._compile_block_y(s.else_body, unit)
            guard_tick = ctx.guard_tick

            def run_if_y(fr: Frame):
                guard_tick(cond_ops)
                branch = then_segs if cond_fn(fr) else else_segs
                for is_gen, fn in branch:
                    if is_gen:
                        yield from fn(fr)
                    else:
                        fn(fr)

            return run_if_y
        if isinstance(s, A.Do):
            var = s.var
            lo_fn = self._compile_expr(s.lo, unit)
            hi_fn = self._compile_expr(s.hi, unit)
            st_fn = self._compile_expr(s.step, unit)
            body_segs = self._compile_block_y(s.body, unit)
            loop_tick = ctx.loop_tick
            # no try_vectorize: the vectorizer only accepts all-Assign
            # bodies, so a loop containing communication never qualifies

            def run_do_y(fr: Frame):
                lo = int(lo_fn(fr))
                hi = int(hi_fn(fr))
                st = int(st_fn(fr))
                if st == 0:
                    raise InterpError(f"{unit.name}: zero DO step")
                scal = fr.scalars
                i = lo
                while (i <= hi) if st > 0 else (i >= hi):
                    scal[var] = i
                    loop_tick()
                    for is_gen, fn in body_segs:
                        if is_gen:
                            yield from fn(fr)
                        else:
                            fn(fr)
                    i += st
                scal[var] = i

            return run_do_y
        if isinstance(s, A.DoWhile):
            cond_fn = self._compile_expr(s.cond, unit)
            body_segs = self._compile_block_y(s.body, unit)

            def run_while_y(fr: Frame):
                guard = 0
                while cond_fn(fr):
                    guard += 1
                    if guard > 10_000_000:
                        raise InterpError("runaway DO WHILE")
                    ctx.loop_tick()
                    for is_gen, fn in body_segs:
                        if is_gen:
                            yield from fn(fr)
                        else:
                            fn(fr)

            return run_while_y
        if isinstance(s, A.Call):
            name = s.name
            arg_exprs = list(s.args)
            arg_fns = [self._compile_expr(a, unit) for a in s.args]

            def run_call_y(fr: Frame):
                yield from self._call_procedure_y(name, arg_exprs, fr, arg_fns)

            return run_call_y
        if isinstance(s, (A.Recv, A.Bcast)):
            return self._compile_comm(s, unit, yielding=True)
        if isinstance(s, A.RecvPack):
            return self._compile_pack(s, unit, yielding=True)
        if isinstance(s, A.GlobalReduce):
            return self._compile_reduce(s, unit, yielding=True)
        if isinstance(s, A.Remap):
            return self._compile_remap(s, unit, yielding=True)
        raise InterpError(  # pragma: no cover - _stmt_may_block gates this
            f"statement {type(s).__name__} cannot suspend"
        )

    # -- communication statements ------------------------------------------

    def _compile_section(
        self, subs: list[A.Expr], unit: A.Procedure
    ) -> Callable[[Frame], list]:
        parts = []
        for sub in subs:
            if isinstance(sub, A.Triplet):
                lo_fn = self._compile_expr(sub.lo, unit) if sub.lo else None
                hi_fn = self._compile_expr(sub.hi, unit) if sub.hi else None
                st_fn = self._compile_expr(sub.step, unit) if sub.step else None
                parts.append(("t", lo_fn, hi_fn, st_fn))
            else:
                parts.append(("i", self._compile_expr(sub, unit)))

        def build(fr: Frame) -> list:
            out = []
            for p in parts:
                if p[0] == "i":
                    out.append(int(p[1](fr)))
                else:
                    _, lo_fn, hi_fn, st_fn = p
                    lo = int(lo_fn(fr)) if lo_fn else None
                    hi = int(hi_fn(fr)) if hi_fn else None
                    st = int(st_fn(fr)) if st_fn else 1
                    out.append((lo, hi, st))
            return out

        return build

    def _resolve_whole_dims(self, arr: FArray, subs: list) -> list:
        out = []
        for axis, s in enumerate(subs):
            if isinstance(s, tuple):
                lo, hi, st = s
                blo, bhi = arr.bounds[axis]
                out.append((lo if lo is not None else blo,
                            hi if hi is not None else bhi, st))
            else:
                out.append(s)
        return out

    def _comm_entry(
        self, cache: dict, arr: FArray, raw: list
    ) -> tuple[Optional[np.ndarray], tuple, int]:
        """Memoized resolution of one communication section.

        Maps the raw section values of a ``CommAction`` execution to
        ``(view, slices, nbytes)``: the numpy view of the section (None
        for a single element), the index tuple, and the payload size.
        Steady-state iterations of a compiled comm statement re-derive
        nothing — a dict probe replaces whole-dim resolution, bounds
        checks, and index arithmetic.  Caching the *view* is safe
        because ``FArray.data`` is allocated exactly once and the
        section depends only on the immutable bounds and the key.
        """
        key = (arr, tuple(raw))
        entry = cache.get(key)
        if entry is not None:
            self.comm_cache_hits += 1
            if self.tracer is not None:
                self.tracer.rank_event(
                    self.ctx.rank, "interp.cache",
                    self.ctx.clock_estimate(), array=arr.name, hit=True,
                )
            return entry
        self.comm_cache_misses += 1
        if self.tracer is not None:
            self.tracer.rank_event(
                self.ctx.rank, "interp.cache",
                self.ctx.clock_estimate(), array=arr.name, hit=False,
            )
        subs = self._resolve_whole_dims(arr, raw)
        slices = arr._slices(subs)
        view = arr.data[slices]
        if not isinstance(view, np.ndarray):
            view = None  # single element: index directly, not via a view
        entry = (view, slices, arr.section_bytes(subs))
        if self.comm_cache:
            cache[key] = entry
        return entry

    @staticmethod
    def _write_entry(arr: FArray, view: Optional[np.ndarray],
                     slices: tuple, payload) -> None:
        """``FArray.write_section`` against a cached entry."""
        if view is None:
            arr.data[slices] = payload
            return
        payload = np.asarray(payload)
        if payload.shape != view.shape:
            payload = payload.reshape(view.shape)
        view[...] = payload

    @staticmethod
    def _comm_origin(s: A.Stmt, unit: A.Procedure) -> str:
        """Trace provenance of a communication statement, computed once
        at closure-compile time: the codegen comment (already
        ``proc:expr`` for compiler-placed messages), qualified with the
        procedure name when it is a bare annotation like ``rtr``."""
        c = getattr(s, "comment", "") or ""
        if not c:
            return f"{unit.name}:?"
        if ":" in c:
            return c
        return f"{unit.name}:{c}"

    def _compile_comm(self, s: A.Stmt, unit: A.Procedure,
                      yielding: bool = False) -> Callable:
        section_fn = self._compile_section(s.subs, unit)
        name = s.array
        tag = s.tag
        origin = self._comm_origin(s, unit)
        cache: dict = {}
        if isinstance(s, A.Send):
            dest_fn = self._compile_expr(s.dest, unit)

            def run_send(fr: Frame):
                arr = fr.arrays[name]
                view, slices, nbytes = self._comm_entry(
                    cache, arr, section_fn(fr)
                )
                # np scalars are immutable values, safe to send uncopied
                payload = view.copy() if view is not None \
                    else arr.data[slices]
                self.ctx.send(int(dest_fn(fr)), tag, payload, nbytes,
                              origin=origin)

            return run_send
        if isinstance(s, A.Recv):
            src_fn = self._compile_expr(s.src, unit)

            if yielding:
                def run_recv_y(fr: Frame):
                    arr = fr.arrays[name]
                    view, slices, _nbytes = self._comm_entry(
                        cache, arr, section_fn(fr)
                    )
                    payload = yield from self.ctx.recv_y(
                        int(src_fn(fr)), tag, origin=origin
                    )
                    self._write_entry(arr, view, slices, payload)

                return run_recv_y

            def run_recv(fr: Frame):
                arr = fr.arrays[name]
                view, slices, _nbytes = self._comm_entry(
                    cache, arr, section_fn(fr)
                )
                payload = self.ctx.recv(int(src_fn(fr)), tag,
                                        origin=origin)
                self._write_entry(arr, view, slices, payload)

            return run_recv
        # broadcast
        root_fn = self._compile_expr(s.root, unit)

        if yielding:
            def run_bcast_y(fr: Frame):
                arr = fr.arrays[name]
                view, slices, nbytes = self._comm_entry(
                    cache, arr, section_fn(fr)
                )
                root = int(root_fn(fr))
                me = self.ctx.rank
                if me == root:
                    yield from self.ctx.broadcast_y(
                        root,
                        view if view is not None else arr.data[slices],
                        nbytes, origin=origin,
                    )
                else:
                    yield from self.ctx.broadcast_y(
                        root, None, nbytes,
                        consume=lambda data: self._write_entry(
                            arr, view, slices, data
                        ),
                        origin=origin,
                    )

            return run_bcast_y

        def run_bcast(fr: Frame):
            arr = fr.arrays[name]
            view, slices, nbytes = self._comm_entry(
                cache, arr, section_fn(fr)
            )
            root = int(root_fn(fr))
            me = self.ctx.rank
            if me == root:
                # zero-copy: the collective's consume rendezvous keeps
                # every consumer's copy ahead of any mutation of the
                # source, so the root can pass a view of its own array
                self.ctx.broadcast(
                    root, view if view is not None else arr.data[slices],
                    nbytes, origin=origin,
                )
            else:
                self.ctx.broadcast(
                    root, None, nbytes,
                    consume=lambda data: self._write_entry(
                        arr, view, slices, data
                    ),
                    origin=origin,
                )

        return run_bcast

    def _compile_pack(self, s: A.Stmt, unit: A.Procedure,
                      yielding: bool = False) -> Callable:
        """Aggregated multi-section messages (SendPack/RecvPack): all
        parts travel as one message (one startup charge)."""
        part_fns = [
            (array, self._compile_section(list(subs), unit), {})
            for array, subs in s.parts
        ]
        tag = s.tag
        origin = self._comm_origin(s, unit)
        if isinstance(s, A.SendPack):
            dest_fn = self._compile_expr(s.dest, unit)

            def run_sendpack(fr: Frame):
                payloads = []
                nbytes = 0
                for array, sec_fn, cache in part_fns:
                    arr = fr.arrays[array]
                    view, slices, nb = self._comm_entry(
                        cache, arr, sec_fn(fr)
                    )
                    payloads.append(
                        view.copy() if view is not None
                        else arr.data[slices]
                    )
                    nbytes += nb
                self.ctx.send(int(dest_fn(fr)), tag, payloads, nbytes,
                              origin=origin)

            return run_sendpack
        src_fn = self._compile_expr(s.src, unit)

        if yielding:
            def run_recvpack_y(fr: Frame):
                payloads = yield from self.ctx.recv_y(
                    int(src_fn(fr)), tag, origin=origin
                )
                for (array, sec_fn, cache), data in zip(part_fns, payloads):
                    arr = fr.arrays[array]
                    view, slices, _nb = self._comm_entry(
                        cache, arr, sec_fn(fr)
                    )
                    self._write_entry(arr, view, slices, data)

            return run_recvpack_y

        def run_recvpack(fr: Frame):
            payloads = self.ctx.recv(int(src_fn(fr)), tag, origin=origin)
            for (array, sec_fn, cache), data in zip(part_fns, payloads):
                arr = fr.arrays[array]
                view, slices, _nb = self._comm_entry(cache, arr, sec_fn(fr))
                self._write_entry(arr, view, slices, data)

        return run_recvpack

    def _compile_reduce(self, s: A.GlobalReduce, unit: A.Procedure,
                        yielding: bool = False) -> Callable:
        var, op, aux = s.var, s.op, s.aux
        origin = getattr(s, "comment", "") or f"{unit.name}:{op} {var}"

        if yielding:
            def run_reduce_y(fr: Frame):
                if op == "maxloc":
                    value = (fr.scalars[var], fr.scalars[aux])
                    result = yield from self.ctx.allreduce_y(
                        value, "maxloc", 16, origin=origin
                    )
                    fr.scalars[var], fr.scalars[aux] = result
                else:
                    result = yield from self.ctx.allreduce_y(
                        fr.scalars[var], op, 8, origin=origin
                    )
                    fr.scalars[var] = result

            return run_reduce_y

        def run_reduce(fr: Frame):
            if op == "maxloc":
                value = (fr.scalars[var], fr.scalars[aux])
                result = self.ctx.allreduce(value, "maxloc", 16,
                                            origin=origin)
                fr.scalars[var], fr.scalars[aux] = result
            else:
                result = self.ctx.allreduce(fr.scalars[var], op, 8,
                                            origin=origin)
                fr.scalars[var] = result

        return run_reduce

    def _compile_remap(self, s: A.Remap, unit: A.Procedure,
                       yielding: bool = False) -> Callable:
        name = s.array
        specs = list(s.to_specs)
        origin = getattr(s, "comment", "") or f"{unit.name}:remap {name}"

        if yielding:
            def run_remap_y(fr: Frame):
                arr = fr.arrays[name]
                new = Distribution.from_specs(
                    specs, arr.bounds, self.ctx.nprocs
                )
                yield from remap_array_y(self.ctx, arr, new, origin=origin)

            return run_remap_y

        def run_remap(fr: Frame):
            arr = fr.arrays[name]
            if self.ctx is None:
                return  # sequential: remapping is a no-op
            new = Distribution.from_specs(specs, arr.bounds, self.ctx.nprocs)
            remap_array(self.ctx, arr, new, origin=origin)

        return run_remap


def _binop_fn(op: str, lf: ExprFn, rf: ExprFn) -> ExprFn:
    if op == "+":
        return lambda fr: lf(fr) + rf(fr)
    if op == "-":
        return lambda fr: lf(fr) - rf(fr)
    if op == "*":
        return lambda fr: lf(fr) * rf(fr)
    if op == "/":
        def div(fr):
            a, b = lf(fr), rf(fr)
            if isinstance(a, (int, np.integer)) and isinstance(b, (int, np.integer)):
                q = abs(a) // abs(b)
                return int(q if (a >= 0) == (b >= 0) else -q)
            return a / b

        return div
    if op == "**":
        return lambda fr: lf(fr) ** rf(fr)
    if op == "==":
        return lambda fr: lf(fr) == rf(fr)
    if op == "/=":
        return lambda fr: lf(fr) != rf(fr)
    if op == "<":
        return lambda fr: lf(fr) < rf(fr)
    if op == "<=":
        return lambda fr: lf(fr) <= rf(fr)
    if op == ">":
        return lambda fr: lf(fr) > rf(fr)
    if op == ">=":
        return lambda fr: lf(fr) >= rf(fr)
    if op == ".and.":
        return lambda fr: bool(lf(fr)) and bool(rf(fr))
    if op == ".or.":
        return lambda fr: bool(lf(fr)) or bool(rf(fr))
    raise InterpError(f"unknown operator {op}")


# ----------------------------------------------------------------------
# drivers
# ----------------------------------------------------------------------


def run_sequential(
    program: A.Program,
    init_fn: Callable[[str, tuple[int, ...]], float] = default_init,
    vectorize: Optional[bool] = None,
) -> Frame:
    """Reference execution of the original (pre-compilation) program."""
    return Interpreter(
        program, ctx=None, init_fn=init_fn, vectorize=vectorize
    ).run()


class SPMDResult:
    """Result of a distributed run: stats, per-rank frames, and arrays
    gathered back to global shape from their owners."""

    def __init__(self, stats, frames: list[Frame], prints: list[str],
                 trace=None) -> None:
        self.stats = stats
        self.frames = frames
        self.prints = prints
        #: the run's Tracer when tracing was on, else None
        self.trace = trace

    def gathered(self, name: str) -> np.ndarray:
        """Assemble the global array from each rank's owned regions
        (per the array's final distribution)."""
        arrs = [fr.arrays[name] for fr in self.frames]
        result = np.array(arrs[0].data, copy=True)
        dist = arrs[0].dist
        if dist is None or dist.is_replicated:
            return result
        los = [lo for lo, _ in arrs[0].bounds]
        for rank, arr in enumerate(arrs):
            d = arr.dist if arr.dist is not None else dist
            for piece in d.local_index_sets(rank):
                if piece.empty:
                    continue
                subs = [(dd.lo, dd.hi, dd.step) for dd in piece.dims]
                slices = tuple(
                    slice(lo - o, hi - o + 1, st)
                    for (lo, hi, st), o in zip(subs, los)
                )
                result[slices] = arr.data[slices]
        return result


def run_spmd(
    program: A.Program,
    nprocs: int,
    cost: CostModel = IPSC860,
    initial_dists: Optional[dict[tuple[str, str], Distribution]] = None,
    init_fn: Callable[[str, tuple[int, ...]], float] = default_init,
    timeout_s: Optional[float] = None,
    vectorize: Optional[bool] = None,
    faults=None,
    scheduler: Optional[str] = None,
    trace=None,
    topology=None,
    codegen: Optional[bool] = None,
    codegen_strict: bool = False,
    metrics=None,
) -> SPMDResult:
    """Run a compiled SPMD node program on the simulated machine.

    *timeout_s* is the wall-clock safety net (``REPRO_SIM_TIMEOUT`` or
    60 s when None; deadlocks are normally detected instantly).
    *faults* is an optional :class:`~repro.machine.faults.FaultPlan`
    (``REPRO_FAULTS`` when None).  *scheduler* selects the simulation
    backend (``REPRO_SCHEDULER`` or the cooperative scheduler when
    None).  *trace* enables event tracing: a
    :class:`~repro.obs.Tracer`, ``True`` for a fresh one, or None to
    defer to ``REPRO_TRACE`` (when that names a file, the Chrome trace
    JSON is written there after the run).  *topology* selects the
    interconnect (a :class:`~repro.machine.topology.Topology`, a name
    like ``"hypercube"`` or ``"mesh2d:contention"``, or None for
    ``REPRO_TOPOLOGY`` / uniform).  *codegen* selects the generated
    node-program path (``REPRO_CODEGEN``, default on; see
    :mod:`repro.codegen`); *codegen_strict* escalates per-procedure
    demotions to errors.  *metrics* enables the metrics registry: a
    :class:`~repro.obs.MetricsRegistry`, ``True`` for the process-wide
    default registry, or None to defer to ``REPRO_METRICS``.
    """
    # deferred import: repro.codegen.emit imports this module
    from ..codegen import (
        CodegenError, NodeRt, enabled as codegen_enabled, get_generated,
    )

    machine = Machine(nprocs, cost, timeout_s, faults=faults,
                      scheduler=scheduler, trace=trace, topology=topology,
                      metrics=metrics)
    prints: list[str] = []

    gen = None
    if codegen_enabled(codegen):
        from .vectorize import enabled as vec_enabled

        try:
            gen, gh, gm = get_generated(
                program, nprocs, vec_enabled(vectorize),
                strict=codegen_strict,
            )
        except CodegenError:
            raise
        except Exception:  # pragma: no cover - codegen must not kill runs
            gen = None
        if gen is not None:
            machine.stats.record_codegen(gh, gm, len(gen.demotions))
            if machine.tracer is not None:
                for cls, variant, proc, cause in gen.demotions:
                    machine.tracer.decision(
                        "codegen-demotion", proc=proc, rank_class=cls,
                        variant=variant, cause=cause,
                    )

    def make_interp(ctx: ProcContext) -> Interpreter:
        return Interpreter(
            program, ctx=ctx, initial_dists=initial_dists, init_fn=init_fn,
            vectorize=vectorize,
        )

    def finish(ctx: ProcContext, interp: Interpreter) -> None:
        ctx.stats.record_comm_cache(
            interp.comm_cache_hits, interp.comm_cache_misses
        )
        prints.extend(interp.prints)

    def make_node(rank: int):
        mod = gen.module_for(rank) if gen is not None else None
        if machine.scheduler == "event":
            # generator node program: the machine drives each rank as
            # a coroutine, suspending exactly at blocking communication
            def node(ctx: ProcContext):
                interp = make_interp(ctx)
                if mod is not None:
                    frame = yield from NodeRt(interp, mod).run_y()
                else:
                    frame = yield from interp.run_events()
                finish(ctx, interp)
                return frame
        else:
            def node(ctx: ProcContext) -> Frame:
                interp = make_interp(ctx)
                if mod is not None:
                    frame = NodeRt(interp, mod).run()
                else:
                    frame = interp.run()
                finish(ctx, interp)
                return frame
        return node

    frames = machine.run([make_node(r) for r in range(nprocs)])
    if machine.user_tracer is not None and trace is None:
        from ..obs import trace_output_path, write_chrome_trace

        path = trace_output_path()
        if path:
            write_chrome_trace(machine.user_tracer, path)
    return SPMDResult(machine.stats, frames, prints,
                      trace=machine.user_tracer)
