"""SPMD node-program interpreter."""

from .arrays import FArray
from .interpreter import (
    Frame,
    InterpError,
    Interpreter,
    SPMDResult,
    default_init,
    run_sequential,
    run_spmd,
)

__all__ = [
    "FArray",
    "Frame",
    "Interpreter",
    "InterpError",
    "SPMDResult",
    "run_sequential",
    "run_spmd",
    "default_init",
]
