#!/usr/bin/env python3
"""Quickstart: compile the paper's Figure 1 program and run it.

Shows the full pipeline on the simplest example:

* a Fortran D program distributes an array BLOCK-wise and calls a
  procedure that updates it with a shifted stencil;
* the interprocedural compiler produces SPMD node code (Figure 2):
  reduced loop bounds, guarded vectorized send/recv;
* the node program executes on a simulated 4-processor
  distributed-memory machine and matches sequential execution exactly.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Mode, Options, compile_program, parse, run_sequential
from repro.apps import FIG1

P = 4


def main() -> None:
    print("=" * 72)
    print("Fortran D source (the paper's Figure 1)")
    print("=" * 72)
    print(FIG1.strip())

    opts = Options(nprocs=P, mode=Mode.INTER)
    compiled = compile_program(FIG1, opts)

    print()
    print("=" * 72)
    print(f"Generated SPMD node program for {P} processors (Figure 2)")
    print("=" * 72)
    print(compiled.text())

    # the classical Figure 2 presentation: local bounds + overlap
    from repro.core.localize import localized_procedure_text
    from repro.dist import Distribution
    from repro.lang.ast import DistSpec

    dist = Distribution.from_specs([DistSpec("block")], [(1, 100)], P)
    print("Localized node view of f1 (Figure 2 style):")
    print(localized_procedure_text(
        compiled.program.unit("f1"), {"x": dist},
        {"x": compiled.report.overlaps.get(("p1", "x"), [(0, 5)])},
    ))
    print()
    print("Parameterized-overlap variant (Figure 14 style):")
    print(localized_procedure_text(
        compiled.program.unit("f1"), {"x": dist}, {"x": [(0, 5)]},
        parameterized=True,
    ))
    print()
    print("Compiler report:")
    for proc, dists in compiled.report.distributions.items():
        for arr, d in dists.items():
            print(f"  {proc}.{arr}: {d}")
    for line in compiled.report.comm_placements:
        print(f"  comm: {line}")

    print()
    print("=" * 72)
    print("Execution on the simulated machine")
    print("=" * 72)
    result = compiled.run()
    print(f"  {result.stats.summary()}")

    seq = run_sequential(parse(FIG1))
    ok = np.allclose(result.gathered("x"), seq.arrays["x"].data)
    print(f"  distributed result matches sequential execution: {ok}")

    # the run-time resolution baseline (Figure 3) for contrast
    rtr = compile_program(FIG1, Options(nprocs=P, mode=Mode.RTR)).run()
    print()
    print("Compared with run-time resolution (Figure 3):")
    print(f"  compile-time: {result.stats.messages:4d} messages, "
          f"{result.stats.time_ms:8.3f} ms")
    print(f"  run-time res: {rtr.stats.messages:4d} messages, "
          f"{rtr.stats.time_ms:8.3f} ms "
          f"({rtr.stats.time_us / result.stats.time_us:.1f}x slower)")


if __name__ == "__main__":
    main()
