#!/usr/bin/env python3
"""The §9 case study: dgefa (LINPACK LU factorization).

Compiles dgefa under the three strategies the paper compares —

* full interprocedural compilation (reaching decompositions + cloning +
  delayed instantiation: one pivot-column broadcast per step),
* intraprocedural compile-time code with immediate instantiation
  (per-call messages: no vectorization across the BLAS-1 boundaries),
* run-time resolution (per-element ownership tests and messages),

plus the hand-written SPMD node program, and reports simulated execution
time, message counts, and volumes on an iPSC/860-like machine.

Run:  python examples/dgefa_case_study.py [n] [P]
"""

import sys

import numpy as np

from repro import IPSC860, Machine, Mode, Options, compile_program
from repro.apps import (
    dgefa_reference_lu,
    dgefa_source,
    handcoded_dgefa_spmd,
    make_dgefa_init,
)


def run_case(n: int, P: int) -> None:
    init = make_dgefa_init(n)
    ref = np.empty((n, n))
    for i in range(n):
        for j in range(n):
            ref[i, j] = init("a", (i + 1, j + 1))
    ref = dgefa_reference_lu(ref)

    print(f"dgefa: n={n}, P={P} (column-cyclic distribution)")
    print(f"{'version':<18} {'time (ms)':>10} {'msgs':>7} {'colls':>6} "
          f"{'bytes':>10} {'guards':>8}  ok")
    print("-" * 68)

    rows = []
    for label, mode in (("interprocedural", Mode.INTER),
                        ("intraprocedural", Mode.INTRA),
                        ("run-time res.", Mode.RTR)):
        cp = compile_program(dgefa_source(n), Options(nprocs=P, mode=mode))
        res = cp.run(cost=IPSC860, init_fn=init, timeout_s=600)
        ok = np.allclose(res.gathered("a"), ref)
        s = res.stats
        print(f"{label:<18} {s.time_ms:>10.3f} {s.messages:>7} "
              f"{s.collectives:>6} {s.total_bytes:>10} {s.guards:>8}  {ok}")
        rows.append((label, s.time_us))

    m = Machine(P, IPSC860)
    results = m.run(lambda ctx: handcoded_dgefa_spmd(ctx, n, init))
    ok = all(
        np.allclose(results[rank][:, j], ref[:, j])
        for j in range(n) for rank in [j % P]
    )
    s = m.stats
    print(f"{'hand-coded':<18} {s.time_ms:>10.3f} {s.messages:>7} "
          f"{s.collectives:>6} {s.total_bytes:>10} {s.guards:>8}  {ok}")
    rows.append(("hand-coded", s.time_us))

    base = dict(rows)["interprocedural"]
    print()
    print("slowdown relative to the interprocedural version:")
    for label, t in rows:
        print(f"  {label:<18} {t / base:6.2f}x")


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    P = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    run_case(n, P)


if __name__ == "__main__":
    main()
