#!/usr/bin/env python3
"""Conjugate gradient end-to-end: the compiler's extensions working
together on a real solver.

* the tridiagonal matvec needs two boundary shifts per iteration
  (vectorized, hoisted into the iteration loop's body at the right
  point by dependence analysis);
* dot products are recognized reduction idioms (local partial sums +
  one global combine each);
* alpha/beta/residual are replicated scalars, bitwise identical on
  every node.

Run:  python examples/cg_solver.py [n] [iters] [P]
"""

import sys

import numpy as np

from repro import IPSC860, Mode, Options, compile_program, parse, \
    run_sequential
from repro.apps import cg_source


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 128
    iters = int(sys.argv[2]) if len(sys.argv) > 2 else 12
    P = int(sys.argv[3]) if len(sys.argv) > 3 else 4

    src = cg_source(n, iters)
    print(f"CG on a tridiagonal SPD system: n={n}, {iters} iterations, "
          f"P={P}")

    seq = run_sequential(parse(src))
    cp = compile_program(src, Options(nprocs=P, mode=Mode.INTER))
    res = cp.run(cost=IPSC860, timeout_s=600)

    ok = np.allclose(res.gathered("x"), seq.arrays["x"].data)
    resids = [fr.scalars["resid"] for fr in res.frames]
    print()
    print(f"  solution matches sequential execution: {ok}")
    print(f"  residual (sequential): {seq.scalars['resid']:.6f}")
    print(f"  residual per node:     {[f'{r:.6f}' for r in resids]}")
    print(f"  identical on all nodes: {len(set(resids)) == 1}")
    print()
    s = res.stats
    print(f"  {s.summary()}")
    per_iter_msgs = s.messages / iters
    per_iter_colls = s.collectives / iters
    print(f"  per iteration: {per_iter_msgs:.1f} shift messages, "
          f"{per_iter_colls:.1f} collectives (dots + boundary elements)")
    print()
    print("Compilation narrative:")
    for line in cp.explain().splitlines():
        print(f"  {line}")


if __name__ == "__main__":
    main()
