#!/usr/bin/env python3
"""Recompilation analysis demo (§4, §8): separate compilation preserved.

Simulates an editing session: after each edit, the manager recompiles
only the procedures whose source or interprocedural inputs changed, and
every build still runs correctly on the simulated machine.

Run:  python examples/recompilation_demo.py
"""

import numpy as np

from repro import Mode, Options, RecompilationManager, parse, run_sequential
from repro.machine import FREE

BASE = """
program p
real x(100)
distribute x(block)
call init(x)
call smooth(x)
call smooth(x)
end

subroutine init(x)
real x(100)
do i = 1, 100
  x(i) = i * 1.0
enddo
end

subroutine smooth(x)
real x(100)
do i = 1, 95
  x(i) = f(x(i + 5))
enddo
end
"""

EDITS = [
    ("initial build", BASE),
    ("no edit", BASE),
    ("edit init internals (scale by 2)",
     BASE.replace("x(i) = i * 1.0", "x(i) = i * 2.0")),
    ("edit smooth's shift (5 -> 3): exports change",
     BASE.replace("x(i) = f(x(i + 5))", "x(i) = f(x(i + 3))")),
    ("change the distribution (block -> cyclic)",
     BASE.replace("distribute x(block)", "distribute x(cyclic)")),
]


def main() -> None:
    mgr = RecompilationManager(opts=Options(nprocs=4, mode=Mode.INTER))
    print(f"{'edit':<48} {'recompiled':<22} reused")
    print("-" * 86)
    for label, src in EDITS:
        cp = mgr.compile(src)
        res = cp.run(cost=FREE)
        seq = run_sequential(parse(src)).arrays["x"].data
        assert np.allclose(res.gathered("x"), seq), label
        print(f"{label:<48} {','.join(mgr.last_recompiled) or '-':<22} "
              f"{','.join(mgr.last_reused) or '-'}")
    print()
    print("Internal edits rebuild one procedure; interface-visible edits")
    print("(message patterns, distributions) rebuild exactly the affected")
    print("slice of the call graph — never the whole program.")


if __name__ == "__main__":
    main()
