#!/usr/bin/env python3
"""Stencil relaxation through procedure calls, across machine sizes.

The motivating workload of data-parallel Fortran: nearest-neighbour
updates written as clean procedures.  Interprocedural compilation keeps
one vectorized boundary exchange per time step per neighbour pair, no
matter how the code is factored into procedures; the script sweeps
processor counts and shows messages and simulated times for the 1-D and
2-D variants.

Run:  python examples/stencil_pipeline.py
"""

import numpy as np

from repro import IPSC860, Mode, Options, compile_program, parse, \
    run_sequential
from repro.apps import stencil1d_source, stencil2d_source


def sweep(label: str, src: str, arr: str, procs=(2, 4, 8)) -> None:
    print("=" * 72)
    print(label)
    print("=" * 72)
    seq = run_sequential(parse(src)).arrays[arr].data
    print(f"{'P':>3} {'time (ms)':>10} {'msgs':>6} {'bytes':>9} "
          f"{'msgs/step/pair':>15}  ok")
    for P in procs:
        cp = compile_program(src, Options(nprocs=P, mode=Mode.INTER))
        res = cp.run(cost=IPSC860)
        ok = np.allclose(res.gathered(arr), seq)
        s = res.stats
        pairs = P - 1
        steps = 4
        per = s.messages / (steps * max(pairs, 1))
        print(f"{P:>3} {s.time_ms:>10.3f} {s.messages:>6} {s.bytes:>9} "
              f"{per:>15.2f}  {ok}")
    print()


def main() -> None:
    sweep(
        "1-D relaxation (block), 256 points, 4 steps",
        stencil1d_source(256, 4), "x",
    )
    sweep(
        "2-D Jacobi (row-block), 64x64, 4 steps",
        stencil2d_source(64, 4), "a", procs=(2, 4),
    )
    print("Each step costs a constant number of vectorized messages per")
    print("neighbour pair regardless of problem size — the compiler has")
    print("hoisted the exchanges out of the sweep procedures into the")
    print("time loop and vectorized them over whole boundary strips.")


if __name__ == "__main__":
    main()
