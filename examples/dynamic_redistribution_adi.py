#!/usr/bin/env python3
"""Dynamic data decomposition (§6): the Figure 16 ladder and an ADI
phase computation.

Part 1 compiles the paper's Figure 15 program at each optimization level
and prints the remap counts of Figure 16 a-d (4T -> 2T -> 2 -> 1).

Part 2 compiles an ADI-style solver whose row and column sweeps want
transposed distributions: the optimized placement issues exactly the two
transposes per time step that the phase structure requires.

Run:  python examples/dynamic_redistribution_adi.py
"""

import numpy as np

from repro import DynOpt, IPSC860, Mode, Options, compile_program, parse, \
    run_sequential
from repro.apps import FIG15, adi_source

P = 4
LEVELS = [
    (DynOpt.NONE, "16a  no optimization"),
    (DynOpt.LIVE, "16b  live decompositions"),
    (DynOpt.HOIST, "16c  + loop-invariant hoisting"),
    (DynOpt.KILLS, "16d  + array kills"),
]


def figure16_ladder() -> None:
    print("=" * 72)
    print("Figure 15/16: remap optimization ladder (T = 10 iterations)")
    print("=" * 72)
    seq = run_sequential(parse(FIG15)).arrays["x"].data
    print(f"{'level':<32} {'remaps':>7} {'bytes moved':>12} "
          f"{'time (ms)':>10}  ok")
    for dyn, label in LEVELS:
        cp = compile_program(
            FIG15, Options(nprocs=P, mode=Mode.INTER, dynopt=dyn)
        )
        res = cp.run(cost=IPSC860)
        ok = np.allclose(res.gathered("x"), seq)
        s = res.stats
        print(f"{label:<32} {s.remaps:>7} {s.remap_bytes:>12} "
              f"{s.time_ms:>10.3f}  {ok}")
    print()
    cp = compile_program(
        FIG15, Options(nprocs=P, mode=Mode.INTER, dynopt=DynOpt.KILLS)
    )
    text = cp.text()
    print("Optimized main program (Figure 16d):")
    print(text[: text.index("subroutine")].rstrip())


def adi_phases() -> None:
    n, steps = 32, 4
    src = adi_source(n, steps)
    print()
    print("=" * 72)
    print(f"ADI phase computation: n={n}, {steps} steps, P={P}")
    print("=" * 72)
    seq = run_sequential(parse(src)).arrays["a"].data
    for dyn, label in ((DynOpt.NONE, "naive remap placement"),
                       (DynOpt.KILLS, "optimized (live + coalesce)")):
        cp = compile_program(
            src, Options(nprocs=P, mode=Mode.INTER, dynopt=dyn)
        )
        res = cp.run(cost=IPSC860)
        ok = np.allclose(res.gathered("a"), seq)
        s = res.stats
        print(f"{label:<30} remaps={s.remaps:<4} "
              f"bytes={s.remap_bytes:<9} time={s.time_ms:8.3f} ms  ok={ok}")
    print()
    print("The optimized version issues one row->col and one col->row")
    print("transpose per time step — the minimum the phase structure")
    print("allows (the first row-phase request matches the initial")
    print("distribution and is elided).")


if __name__ == "__main__":
    figure16_ladder()
    adi_phases()
